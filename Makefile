# Convenience targets (mirror the commands in README / CONTRIBUTING)

.PHONY: install test test-quick bench bench-watch results examples explain-demo ci chaos e22 clean

install:
	python setup.py develop

test:
	pytest tests/ 2>&1 | tee test_output.txt

test-quick:
	HYPOTHESIS_PROFILE=quick pytest tests/

bench:
	pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

# append one timing record to benchmarks/BENCH_HISTORY.jsonl and fail
# (exit 4) when the latest run regressed against the trailing median
bench-watch:
	python benchmarks/collect_results.py --history-only
	python -m repro.cli bench-watch

results:
	python benchmarks/collect_results.py

# what .github/workflows/ci.yml runs; the per-test timeout needs the
# pytest-timeout plugin, which local environments may not have
ci:
	@if python -c "import pytest_timeout" 2>/dev/null; then \
		pytest tests/ --timeout=300 --timeout-method=thread; \
	else \
		echo "pytest-timeout not installed; running without per-test timeouts"; \
		pytest tests/; \
	fi
	pytest benchmarks/bench_e13_budget_overhead.py -s
	pytest benchmarks/bench_e14_trace_overhead.py -s
	pytest benchmarks/bench_e15_kernel_cache.py -s
	pytest benchmarks/bench_e16_telemetry_overhead.py -s
	pytest benchmarks/bench_e18_resilience.py -s --benchmark-disable
	pytest benchmarks/bench_e21_analysis.py -s --benchmark-disable
	pytest benchmarks/bench_e22_columnar.py -s --benchmark-disable

# the cross-process chaos matrix: deterministic faults and worker
# crashes injected inside pool workers; the oracle must still match
# the serial reference byte for byte with guard parity
chaos:
	REPRO_CHAOS=1 python tests/parallel/oracle.py
	REPRO_CHAOS=1 REPRO_DIFF_POOL=process python tests/parallel/oracle.py

# the columnar-kernel gate: batch satisfiability >= 2x the object
# kernel on 64+ blocks, end-to-end TC never slower, object path cheap
e22:
	pytest benchmarks/bench_e22_columnar.py -s --benchmark-disable

# the observability walkthrough: profile a transitive-closure run and
# export the JSON trace (TRACE_OUT overrides the export path)
explain-demo:
	python examples/observability_profile.py

examples:
	@for script in examples/*.py; do \
		echo "== $$script =="; \
		python $$script || exit 1; \
	done

clean:
	rm -rf build dist src/*.egg-info .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
