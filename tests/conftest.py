"""Test-suite configuration: hypothesis profiles.

* default: the library's regular settings;
* ``quick``: fewer examples for fast local iteration
  (``HYPOTHESIS_PROFILE=quick pytest tests/``).
"""

import os

from hypothesis import HealthCheck, settings

settings.register_profile(
    "quick", max_examples=20, suppress_health_check=[HealthCheck.too_slow]
)
settings.register_profile("default", deadline=1000)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))
