"""Unit tests for the fault-tolerant shard dispatch loop.

The chaos oracle pins that recovery preserves semantics end to end;
these tests pin the *mechanics* of each recovery path in isolation:
policy validation, retry with deterministic backoff, per-shard
deadlines, quarantine rescue and quarantine failure under each
``on_failure`` mode, pool restart after a worker crash, and the CLI
surface (exit code 5, the single-CPU auto-degrade).
"""

from __future__ import annotations

import contextlib
import io
import random
import time

import pytest

from repro.errors import ShardFailedError
from repro.parallel import BatchReport, DEFAULT_POLICY, ExecutionContext, ResiliencePolicy
from repro.parallel.resilience import _backoff_delay, _jitter_rng
from repro.runtime.faults import FaultRegistry, TransientEvaluationError


# ------------------------------------------------------------------- kernels
# module-level so process pools can pickle them by reference

_CALLS: dict = {}


def _flaky(payload):
    """Fails the first ``payload[1]`` calls for its key, then succeeds."""
    key, failures, value = payload
    seen = _CALLS.get(key, 0)
    _CALLS[key] = seen + 1
    if seen < failures:
        raise TransientEvaluationError(f"flaky {key} (call {seen + 1})")
    return value


def _double(payload):
    return payload * 2


def _slow(payload):
    time.sleep(payload)
    return payload


@pytest.fixture(autouse=True)
def _reset_calls():
    _CALLS.clear()


def _exhaust(registry: FaultRegistry, site: str, hits: int) -> None:
    """Burn the parent-side budget at ``site`` (the oracle's trick:
    export ships configuration, so worker-side copies keep full
    budgets while the ambient quarantine path sees a spent one)."""
    with registry:
        for _ in range(hits):
            with contextlib.suppress(Exception):
                registry.fire(site)


# -------------------------------------------------------------------- policy


class TestPolicy:
    def test_defaults(self):
        assert DEFAULT_POLICY.shard_timeout is None
        assert DEFAULT_POLICY.max_retries == 2
        assert DEFAULT_POLICY.on_failure == "serial"
        assert DEFAULT_POLICY.max_pool_restarts == 2

    def test_rejects_unknown_on_failure(self):
        with pytest.raises(ValueError, match="on_failure"):
            ResiliencePolicy(on_failure="shrug")

    def test_rejects_negative_retries(self):
        with pytest.raises(ValueError, match="max_retries"):
            ResiliencePolicy(max_retries=-1)

    def test_rejects_nonpositive_timeout(self):
        with pytest.raises(ValueError, match="shard_timeout"):
            ResiliencePolicy(shard_timeout=0.0)

    def test_rejects_negative_pool_restarts(self):
        with pytest.raises(ValueError, match="max_pool_restarts"):
            ResiliencePolicy(max_pool_restarts=-1)


# ------------------------------------------------------------------- backoff


class TestBackoff:
    def test_deterministic_for_a_fixed_seed(self):
        policy = ResiliencePolicy(jitter_seed=42)
        a = [_backoff_delay(policy, i, _jitter_rng(policy)) for i in range(4)]
        b = [_backoff_delay(policy, i, _jitter_rng(policy)) for i in range(4)]
        assert a == b

    def test_seed_inherited_from_active_registry(self):
        policy = ResiliencePolicy()  # jitter_seed=None
        with FaultRegistry(seed=7):
            assert _jitter_rng(policy).random() == random.Random(7).random()
        assert _jitter_rng(policy).random() == random.Random(0).random()

    def test_exponential_with_ceiling(self):
        policy = ResiliencePolicy(
            backoff_base=0.1, backoff_factor=2.0, backoff_max=0.3, jitter_seed=1
        )
        rng = _jitter_rng(policy)
        delays = [_backoff_delay(policy, i, rng) for i in range(6)]
        # jitter lands in [0.5, 1.0] of the nominal 0.1, 0.2, 0.3, 0.3...
        assert 0.05 <= delays[0] <= 0.1
        assert 0.1 <= delays[1] <= 0.2
        for d in delays[2:]:
            assert 0.15 <= d <= 0.3


# --------------------------------------------------------------------- retry


class TestRetry:
    def test_transient_failures_are_retried(self):
        ctx = ExecutionContext(
            workers=2, pool="thread",
            resilience=ResiliencePolicy(max_retries=2, backoff_base=0.001),
        )
        try:
            out = ctx.run_shards(_flaky, [("a", 2, 10), ("b", 0, 20)])
            assert out == [10, 20]
            assert ctx.retries == 2
            assert ctx.quarantined == 0
            assert ctx.last_report.retries == 2
        finally:
            ctx.close()

    def test_results_stay_in_payload_order(self):
        ctx = ExecutionContext(
            workers=4, pool="thread",
            resilience=ResiliencePolicy(max_retries=3, backoff_base=0.001),
        )
        try:
            payloads = [(f"k{i}", i % 3, i) for i in range(9)]
            assert ctx.run_shards(_flaky, payloads) == list(range(9))
        finally:
            ctx.close()

    def test_zero_retries_goes_straight_to_quarantine(self):
        ctx = ExecutionContext(
            workers=1, pool="thread",
            resilience=ResiliencePolicy(max_retries=0),
        )
        try:
            # one pool failure, then the quarantine re-execution succeeds
            out = ctx.run_shards(_flaky, [("q", 1, 5)])
            assert out == [5]
            assert ctx.retries == 0
            assert ctx.quarantined == 1
        finally:
            ctx.close()

    def test_batch_report_shape(self):
        report = BatchReport()
        assert report.as_dict() == {
            "retries": 0, "deadline_exceeded": 0, "quarantined": 0,
            "dropped": 0, "pool_restarts": 0,
            "worker_cache_hits": 0, "worker_cache_misses": 0,
        }


# ----------------------------------------------------------------- deadlines


class TestDeadline:
    def test_slow_shard_times_out_then_quarantine_rescues(self):
        ctx = ExecutionContext(
            workers=1, pool="thread",
            resilience=ResiliencePolicy(
                shard_timeout=0.05, max_retries=0, backoff_base=0.001
            ),
        )
        try:
            # the pool attempt exceeds the deadline; the serial
            # quarantine re-execution has no deadline and completes
            out = ctx.run_shards(_slow, [0.3])
            assert out == [0.3]
            assert ctx.deadline_exceeded == 1
            assert ctx.quarantined == 1
        finally:
            ctx.close()

    def test_fast_shards_never_hit_the_deadline(self):
        ctx = ExecutionContext(
            workers=2, pool="thread",
            resilience=ResiliencePolicy(shard_timeout=5.0),
        )
        try:
            assert ctx.run_shards(_double, [1, 2, 3]) == [2, 4, 6]
            assert ctx.deadline_exceeded == 0
        finally:
            ctx.close()


# ---------------------------------------------------------------- quarantine


class TestQuarantine:
    SITE = "worker._double"

    def _chaos(self, times: int, *, spend_parent: bool) -> FaultRegistry:
        registry = FaultRegistry(seed=5)
        registry.inject(
            self.SITE,
            error=TransientEvaluationError("poisoned shard"),
            times=times,
        )
        if spend_parent:
            _exhaust(registry, self.SITE, times)
        return registry

    def test_quarantine_rescues_after_retries_exhaust(self):
        # the worker-side (rehydrated) faults outlast max_retries, but
        # the parent-side budget is spent, so quarantine succeeds
        registry = self._chaos(times=3, spend_parent=True)
        ctx = ExecutionContext(
            workers=1, pool="thread",
            resilience=ResiliencePolicy(max_retries=2, backoff_base=0.001),
        )
        try:
            with registry:
                out = ctx.run_shards(_double, [4])
            assert out == [8]
            assert ctx.retries == 2
            assert ctx.quarantined == 1
            assert ctx.dropped_shards == 0
        finally:
            ctx.close()

    def test_poisoned_shard_raises_shard_failed(self):
        # parent budget NOT spent: the quarantine re-execution fails too
        registry = self._chaos(times=10, spend_parent=False)
        ctx = ExecutionContext(
            workers=1, pool="thread",
            resilience=ResiliencePolicy(max_retries=1, backoff_base=0.001),
        )
        try:
            with registry:
                with pytest.raises(ShardFailedError) as exc_info:
                    ctx.run_shards(_double, [4])
            error = exc_info.value
            assert error.op == "_double"
            assert error.shard == 0
            assert error.attempts == 2
            assert isinstance(error.cause, TransientEvaluationError)
            diag = error.diagnostics()
            assert diag["op"] == "_double" and diag["attempts"] == 2
            assert ctx.quarantined == 1
        finally:
            ctx.close()

    def test_on_failure_fail_skips_quarantine(self):
        registry = self._chaos(times=10, spend_parent=False)
        ctx = ExecutionContext(
            workers=1, pool="thread",
            resilience=ResiliencePolicy(
                max_retries=0, backoff_base=0.001, on_failure="fail"
            ),
        )
        try:
            with registry:
                with pytest.raises(ShardFailedError, match="forbids"):
                    ctx.run_shards(_double, [4])
            assert ctx.quarantined == 0
        finally:
            ctx.close()

    def test_partial_drops_only_the_poisoned_shard(self):
        registry = self._chaos(times=10, spend_parent=False)
        ctx = ExecutionContext(
            workers=1, pool="thread",
            resilience=ResiliencePolicy(
                max_retries=0, backoff_base=0.001, on_failure="partial"
            ),
        )
        try:
            with registry:
                out = ctx.run_shards(_double, [4, 5])
            # chaos poisons every shard of _double; with times=10 both
            # shards burn a pool attempt + quarantine and are dropped
            assert out == [None, None]
            assert ctx.dropped_shards == 2
            assert ctx.is_partial
            assert ctx.stats()["dropped_shards"] == 2
        finally:
            ctx.close()

    def test_partial_prefers_degraded_fallback(self):
        registry = self._chaos(times=10, spend_parent=False)
        ctx = ExecutionContext(
            workers=1, pool="thread",
            resilience=ResiliencePolicy(
                max_retries=0, backoff_base=0.001, on_failure="partial"
            ),
        )
        try:
            with registry:
                out = ctx.run_shards(_double, [4], degraded=lambda p: p * 2)
            # a semantically exact fallback is not a drop: the result
            # is complete and the context is not partial
            assert out == [8]
            assert ctx.dropped_shards == 0
            assert not ctx.is_partial
        finally:
            ctx.close()


# ------------------------------------------------------------- crash recovery


class TestCrashRecovery:
    SITE = "worker._double"

    def test_worker_crash_restarts_pool_then_degrades(self):
        # every fresh worker process rehydrates a full crash budget, so
        # the pool dies on each process attempt: restart, restart, then
        # degrade to threads — where the crash raises a retryable
        # WorkerCrashError (owner pid) and the retry succeeds
        registry = FaultRegistry(seed=3)
        registry.inject(self.SITE, crash=True, times=1)
        ctx = ExecutionContext(
            workers=2, pool="process",
            resilience=ResiliencePolicy(
                max_retries=2, backoff_base=0.001, max_pool_restarts=2
            ),
        )
        try:
            with registry:
                out = ctx.run_shards(_double, [21])
            assert out == [42]
            assert ctx.pool_restarts == 2
            assert ctx.fallbacks == 1
            assert ctx.pool_kind == "thread"
            assert ctx.retries >= 1  # the thread-side WorkerCrashError
        finally:
            ctx.close()

    def test_thread_pool_crash_is_a_plain_retry(self):
        registry = FaultRegistry(seed=3)
        registry.inject(self.SITE, crash=True, times=1)
        ctx = ExecutionContext(
            workers=1, pool="thread",
            resilience=ResiliencePolicy(max_retries=2, backoff_base=0.001),
        )
        try:
            with registry:
                out = ctx.run_shards(_double, [21])
            assert out == [42]
            assert ctx.pool_restarts == 0
            assert ctx.fallbacks == 0
            assert ctx.retries == 1
        finally:
            ctx.close()


# ----------------------------------------------------------------------- CLI


from repro.cli import EXIT_SHARD, main as cli_main  # noqa: E402
from repro.core.database import Database  # noqa: E402
from repro.core.relation import Relation  # noqa: E402
from repro.encoding.standard import encode_database  # noqa: E402


@pytest.fixture()
def workload(tmp_path):
    db = Database(
        {"E": Relation.from_points(("x", "y"), [(i, i + 1) for i in range(9)])}
    )
    db_path = tmp_path / "g.cdb"
    db_path.write_text(encode_database(db), encoding="utf-8")
    return str(db_path)


def _run_cli(argv):
    out, err = io.StringIO(), io.StringIO()
    with contextlib.redirect_stdout(out), contextlib.redirect_stderr(err):
        code = cli_main(argv)
    return code, out.getvalue(), err.getvalue()


QUERY = "exists y (E(x, y) and E(y, z))"


class TestCli:
    def test_resilience_flags_accepted(self, workload):
        code, out, _ = _run_cli(
            ["query", workload, "--raw", QUERY,
             "--parallel", "--workers", "2",
             "--shard-timeout", "30", "--shard-retries", "3",
             "--on-shard-failure", "serial"]
        )
        assert code == 0
        assert out.strip()

    def test_exit_code_5_on_unrecoverable_shard(self, workload):
        # a poisoned join-shard site with an unspent parent budget:
        # retries exhaust, quarantine fails, the CLI reports exit 5.
        # --optimize=none pins the legacy global-dispatch path (the
        # cost planner would route this small join serially and never
        # hit the poisoned site)
        registry = FaultRegistry(seed=9)
        registry.inject(
            "worker.join_shard",
            error=TransientEvaluationError("poisoned"),
            times=500,
        )
        with registry:
            code, _, err = _run_cli(
                ["query", workload, "--raw", QUERY, "--optimize=none",
                 "--parallel", "--workers", "2", "--shard-retries", "0"]
            )
        assert code == EXIT_SHARD == 5
        assert "shard failure" in err
        assert "diagnostics:" in err

    def test_single_cpu_parallel_is_planner_decided(self, workload, monkeypatch):
        # the blunt host-level auto-degrade is gone: --parallel on one
        # CPU just hands the planner a pool it will decide not to use
        # for a workload this small — same result, no degrade warning
        import repro.cli as cli_module

        monkeypatch.setattr(cli_module.os, "cpu_count", lambda: 1)
        argv = ["query", workload, "--raw", QUERY]
        code_s, out_s, _ = _run_cli(argv)
        code_p, out_p, err = _run_cli(argv + ["--parallel"])
        assert code_s == code_p == 0
        assert "serially" not in err
        assert sorted(out_s.splitlines()) == sorted(out_p.splitlines())

    def test_forced_workers_on_single_cpu_warns_but_runs(
        self, workload, monkeypatch
    ):
        import repro.cli as cli_module

        monkeypatch.setattr(cli_module.os, "cpu_count", lambda: 1)
        code, out, err = _run_cli(
            ["query", workload, "--raw", QUERY, "--parallel", "--workers", "2"]
        )
        assert code == 0
        assert out.strip()
        assert "single-CPU" in err  # the explicit-force warning stays
