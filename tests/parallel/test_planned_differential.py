"""Differential suite for the cost-based planner: planned execution vs
the serial reference.

``--optimize=cost`` replaces the evaluator with compile → rule-engine
rewrites → cost-modeled per-operator dispatch, which is exactly the
kind of change that silently diverges from the reference semantics.
Every point of the {hash, cell} × {1, 2, 4} worker matrix is pinned
twice:

* **semantic equivalence** — the planned result (with a dispatch-eager
  cost model, so parallel decisions actually fire at workers > 1)
  denotes the same pointset as the plain serial evaluator's;
* **guard parity** — planned-serial and planned-parallel walk the
  *same* plan, so a guard must report identical relation-level
  counters, materialized tuples, and completed rounds on both sides.
  (Parity against the unplanned evaluator is deliberately not asserted:
  executing fewer/cheaper operator calls than the naive evaluation
  order is exactly what the optimizer is for.)
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.costmodel import CostModel
from repro.core.evaluator import evaluate
from repro.core.physical import QueryPlanner
from repro.datalog.engine import evaluate_program
from repro.encoding.cells import relations_equivalent
from repro.queries.library import transitive_closure_program
from repro.runtime.guard import EvaluationGuard

from tests.parallel.oracle import STRATEGIES, WORKER_COUNTS, guard_totals, make_context
from tests.parallel.test_differential import _edge_db, small_digraphs
from tests.strategies import formulas

MATRIX = [
    (strategy, workers) for strategy in STRATEGIES for workers in WORKER_COUNTS
]

_CONTEXTS = {}


def _context(strategy, workers):
    key = (strategy, workers)
    if key not in _CONTEXTS:
        _CONTEXTS[key] = make_context(workers, strategy)
    return _CONTEXTS[key]


@pytest.fixture(scope="module", autouse=True)
def _close_contexts():
    yield
    while _CONTEXTS:
        _CONTEXTS.popitem()[1].close()


def _eager_model():
    """Dispatch priced near zero so worker counts > 1 actually take the
    parallel path on Hypothesis-sized inputs; serial semantics must
    survive the planner *choosing* parallel, not just declining it."""
    return CostModel(
        dispatch={"base": 1e-9, "per_shard": 1e-9, "per_tuple": 1e-12,
                  "efficiency": 1.0},
        source="test-eager",
    )


def _planner(strategy, workers):
    return QueryPlanner(
        mode="cost",
        model=_eager_model(),
        context=_context(strategy, workers),
        default_strategy=strategy,
    )


def check_fo_planned(formula, database=None, planner=None):
    """Assert planner.run == evaluate (semantics) and that a serial
    planner run of the same mode/model agrees on guard accounting."""
    serial = evaluate(formula, database)
    theory = database.theory if database is not None else serial.theory
    baseline_guard = EvaluationGuard()
    baseline = QueryPlanner(mode=planner.mode, model=planner.model).run(
        formula, database, theory, guard=baseline_guard
    )
    planned_guard = EvaluationGuard()
    planned = planner.run(formula, database, theory, guard=planned_guard)
    assert serial.schema == planned.schema
    assert relations_equivalent(serial, planned), (
        f"planned FO result diverged from serial for {formula}:\n"
        f"serial:\n{serial.pretty()}\nplanned:\n{planned.pretty()}"
    )
    assert relations_equivalent(baseline, planned)
    assert guard_totals(baseline_guard) == guard_totals(planned_guard), (
        f"guard accounting diverged for {formula}: "
        f"{guard_totals(baseline_guard)} != {guard_totals(planned_guard)}"
    )


@pytest.mark.parametrize("strategy,workers", MATRIX)
class TestPlannedDifferential:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(formula=formulas())
    def test_fo_formulas(self, strategy, workers, formula):
        check_fo_planned(formula, planner=_planner(strategy, workers))

    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(edges=small_digraphs())
    def test_datalog_rule_bodies_through_the_planner(
        self, strategy, workers, edges
    ):
        program = transitive_closure_program()
        db = _edge_db(edges)
        serial = evaluate_program(program, db)
        baseline_guard = EvaluationGuard()
        baseline = evaluate_program(
            program, db, guard=baseline_guard,
            planner=QueryPlanner(mode="cost", model=_eager_model()),
        )
        planned_guard = EvaluationGuard()
        planned = evaluate_program(
            program, db, guard=planned_guard,
            planner=_planner(strategy, workers),
        )
        assert serial.rounds == planned.rounds == baseline.rounds
        assert serial.reached_fixpoint == planned.reached_fixpoint
        for name in program.idb:
            assert relations_equivalent(serial[name], planned[name]), (
                f"planned IDB {name!r} diverged from serial:\n"
                f"serial:\n{serial[name].pretty()}\n"
                f"planned:\n{planned[name].pretty()}"
            )
        assert guard_totals(baseline_guard) == guard_totals(planned_guard)


class TestDefaultModelEquivalence:
    """The conservative default model (everything serial on small
    inputs) must agree with the evaluator too — both planner paths,
    with and without a granted context."""

    @settings(max_examples=25, deadline=None)
    @given(formula=formulas())
    def test_cost_mode_without_context(self, formula):
        check_fo_planned(formula, planner=QueryPlanner(mode="cost"))

    @settings(max_examples=25, deadline=None)
    @given(formula=formulas())
    def test_heuristic_mode(self, formula):
        check_fo_planned(formula, planner=QueryPlanner(mode="heuristic"))
