"""Cross-process chaos harness: spec export, rehydration, determinism.

The resilience tests drive the recovery paths; these tests pin the
*harness* that makes chaos cross a process boundary: which armed
faults are exportable, how a worker-side copy behaves (owner pid,
crash semantics), and — the property everything else leans on — that
a fixed seed produces the identical firing sequence whether the
faults fire in-process or inside a spawned worker.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.core.database import Database
from repro.core.evaluator import evaluate
from repro.core.relation import Relation
from repro.encoding.cells import relations_equivalent
from repro.lang import parse_formula
from repro.parallel import ExecutionContext, ResiliencePolicy
from repro.parallel.worker import probe_fault_sequence
from repro.runtime.faults import (
    KNOWN_SITES,
    FaultRegistry,
    TransientEvaluationError,
    WorkerCrashError,
    fault_point,
)
from repro.runtime.guard import EvaluationGuard


# ------------------------------------------------------------------- export


class TestExportSpec:
    def test_round_trip_preserves_schedules(self):
        registry = FaultRegistry(seed=11)
        registry.inject("worker.join_shard", after=1, times=2)
        registry.inject("worker.project_shard", delay=0.0, probability=0.5,
                        times=3)
        copy = FaultRegistry.from_spec(registry.export_spec())
        assert copy.seed == 11
        assert copy.owner_pid == registry.owner_pid
        # the copy fires the same schedule the parent would
        with copy:
            fault_point("worker.join_shard")  # after=1: skipped
            with pytest.raises(TransientEvaluationError):
                fault_point("worker.join_shard")

    def test_parent_only_faults_are_excluded(self):
        registry = FaultRegistry(seed=0)
        registry.inject("worker.join_shard", on_fire=lambda: None)
        registry.inject("worker.join_shard", charge_tuples=5)
        registry.inject("worker.join_shard", times=1)  # exportable
        spec = registry.export_spec()
        assert len(spec["faults"]) == 1
        assert spec["faults"][0]["error"] is not None

    def test_epoch_changes_the_export_key(self):
        registry = FaultRegistry(seed=0)
        registry.inject("worker.join_shard")
        key1 = registry.export_spec()["key"]
        registry.inject("worker.project_shard")
        key2 = registry.export_spec()["key"]
        assert key1 != key2  # workers re-rehydrate on the next shard

    def test_spec_is_picklable(self):
        import pickle

        registry = FaultRegistry(seed=2)
        registry.inject("worker.absorb_shard",
                        error=TransientEvaluationError("boom"), times=4)
        spec = pickle.loads(pickle.dumps(registry.export_spec()))
        assert spec["faults"][0]["site"] == "worker.absorb_shard"

    def test_worker_sites_are_known(self):
        for site in ("worker.join_shard", "worker.project_shard",
                     "worker.absorb_shard"):
            assert site in KNOWN_SITES


# ------------------------------------------------------------ crash semantics


class TestCrashSemantics:
    def test_crash_in_owner_process_raises_retryable(self):
        registry = FaultRegistry()
        registry.inject("s", crash=True)
        with registry:
            with pytest.raises(WorkerCrashError):
                fault_point("s")
        # WorkerCrashError is transient by design: the degrade policy
        # and the retry loop both treat it as recoverable
        assert issubclass(WorkerCrashError, TransientEvaluationError)

    def test_rehydrated_copy_keeps_parent_owner_pid(self):
        registry = FaultRegistry()
        registry.inject("s", crash=True)
        copy = FaultRegistry.from_spec(registry.export_spec())
        assert copy.owner_pid == registry.owner_pid
        # in THIS process the pid matches, so the copy raises too; in a
        # spawned worker the same fault calls os._exit (pinned end to
        # end by TestCrashRecovery in test_resilience.py)
        with copy:
            with pytest.raises(WorkerCrashError):
                fault_point("s")


# --------------------------------------------------------- seed determinism


class TestSeedDeterminism:
    def _spec(self, seed):
        registry = FaultRegistry(seed=seed)
        registry.inject("worker.join_shard", probability=0.4, times=50)
        registry.inject("worker.join_shard", crash=False, delay=0.0,
                        after=3, times=2,
                        error=TransientEvaluationError("deterministic"))
        return registry.export_spec()

    def test_same_seed_same_sequence_across_processes(self):
        spec = self._spec(seed=1234)
        local = probe_fault_sequence((spec, "worker.join_shard", 25))
        with ProcessPoolExecutor(max_workers=1) as pool:
            remote = pool.submit(
                probe_fault_sequence, (spec, "worker.join_shard", 25)
            ).result(timeout=60)
        assert local == remote
        assert local  # the schedule actually fired something

    def test_different_seeds_diverge(self):
        a = probe_fault_sequence((self._spec(1), "worker.join_shard", 25))
        b = probe_fault_sequence((self._spec(2), "worker.join_shard", 25))
        assert a != b


# ------------------------------------------------------------- end to end


def _chaos_registry():
    registry = FaultRegistry(seed=99)
    for site in ("worker.join_shard", "worker.project_shard"):
        registry.inject(site, error=TransientEvaluationError(f"chaos {site}"),
                        times=2)
    # spend the parent-side budgets so the quarantine backstop always
    # rescues (export ships configuration; workers keep full budgets)
    with registry:
        for site in ("worker.join_shard", "worker.project_shard"):
            for _ in range(2):
                try:
                    registry.fire(site)
                except Exception:
                    pass
    return registry


class TestEndToEnd:
    def test_worker_faults_recover_with_serial_semantics(self):
        db = Database({"E": Relation.from_points(
            ("x", "y"), [(i, i + 1) for i in range(8)] + [(0, 4)]
        )})
        formula = parse_formula("exists y (E(x, y) and E(y, z))")
        serial_guard = EvaluationGuard()
        serial = evaluate(formula, db, guard=serial_guard)

        ctx = ExecutionContext(
            workers=2, pool="process", min_tuples=2,
            resilience=ResiliencePolicy(max_retries=6, backoff_base=0.002,
                                        max_pool_restarts=3),
        )
        chaos_guard = EvaluationGuard()
        try:
            with _chaos_registry():
                parallel = evaluate(formula, db, guard=chaos_guard, context=ctx)
            recovered = ctx.retries + ctx.quarantined + ctx.pool_restarts
            assert recovered > 0, "chaos never fired"
        finally:
            ctx.close()
        assert relations_equivalent(serial, parallel)
        assert dict(serial_guard.counters) == dict(chaos_guard.counters)
        assert serial_guard.tuples_materialized == chaos_guard.tuples_materialized

    def test_chaos_free_payloads_ship_unwrapped(self):
        # without worker.* faults armed, shards bypass run_shard: the
        # spec gate keeps the zero-chaos hot path allocation-free
        from repro.parallel.resilience import _chaos_spec

        registry = FaultRegistry()
        registry.inject("evaluator.eval")  # armed, but not a worker site
        with registry:
            assert _chaos_spec() is None
        registry2 = FaultRegistry()
        registry2.inject("worker.join_shard")
        with registry2:
            assert _chaos_spec() is not None
        assert _chaos_spec() is None  # no registry at all
