"""Differential-testing oracle: parallel evaluation vs the serial reference.

Serial evaluation is the reference semantics; a parallel backend is
exactly the kind of change that silently diverges from it.  The oracle
therefore pins every workload twice:

* **semantic equivalence** — the parallel result denotes the same
  pointset as the serial result, decided by the existing checker
  (:func:`repro.encoding.cells.relations_equivalent`: cell-signature
  canonical forms with an exact containment fallback);
* **guard parity** — an :class:`EvaluationGuard` run under the
  parallel backend reports the *same* per-site counters, materialized
  tuples, and completed rounds as the serial run, so budgets keep
  meaning the same thing (tick counts are excluded: they are pure
  checkpoint frequency, not work accounting).

The helpers are used by the Hypothesis differential suite
(``test_differential.py``); ``python tests/parallel/oracle.py`` runs a
canned corpus under both shard strategies and prints a summary.

The pool kind comes from ``REPRO_DIFF_POOL`` (default ``thread`` —
fast to spin up everywhere; the CI differential job sets ``process``
to exercise pickled shard payloads and the owner-pid recursion guard).
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, Optional, Tuple

from repro.core.database import Database
from repro.core.evaluator import evaluate
from repro.core.relation import Relation
from repro.datalog.engine import evaluate_program
from repro.encoding.cells import relations_equivalent
from repro.parallel import ExecutionContext
from repro.runtime.guard import EvaluationGuard

__all__ = [
    "make_context",
    "guard_totals",
    "check_fo",
    "check_datalog",
    "WORKER_COUNTS",
    "STRATEGIES",
]

#: the differential matrix of the acceptance criteria
WORKER_COUNTS = (1, 2, 4)
STRATEGIES = ("hash", "cell")


def make_context(workers: int, strategy: str) -> ExecutionContext:
    """A context for differential runs: tiny ``min_tuples`` so even the
    small relations Hypothesis generates actually take the shard path."""
    pool = os.environ.get("REPRO_DIFF_POOL", "thread")
    return ExecutionContext(
        workers=workers, shard_strategy=strategy, pool=pool, min_tuples=2
    )


def guard_totals(guard: EvaluationGuard) -> Tuple[Dict[str, int], int, int]:
    """The guard's work accounting (counters, tuples, rounds)."""
    return (dict(guard.counters), guard.tuples_materialized, guard.rounds_completed)


def check_fo(formula, database: Optional[Database] = None, ctx=None) -> None:
    """Assert serial == parallel for one FO formula."""
    serial_guard = EvaluationGuard()
    serial = evaluate(formula, database, guard=serial_guard)
    parallel_guard = EvaluationGuard()
    parallel = evaluate(formula, database, guard=parallel_guard, context=ctx)
    assert serial.schema == parallel.schema
    assert relations_equivalent(serial, parallel), (
        f"parallel FO result diverged from serial for {formula}:\n"
        f"serial:\n{serial.pretty()}\nparallel:\n{parallel.pretty()}"
    )
    assert guard_totals(serial_guard) == guard_totals(parallel_guard), (
        f"guard accounting diverged for {formula}: "
        f"{guard_totals(serial_guard)} != {guard_totals(parallel_guard)}"
    )


def check_datalog(program, database: Database, ctx=None, engine=evaluate_program) -> None:
    """Assert serial == parallel for one Datalog program (any engine)."""
    serial_guard = EvaluationGuard()
    serial = engine(program, database, guard=serial_guard)
    parallel_guard = EvaluationGuard()
    parallel = engine(program, database, guard=parallel_guard, context=ctx)
    assert serial.rounds == parallel.rounds
    assert serial.reached_fixpoint == parallel.reached_fixpoint
    for name in program.idb:
        assert relations_equivalent(serial[name], parallel[name]), (
            f"parallel IDB {name!r} diverged from serial:\n"
            f"serial:\n{serial[name].pretty()}\nparallel:\n{parallel[name].pretty()}"
        )
    assert guard_totals(serial_guard) == guard_totals(parallel_guard)


# --------------------------------------------------------------- canned corpus


def _corpus():
    """(label, runner) pairs covering joins, QE, negation, fixpoints."""
    from repro.lang import parse_formula
    from repro.queries.library import transitive_closure_program

    edges = [(i, i + 1) for i in range(8)] + [(0, 4), (2, 7)]
    db = Database({"E": Relation.from_points(("x", "y"), edges)})

    cases = [
        ("two-hop join", lambda ctx: check_fo(
            parse_formula("exists y (E(x, y) and E(y, z))"), db, ctx)),
        ("join + negation", lambda ctx: check_fo(
            parse_formula("E(x, y) and not (x < 3)"), db, ctx)),
        ("quantifier elimination", lambda ctx: check_fo(
            parse_formula("exists y (E(x, y) and y < 6)"), db, ctx)),
        ("transitive closure", lambda ctx: check_datalog(
            transitive_closure_program(), db, ctx)),
    ]
    return cases


def main() -> int:
    ran = 0
    for strategy in STRATEGIES:
        for workers in WORKER_COUNTS:
            ctx = make_context(workers, strategy)
            try:
                for label, runner in _corpus():
                    runner(ctx)
                    ran += 1
            finally:
                ctx.close()
    print(f"oracle: {ran} workload runs agreed with the serial reference "
          f"(strategies={STRATEGIES}, workers={WORKER_COUNTS})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
