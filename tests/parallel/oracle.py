"""Differential-testing oracle: parallel evaluation vs the serial reference.

Serial evaluation is the reference semantics; a parallel backend is
exactly the kind of change that silently diverges from it.  The oracle
therefore pins every workload twice:

* **semantic equivalence** — the parallel result denotes the same
  pointset as the serial result, decided by the existing checker
  (:func:`repro.encoding.cells.relations_equivalent`: cell-signature
  canonical forms with an exact containment fallback);
* **guard parity** — an :class:`EvaluationGuard` run under the
  parallel backend reports the *same* per-site counters, materialized
  tuples, and completed rounds as the serial run, so budgets keep
  meaning the same thing (tick counts are excluded: they are pure
  checkpoint frequency, not work accounting).

The helpers are used by the Hypothesis differential suite
(``test_differential.py``); ``python tests/parallel/oracle.py`` runs a
canned corpus under both shard strategies and prints a summary.

The pool kind comes from ``REPRO_DIFF_POOL`` (default ``thread`` —
fast to spin up everywhere; the CI differential job sets ``process``
to exercise pickled shard payloads and the owner-pid recursion guard).

Chaos mode: ``REPRO_CHAOS=1`` arms a deterministic
:class:`~repro.runtime.faults.FaultRegistry` around every *parallel*
run — transient failures and a worker crash at each shard-kernel site
(fired inside the workers via the cross-process chaos harness; see
:mod:`repro.parallel.worker`) — and then asserts the *same* semantic
equivalence and guard parity.  The resilience layer must absorb every
injected failure without changing a single answer or a single guard
counter; ``REPRO_CHAOS_SEED`` varies the (still deterministic)
schedule.

Kernel-backend axis: every corpus entry also runs object-vs-columnar
(``repro.perf.columnar``) × serial-vs-parallel.  Within each backend
the serial-vs-parallel contract above applies; across backends the
oracle demands more than equivalence — the *rendered* results
(``pretty()``, i.e. the canonical forms and their order) must be
byte-identical, and the guard totals must match exactly, because the
columnar kernel claims to be a pure performance substitution.  Each
backend leg starts from a fresh kernel cache/intern pool so no entry
built under the other backend leaks in.
"""

from __future__ import annotations

import contextlib
import os
from typing import Dict, Iterable, Optional, Tuple

from repro.core.database import Database
from repro.core.evaluator import evaluate
from repro.core.relation import Relation
from repro.datalog.engine import evaluate_program
from repro.encoding.cells import relations_equivalent
from repro.parallel import ExecutionContext
from repro.perf import kernel_backend_context, reset_kernel_cache
from repro.runtime.faults import FaultRegistry, TransientEvaluationError
from repro.runtime.guard import EvaluationGuard

__all__ = [
    "make_context",
    "guard_totals",
    "check_fo",
    "check_datalog",
    "check_fo_kernels",
    "check_datalog_kernels",
    "chaos_registry",
    "CHAOS",
    "WORKER_COUNTS",
    "STRATEGIES",
    "KERNELS",
]

#: the differential matrix of the acceptance criteria
WORKER_COUNTS = (1, 2, 4)
STRATEGIES = ("hash", "cell")
KERNELS = ("object", "columnar")

#: chaos mode: inject worker failures around every parallel run
CHAOS = os.environ.get("REPRO_CHAOS") == "1"

#: the shard-kernel fault sites the chaos schedule arms
_WORKER_SITES = ("worker.join_shard", "worker.project_shard",
                 "worker.absorb_shard")


def chaos_registry(seed: Optional[int] = None) -> FaultRegistry:
    """The deterministic chaos schedule: per shard-kernel site, two
    transient failures (exercises retry + backoff), one shard delay
    (a slow worker, not a failed one), and one hard crash on the fifth
    hit (exercises pool restart under a process pool, the retryable
    :class:`WorkerCrashError` under threads).

    The parent-side fault budgets are pre-exhausted after arming:
    :meth:`export_spec` ships fault *configuration*, so the rehydrated
    worker-side copies still fire with full budgets, while the ambient
    registry the quarantine path fires against is already spent — a
    quarantined shard always recovers here.  (Every restarted worker
    process rehydrates a fresh budget, so under a process pool retries
    alone cannot be guaranteed to converge; quarantine is the designed
    backstop, and the oracle pins that it preserves semantics.  The
    quarantine-*failure* paths are pinned separately by
    ``tests/parallel/test_resilience.py``.)"""
    if seed is None:
        seed = int(os.environ.get("REPRO_CHAOS_SEED", "1234"))
    registry = FaultRegistry(seed=seed)
    for site in _WORKER_SITES:
        registry.inject(
            site, error=TransientEvaluationError(f"chaos at {site}"), times=2
        )
        registry.inject(site, delay=0.01, after=2, times=1)
        registry.inject(site, crash=True, after=4, times=1)
    with registry:
        for site in _WORKER_SITES:
            for _ in range(5):
                try:
                    registry.fire(site)
                except Exception:
                    pass
    return registry


def _chaos() -> contextlib.AbstractContextManager:
    """An armed registry when chaos mode is on, else a no-op."""
    return chaos_registry() if CHAOS else contextlib.nullcontext()


def make_context(workers: int, strategy: str) -> ExecutionContext:
    """A context for differential runs: tiny ``min_tuples`` so even the
    small relations Hypothesis generates actually take the shard path."""
    pool = os.environ.get("REPRO_DIFF_POOL", "thread")
    resilience = None
    if CHAOS:
        # chaos-tolerant policy: every restarted worker process
        # rehydrates a fresh fault budget, so a shard can catch more
        # failures than the default 2 retries; the oracle pins that
        # *recovery* preserves semantics, while the quarantine-failure
        # paths are pinned by tests/parallel/test_resilience.py
        from repro.parallel import ResiliencePolicy

        resilience = ResiliencePolicy(
            max_retries=6, backoff_base=0.005, max_pool_restarts=3
        )
    return ExecutionContext(
        workers=workers, shard_strategy=strategy, pool=pool, min_tuples=2,
        resilience=resilience,
    )


def guard_totals(guard: EvaluationGuard) -> Tuple[Dict[str, int], int, int]:
    """The guard's work accounting (counters, tuples, rounds)."""
    return (dict(guard.counters), guard.tuples_materialized, guard.rounds_completed)


def check_fo(formula, database: Optional[Database] = None, ctx=None) -> None:
    """Assert serial == parallel for one FO formula."""
    serial_guard = EvaluationGuard()
    serial = evaluate(formula, database, guard=serial_guard)
    parallel_guard = EvaluationGuard()
    with _chaos():
        parallel = evaluate(formula, database, guard=parallel_guard, context=ctx)
    assert serial.schema == parallel.schema
    assert relations_equivalent(serial, parallel), (
        f"parallel FO result diverged from serial for {formula}:\n"
        f"serial:\n{serial.pretty()}\nparallel:\n{parallel.pretty()}"
    )
    assert guard_totals(serial_guard) == guard_totals(parallel_guard), (
        f"guard accounting diverged for {formula}: "
        f"{guard_totals(serial_guard)} != {guard_totals(parallel_guard)}"
    )


def check_datalog(program, database: Database, ctx=None, engine=evaluate_program) -> None:
    """Assert serial == parallel for one Datalog program (any engine)."""
    serial_guard = EvaluationGuard()
    serial = engine(program, database, guard=serial_guard)
    parallel_guard = EvaluationGuard()
    with _chaos():
        parallel = engine(program, database, guard=parallel_guard, context=ctx)
    assert serial.rounds == parallel.rounds
    assert serial.reached_fixpoint == parallel.reached_fixpoint
    for name in program.idb:
        assert relations_equivalent(serial[name], parallel[name]), (
            f"parallel IDB {name!r} diverged from serial:\n"
            f"serial:\n{serial[name].pretty()}\nparallel:\n{parallel[name].pretty()}"
        )
    assert guard_totals(serial_guard) == guard_totals(parallel_guard)


# ---------------------------------------------------------- kernel-backend axis


@contextlib.contextmanager
def _kernel_leg(backend: str):
    """One kernel-backend leg with a fresh cache and intern pool.

    The reset matters for exactness: a tuple interned under the other
    backend keeps its already-built entailer, which would make the two
    legs' cache traffic (and lazily-shared kernels) diverge in ways
    that have nothing to do with the backend under test."""
    reset_kernel_cache()
    with kernel_backend_context(backend):
        yield


def check_fo_kernels(formula, database: Optional[Database] = None, ctx=None) -> None:
    """Serial-vs-parallel within each kernel backend, byte-identical
    renderings and exact guard totals across backends."""
    legs = {}
    for backend in KERNELS:
        with _kernel_leg(backend):
            serial_guard = EvaluationGuard()
            serial = evaluate(formula, database, guard=serial_guard)
            parallel_guard = EvaluationGuard()
            with _chaos():
                parallel = evaluate(formula, database, guard=parallel_guard, context=ctx)
            assert serial.schema == parallel.schema
            assert relations_equivalent(serial, parallel), (
                f"[{backend}] parallel FO result diverged from serial for {formula}:\n"
                f"serial:\n{serial.pretty()}\nparallel:\n{parallel.pretty()}"
            )
            assert guard_totals(serial_guard) == guard_totals(parallel_guard), (
                f"[{backend}] guard accounting diverged for {formula}"
            )
            legs[backend] = (serial.pretty(), parallel.pretty(),
                             guard_totals(serial_guard))
    ref_serial, ref_parallel, ref_guard = legs["object"]
    for backend in KERNELS[1:]:
        got_serial, got_parallel, got_guard = legs[backend]
        assert got_serial == ref_serial, (
            f"{backend} serial rendering diverged from object for {formula}:\n"
            f"object:\n{ref_serial}\n{backend}:\n{got_serial}"
        )
        assert got_parallel == ref_parallel, (
            f"{backend} parallel rendering diverged from object for {formula}"
        )
        assert got_guard == ref_guard, (
            f"{backend} guard totals diverged from object for {formula}: "
            f"{got_guard} != {ref_guard}"
        )


def check_datalog_kernels(
    program, database: Database, ctx=None, engine=evaluate_program
) -> None:
    """The Datalog face of :func:`check_fo_kernels`."""
    legs = {}
    for backend in KERNELS:
        with _kernel_leg(backend):
            serial_guard = EvaluationGuard()
            serial = engine(program, database, guard=serial_guard)
            parallel_guard = EvaluationGuard()
            with _chaos():
                parallel = engine(program, database, guard=parallel_guard, context=ctx)
            assert serial.rounds == parallel.rounds
            assert serial.reached_fixpoint == parallel.reached_fixpoint
            for name in program.idb:
                assert relations_equivalent(serial[name], parallel[name]), (
                    f"[{backend}] parallel IDB {name!r} diverged from serial"
                )
            assert guard_totals(serial_guard) == guard_totals(parallel_guard)
            legs[backend] = (
                serial.rounds,
                {name: serial[name].pretty() for name in program.idb},
                {name: parallel[name].pretty() for name in program.idb},
                guard_totals(serial_guard),
            )
    ref = legs["object"]
    for backend in KERNELS[1:]:
        got = legs[backend]
        assert got[0] == ref[0], f"{backend} round count diverged"
        assert got[1] == ref[1], f"{backend} serial IDB renderings diverged from object"
        assert got[2] == ref[2], f"{backend} parallel IDB renderings diverged from object"
        assert got[3] == ref[3], (
            f"{backend} guard totals diverged from object: {got[3]} != {ref[3]}"
        )


# --------------------------------------------------------------- canned corpus


def _corpus():
    """(label, runner) pairs covering joins, QE, negation, fixpoints."""
    from repro.lang import parse_formula
    from repro.queries.library import transitive_closure_program

    edges = [(i, i + 1) for i in range(8)] + [(0, 4), (2, 7)]
    db = Database({"E": Relation.from_points(("x", "y"), edges)})

    cases = [
        ("two-hop join", lambda ctx: check_fo_kernels(
            parse_formula("exists y (E(x, y) and E(y, z))"), db, ctx)),
        ("join + negation", lambda ctx: check_fo_kernels(
            parse_formula("E(x, y) and not (x < 3)"), db, ctx)),
        ("quantifier elimination", lambda ctx: check_fo_kernels(
            parse_formula("exists y (E(x, y) and y < 6)"), db, ctx)),
        ("transitive closure", lambda ctx: check_datalog_kernels(
            transitive_closure_program(), db, ctx)),
        # regression: _complement charges the guard per input tuple and
        # early-exits, so its accounting used to depend on tuple order —
        # which shard merges permute.  This formula's final complement
        # sees a merged (reordered) relation and diverged by one
        # tuples_materialized at workers=4 before _complement pinned a
        # canonical iteration order.
        ("order-sensitive complement accounting", lambda ctx: check_fo_kernels(
            parse_formula("forall x (0 < v and 1 < y and x < 0)"), None, ctx)),
    ]
    return cases


def main() -> int:
    ran = 0
    recovered = 0
    for strategy in STRATEGIES:
        for workers in WORKER_COUNTS:
            ctx = make_context(workers, strategy)
            try:
                for label, runner in _corpus():
                    runner(ctx)
                    ran += 1
            finally:
                recovered += ctx.retries + ctx.quarantined + ctx.pool_restarts
                ctx.close()
    mode = "chaos" if CHAOS else "clean"
    print(f"oracle[{mode}]: {ran} workload runs agreed with the serial "
          f"reference (strategies={STRATEGIES}, workers={WORKER_COUNTS}, "
          f"kernels={KERNELS})")
    if CHAOS:
        # the schedule must have actually hurt something: a chaos run
        # with zero recoveries means the harness never fired
        assert recovered > 0, "chaos mode injected no recoverable failures"
        print(f"oracle[chaos]: {recovered} recovery action(s) absorbed "
              f"with byte-identical results and guard parity")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
