"""Hypothesis differential suite: serial vs parallel on random inputs.

Random FO formulas and random Datalog programs are evaluated under the
serial reference and under the parallel backend for every point of the
matrix {hash, cell} x {1, 2, 4} workers, asserting semantic
equivalence and identical guard-counter totals (see ``oracle.py``).

Across the matrix this generates well over 200 differential cases per
run under the default Hypothesis profile.  The pool kind follows
``REPRO_DIFF_POOL`` (default ``thread``; the CI differential job sets
``process``).
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.database import Database
from repro.core.relation import Relation
from repro.datalog.engine import evaluate_program
from repro.datalog.seminaive import evaluate_seminaive
from repro.queries.library import transitive_closure_program

from tests.parallel.oracle import (
    STRATEGIES,
    WORKER_COUNTS,
    check_datalog,
    check_fo,
    make_context,
)
from tests.strategies import formulas

MATRIX = [
    (strategy, workers) for strategy in STRATEGIES for workers in WORKER_COUNTS
]

#: one context per matrix point, shared across examples (pool startup,
#: especially for processes, would otherwise dominate the suite)
_CONTEXTS = {}


def _context(strategy, workers):
    key = (strategy, workers)
    if key not in _CONTEXTS:
        _CONTEXTS[key] = make_context(workers, strategy)
    return _CONTEXTS[key]


@pytest.fixture(scope="module", autouse=True)
def _close_contexts():
    yield
    while _CONTEXTS:
        _CONTEXTS.popitem()[1].close()


@st.composite
def small_digraphs(draw, max_nodes=5):
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    edges = set()
    for a in range(n):
        for b in range(n):
            if a != b and draw(st.booleans()):
                edges.add((a, b))
    return frozenset(edges)


def _edge_db(edges) -> Database:
    return Database({"E": Relation.from_points(("x", "y"), sorted(edges))})


@pytest.mark.parametrize("strategy,workers", MATRIX)
class TestDifferential:
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(formula=formulas())
    def test_fo_formulas(self, strategy, workers, formula):
        check_fo(formula, ctx=_context(strategy, workers))

    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(edges=small_digraphs())
    def test_datalog_naive(self, strategy, workers, edges):
        check_datalog(
            transitive_closure_program(),
            _edge_db(edges),
            ctx=_context(strategy, workers),
            engine=evaluate_program,
        )

    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(edges=small_digraphs())
    def test_datalog_seminaive(self, strategy, workers, edges):
        check_datalog(
            transitive_closure_program(),
            _edge_db(edges),
            ctx=_context(strategy, workers),
            engine=evaluate_seminaive,
        )
