"""Cross-process trace stitching: worker telemetry in the parent trace.

The tentpole contract: a ``--parallel`` run under a tracer produces one
valid ``repro.trace/1`` document containing worker-side spans (with
``pid``/``shard``/``attempt`` attributes) for every dispatched shard —
including retried and quarantined ones — plus merged worker metrics and
replayed worker log records.  These tests pin the stitching mechanics
(:mod:`repro.obs.stitch`), the capture plumbing through the resilient
dispatch loop, and the satellite bugfix that ``--stats`` after
``--parallel`` no longer reports parent-only kernel activity.
"""

from __future__ import annotations

import contextlib
import os

import pytest

from repro.core.relation import Relation
from repro.obs import (
    CollectingSink,
    Tracer,
    snapshot_telemetry,
    stitch_telemetry,
    trace_document,
    validate_trace,
)
from repro.obs.log import log_event
from repro.parallel import ExecutionContext, ResiliencePolicy
from repro.runtime.faults import FaultRegistry, TransientEvaluationError


def _rel(n=40):
    return Relation.from_points(
        ("x", "y"), [(i, (i * 7 + 3) % n) for i in range(n)]
    )


def _two_hop(r):
    return r.join(r.rename({"x": "y", "y": "z"})).project(("x", "z"))


def _double(payload):
    return payload * 2


def _exhaust(registry: FaultRegistry, site: str, hits: int) -> None:
    """Burn the parent-side fault budget (see test_resilience.py)."""
    with registry:
        for _ in range(hits):
            with contextlib.suppress(Exception):
                registry.fire(site)


def _worker_spans(tracer):
    return [s for s in tracer.spans if s.name.startswith("worker.")]


# -------------------------------------------------------- end-to-end capture


class TestCapturedDispatch:
    def test_thread_pool_worker_spans_stitched_per_shard(self):
        tracer = Tracer()
        ctx = ExecutionContext(workers=2, pool="thread")
        try:
            with tracer, ctx:
                with tracer.span("query"):
                    out = _two_hop(_rel())
        finally:
            ctx.close()
        assert len(out.tuples) == 40
        workers = _worker_spans(tracer)
        # join + project each dispatch 2 shards
        assert len(workers) >= 4
        shards = {s.attrs["shard"] for s in workers}
        assert shards == {0, 1}
        assert all(s.attrs["attempt"] == 1 for s in workers)
        assert all(s.attrs["pid"] == os.getpid() for s in workers)
        # every worker span hangs under a parallel.<op>.dispatch span
        by_id = {s.span_id: s for s in tracer.spans}
        for s in workers:
            assert by_id[s.parent_id].name.endswith(".dispatch")
        validate_trace(trace_document(tracer))
        assert tracer.metrics.counter("parallel.stitched_shards") >= 4
        assert tracer.metrics.counter("parallel.stitched_spans") >= 4

    def test_process_pool_spans_carry_worker_pids(self):
        tracer = Tracer()
        ctx = ExecutionContext(workers=2, pool="process")
        try:
            with tracer, ctx:
                with tracer.span("query"):
                    _two_hop(_rel())
        finally:
            ctx.close()
        workers = _worker_spans(tracer)
        assert workers
        pids = {s.attrs["pid"] for s in workers}
        assert os.getpid() not in pids
        validate_trace(trace_document(tracer))
        # cross-process kernel deltas were attributed to the ledger
        assert any(
            r.parallel and (r.cache_hits or r.cache_misses)
            for r in tracer.ledger
        )

    def test_capture_off_switch_suppresses_worker_telemetry(self):
        tracer = Tracer()
        ctx = ExecutionContext(workers=2, pool="thread", capture=False)
        try:
            with tracer, ctx:
                with tracer.span("query"):
                    _two_hop(_rel())
        finally:
            ctx.close()
        assert not _worker_spans(tracer)
        assert tracer.metrics.counter("parallel.stitched_shards") == 0
        # the ledger still records the dispatch shape, just no worker view
        assert any(r.parallel for r in tracer.ledger)

    def test_untraced_run_never_captures(self):
        ctx = ExecutionContext(workers=2, pool="thread")
        try:
            with ctx:
                out = _two_hop(_rel())
        finally:
            ctx.close()
        assert len(out.tuples) == 40
        assert ctx.last_report is not None
        assert ctx.last_report.worker_cache_hits == 0


# ------------------------------------------------ kernel-counter parity (bug)


class TestKernelCounterParity:
    def test_parallel_stats_see_worker_kernel_activity(self):
        """The satellite bugfix: before stitching, a process-pool run's
        tracer showed only the parent's (near-zero) ``kernel.*`` deltas;
        the work — and its cache traffic — happened in the workers."""
        serial = Tracer()
        with serial:
            with serial.span("query"):
                _two_hop(_rel())
        parallel = Tracer()
        ctx = ExecutionContext(workers=2, pool="process")
        try:
            with parallel, ctx:
                with parallel.span("query"):
                    _two_hop(_rel())
        finally:
            ctx.close()

        def lookups(tracer):
            m = tracer.metrics
            return (
                m.counter("kernel.cache.hits")
                + m.counter("kernel.cache.misses")
            )

        assert lookups(serial) > 0
        assert lookups(parallel) > 0
        # hits vs misses shift with process-wide cache warmth, but the
        # lookup *totals* must be comparable: same pairs tested, just
        # partitioned across processes
        ratio = lookups(parallel) / lookups(serial)
        assert 0.5 <= ratio <= 2.5, ratio


# ------------------------------------------------- retries and quarantine


class TestResilientStitching:
    SITE = "worker._double"

    def test_retried_shard_stitches_with_attempt_two(self):
        registry = FaultRegistry(seed=5)
        registry.inject(
            self.SITE, error=TransientEvaluationError("flaky"), times=1
        )
        tracer = Tracer()
        ctx = ExecutionContext(
            workers=1, pool="thread",
            resilience=ResiliencePolicy(max_retries=2, backoff_base=0.001),
        )
        try:
            with registry, tracer:
                with tracer.span("query"):
                    out = ctx.run_shards(_double, [4])
        finally:
            ctx.close()
        assert out == [8]
        assert ctx.retries == 1
        workers = _worker_spans(tracer)
        assert len(workers) == 1  # the failed attempt ships no telemetry
        assert workers[0].attrs["attempt"] == 2
        assert "quarantined" not in workers[0].attrs
        validate_trace(trace_document(tracer))

    def test_quarantined_rerun_stitches_with_flag(self):
        registry = FaultRegistry(seed=5)
        registry.inject(
            self.SITE, error=TransientEvaluationError("poisoned"), times=3
        )
        _exhaust(registry, self.SITE, 3)  # quarantine's ambient budget
        tracer = Tracer()
        ctx = ExecutionContext(
            workers=1, pool="thread",
            resilience=ResiliencePolicy(max_retries=2, backoff_base=0.001),
        )
        try:
            with registry, tracer:
                with tracer.span("query"):
                    out = ctx.run_shards(_double, [4])
        finally:
            ctx.close()
        assert out == [8]
        assert ctx.quarantined == 1
        workers = _worker_spans(tracer)
        assert len(workers) == 1
        assert workers[0].attrs["quarantined"] is True
        # initial dispatch + 2 retries failed; quarantine is attempt 4
        assert workers[0].attrs["attempt"] == 4
        validate_trace(trace_document(tracer))

    def test_chaos_run_produces_valid_stitched_trace(self):
        """The CI chaos job's assertion: retried/quarantined shards under
        probabilistic faults still stitch into a valid document."""
        registry = FaultRegistry(seed=11)
        registry.inject(
            "worker.join_shard",
            error=TransientEvaluationError("chaos"),
            probability=0.2,
            times=50,
        )
        _exhaust(registry, "worker.join_shard", 50)
        tracer = Tracer()
        ctx = ExecutionContext(
            workers=2, pool="thread",
            resilience=ResiliencePolicy(max_retries=3, backoff_base=0.001),
        )
        try:
            with registry, tracer, ctx:
                with tracer.span("query"):
                    out = _two_hop(_rel())
        finally:
            ctx.close()
        assert len(out.tuples) == 40
        workers = _worker_spans(tracer)
        join_spans = [s for s in workers if s.name == "worker.join_shard"]
        assert {s.attrs["shard"] for s in join_spans} == {0, 1}
        validate_trace(trace_document(tracer))


# ----------------------------------------------------- stitch unit mechanics


class TestStitchMechanics:
    def _snapshot(self, **overrides):
        worker = Tracer()
        sink = worker.add_sink(CollectingSink())
        with worker:
            with worker.span("worker.unit", pid=os.getpid()):
                log_event("unit.note", level="info", detail=7)
        snapshot = snapshot_telemetry(worker, sink.records)
        snapshot.update(overrides)
        return snapshot

    def test_none_tracer_is_a_noop(self):
        assert stitch_telemetry(None, self._snapshot(), shard=0, attempt=1) == {}

    def test_malformed_snapshot_counts_error_never_raises(self):
        tracer = Tracer()
        with tracer:
            with tracer.span("query"):
                delta = stitch_telemetry(
                    tracer, {"spans": 13}, shard=0, attempt=1
                )
        assert delta == {}
        assert tracer.metrics.counter("parallel.stitch_errors") == 1

    def test_same_process_kernel_counters_not_double_counted(self):
        snapshot = self._snapshot(
            counters={"kernel.cache.hits": 9, "custom.work": 2}
        )
        tracer = Tracer()
        with tracer:
            with tracer.span("query"):
                delta = stitch_telemetry(tracer, snapshot, shard=0, attempt=1)
        assert delta == {}  # same pid: already in the parent's baseline
        assert tracer.metrics.counter("custom.work") == 2
        # the parent's own window saw no entailment work, so if the 9
        # had been merged (double-counted) it would show up here
        assert tracer.metrics.counter("kernel.cache.hits") < 9

    def test_cross_process_kernel_delta_returned_and_merged(self):
        snapshot = self._snapshot(
            pid=os.getpid() + 1,
            counters={"kernel.cache.hits": 9, "kernel.cache.misses": 4},
        )
        tracer = Tracer()
        with tracer:
            with tracer.span("query"):
                delta = stitch_telemetry(tracer, snapshot, shard=2, attempt=1)
        assert delta == {"cache.hits": 9, "cache.misses": 4}
        assert tracer.metrics.counter("kernel.cache.hits") >= 9

    def test_log_records_replay_through_parent_sinks(self):
        snapshot = self._snapshot(pid=os.getpid() + 1)
        tracer = Tracer()
        sink = tracer.add_sink(CollectingSink())
        with tracer:
            with tracer.span("query"):
                stitch_telemetry(tracer, snapshot, shard=3, attempt=1)
        replayed = [r for r in sink.records if r["name"] == "unit.note"]
        assert len(replayed) == 1
        record = replayed[0]
        assert record["trace"] == tracer.trace_id
        assert record["attrs"]["worker_pid"] == os.getpid() + 1
        assert record["attrs"]["shard"] == 3
        assert record["attrs"]["detail"] == 7

    def test_clock_shift_clamps_into_dispatch_span(self):
        # worker clocks are arbitrary offsets; the graft must land the
        # spans inside the open parent span whatever the worker epoch
        snapshot = self._snapshot()
        snapshot["spans"] = [
            (1, None, "worker.unit", 1e6, 1e6 + 0.5, {}),
            (2, 1, "worker.inner", 1e6 + 0.1, 1e6 + 0.2, {}),
        ]
        tracer = Tracer()
        with tracer:
            with tracer.span("query"):
                stitch_telemetry(tracer, snapshot, shard=0, attempt=1)
        validate_trace(trace_document(tracer))
        workers = _worker_spans(tracer)
        parent = next(s for s in tracer.spans if s.name == "query")
        assert all(s.start >= parent.start for s in workers)
        # the child kept its remapped parent, not the graft parent
        inner = next(s for s in workers if s.name == "worker.inner")
        outer = next(s for s in workers if s.name == "worker.unit")
        assert inner.parent_id == outer.span_id

    def test_span_cap_respected_while_stitching(self):
        snapshot = self._snapshot()
        snapshot["spans"] = [
            (i, None, f"worker.s{i}", 0.0, 0.1, {}) for i in range(10)
        ]
        tracer = Tracer(max_spans=4)
        with tracer:
            with tracer.span("query"):
                stitch_telemetry(tracer, snapshot, shard=0, attempt=1)
        assert len(tracer.spans) <= 4
        assert tracer.dropped_spans >= 6
        validate_trace(trace_document(tracer))
