"""Unit tests for the execution context, pool handling, and metrics.

The differential suite checks *what* the parallel backend computes;
these tests check *how* it behaves as a component: construction-time
validation, activation scoping (including the owner-pid recursion
guard), graceful degradation from a broken process pool to threads,
the ``parallel.*`` metric stream, and the CLI flags end to end.
"""

from __future__ import annotations

import contextlib
import io
import os
import pickle

import pytest

from repro.cli import main as cli_main
from repro.core.database import Database
from repro.core.gtuple import GTuple
from repro.core.relation import Relation
from repro.core.terms import Const, Var
from repro.encoding.standard import encode_database
from repro.obs import Tracer
from repro.parallel import ExecutionContext, active_execution_context
from repro.parallel.context import POOL_KINDS, SHARD_STRATEGIES


# ------------------------------------------------------------- construction


class TestConstruction:
    def test_rejects_unknown_strategy(self):
        with pytest.raises(ValueError, match="shard_strategy"):
            ExecutionContext(workers=2, shard_strategy="modulo")

    def test_rejects_unknown_pool(self):
        with pytest.raises(ValueError, match="pool"):
            ExecutionContext(workers=2, pool="greenlet")

    def test_rejects_nonpositive_workers(self):
        with pytest.raises(ValueError, match="workers"):
            ExecutionContext(workers=0)

    def test_auto_pool_resolution(self):
        assert ExecutionContext(workers=1).pool_kind == "thread"
        assert ExecutionContext(workers=2).pool_kind == "process"
        assert ExecutionContext(workers=2, pool="thread").pool_kind == "thread"

    def test_constants_exported(self):
        assert SHARD_STRATEGIES == ("hash", "cell")
        assert POOL_KINDS == ("auto", "process", "thread")


# --------------------------------------------------------------- activation


class TestActivation:
    def test_active_only_inside_with(self):
        ctx = ExecutionContext(workers=1, pool="thread")
        assert active_execution_context() is None
        with ctx:
            assert active_execution_context() is ctx
            with ctx:  # re-entrant
                assert active_execution_context() is ctx
            assert active_execution_context() is ctx
        assert active_execution_context() is None
        ctx.close()

    def test_closed_context_is_invisible(self):
        ctx = ExecutionContext(workers=1, pool="thread")
        with ctx:
            ctx.close()
            assert active_execution_context() is None

    def test_foreign_pid_context_is_invisible(self):
        ctx = ExecutionContext(workers=1, pool="thread")
        with ctx:
            ctx._owner_pid = os.getpid() + 1  # simulate a forked worker
            assert active_execution_context() is None
            ctx._owner_pid = os.getpid()
        ctx.close()

    def test_eligibility_threshold(self):
        ctx = ExecutionContext(workers=2, pool="thread", min_tuples=8)
        assert not ctx.eligible(7)
        assert ctx.eligible(8)
        ctx.close()

    def test_closed_context_refuses_work(self):
        ctx = ExecutionContext(workers=1, pool="thread")
        ctx.close()
        with pytest.raises(RuntimeError):
            ctx.run_shards(str, [1])


# ------------------------------------------------------------ pool fallback


class TestPoolFallback:
    def test_unpicklable_payload_degrades_to_threads(self):
        ctx = ExecutionContext(workers=2, pool="process")
        try:
            # a lambda cannot cross a process boundary; the batch must
            # complete on threads and the degradation must be counted
            out = ctx.run_shards(lambda p: p * 2, [1, 2, 3])
            assert out == [2, 4, 6]
            assert ctx.pool_kind == "thread"
            assert ctx.fallbacks == 1
            assert ctx.stats()["fallbacks"] == 1
        finally:
            ctx.close()

    def test_process_pool_runs_picklable_work(self):
        ctx = ExecutionContext(workers=2, pool="process")
        try:
            assert ctx.run_shards(len, [[1], [1, 2]]) == [1, 2]
            assert ctx.fallbacks == 0
            assert ctx.batches == 1
        finally:
            ctx.close()

    def test_empty_batch_is_free(self):
        ctx = ExecutionContext(workers=2, pool="process")
        try:
            assert ctx.run_shards(len, []) == []
            assert ctx.batches == 0
        finally:
            ctx.close()


# -------------------------------------------------------------- picklability


class TestPicklability:
    def test_terms_and_atoms_round_trip(self):
        from repro.core.atoms import lt

        v, c = Var("x"), Const(3)
        a = lt(v, c)
        assert pickle.loads(pickle.dumps(v)) == v
        assert pickle.loads(pickle.dumps(c)) == c
        assert pickle.loads(pickle.dumps(a)) == a

    def test_gtuple_round_trip_reinterns(self):
        r = Relation.from_points(("x", "y"), [(0, 1), (1, 2)])
        for t in r.tuples:
            clone = pickle.loads(pickle.dumps(t))
            assert clone is t  # canonical interning in this process

    def test_relation_survives_worker_round_trip(self):
        r = Relation.from_points(("x", "y"), [(i, i + 1) for i in range(6)])
        ctx = ExecutionContext(workers=2, pool="process")
        try:
            back = ctx.run_shards(_identity_tuples, [tuple(r.tuples)])[0]
            assert list(back) == list(r.tuples)
            assert ctx.fallbacks == 0
        finally:
            ctx.close()


def _identity_tuples(tuples):
    # module-level so the process pool can pickle it by reference
    assert all(isinstance(t, GTuple) for t in tuples)
    return tuples


# ------------------------------------------------------------------ metrics


class TestMetrics:
    def test_parallel_metrics_emitted(self):
        e = Relation.from_points(("x", "y"), [(i, i + 1) for i in range(10)])
        ctx = ExecutionContext(workers=2, pool="thread", min_tuples=2)
        tracer = Tracer()
        try:
            with tracer, ctx:
                e.join(e.rename({"x": "y", "y": "z"})).project(("x", "z"))
        finally:
            ctx.close()
        counters = tracer.metrics.counters
        histograms = tracer.metrics.histograms
        assert counters["parallel.join.calls"] >= 1
        assert counters["parallel.project.calls"] >= 1
        assert "parallel.shards" in histograms
        assert "parallel.skew" in histograms
        assert "parallel.worker_seconds" in histograms
        assert "parallel.utilization" in histograms

    def test_no_parallel_metrics_without_context(self):
        e = Relation.from_points(("x", "y"), [(i, i + 1) for i in range(10)])
        tracer = Tracer()
        with tracer:
            e.join(e.rename({"x": "y", "y": "z"}))
        assert not any(k.startswith("parallel.") for k in tracer.metrics.counters)


# ---------------------------------------------------------------------- CLI


@pytest.fixture()
def workload(tmp_path):
    db = Database(
        {"E": Relation.from_points(("x", "y"), [(i, i + 1) for i in range(9)])}
    )
    db_path = tmp_path / "g.cdb"
    db_path.write_text(encode_database(db), encoding="utf-8")
    dl = tmp_path / "tc.dl"
    dl.write_text(
        "tc(x, y) :- E(x, y).\ntc(x, z) :- tc(x, y), E(y, z).\n", encoding="utf-8"
    )
    return str(db_path), str(dl)


def _run_cli(argv):
    out = io.StringIO()
    with contextlib.redirect_stdout(out):
        code = cli_main(argv)
    return code, out.getvalue()


class TestCli:
    def test_query_parallel_matches_serial(self, workload):
        db, _ = workload
        argv = ["query", db, "--raw", "exists y (E(x, y) and E(y, z))"]
        code_s, out_s = _run_cli(argv)
        code_p, out_p = _run_cli(
            argv + ["--parallel", "--workers", "2", "--shard-strategy", "cell"]
        )
        assert code_s == code_p == 0
        # shard concatenation may reorder the printed tuples
        assert sorted(out_s.splitlines()) == sorted(out_p.splitlines())

    def test_datalog_parallel_matches_serial(self, workload):
        db, dl = workload
        argv = ["datalog", db, dl, "--show", "tc"]
        code_s, out_s = _run_cli(argv)
        code_p, out_p = _run_cli(argv + ["--parallel", "--workers", "2"])
        assert code_s == code_p == 0
        assert sorted(out_s.splitlines()) == sorted(out_p.splitlines())

    def test_explain_accepts_parallel_flags(self, workload):
        db, dl = workload
        code, out = _run_cli(
            ["explain", db, dl, "--parallel", "--workers", "2"]
        )
        assert code == 0
        assert out.strip()

    def test_rejects_bad_strategy(self, workload):
        db, _ = workload
        with pytest.raises(SystemExit):
            _run_cli(
                ["query", db, "E(x, y)", "--parallel",
                 "--shard-strategy", "modulo"]
            )
