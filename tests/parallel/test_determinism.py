"""Regression tests for iteration-order nondeterminism.

Two sources of nondeterminism were fixed alongside the parallel
backend, because sharding makes assembly order an accident of the
partition:

* ``_absorb`` broke mutual-subsumption ties by list position, so the
  surviving representative of an equivalence class depended on input
  order.  The tie-break now keeps the tuple with the smallest canonical
  rendering, which is a property of the tuple, not of the list.
* ``_complement`` iterated a frozenset of atoms directly; frozenset
  iteration order follows the (per-process, salted) hash, so the
  complement's syntactic representation varied across
  ``PYTHONHASHSEED`` values.  It now iterates atoms in sorted order.

The hash-seed test runs the same pipeline in subprocesses under
different ``PYTHONHASHSEED`` values and asserts byte-identical output.
"""

from __future__ import annotations

import itertools
import os
import subprocess
import sys

import pytest

from repro.core.relation import _absorb_survivors

# ------------------------------------------------- absorb tie-break (stub theory)


class StubTheory:
    """Not a DenseOrderTheory: forces the entailment-only subsume path."""


class StubTuple:
    """Minimal generalized tuple where every tuple entails everything,
    so every pair is mutually subsuming (one equivalence class)."""

    theory = StubTheory()

    def __init__(self, *atoms):
        self.atoms = frozenset(atoms)

    def entails(self, atom):
        return True

    def __repr__(self):
        return f"StubTuple({sorted(self.atoms)})"


def test_mutual_subsumption_keeps_smallest_rendering():
    tuples = [StubTuple("b<y"), StubTuple("a<x"), StubTuple("c<z"), StubTuple("d<u")]
    for perm in itertools.permutations(tuples):
        perm = list(perm)
        kept = _absorb_survivors(perm, 0, len(perm))
        assert len(kept) == 1
        assert perm[kept[0]].atoms == frozenset(["a<x"]), (
            f"survivor depends on input order: kept {perm[kept[0]]!r} "
            f"from {perm!r}"
        )


def test_survival_is_positional_only_for_equal_keys():
    # equal renderings fall back to list position: first one wins, and
    # that is fine -- equal keys mean syntactically identical atom sets,
    # which dedup upstream normally removes
    tuples = [StubTuple("a<x"), StubTuple("a<x")]
    assert _absorb_survivors(tuples, 0, 2) == [0]


# ---------------------------------------------------------- hash-seed pinning

_PIPELINE = """
from repro.core.relation import Relation

r = Relation.from_points(("x", "y"), [(0, 1), (1, 2), (2, 3), (3, 4), (0, 3)])
c = r.complement().simplify()
print(c.schema)
print([[str(a) for a in sorted(t.atoms, key=str)] for t in c.tuples])

wide = r.join(r.rename({"x": "y", "y": "z"}))
print([[str(a) for a in sorted(t.atoms, key=str)] for t in wide.project(("x", "z")).tuples])
"""


def _run_pipeline(seed: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = seed
    src = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir, "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    proc = subprocess.run(
        [sys.executable, "-c", _PIPELINE],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return proc.stdout


@pytest.mark.slow
def test_representation_is_hashseed_independent():
    outputs = {seed: _run_pipeline(seed) for seed in ("0", "1", "2")}
    reference = outputs["0"]
    assert reference.strip(), "pipeline produced no output"
    for seed, out in outputs.items():
        assert out == reference, (
            f"PYTHONHASHSEED={seed} produced a different representation:\n"
            f"{out}\nvs\n{reference}"
        )
