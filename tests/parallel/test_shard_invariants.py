"""Metamorphic shard/merge invariants.

The parallel backend rests on one algebraic fact: a generalized
relation is the union of its generalized tuples, so *any* partition of
the tuple set evaluates correctly shard-by-shard for tuple-local
kernels.  These tests pin the metamorphic consequences directly,
without an oracle formula in the loop:

* ``shard_indices`` is a true partition (every index exactly once,
  order preserved inside a shard) for both strategies and any count;
* shard -> evaluate -> merge equals the serial result for ``join``,
  ``project``, and ``simplify`` regardless of shard count, strategy,
  or input tuple order;
* repartitioning a merged result and merging again is a fixpoint
  (absorption of an absorbed relation changes nothing).
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.relation import Relation
from repro.parallel import ExecutionContext
from repro.parallel.shards import index_ranges, shard_indices, shard_skew, stable_digest

from tests.parallel.oracle import STRATEGIES, WORKER_COUNTS

SETTINGS = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

EDGES = [(i, i + 1) for i in range(10)] + [(0, 5), (3, 9), (7, 2)]


def edge_relation(edges=EDGES):
    return Relation.from_points(("x", "y"), edges)


def tuple_set(relation):
    """Order-insensitive syntactic fingerprint of a relation."""
    return sorted(sorted(str(a) for a in t.atoms) for t in relation.tuples)


@pytest.fixture()
def ctx_factory():
    made = []

    def make(workers, strategy):
        ctx = ExecutionContext(
            workers=workers, shard_strategy=strategy, pool="thread", min_tuples=2
        )
        made.append(ctx)
        return ctx

    yield make
    for ctx in made:
        ctx.close()


# ------------------------------------------------------------- partitioning


class TestShardIndices:
    @SETTINGS
    @given(n=st.integers(min_value=1, max_value=9), strategy=st.sampled_from(STRATEGIES))
    def test_is_a_partition(self, n, strategy):
        tuples = edge_relation().tuples
        shards = shard_indices(tuples, n, strategy)
        flat = [i for shard in shards for i in shard]
        assert sorted(flat) == list(range(len(tuples)))
        assert len(shards) <= n
        assert all(shard for shard in shards)

    @SETTINGS
    @given(n=st.integers(min_value=1, max_value=9), strategy=st.sampled_from(STRATEGIES))
    def test_input_order_kept_within_shards(self, n, strategy):
        shards = shard_indices(edge_relation().tuples, n, strategy)
        for shard in shards:
            assert shard == sorted(shard)

    def test_sharding_is_deterministic(self):
        tuples = edge_relation().tuples
        for strategy in STRATEGIES:
            first = shard_indices(tuples, 4, strategy)
            assert first == shard_indices(tuples, 4, strategy)

    def test_equal_tuples_digest_equally(self):
        a = edge_relation().tuples
        b = edge_relation().tuples
        assert [stable_digest(t) for t in a] == [stable_digest(t) for t in b]

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            shard_indices(edge_relation().tuples, 2, "round-robin")

    @SETTINGS
    @given(
        total=st.integers(min_value=0, max_value=40),
        n=st.integers(min_value=1, max_value=9),
    )
    def test_index_ranges_cover_in_order(self, total, n):
        ranges = index_ranges(total, n)
        flat = [i for r in ranges for i in r]
        assert flat == list(range(total))
        assert len(ranges) <= n

    def test_shard_skew(self):
        assert shard_skew([[1, 2], [3, 4]]) == 1.0
        assert shard_skew([[1, 2, 3], [4]]) == 1.5
        assert shard_skew([]) == 1.0


# ------------------------------------------------- shard -> evaluate -> merge


@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize("workers", WORKER_COUNTS)
class TestMergeEqualsSerial:
    def test_join_set_equal(self, strategy, workers, ctx_factory):
        e = edge_relation()
        serial = e.join(e.rename({"x": "y", "y": "z"}))
        with ctx_factory(workers, strategy):
            parallel = e.join(e.rename({"x": "y", "y": "z"}))
        assert tuple_set(serial) == tuple_set(parallel)
        assert serial.equivalent(parallel)

    def test_project_set_equal(self, strategy, workers, ctx_factory):
        wide = edge_relation().join(edge_relation().rename({"x": "y", "y": "z"}))
        serial = wide.project(("x", "z"))
        with ctx_factory(workers, strategy):
            parallel = wide.project(("x", "z"))
        assert tuple_set(serial) == tuple_set(parallel)
        assert serial.equivalent(parallel)

    def test_simplify_identical(self, strategy, workers, ctx_factory):
        # absorption merges contiguous index ranges in order, so the
        # parallel survivor list is the serial one exactly, not merely
        # set-equal
        noisy = edge_relation().union(edge_relation())
        serial = noisy.simplify()
        with ctx_factory(workers, strategy):
            parallel = noisy.simplify()
        assert [str(t.atoms) for t in serial.tuples] == [
            str(t.atoms) for t in parallel.tuples
        ]

    def test_repartition_of_merge_is_fixpoint(self, strategy, workers, ctx_factory):
        with ctx_factory(workers, strategy):
            once = edge_relation().union(edge_relation()).simplify()
            twice = once.simplify()
        assert [str(t.atoms) for t in once.tuples] == [
            str(t.atoms) for t in twice.tuples
        ]
        assert shard_indices(once.tuples, workers, strategy) == shard_indices(
            twice.tuples, workers, strategy
        )


# --------------------------------------------------------- order invariance


@pytest.mark.parametrize("strategy", STRATEGIES)
class TestTupleOrderInvariance:
    @SETTINGS
    @given(perm=st.permutations(EDGES))
    def test_simplify_pointset_order_invariant(self, strategy, perm):
        reference = edge_relation().simplify()
        with ExecutionContext(
            workers=3, shard_strategy=strategy, pool="thread", min_tuples=2
        ) as ctx:
            try:
                shuffled = Relation.from_points(("x", "y"), perm).simplify()
            finally:
                ctx.close()
        assert tuple_set(reference) == tuple_set(shuffled)

    @SETTINGS
    @given(perm=st.permutations(EDGES))
    def test_project_pointset_order_invariant(self, strategy, perm):
        reference = edge_relation().project(("y",))
        with ExecutionContext(
            workers=3, shard_strategy=strategy, pool="thread", min_tuples=2
        ) as ctx:
            try:
                shuffled = Relation.from_points(("x", "y"), perm).project(("y",))
            finally:
                ctx.close()
        assert reference.equivalent(shuffled)
