"""End-to-end tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.core.atoms import le
from repro.core.database import Database
from repro.core.relation import Relation
from repro.core.theory import DENSE_ORDER
from repro.encoding.standard import encode_database


@pytest.fixture
def db_file(tmp_path):
    db = Database()
    db["T"] = Relation.from_atoms(
        ("x", "y"), [[le("x", "y"), le(0, "x"), le("y", 10)]], DENSE_ORDER
    )
    db["e"] = Relation.from_points(("x", "y"), [(1, 2), (2, 3)])
    path = tmp_path / "db.cdb"
    path.write_text(encode_database(db), encoding="utf-8")
    return str(path)


class TestInfo:
    def test_lists_relations(self, db_file, capsys):
        assert main(["info", db_file]) == 0
        out = capsys.readouterr().out
        assert "T/2" in out
        assert "e/2" in out

    def test_missing_file(self, capsys):
        assert main(["info", "/nonexistent.cdb"]) == 1
        assert "error" in capsys.readouterr().err


class TestQuery:
    def test_unary_result_as_intervals(self, db_file, capsys):
        assert main(["query", db_file, "exists y (T(x, y) and y < 5)"]) == 0
        out = capsys.readouterr().out
        assert "[0, 5)" in out

    def test_boolean_result(self, db_file, capsys):
        assert main(["query", db_file, "exists x, y T(x, y)"]) == 0
        assert capsys.readouterr().out.strip() == "true"

    def test_false_sentence(self, db_file, capsys):
        assert main(["query", db_file, "exists x (T(x, x) and x > 100)"]) == 0
        assert capsys.readouterr().out.strip() == "false"

    def test_raw_output(self, db_file, capsys):
        assert main(["query", db_file, "--raw", "T(x, x)"]) == 0
        assert "(x)" in capsys.readouterr().out

    def test_parse_error_reported(self, db_file, capsys):
        assert main(["query", db_file, "exists ("]) == 1
        assert "error" in capsys.readouterr().err


class TestDatalog:
    def test_program_run(self, db_file, tmp_path, capsys):
        program = tmp_path / "tc.dl"
        program.write_text(
            "tc(x, y) :- e(x, y).\ntc(x, z) :- tc(x, y), e(y, z).\n",
            encoding="utf-8",
        )
        assert main(["datalog", db_file, str(program), "--show", "tc"]) == 0
        out = capsys.readouterr().out
        assert "fixpoint" in out
        assert "-- tc" in out

    def test_unknown_edb_reported(self, db_file, tmp_path, capsys):
        program = tmp_path / "bad.dl"
        program.write_text("h(x) :- nothere(x).\n", encoding="utf-8")
        assert main(["datalog", db_file, str(program)]) == 1


class TestReencode:
    def test_roundtrip_idempotent(self, db_file, capsys):
        assert main(["reencode", db_file]) == 0
        first = capsys.readouterr().out
        from repro.encoding.standard import decode_database

        again = encode_database(decode_database(first))
        assert again == first


class TestExplain:
    def test_plan_dump(self, db_file, capsys):
        assert main(["query", db_file, "--explain",
                     "exists y (T(x, y) and y < 5)"]) == 0
        out = capsys.readouterr().out
        assert "Project" in out
        assert "Scan T" in out
