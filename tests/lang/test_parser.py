"""Unit tests for the FO / Datalog parsers."""

from fractions import Fraction

import pytest

from repro.core.atoms import eq, le, lt, ne
from repro.core.database import Database
from repro.core.evaluator import evaluate, evaluate_boolean
from repro.core.formula import (
    And,
    Constraint,
    Exists,
    ForAll,
    Not,
    Or,
    RelationAtom,
    constraint,
    exists,
    rel,
)
from repro.core.relation import Relation
from repro.core.terms import Const, Var
from repro.core.theory import DENSE_ORDER
from repro.datalog.engine import evaluate_program
from repro.errors import DatalogError, ParseError
from repro.lang import parse_formula, parse_program, parse_term


class TestTerms:
    def test_variable(self):
        assert parse_term("x") == Var("x")

    def test_integer(self):
        assert parse_term("5") == Const(Fraction(5))

    def test_rational(self):
        assert parse_term("22/7") == Const(Fraction(22, 7))

    def test_negative(self):
        assert parse_term("-3") == Const(Fraction(-3))

    def test_trailing_junk_rejected(self):
        with pytest.raises(ParseError):
            parse_term("x y")


class TestFormulaStructure:
    def test_atom(self):
        assert parse_formula("x < y") == constraint(lt("x", "y"))

    def test_all_operators(self):
        assert parse_formula("x <= 1") == constraint(le("x", 1))
        assert parse_formula("x = y") == constraint(eq("x", "y"))
        assert parse_formula("x != 0") == constraint(ne("x", 0))
        assert parse_formula("x > y") == constraint(lt("y", "x"))

    def test_relation_atom(self):
        assert parse_formula("R(x, 3)") == RelationAtom(
            "R", (Var("x"), Const(Fraction(3)))
        )

    def test_zero_ary_relation(self):
        assert parse_formula("Flag()") == RelationAtom("Flag", ())

    def test_precedence_and_over_or(self):
        f = parse_formula("a < 1 or b < 1 and c < 1")
        assert isinstance(f, Or)
        assert isinstance(f.subs[1], And)

    def test_not_binds_tight(self):
        f = parse_formula("not R(x) and S(x)")
        assert isinstance(f, And)
        assert isinstance(f.subs[0], Not)

    def test_quantifier_multi_vars(self):
        f = parse_formula("exists x, y (x < y)")
        assert isinstance(f, Exists)
        assert f.variables == (Var("x"), Var("y"))

    def test_quantifier_scope_is_next_unary(self):
        f = parse_formula("exists x R(x) and S(y)")
        # exists binds only R(x); conjunction at top level
        assert isinstance(f, And)
        assert isinstance(f.subs[0], Exists)

    def test_implies_right_associative(self):
        f = parse_formula("a < 1 implies b < 1 implies c < 1")
        # a -> (b -> c)
        assert isinstance(f, Or)

    def test_parentheses(self):
        f = parse_formula("(a < 1 or b < 1) and c < 1")
        assert isinstance(f, And)

    def test_true_false(self):
        from repro.core.formula import FALSE, TRUE

        assert parse_formula("true") is TRUE
        assert parse_formula("false") is FALSE

    def test_errors(self):
        for bad in ("exists (x)", "R(x", "x <", "and x < 1", "x < 1 extra"):
            with pytest.raises(ParseError):
                parse_formula(bad)


class TestFormulaSemantics:
    def test_parsed_equals_constructed(self):
        parsed = parse_formula("exists y (T(x, y) and y < 5)")
        built = exists("y", rel("T", "x", "y") & constraint(lt("y", 5)))
        db = Database()
        db["T"] = Relation.from_atoms(
            ("x", "y"), [[le("x", "y"), le(0, "x"), le("y", 10)]], DENSE_ORDER
        )
        assert evaluate(parsed, db).equivalent(evaluate(built, db))

    def test_density_sentence(self):
        f = parse_formula("forall a, b (a < b implies exists m (a < m and m < b))")
        assert evaluate_boolean(f)


class TestProgramParsing:
    def test_transitive_closure(self):
        p = parse_program(
            """
            tc(x, y) :- e(x, y).
            tc(x, z) :- tc(x, y), e(y, z).
            """
        )
        assert p.edb == {"e": 2}
        assert p.idb == {"tc": 2}
        db = Database()
        db["e"] = Relation.from_points(("x", "y"), [(1, 2), (2, 3)])
        result = evaluate_program(p, db)
        assert result["tc"].contains_point([1, 3])

    def test_negation_and_constraints(self):
        p = parse_program(
            """
            stage1().
            stage2() :- stage1().
            big(x) :- s(x), 10 < x.
            small(x) :- s(x), not big(x), stage2().
            """
        )
        db = Database()
        db["s"] = Relation.from_points(("x",), [(5,), (15,)])
        result = evaluate_program(p, db)
        assert result["small"].contains_point([5])
        assert not result["small"].contains_point([15])

    def test_facts(self):
        p = parse_program("flag().")
        assert p.idb == {"flag": 0}

    def test_comments(self):
        p = parse_program(
            """
            % closure
            tc(x, y) :- e(x, y).  % base
            """
        )
        assert len(p.rules) == 1

    def test_arity_conflict_rejected(self):
        with pytest.raises((ParseError, DatalogError)):
            parse_program("h(x) :- e(x), e(x, y).")

    def test_dangling_not_rejected(self):
        with pytest.raises(ParseError):
            parse_program("h(x) :- not x < 1.")

    def test_missing_dot_rejected(self):
        with pytest.raises(ParseError):
            parse_program("h(x) :- e(x)")
