"""Unit tests for the tokenizer."""

import pytest

from repro.errors import ParseError
from repro.lang.lexer import tokenize


def kinds(text):
    return [(k, t) for k, t, _ in tokenize(text)]


class TestTokens:
    def test_identifiers_and_keywords(self):
        assert kinds("foo and bar") == [
            ("ident", "foo"),
            ("keyword", "and"),
            ("ident", "bar"),
            ("end", ""),
        ]

    def test_numbers(self):
        assert kinds("123")[0] == ("number", "123")
        assert kinds("7/2")[0] == ("number", "7/2")

    def test_negative_numbers_in_context(self):
        toks = kinds("x < -3")
        assert ("number", "-3") in toks

    def test_negative_after_comma(self):
        toks = kinds("R(-1, 2)")
        assert ("number", "-1") in toks

    def test_operators(self):
        assert [t for k, t in kinds("x <= y") if k == "op"] == ["<="]
        assert [t for k, t in kinds("x != y") if k == "op"] == ["!="]
        assert [t for k, t in kinds("x >= y") if k == "op"] == [">="]

    def test_rule_arrow(self):
        assert ("punct", ":-") in kinds("h(x) :- b(x).")

    def test_comments_skipped(self):
        assert kinds("x % ignored\n< 1") == [
            ("ident", "x"),
            ("op", "<"),
            ("number", "1"),
            ("end", ""),
        ]

    def test_junk_rejected(self):
        with pytest.raises(ParseError):
            tokenize("x @ y")

    def test_positions_recorded(self):
        toks = tokenize("ab cd")
        assert toks[0][2] == 0
        assert toks[1][2] == 3
