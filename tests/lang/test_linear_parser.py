"""Tests for the FO+ surface syntax."""

from fractions import Fraction

import pytest

from repro.core.database import Database
from repro.core.evaluator import evaluate, evaluate_boolean
from repro.core.formula import FALSE, TRUE, Constraint, Or
from repro.core.relation import Relation
from repro.errors import ParseError
from repro.lang import parse_linear_expression, parse_linear_formula
from repro.linear.latoms import LinExpr, lin_eq, lin_le
from repro.linear.theory import LINEAR


class TestExpressions:
    def test_single_variable(self):
        assert parse_linear_expression("x") == LinExpr.of_var("x")

    def test_coefficients(self):
        assert parse_linear_expression("2*x") == LinExpr.make({"x": 2})
        assert parse_linear_expression("1/2*x") == LinExpr.make({"x": Fraction(1, 2)})

    def test_sums_and_differences(self):
        e = parse_linear_expression("2*x - y + 3")
        assert e.coefficient("x") == 2
        assert e.coefficient("y") == -1
        assert e.const == 3

    def test_leading_minus(self):
        e = parse_linear_expression("-x + 1")
        assert e.coefficient("x") == -1
        assert e.const == 1

    def test_like_terms_collected(self):
        e = parse_linear_expression("x + x + x")
        assert e.coefficient("x") == 3

    def test_errors(self):
        for bad in ("x +", "* x", "2 * * x", "x y"):
            with pytest.raises(ParseError):
                parse_linear_expression(bad)


class TestAtoms:
    def test_comparison_normalizes(self):
        f = parse_linear_formula("x + y <= 1")
        assert f == Constraint(lin_le({"x": 1, "y": 1}, 1))

    def test_flip_ge(self):
        assert parse_linear_formula("x >= y") == Constraint(lin_le({"y": 1}, {"x": 1}))

    def test_eq(self):
        assert parse_linear_formula("2*x = y") == Constraint(
            lin_eq({"x": 2}, {"y": 1})
        )

    def test_ne_splits(self):
        f = parse_linear_formula("x != y")
        assert isinstance(f, Or)
        assert len(f.subs) == 2

    def test_ground_folds(self):
        assert parse_linear_formula("1 < 2") is TRUE
        assert parse_linear_formula("2 < 1") is FALSE


class TestFormulas:
    @pytest.fixture
    def db(self):
        database = Database(theory=LINEAR)
        database["T"] = Relation.from_atoms(
            ("x", "y"),
            [[lin_le({"x": 1, "y": 1}, 1), lin_le(0, "x"), lin_le(0, "y")]],
            LINEAR,
        )
        return database

    def test_quantified_query(self, db):
        f = parse_linear_formula("exists y (T(x, y) and x + y >= 1/2)")
        out = evaluate(f, db, theory=LINEAR)
        assert out.contains_point([Fraction(1, 4)])
        assert not out.contains_point([2])

    def test_sentence(self, db):
        f = parse_linear_formula("forall x, y (T(x, y) implies x + y <= 1)")
        assert evaluate_boolean(f, db, theory=LINEAR)

    def test_midpoint_textual(self, db):
        db["S"] = Relation.from_points(("x",), [(0,), (4,)], LINEAR)
        f = parse_linear_formula("exists a, b (S(a) and S(b) and a + b = 2*z)")
        out = evaluate(f, db, theory=LINEAR)
        assert out.contains_point([2])
        assert not out.contains_point([1])

    def test_relation_args_are_plain_terms(self, db):
        with pytest.raises(ParseError):
            parse_linear_formula("T(x + 1, y)")
