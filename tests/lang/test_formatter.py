"""Round-trip tests: format -> parse -> same formula."""

import pytest
from hypothesis import given, settings

from repro.core.qe import equivalent
from repro.lang import format_formula, format_program, parse_formula, parse_program
from repro.queries.library import transitive_closure_program
from tests.strategies import formulas


class TestFormulaRoundTrip:
    @pytest.mark.parametrize(
        "text",
        [
            "x < y",
            "x <= 1/2",
            "x != -3",
            "not x < 1",
            "R(x, 3) and S(y)",
            "a < 1 or b < 1 and c < 1",
            "exists x, y (x < y)",
            "forall a (exists b (b < a))",
            "exists x R(x) and S(y)",
            "not (R(x) or S(x))",
            "true",
            "false",
        ],
    )
    def test_parse_format_parse_fixpoint(self, text):
        once = parse_formula(text)
        printed = format_formula(once)
        again = parse_formula(printed)
        assert once == again, f"{text!r} -> {printed!r}"

    @settings(max_examples=150, deadline=None)
    @given(formulas(depth=2))
    def test_random_formulas_round_trip_semantically(self, f):
        """Formatted-and-reparsed formulas denote the same pointsets."""
        printed = format_formula(f)
        reparsed = parse_formula(printed)
        assert equivalent(f, reparsed)

    @settings(max_examples=100, deadline=None)
    @given(formulas(depth=2))
    def test_second_round_trip_is_structural_fixpoint(self, f):
        """After one normalization pass, formatting is stable."""
        once = parse_formula(format_formula(f))
        twice = parse_formula(format_formula(once))
        assert once == twice


class TestProgramRoundTrip:
    def test_transitive_closure(self):
        program = transitive_closure_program()
        printed = format_program(program)
        reparsed = parse_program(printed)
        assert format_program(reparsed) == printed
        assert reparsed.idb == program.idb

    def test_negation_and_constraints(self):
        text = (
            "stage1().\n"
            "stage2() :- stage1().\n"
            "small(x) :- s(x), not big(x), stage2().\n"
            "big(x) :- s(x), 10 < x.\n"
        )
        program = parse_program(text)
        assert format_program(program) == text

    def test_empty_program(self):
        assert format_program(parse_program("")) == ""


class TestLinearRoundTrip:
    @pytest.mark.parametrize(
        "text",
        [
            "x + y <= 1",
            "2*x - y = 1/2",
            "exists y (2*x - y + 1/2 <= 0 and y < 3)",
            "forall x (x + x < 10 implies x < 6)",
        ],
    )
    def test_linear_formula_round_trips(self, text):
        from repro.lang import parse_linear_formula
        from repro.linear.theory import LINEAR

        once = parse_linear_formula(text)
        printed = format_formula(once)
        again = parse_linear_formula(printed)
        from repro.core.qe import equivalent as semantically_equal

        assert semantically_equal(once, again, LINEAR)
