"""The rewritten hot paths against their straight-line references.

``Relation._absorb`` (hash dedup + subsumption pruning) and
``Relation.join`` (pinned-constant partition index) must produce
byte-identical output to the original quadratic algorithms on random
inputs — not just equivalent pointsets, the same tuples in the same
order, so downstream syntactic fixpoint tests see no difference.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.gtuple import GTuple
from repro.core.relation import Relation, _absorb, _join_partition
from repro.core.theory import DENSE_ORDER
from tests.strategies import conjunctions

SCHEMA = ("x", "y", "z", "u", "v")


@st.composite
def gtuples(draw):
    made = GTuple.make(DENSE_ORDER, SCHEMA, draw(conjunctions(max_size=4)))
    if made is None:  # unsatisfiable draw: fall back to the universe
        return GTuple.universe(DENSE_ORDER, SCHEMA)
    return made


def reference_absorb(tuples):
    """The pre-optimization algorithm, verbatim."""
    distinct = []
    for t in tuples:
        if t not in distinct:
            distinct.append(t)

    def subsumes(s, t):
        return all(t.entails(a) for a in s.atoms)

    kept = []
    for i, t in enumerate(distinct):
        absorbed = False
        for j, s in enumerate(distinct):
            if i == j or not subsumes(s, t):
                continue
            if subsumes(t, s) and j > i:
                continue
            absorbed = True
            break
        if not absorbed:
            kept.append(t)
    return kept


def reference_join(left, right):
    """The pre-optimization nested-loop join, verbatim."""
    combined = left.schema + tuple(c for c in right.schema if c not in left.schema)
    out = []
    for a in left.tuples:
        wide_a = a.extend(combined)
        for b in right.tuples:
            merged = wide_a.merge(b.extend(combined).reorder(combined), combined)
            if merged is not None:
                out.append(merged)
    return Relation(left.theory, combined, out)


class TestAbsorbMatchesReference:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(gtuples(), max_size=7))
    def test_same_kept_tuples_in_same_order(self, tuples):
        assert _absorb(list(tuples)) == reference_absorb(tuples)

    def test_universe_fast_path(self):
        u = GTuple.universe(DENSE_ORDER, SCHEMA)
        from repro.core.atoms import lt

        t = GTuple.make(DENSE_ORDER, SCHEMA, [lt("x", "y")])
        assert _absorb([t, u, t]) == reference_absorb([t, u, t]) == [u]


@st.composite
def point_relations(draw, schema):
    """Mostly classical tuples plus some unpinned interval tuples."""
    from repro.core.atoms import le

    points = draw(
        st.lists(
            st.tuples(st.integers(0, 5), st.integers(0, 5)),
            min_size=0,
            max_size=8,
        )
    )
    tuples = [GTuple.point(DENSE_ORDER, schema, p) for p in points]
    for bound in draw(st.lists(st.integers(0, 5), max_size=2)):
        tuples.append(GTuple.make(DENSE_ORDER, schema, [le(schema[0], bound)]))
    return Relation(DENSE_ORDER, schema, tuples)


class TestJoinMatchesReference:
    @settings(max_examples=60, deadline=None)
    @given(point_relations(("x", "y")), point_relations(("y", "z")))
    def test_shared_column_join(self, left, right):
        assert left.join(right).tuples == reference_join(left, right).tuples

    @settings(max_examples=30, deadline=None)
    @given(point_relations(("x", "y")), point_relations(("x", "y")))
    def test_same_schema_join(self, left, right):
        assert left.join(right).tuples == reference_join(left, right).tuples

    @settings(max_examples=20, deadline=None)
    @given(point_relations(("x", "y")), point_relations(("u", "v")))
    def test_cross_product_join(self, left, right):
        assert left.join(right).tuples == reference_join(left, right).tuples

    def test_partition_declines_small_inputs(self):
        small = Relation.from_points(("x", "y"), [(0, 1)])
        assert _join_partition(small, small) is None

    def test_partition_used_on_point_sets(self):
        edges = Relation.from_points(("x", "y"), [(i, i + 1) for i in range(6)])
        other = Relation.from_points(("y", "z"), [(i, i + 2) for i in range(6)])
        partition = _join_partition(edges, other)
        assert partition is not None
        buckets, unpinned, pins = partition
        assert unpinned == ()
        assert all(p is not None for p in pins)


class TestTrustedConstructor:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(gtuples(), max_size=6))
    def test_matches_validating_constructor(self, tuples):
        checked = Relation(DENSE_ORDER, SCHEMA, tuples)
        trusted = Relation._trusted(DENSE_ORDER, SCHEMA, tuples)
        assert trusted.tuples == checked.tuples
        assert trusted.schema == checked.schema
