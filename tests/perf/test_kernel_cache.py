"""The kernel memo cache: LRU mechanics, configuration, eviction under
pressure, and correctness with a tiny capacity."""

import pytest

from repro.core.atoms import le, lt
from repro.core.database import Database
from repro.core.ordergraph import OrderGraph
from repro.core.relation import Relation
from repro.core.theory import DENSE_ORDER
from repro.datalog.engine import evaluate_program
from repro.perf import (
    KernelCache,
    configure_kernel_cache,
    kernel_cache,
    kernel_cache_disabled,
    kernel_counters,
    kernel_stats,
    reset_kernel_cache,
)
from repro.perf.cache import DEFAULT_CAPACITY, KernelEntry
from repro.queries.library import transitive_closure_program


@pytest.fixture(autouse=True)
def _restore_cache():
    """Every test leaves the process-wide cache in its default state."""
    yield
    configure_kernel_cache(capacity=DEFAULT_CAPACITY, enabled=True)
    reset_kernel_cache()


def _entry(*atoms):
    return KernelEntry(OrderGraph(frozenset(atoms)))


class TestKernelCacheMechanics:
    def test_miss_then_hit(self):
        cache = KernelCache(capacity=4)
        key = frozenset([lt("x", "y")])
        assert cache.lookup(key) is None
        entry = _entry(lt("x", "y"))
        cache.store(key, entry)
        assert cache.lookup(key) is entry
        assert (cache.hits, cache.misses) == (1, 1)

    def test_lru_eviction_order(self):
        cache = KernelCache(capacity=2)
        k1, k2, k3 = (frozenset([le("x", i)]) for i in (1, 2, 3))
        cache.store(k1, _entry(le("x", 1)))
        cache.store(k2, _entry(le("x", 2)))
        cache.lookup(k1)  # refresh k1; k2 is now the eviction victim
        cache.store(k3, _entry(le("x", 3)))
        assert cache.lookup(k2) is None
        assert cache.lookup(k1) is not None
        assert cache.evictions == 1

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            KernelCache(capacity=0)
        with pytest.raises(ValueError):
            configure_kernel_cache(capacity=-3)

    def test_configure_shrink_evicts_oldest(self):
        reset_kernel_cache()
        cache = kernel_cache()
        for i in range(6):
            key = frozenset([le("x", i)])
            cache.store(key, _entry(le("x", i)))
        configure_kernel_cache(capacity=2)
        assert len(cache) == 2
        assert cache.evictions >= 4

    def test_entry_memoizes_canonical_including_unsat(self):
        sat = _entry(lt("x", "y"))
        assert sat.canonical() == frozenset([lt("x", "y")])
        assert sat.canonical() is sat.canonical()
        unsat = _entry(lt("x", "y"), lt("y", "x"))
        assert unsat.canonical() is None


class TestDisableAndStats:
    def test_disabled_context_restores_both_layers(self):
        from repro.perf import intern_pool

        cache, pool = kernel_cache(), intern_pool()
        assert cache.enabled and pool.enabled
        with kernel_cache_disabled():
            assert not cache.enabled and not pool.enabled
        assert cache.enabled and pool.enabled

    def test_disabled_path_touches_no_counters(self):
        reset_kernel_cache()
        with kernel_cache_disabled():
            assert DENSE_ORDER.is_satisfiable([lt("x", "y")])
            assert DENSE_ORDER.canonicalize_if_satisfiable([lt("x", "y")])
        counters = kernel_counters()
        assert counters["cache.hits"] == 0
        assert counters["cache.misses"] == 0

    def test_stats_shape(self):
        stats = kernel_stats()
        for key in (
            "cache.hits",
            "cache.misses",
            "cache.evictions",
            "cache.entries",
            "cache.capacity",
            "cache.enabled",
            "intern.reused",
            "intern.interned",
            "intern.live",
            "intern.enabled",
        ):
            assert key in stats

    def test_repeated_kernel_calls_hit(self):
        reset_kernel_cache()
        conj = [lt("x", "y"), le("y", 5)]
        DENSE_ORDER.canonicalize_if_satisfiable(conj)
        before = kernel_counters()["cache.hits"]
        DENSE_ORDER.is_satisfiable(conj)
        DENSE_ORDER.solve(conj)
        DENSE_ORDER.make_entailer(conj)
        assert kernel_counters()["cache.hits"] >= before + 3


class TestTinyCapacityCorrectness:
    def test_eviction_pressure_keeps_results_exact(self):
        """A 4-entry cache thrashes on a TC fixpoint yet must stay exact."""
        edges = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]
        db = Database({"E": Relation.from_points(("x", "y"), edges)})
        program = transitive_closure_program()

        with kernel_cache_disabled():
            baseline = evaluate_program(program, db)["tc"]

        reset_kernel_cache()
        configure_kernel_cache(capacity=4)
        result = evaluate_program(program, db)["tc"]
        cache = kernel_cache()
        assert cache.evictions > 0
        assert len(cache) <= 4
        assert result.equivalent(baseline)
        assert frozenset(result.tuples) == frozenset(baseline.tuples)
