"""The generalized-tuple interning pool: identity, lifetime, disable."""

import gc

import pytest

from repro.core.atoms import eq, le, lt
from repro.core.gtuple import GTuple
from repro.core.theory import DENSE_ORDER
from repro.perf import intern_pool, kernel_cache_disabled, reset_kernel_cache


@pytest.fixture(autouse=True)
def _fresh_pool():
    reset_kernel_cache()
    yield
    reset_kernel_cache()


class TestInterning:
    def test_equal_tuples_are_the_same_object(self):
        a = GTuple.make(DENSE_ORDER, ("x", "y"), [lt("x", "y"), le("x", 3)])
        b = GTuple.make(DENSE_ORDER, ("x", "y"), [le("x", 3), lt("x", "y")])
        assert a is b

    def test_logically_equal_canonical_forms_share_one_instance(self):
        a = GTuple.make(DENSE_ORDER, ("x",), [le("x", 3), le(3, "x")])
        b = GTuple.make(DENSE_ORDER, ("x",), [eq("x", 3)])
        assert a is b

    def test_universe_is_interned(self):
        assert GTuple.universe(DENSE_ORDER, ("x",)) is GTuple.universe(
            DENSE_ORDER, ("x",)
        )

    def test_different_schema_order_distinct(self):
        a = GTuple.make(DENSE_ORDER, ("x", "y"), [lt("x", "y")])
        b = GTuple.make(DENSE_ORDER, ("y", "x"), [lt("x", "y")])
        assert a is not b
        assert a != b

    def test_extend_and_reorder_intern(self):
        t = GTuple.make(DENSE_ORDER, ("x",), [le("x", 1)])
        wide = t.extend(("x", "y"))
        assert t.extend(("x", "y")) is wide
        assert wide.reorder(("y", "x")).reorder(("x", "y")) is wide

    def test_identity_paths_return_self(self):
        t = GTuple.make(DENSE_ORDER, ("x", "y"), [lt("x", "y")])
        assert t.extend(("x", "y")) is t
        assert t.reorder(("x", "y")) is t

    def test_reuse_counter_grows(self):
        pool = intern_pool()
        keep = GTuple.make(DENSE_ORDER, ("x",), [le("x", 1)])
        before = pool.reused
        again = GTuple.make(DENSE_ORDER, ("x",), [le("x", 1)])
        assert again is keep
        assert pool.reused == before + 1

    def test_pool_is_weak(self):
        pool = intern_pool()
        t = GTuple.make(DENSE_ORDER, ("x",), [le("x", 77)])
        live = len(pool)
        del t
        gc.collect()
        assert len(pool) < live

    def test_disabled_pool_allocates_fresh_equal_objects(self):
        with kernel_cache_disabled():
            a = GTuple.make(DENSE_ORDER, ("x",), [le("x", 2)])
            b = GTuple.make(DENSE_ORDER, ("x",), [le("x", 2)])
        assert a is not b
        assert a == b
        assert hash(a) == hash(b)

    def test_interned_and_uninterned_compare_equal(self):
        a = GTuple.make(DENSE_ORDER, ("x",), [le("x", 2)])
        with kernel_cache_disabled():
            b = GTuple.make(DENSE_ORDER, ("x",), [le("x", 2)])
        assert a is not b
        assert a == b
