"""The ``--no-cache`` escape hatch and kernel statistics in the CLI."""

import pytest

from repro.cli import main
from repro.core.database import Database
from repro.core.relation import Relation
from repro.encoding.standard import encode_database
from repro.perf import kernel_cache, reset_kernel_cache

TC_PROGRAM = "tc(x, y) :- e(x, y).\ntc(x, z) :- tc(x, y), e(y, z).\n"


@pytest.fixture
def db_file(tmp_path):
    db = Database()
    db["e"] = Relation.from_points(("x", "y"), [(0, 1), (1, 2), (2, 3)])
    path = tmp_path / "db.cdb"
    path.write_text(encode_database(db), encoding="utf-8")
    return str(path)


@pytest.fixture
def program_file(tmp_path):
    path = tmp_path / "tc.dl"
    path.write_text(TC_PROGRAM, encoding="utf-8")
    return str(path)


class TestNoCacheFlag:
    def test_query_same_output(self, db_file, capsys):
        assert main(["query", db_file, "exists y e(x, y)"]) == 0
        cached = capsys.readouterr().out
        assert main(["query", db_file, "exists y e(x, y)", "--no-cache"]) == 0
        assert capsys.readouterr().out == cached

    def test_datalog_same_output(self, db_file, program_file, capsys):
        assert main(["datalog", db_file, program_file]) == 0
        cached = capsys.readouterr().out
        assert main(["datalog", db_file, program_file, "--no-cache"]) == 0
        assert capsys.readouterr().out == cached

    def test_explain_works_without_cache(self, db_file, program_file, capsys):
        assert main(["explain", db_file, program_file, "--no-cache"]) == 0
        assert "fixpoint after" in capsys.readouterr().out

    def test_cache_reenabled_after_run(self, db_file, capsys):
        assert main(["query", db_file, "e(x, y)", "--no-cache"]) == 0
        assert kernel_cache().enabled


class TestKernelStats:
    def test_stats_include_kernel_tables(self, db_file, program_file, capsys):
        reset_kernel_cache()
        assert main(["datalog", db_file, program_file, "--stats"]) == 0
        captured = capsys.readouterr()
        assert "kernel cache:" in captured.err
        assert "interning:" in captured.err
        assert "kernel cache:" not in captured.out

    def test_stats_mark_disabled_cache(self, db_file, capsys):
        assert main(["query", db_file, "e(x, y)", "--stats", "--no-cache"]) == 0
        assert "(disabled)" in capsys.readouterr().err

    def test_explain_reports_hit_rate(self, db_file, program_file, capsys):
        reset_kernel_cache()
        assert main(["explain", db_file, program_file]) == 0
        out = capsys.readouterr().out
        assert "kernel cache:" in out
        assert "hit rate" in out
