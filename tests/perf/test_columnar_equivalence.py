"""Differential proof: the columnar kernel equals the object kernel.

The bounds matrix (:mod:`repro.perf.columnar`) claims to be a pure
performance substitution for :class:`~repro.core.ordergraph.OrderGraph`.
This suite pins that claim from four directions:

* **kernel verdicts** — satisfiability, entailment, canonical atom
  sets, and solver witnesses agree on random conjunctions, atom by
  atom (not merely up to equivalence);
* **batch kernels** — ``batch_satisfiable`` (the SCC fast path),
  ``batch_implies``, and ``batch_canonical`` agree with per-conjunction
  object-kernel calls;
* **whole engines** — random FO formulas and Datalog fixpoints render
  byte-identically under ``REPRO_KERNEL=object`` vs ``columnar``, with
  equal guard totals and equal kernel cache/intern counters;
* **wire format** — bounds matrices and packed generalized tuples
  round-trip through pickle unchanged, in-process and across a
  *spawned* worker (which re-reads ``REPRO_KERNEL`` from the
  environment rather than inheriting parent memory).
"""

from __future__ import annotations

import pickle
from concurrent.futures import ProcessPoolExecutor
from multiprocessing import get_context

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.atoms import eq, le, lt
from repro.core.database import Database
from repro.core.evaluator import evaluate
from repro.core.gtuple import GTuple
from repro.core.ordergraph import OrderGraph
from repro.core.relation import Relation
from repro.core.terms import Const, Var
from repro.core.theory import DENSE_ORDER
from repro.datalog.engine import evaluate_program
from repro.errors import EvaluationError
from repro.perf import kernel_counters, reset_kernel_cache
from repro.perf.columnar import (
    BoundsMatrix,
    batch_canonical,
    batch_implies,
    batch_satisfiable,
    configure_kernel,
    kernel_backend,
    kernel_backend_context,
    pack_gtuple,
    unpack_gtuple,
)
from repro.queries.library import transitive_closure_program
from repro.runtime.guard import EvaluationGuard
from tests.strategies import conjunctions, formulas, ne_free_atoms


def _fresh(backend):
    """Enter ``backend`` on a clean cache/pool (no cross-leg leakage)."""
    reset_kernel_cache()
    return kernel_backend_context(backend)


# ------------------------------------------------------------ kernel verdicts


class TestKernelVerdictParity:
    @settings(max_examples=120, deadline=None)
    @given(conjunctions(max_size=7))
    def test_sat_canonical_solve(self, conj):
        graph = OrderGraph(conj)
        matrix = BoundsMatrix(conj)
        assert graph.is_satisfiable() == matrix.is_satisfiable()
        if graph.is_satisfiable():
            assert graph.canonical_atoms() == matrix.canonical_atoms()
            assert graph.solve() == matrix.solve()
        else:
            assert matrix.solve() is None

    @settings(max_examples=120, deadline=None)
    @given(conjunctions(max_size=6), st.lists(ne_free_atoms(), max_size=4))
    def test_implies(self, conj, probes):
        graph = OrderGraph(conj)
        matrix = BoundsMatrix(conj)
        for probe in probes:
            assert graph.implies(probe) == matrix.implies(probe), (conj, probe)
        assert matrix.implies_all(probes) == all(graph.implies(p) for p in probes)

    @settings(max_examples=60, deadline=None)
    @given(conjunctions(max_size=6))
    def test_equality_classes_and_nodes(self, conj):
        graph = OrderGraph(conj)
        matrix = BoundsMatrix(conj)
        assert graph.nodes == matrix.nodes
        assert graph.equality_classes() == matrix.equality_classes()

    def test_fresh_constant_reasoning(self):
        # {x = -1} entails x <= 0 although 0 is not a matrix slot
        x = Var("x")
        matrix = BoundsMatrix([eq(x, Const(-1))])
        assert matrix.implies(le(x, Const(0)))
        assert not matrix.implies(le(Const(0), x))
        assert matrix.implies(lt(x, Const(5)))


class TestBatchKernels:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(conjunctions(max_size=6), max_size=8))
    def test_batch_satisfiable(self, block):
        expected = [OrderGraph(c).is_satisfiable() for c in block]
        assert batch_satisfiable(block) == expected

    @settings(max_examples=40, deadline=None)
    @given(st.lists(conjunctions(max_size=6), max_size=6))
    def test_batch_canonical(self, block):
        got = batch_canonical(block)
        for conj, canonical in zip(block, got):
            graph = OrderGraph(conj)
            if graph.is_satisfiable():
                assert canonical == graph.canonical_atoms()
            else:
                assert canonical is None

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(conjunctions(max_size=5), st.lists(ne_free_atoms(), max_size=3)),
            max_size=6,
        )
    )
    def test_batch_implies(self, pairs):
        conjs = [c for c, _ in pairs]
        probes = [p for _, p in pairs]
        expected = [
            all(OrderGraph(c).implies(a) for a in block)
            for c, block in zip(conjs, probes)
        ]
        assert batch_implies(conjs, probes) == expected

    def test_batch_implies_shape_mismatch(self):
        with pytest.raises(ValueError):
            batch_implies([[]], [])


# ------------------------------------------------------------- whole engines


def _db():
    edges = [(i, i + 1) for i in range(6)] + [(0, 3), (2, 5)]
    db = Database()
    db["E"] = Relation.from_points(("x", "y"), edges)
    db["T"] = Relation(
        DENSE_ORDER,
        ("x", "y"),
        [GTuple.make(DENSE_ORDER, ("x", "y"), [le("x", "y"), le(0, "x")])],
    )
    return db


class TestEngineBackendEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(formulas(depth=2))
    def test_fo_renderings_and_counters(self, formula):
        legs = {}
        for backend in ("object", "columnar"):
            with _fresh(backend):
                guard = EvaluationGuard()
                try:
                    result = evaluate(formula, _db(), guard=guard)
                except EvaluationError as err:
                    legs[backend] = ("error", type(err).__name__)
                    continue
                legs[backend] = (
                    result.pretty(),
                    tuple(repr(t) for t in result.tuples),
                    dict(guard.counters),
                    dict(kernel_counters()),
                )
        assert legs["columnar"] == legs["object"]

    @settings(max_examples=15, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 5), st.integers(0, 5)), max_size=12))
    def test_datalog_renderings_and_counters(self, edges):
        db_edges = sorted({(a, b) for a, b in edges if a != b}) or [(0, 1)]
        legs = {}
        for backend in ("object", "columnar"):
            with _fresh(backend):
                db = Database(
                    {"E": Relation.from_points(("x", "y"), db_edges)}
                )
                guard = EvaluationGuard()
                result = evaluate_program(
                    transitive_closure_program(), db, guard=guard
                )
                legs[backend] = (
                    result.rounds,
                    result["tc"].pretty(),
                    tuple(repr(t) for t in result["tc"].tuples),
                    dict(guard.counters),
                    guard.tuples_materialized,
                    dict(kernel_counters()),
                )
        assert legs["columnar"] == legs["object"]

    @settings(max_examples=25, deadline=None)
    @given(st.lists(conjunctions(min_size=1, max_size=4), min_size=1, max_size=6))
    def test_absorb_survivor_sets(self, blocks):
        legs = {}
        for backend in ("object", "columnar"):
            with _fresh(backend):
                tuples = [
                    GTuple.make(DENSE_ORDER, ("x", "y", "z", "u", "v"), conj)
                    for conj in blocks
                ]
                tuples = [t for t in tuples if t is not None]
                if not tuples:
                    return
                rel = Relation(DENSE_ORDER, ("x", "y", "z", "u", "v"), tuples)
                legs[backend] = tuple(repr(t) for t in rel.simplify().tuples)
        assert legs["columnar"] == legs["object"]


# ---------------------------------------------------------------- wire format


def _describe_matrix(matrix):
    """Runs in a worker: exercise an unpickled matrix end to end."""
    sat = matrix.is_satisfiable()
    canonical = sorted(map(str, matrix.canonical_atoms())) if sat else None
    witness = (
        sorted((v.name, str(f)) for v, f in matrix.solve().items()) if sat else None
    )
    return sat, canonical, witness


def _describe_tuples(tuples):
    """Runs in a spawned worker: report the backend the child resolved
    from the environment plus the rehydrated tuples' atom sets."""
    return kernel_backend(), [sorted(str(a) for a in t.atoms) for t in tuples]


class TestWireFormat:
    @settings(max_examples=60, deadline=None)
    @given(conjunctions(max_size=7))
    def test_matrix_roundtrip_in_process(self, conj):
        matrix = BoundsMatrix(conj)
        clone = pickle.loads(pickle.dumps(matrix))
        assert clone.nodes == matrix.nodes
        assert clone.edge_bytes() == matrix.edge_bytes()
        assert _describe_matrix(clone) == _describe_matrix(BoundsMatrix(conj))

    @settings(max_examples=60, deadline=None)
    @given(conjunctions(max_size=6))
    def test_packed_gtuple_roundtrip(self, conj):
        with _fresh("columnar"):
            t = GTuple.make(DENSE_ORDER, ("x", "y", "z", "u", "v"), conj)
            if t is None:
                return
            packed = pack_gtuple(t.schema, t.atoms)
            assert packed is not None, "canonical sets must always pack"
            slots, matrix = packed
            assert unpack_gtuple(t.schema, slots, matrix) == t.atoms
            assert t.__reduce__()[0].__name__ == "_restore_packed_gtuple"
            clone = pickle.loads(pickle.dumps(t))
            assert clone == t
            assert clone is t  # interning: unpickling re-pools

    def test_packed_payload_is_smaller(self):
        with _fresh("columnar"):
            chain = [lt(f"c{i}", f"c{i+1}") for i in range(7)]
            schema = tuple(f"c{i}" for i in range(8))
            t = GTuple.make(DENSE_ORDER, schema, chain)
            packed_size = len(pickle.dumps(t))
        with _fresh("object"):
            t = GTuple.make(DENSE_ORDER, schema, chain)
            object_size = len(pickle.dumps(t))
        assert packed_size < object_size

    def test_ambiguous_set_falls_back_to_object_payload(self):
        # {x <= y, y <= x} is not canonical (canonicalization yields
        # x = y); built by hand it would decode as an equality, so the
        # packer must refuse and __reduce__ must ship the atom set
        x, y = Var("x"), Var("y")
        ambiguous = frozenset({le(x, y), le(y, x)})
        assert pack_gtuple(("x", "y"), ambiguous) is None
        with _fresh("columnar"):
            t = GTuple._canonical(DENSE_ORDER, ("x", "y"), ambiguous)
            assert t.__reduce__()[0].__name__ == "_restore_gtuple"
            assert pickle.loads(pickle.dumps(t)).atoms == ambiguous

    def test_non_schema_and_non_order_sets_fall_back(self):
        x = Var("x")
        assert pack_gtuple(("y",), frozenset({le(x, Const(1))})) is None
        assert pack_gtuple(("x",), frozenset({"not-an-atom"})) is None

    def test_object_backend_keeps_object_payload(self):
        with _fresh("object"):
            t = GTuple.make(DENSE_ORDER, ("x", "y"), [lt("x", "y")])
            assert t.__reduce__()[0].__name__ == "_restore_gtuple"

    def test_roundtrip_across_spawned_worker(self):
        # spawn (not fork): the child re-imports everything and resolves
        # the backend from REPRO_KERNEL, which configure_kernel exports
        previous = configure_kernel("columnar")
        try:
            reset_kernel_cache()
            edges = [(i, i + 1) for i in range(5)]
            db = Database({"E": Relation.from_points(("x", "y"), edges)})
            tc = evaluate_program(transitive_closure_program(), db)["tc"]
            assert any(
                t.__reduce__()[0].__name__ == "_restore_packed_gtuple"
                for t in tc.tuples
            )
            matrix = BoundsMatrix([lt("x", "y"), le(0, "x"), lt("y", 4)])
            with ProcessPoolExecutor(
                max_workers=1, mp_context=get_context("spawn")
            ) as pool:
                backend, atom_sets = pool.submit(
                    _describe_tuples, list(tc.tuples)
                ).result(timeout=120)
                remote = pool.submit(_describe_matrix, matrix).result(timeout=120)
            assert backend == "columnar"
            assert atom_sets == [sorted(str(a) for a in t.atoms) for t in tc.tuples]
            assert remote == _describe_matrix(matrix)
        finally:
            configure_kernel(previous)
            reset_kernel_cache()


# ------------------------------------------------------- selector behaviour


class TestSelector:
    def test_configure_rejects_unknown_backend(self):
        with pytest.raises(ValueError):
            configure_kernel("simd")

    def test_context_restores_previous(self):
        before = kernel_backend()
        with kernel_backend_context("columnar"):
            assert kernel_backend() == "columnar"
        assert kernel_backend() == before

    def test_ne_atom_rejected(self):
        from repro.core.atoms import Atom, Op
        from repro.errors import TheoryError

        bad = Atom(Var("x"), Op.NE, Var("y"))
        with pytest.raises(TheoryError):
            BoundsMatrix([bad])
        with pytest.raises(TheoryError):
            batch_satisfiable([[bad]])


# ------------------------------------------------------------ numpy closure


class TestNumpyClosure:
    def test_numpy_path_matches_pure_python(self, monkeypatch):
        numpy = pytest.importorskip("numpy")
        del numpy
        import random

        import repro.perf.columnar as columnar

        monkeypatch.setenv("REPRO_COLUMNAR_NUMPY", "1")
        monkeypatch.setattr(columnar, "_NUMPY_MOD", columnar._NUMPY_SENTINEL)
        rng = random.Random(42)
        terms = [Var(f"v{i}") for i in range(18)] + [Const(k) for k in range(3)]
        for _ in range(25):
            # a shuffled spanning chain keeps every term in the matrix,
            # guaranteeing the closure crosses the numpy threshold
            shuffled = terms[:]
            rng.shuffle(shuffled)
            conj = []
            for a, b in zip(shuffled, shuffled[1:]):
                made = rng.choice([lt, le])(a, b)
                if not isinstance(made, bool):
                    conj.append(made)
            while len(conj) < 26:
                a, b = rng.sample(terms, 2)
                made = rng.choice([lt, le, eq])(a, b)
                if not isinstance(made, bool):
                    conj.append(made)
            graph = OrderGraph(conj)
            matrix = BoundsMatrix(conj)
            assert matrix._n >= columnar._NUMPY_MIN_NODES
            assert graph.is_satisfiable() == matrix.is_satisfiable()
            if graph.is_satisfiable():
                assert graph.canonical_atoms() == matrix.canonical_atoms()
                assert graph.solve() == matrix.solve()
