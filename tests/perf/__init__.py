"""Tests for the kernel fast path (:mod:`repro.perf`)."""
