"""Property tests: the kernel fast path never changes results.

Every answer computed with the memo cache and interning pool enabled
must be logically equivalent to — and for Datalog, syntactically equal
to — the answer computed with ``--no-cache`` semantics.  Random FO
formulas and random digraph Datalog programs exercise every kernel
entry point through the evaluator.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.database import Database
from repro.core.evaluator import evaluate
from repro.core.gtuple import GTuple
from repro.core.relation import Relation
from repro.core.theory import DENSE_ORDER
from repro.datalog.engine import evaluate_program
from repro.datalog.seminaive import evaluate_seminaive
from repro.errors import EvaluationError
from repro.perf import kernel_cache_disabled, reset_kernel_cache
from repro.queries.library import transitive_closure_program
from tests.strategies import formulas


def _db():
    from repro.core.atoms import le, lt

    database = Database()
    database["T"] = Relation(
        DENSE_ORDER,
        ("x", "y"),
        [GTuple.make(DENSE_ORDER, ("x", "y"), [le("x", "y"), le(0, "x")])],
    )
    database["S"] = Relation(
        DENSE_ORDER,
        ("x",),
        [GTuple.make(DENSE_ORDER, ("x",), [lt(2, "x"), lt("x", 4)])],
    )
    return database


@st.composite
def small_digraphs(draw, max_nodes=5):
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    edges = set()
    for a in range(n):
        for b in range(n):
            if a != b and draw(st.booleans()):
                edges.add((a, b))
    return n, frozenset(edges)


class TestFirstOrderEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(formulas(depth=2))
    def test_cached_matches_disabled(self, formula):
        db = _db()
        reset_kernel_cache()
        try:
            cached = evaluate(formula, db)
        except EvaluationError:
            with kernel_cache_disabled():
                try:
                    evaluate(formula, db)
                except EvaluationError:
                    return
                raise AssertionError("only the cached path rejected the formula")
        with kernel_cache_disabled():
            plain = evaluate(formula, db)
        assert cached.schema == plain.schema
        assert cached.equivalent(plain)


class TestDatalogEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(small_digraphs())
    def test_transitive_closure_syntactically_identical(self, graph):
        n, edges = graph
        db = Database({"E": Relation.from_points(("x", "y"), sorted(edges))})
        program = transitive_closure_program()

        reset_kernel_cache()
        cached = evaluate_program(program, db)["tc"]
        with kernel_cache_disabled():
            plain = evaluate_program(program, db)["tc"]
        assert cached.tuples == plain.tuples

        reset_kernel_cache()
        semi = evaluate_seminaive(program, db)["tc"]
        with kernel_cache_disabled():
            semi_plain = evaluate_seminaive(program, db)["tc"]
        assert frozenset(semi.tuples) == frozenset(semi_plain.tuples)
        assert frozenset(semi.tuples) == frozenset(cached.tuples)
