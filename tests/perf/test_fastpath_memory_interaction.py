"""The absorb/join fast paths under an active MemoryProfiler.

``tests/perf/test_fastpath_reference.py`` pins the rewritten hot paths
against the verbatim seed algorithms, but always ran them *untraced* —
nothing ever exercised the fast paths while the tracer carried a
:class:`~repro.obs.memory.MemoryProfiler`, the configuration where the
operator preambles open memory frames (``_mem_mark``) around the very
loops the fast paths replace.  This suite closes that gap across the
full interaction matrix: memory attribution × kernel cache on/off ×
kernel backend (object / columnar).

The contracts:

* the fast paths still produce byte-identical output to the reference
  algorithms while a memory frame is open;
* the join/absorb ledger records carry populated memory fields under
  every cache/backend combination (and zeros without ``--memory``);
* turning all three features on at once (cache + memory attribution +
  columnar kernel) changes no result and loses no ledger column.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.gtuple import GTuple
from repro.core.relation import Relation, _absorb
from repro.core.theory import DENSE_ORDER
from repro.obs import Tracer
from repro.obs.memory import MemoryProfiler
from repro.perf import (
    kernel_backend_context,
    kernel_cache_disabled,
    reset_kernel_cache,
)
from tests.perf.test_fastpath_reference import (
    gtuples,
    point_relations,
    reference_absorb,
    reference_join,
)

SCHEMA = ("x", "y", "z", "u", "v")

BACKENDS = ("object", "columnar")


def _armed_tracer() -> Tracer:
    tracer = Tracer()
    tracer.memory = MemoryProfiler("rss")
    return tracer


def _run_traced(work, *, memory=True):
    """Run ``work()`` inside a traced span; return (result, tracer)."""
    tracer = _armed_tracer() if memory else Tracer()
    with tracer:
        with tracer.span("query"):
            result = work()
    return result, tracer


class TestFastPathsUnderMemoryProfiler:
    @pytest.mark.parametrize("backend", BACKENDS)
    @settings(max_examples=25, deadline=None)
    @given(tuples=st.lists(gtuples(), max_size=6))
    def test_absorb_matches_reference(self, backend, tuples):
        expected = reference_absorb(tuples)
        with kernel_backend_context(backend):
            reset_kernel_cache()
            got, tracer = _run_traced(lambda: _absorb(list(tuples)))
        assert got == expected
        records = [r for r in tracer.ledger.records if r.op == "absorb"]
        assert records, "absorb never reached the ledger"
        assert all(r.alloc_blocks >= 0 and r.peak_bytes >= 0 for r in records)

    @pytest.mark.parametrize("backend", BACKENDS)
    @settings(max_examples=20, deadline=None)
    @given(left=point_relations(("x", "y")), right=point_relations(("y", "z")))
    def test_join_matches_reference(self, backend, left, right):
        expected = reference_join(left, right).tuples
        with kernel_backend_context(backend):
            reset_kernel_cache()
            got, tracer = _run_traced(lambda: left.join(right))
        assert got.tuples == expected
        records = [r for r in tracer.ledger.records if r.op == "join"]
        assert records, "join never reached the ledger"
        assert all(r.alloc_blocks >= 0 and r.peak_bytes >= 0 for r in records)

    @pytest.mark.parametrize("backend", BACKENDS)
    @settings(max_examples=15, deadline=None)
    @given(tuples=st.lists(gtuples(), max_size=5))
    def test_absorb_with_cache_disabled(self, backend, tuples):
        expected = reference_absorb(tuples)
        with kernel_backend_context(backend), kernel_cache_disabled():
            got, tracer = _run_traced(lambda: _absorb(list(tuples)))
        assert got == expected
        records = [r for r in tracer.ledger.records if r.op == "absorb"]
        assert records
        # with the cache off the operator must charge zero cache traffic
        assert all(r.cache_hits == 0 and r.cache_misses == 0 for r in records)

    @pytest.mark.parametrize("backend", BACKENDS)
    @settings(max_examples=15, deadline=None)
    @given(left=point_relations(("x", "y")), right=point_relations(("y", "z")))
    def test_join_with_cache_disabled(self, backend, left, right):
        expected = reference_join(left, right).tuples
        with kernel_backend_context(backend), kernel_cache_disabled():
            got, tracer = _run_traced(lambda: left.join(right))
        assert got.tuples == expected


class TestLedgerMemoryColumns:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_memory_fields_zero_without_profiler(self, backend):
        left = Relation.from_points(("x", "y"), [(i, i + 1) for i in range(6)])
        right = Relation.from_points(("y", "z"), [(i, i + 2) for i in range(6)])
        with kernel_backend_context(backend):
            reset_kernel_cache()
            _, tracer = _run_traced(lambda: left.join(right), memory=False)
        records = [r for r in tracer.ledger.records if r.op == "join"]
        assert records
        assert all(
            r.alloc_blocks == 0 and r.alloc_bytes == 0 and r.peak_bytes == 0
            for r in records
        )

    def test_columnar_join_records_cache_and_memory_together(self):
        # all three features at once: columnar kernel + memo cache +
        # memory attribution.  The blocked merge path must keep paying
        # its cache traffic into the ledger while the memory frame is
        # open, exactly like the per-pair object path.
        left = Relation.from_points(("x", "y"), [(i, i + 1) for i in range(8)])
        right = Relation.from_points(("y", "z"), [(i, i + 2) for i in range(8)])
        with kernel_backend_context("columnar"):
            reset_kernel_cache()
            result, tracer = _run_traced(lambda: left.join(right))
        records = [r for r in tracer.ledger.records if r.op == "join"]
        assert records
        record = records[0]
        assert record.cache_hits + record.cache_misses > 0
        assert record.alloc_blocks >= 0 and record.peak_bytes >= 0
        assert record.out_tuples == len(result.tuples)

    def test_columnar_absorb_ledger_matches_object(self):
        # identical inputs, identical accounting: the ledger rows the
        # two backends write for the same absorb call must agree on
        # every deterministic column (memory/seconds excluded)
        from repro.core.atoms import le, lt

        def build():
            mk = lambda atoms: GTuple.make(DENSE_ORDER, SCHEMA, atoms)
            ts = [
                mk([lt("x", "y")]),
                mk([lt("x", "y"), le("x", 3)]),
                mk([le("x", "y")]),
                mk([lt("x", "y"), lt("y", "z")]),
            ]
            return [t for t in ts if t is not None]

        rows = {}
        for backend in BACKENDS:
            with kernel_backend_context(backend):
                reset_kernel_cache()
                kept, tracer = _run_traced(lambda: _absorb(build()))
            record = [r for r in tracer.ledger.records if r.op == "absorb"][0]
            rows[backend] = (
                tuple(repr(t) for t in kept),
                record.in_tuples,
                record.out_tuples,
                record.est_out,
                record.out_atoms,
                record.cache_hits,
                record.cache_misses,
            )
        assert rows["columnar"] == rows["object"]
