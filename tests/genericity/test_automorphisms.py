"""Tests for piecewise-linear automorphisms and their action."""

import random
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.atoms import le, lt
from repro.core.database import Database
from repro.core.relation import Relation
from repro.core.theory import DENSE_ORDER
from repro.errors import EncodingError, TheoryError
from repro.genericity.automorphisms import (
    PiecewiseLinearMap,
    identity,
    moving,
    random_automorphism,
    reflection,
    scaling,
    translation,
)
from repro.linear.theory import LINEAR
from tests.strategies import fractions as fracs


class TestBasicMaps:
    def test_identity(self):
        phi = identity()
        assert phi(Fraction(7, 3)) == Fraction(7, 3)

    def test_translation(self):
        phi = translation(5)
        assert phi(0) == 5
        assert phi(Fraction(-1, 2)) == Fraction(9, 2)

    def test_scaling(self):
        phi = scaling(Fraction(3))
        assert phi(2) == 6
        assert phi(Fraction(1, 3)) == 1
        assert phi(-2) == -6

    def test_scaling_inverse(self):
        phi = scaling(3)
        assert phi.inverse()(phi(Fraction(7, 5))) == Fraction(7, 5)

    def test_scaling_rejects_nonpositive(self):
        with pytest.raises(TheoryError):
            scaling(0)

    def test_reflection(self):
        phi = reflection()
        assert phi(3) == -3
        assert not phi.increasing

    def test_moving(self):
        phi = moving({0: 10, 1: 20})
        assert phi(0) == 10
        assert phi(1) == 20
        assert phi(Fraction(1, 2)) == 15
        assert phi(2) == 21

    def test_invalid_breakpoints(self):
        with pytest.raises(TheoryError):
            moving({0: 5, 1: 5})


class TestBijectionLaws:
    @settings(max_examples=100)
    @given(fracs, fracs)
    def test_strictly_increasing(self, a, b):
        phi = moving({0: Fraction(1), 2: Fraction(10), 5: Fraction(11)})
        if a < b:
            assert phi(a) < phi(b)

    @settings(max_examples=100)
    @given(fracs)
    def test_inverse_round_trip(self, v):
        phi = moving({-1: Fraction(-5), 0: Fraction(2), 3: Fraction(7, 2)})
        assert phi.inverse()(phi(v)) == v

    @settings(max_examples=60)
    @given(fracs)
    def test_compose(self, v):
        phi = moving({0: 1, 1: 3})
        psi = translation(-2)
        composed = phi.compose(psi)
        assert composed(v) == phi(psi(v))


class TestActionOnRelations:
    def test_interval_moves(self):
        r = Relation.from_atoms(("x",), [[le(0, "x"), le("x", 1)]], DENSE_ORDER)
        phi = moving({0: 5, 1: 9})
        moved = phi.apply_to_relation(r)
        assert moved.contains_point([7])
        assert not moved.contains_point([0])

    def test_action_is_pointwise_image(self):
        r = Relation.from_atoms(
            ("x", "y"), [[lt("x", "y"), le(0, "x"), le("y", 2)]], DENSE_ORDER
        )
        phi = moving({0: -3, 2: 8})
        moved = phi.apply_to_relation(r)
        rng = random.Random(0)
        for _ in range(25):
            a = Fraction(rng.randint(-10, 10), 4)
            b = Fraction(rng.randint(-10, 10), 4)
            assert r.contains_point([a, b]) == moved.contains_point([phi(a), phi(b)])

    def test_reflection_flips_order_atoms(self):
        r = Relation.from_atoms(("x", "y"), [[lt("x", "y")]], DENSE_ORDER)
        moved = reflection().apply_to_relation(r)
        assert moved.contains_point([2, 1])
        assert not moved.contains_point([1, 2])

    def test_linear_relations_rejected(self):
        r = Relation.universe(("x",), LINEAR)
        with pytest.raises(EncodingError):
            identity().apply_to_relation(r)

    def test_database_action(self):
        db = Database()
        db["S"] = Relation.from_points(("x",), [(0,), (1,)])
        moved = translation(10).apply_to_database(db)
        assert moved["S"].contains_point([10])
        assert moved["S"].contains_point([11])
        assert not moved["S"].contains_point([0])


class TestRandomAutomorphism:
    def test_seeded_reproducible(self):
        constants = [Fraction(0), Fraction(1), Fraction(5)]
        a = random_automorphism(random.Random(7), constants)
        b = random_automorphism(random.Random(7), constants)
        assert a == b

    def test_images_preserve_order(self):
        constants = [Fraction(i) for i in range(5)]
        phi = random_automorphism(random.Random(3), constants)
        images = [phi(c) for c in constants]
        assert images == sorted(images)
        assert len(set(images)) == 5

    def test_no_constants_is_identity(self):
        assert random_automorphism(random.Random(0), []) == identity()
