"""Tests for Hanf locality (the connectivity lower-bound instrument)."""

import pytest

from repro.genericity.ef_games import FiniteStructure, duplicator_wins
from repro.genericity.locality import (
    ball,
    gaifman_adjacency,
    hanf_indistinguishable,
    hanf_radius,
    neighborhood_census,
)


def cycle(n: int, offset: int = 0) -> FiniteStructure:
    edges = set()
    for i in range(n):
        a, b = offset + i, offset + (i + 1) % n
        edges.add((a, b))
        edges.add((b, a))
    return FiniteStructure.make(range(offset, offset + n), {"E": edges})


def two_cycles(n: int) -> FiniteStructure:
    first = cycle(n)
    second = cycle(n, offset=n)
    edges = set(first.relation("E")) | set(second.relation("E"))
    return FiniteStructure.make(range(2 * n), {"E": edges})


def path(n: int) -> FiniteStructure:
    edges = set()
    for i in range(n - 1):
        edges.add((i, i + 1))
        edges.add((i + 1, i))
    return FiniteStructure.make(range(n), {"E": edges})


class TestGaifman:
    def test_adjacency_of_cycle(self):
        adj = gaifman_adjacency(cycle(4))
        assert adj[0] == {1, 3}

    def test_ball_growth(self):
        c = cycle(8)
        elements, distance = ball(c, 0, 2)
        assert elements == {0, 1, 2, 6, 7}
        assert distance[2] == 2

    def test_ball_saturates(self):
        c = cycle(4)
        elements, _ = ball(c, 0, 10)
        assert elements == {0, 1, 2, 3}


class TestCensus:
    def test_cycle_is_homogeneous(self):
        """Every vertex of a cycle has the same neighborhood type."""
        census = neighborhood_census(cycle(8), radius=2)
        assert len(census) == 1
        assert census[0][1] == 8

    def test_path_has_boundary_types(self):
        """A path has distinct end/near-end/middle types."""
        census = neighborhood_census(path(7), radius=1)
        counts = sorted(count for _, count in census)
        assert counts == [2, 5]  # two endpoints, five inner vertices

    def test_radius_zero_sees_only_loops(self):
        census = neighborhood_census(cycle(5), radius=0)
        assert len(census) == 1


class TestHanfCertificates:
    def test_radius_formula(self):
        assert hanf_radius(1) == 1
        assert hanf_radius(2) == 4
        assert hanf_radius(3) == 13

    def test_connectivity_showcase(self):
        """One 12-cycle vs two 6-cycles: locally identical at rank 1,
        so no rank-1 sentence (hence no fixed local sentence) can
        express connectivity."""
        assert hanf_indistinguishable(cycle(12), two_cycles(6), rank=1)

    def test_certificate_is_sound_against_ef(self):
        """Whenever Hanf certifies, the EF solver must agree."""
        pairs = [
            (cycle(12), two_cycles(6), 1),
            (cycle(8), two_cycles(4), 1),
        ]
        for a, b, rank in pairs:
            if hanf_indistinguishable(a, b, rank):
                assert duplicator_wins(a, b, rank)

    def test_small_cycles_not_certified(self):
        """At rank 2 the radius-4 balls wrap around a 6-cycle: the
        single cycle and the split pair differ locally -- no
        certificate (and indeed they are distinguishable)."""
        assert not hanf_indistinguishable(cycle(6), two_cycles(3), rank=2)

    def test_different_sizes_never_certified(self):
        assert not hanf_indistinguishable(cycle(6), cycle(8), rank=1)

    def test_isomorphic_always_certified(self):
        assert hanf_indistinguishable(cycle(7), cycle(7), rank=2)
