"""Tests for the Ehrenfeucht-Fraisse game solver (Theorem 4.2 evidence)."""

import pytest

from repro.core.relation import Relation
from repro.errors import EncodingError
from repro.genericity.ef_games import (
    FiniteStructure,
    cell_structure,
    duplicator_wins,
    linear_order,
    min_distinguishing_rank,
)
from repro.workloads.generators import interval_chain, point_set


class TestFiniteStructure:
    def test_make(self):
        s = FiniteStructure.make([0, 1], {"R": [(0, 1)]})
        assert s.relation("R") == {(0, 1)}
        assert s.vocabulary() == ("R",)

    def test_unknown_relation(self):
        s = linear_order(2)
        with pytest.raises(EncodingError):
            s.relation("nope")


class TestLinearOrderGames:
    def test_isomorphic_always_win(self):
        assert duplicator_wins(linear_order(3), linear_order(3), 3)

    @pytest.mark.parametrize(
        "n,m,rounds,expected",
        [
            (1, 2, 1, True),   # rank-1 sentences cannot count to 2
            (1, 2, 2, False),
            (2, 3, 2, False),  # exists x exists y exists-free distinction
            (3, 4, 2, True),   # sizes >= 2^2 - 1 = 3 are 2-equivalent
            (3, 4, 3, False),
            (7, 8, 3, True),   # sizes >= 2^3 - 1 = 7 are 3-equivalent
            (7, 8, 4, False),
        ],
    )
    def test_classical_thresholds(self, n, m, rounds, expected):
        assert duplicator_wins(linear_order(n), linear_order(m), rounds) is expected

    def test_min_rank_grows_logarithmically(self):
        """The crux of 'parity is not FO': the distinguishing rank of
        n vs n+1 grows with n, so no fixed sentence works for all n."""
        ranks = [
            min_distinguishing_rank(linear_order(n), linear_order(n + 1), 5)
            for n in (1, 3, 7)
        ]
        assert ranks == [2, 3, 4]

    def test_none_when_rank_insufficient(self):
        assert min_distinguishing_rank(linear_order(7), linear_order(8), 3) is None


class TestCellStructures:
    def test_shape(self):
        db = point_set(2)
        s = cell_structure(db["S"])
        assert len(s.universe) == 5  # 2 constants -> 5 cells
        assert s.relation("point") == {(1,), (3,)}
        assert s.relation("in") == {(1,), (3,)}

    def test_interval_membership_marked(self):
        db = interval_chain(1)  # [0, 3]
        s = cell_structure(db["S"])
        # cells: (-inf,0) [0] (0,3) [3] (3,inf); members: 1, 2, 3
        assert s.relation("in") == {(1,), (2,), (3,)}

    def test_requires_unary(self):
        with pytest.raises(EncodingError):
            cell_structure(Relation.universe(("x", "y")))

    def test_equivalent_cell_words_tie_games(self):
        """Two interval databases with the same cell pattern are
        EF-equivalent at every rank (here rank 3)."""
        a = cell_structure(point_set(3)["S"])
        b = cell_structure(point_set(3, start=10, step=7)["S"])
        assert duplicator_wins(a, b, 3)

    def test_point_count_distinguishable_at_low_rank(self):
        a = cell_structure(point_set(1)["S"])
        b = cell_structure(point_set(2)["S"])
        rank = min_distinguishing_rank(a, b, 4)
        assert rank is not None
