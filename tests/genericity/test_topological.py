"""Tests for the generic-vs-topological classification (§3)."""

from fractions import Fraction

import pytest

from repro.core.atoms import le, lt
from repro.core.database import Database
from repro.core.evaluator import evaluate_boolean
from repro.core.formula import Not, constraint, exists, forall, rel
from repro.core.intervals import Interval, IntervalSet
from repro.core.relation import Relation
from repro.genericity.topological import classify
from repro.linear.region import is_connected
from repro.queries.library import bounded_query


@pytest.fixture
def half_open_db():
    """S = [0, 1): has a minimum but no maximum."""
    db = Database()
    db["S"] = IntervalSet([Interval.make(0, 1, False, True)]).to_relation("x")
    return db


def has_minimum(db) -> bool:
    f = exists(
        "m",
        rel("S", "m")
        & forall("x", rel("S", "x").implies(constraint(le("m", "x")))),
    )
    return evaluate_boolean(f, db)


class TestClassification:
    def test_connectivity_is_topological(self, half_open_db):
        report = classify(lambda d: is_connected(d["S"]), half_open_db)
        assert report.generic
        assert report.topological
        assert report.kind == "topological query"

    def test_boundedness_is_topological(self, half_open_db):
        report = classify(
            lambda d: evaluate_boolean(bounded_query("S"), d), half_open_db
        )
        assert report.topological

    def test_has_minimum_is_generic_but_not_topological(self, half_open_db):
        """[0, 1) has a min but no max: order reversal flips the answer."""
        report = classify(has_minimum, half_open_db)
        assert report.generic
        assert not report.topological
        assert report.reflection_witness is not None
        assert report.kind == "generic (order-sensitive) query"

    def test_constant_leak_is_not_even_generic(self, half_open_db):
        def below_zero(db):
            return evaluate_boolean(
                exists("x", rel("S", "x") & constraint(lt("x", Fraction(1, 2)))), db
            )

        report = classify(below_zero, half_open_db, count=8, seed=3)
        assert not report.generic
        assert report.generic_witness is not None
        assert report.kind == "not a query"

    def test_hierarchy_is_consistent(self, half_open_db):
        """topological implies generic by construction."""
        for query in (has_minimum, lambda d: is_connected(d["S"])):
            report = classify(query, half_open_db)
            if report.topological:
                assert report.generic
