"""Tests for the exhaustive FO-definability search."""

import pytest

from repro.errors import EncodingError
from repro.genericity.ef_games import linear_order, min_distinguishing_rank
from repro.genericity.formula_search import SearchResult, enumerate_queries, search_sentence


class TestEnumeration:
    def test_rank_zero_contains_booleans(self):
        family = [linear_order(2)]
        queries = enumerate_queries(family, variables=2, rank=0)
        semantics = {s for s, _ in queries}
        assert 0 in semantics  # false

    def test_monotone_in_rank(self):
        family = [linear_order(2), linear_order(3)]
        r0 = enumerate_queries(family, variables=2, rank=0)
        r1 = enumerate_queries(family, variables=2, rank=1)
        assert r0 <= r1

    def test_limit_enforced(self):
        family = [linear_order(4), linear_order(5)]
        with pytest.raises(EncodingError):
            enumerate_queries(family, variables=2, rank=2, limit=100)

    def test_empty_family_rejected(self):
        with pytest.raises(EncodingError):
            enumerate_queries([], variables=1, rank=0)


class TestSentenceSearch:
    def test_size_one_vs_two_needs_rank_two(self):
        """Matches the EF game exactly: 1 vs 2 distinguishable at rank 2,
        not at rank 1."""
        family = [linear_order(1), linear_order(2)]
        assert not search_sentence(family, [True, False], variables=2, rank=1)
        assert search_sentence(family, [True, False], variables=2, rank=2)

    def test_agrees_with_ef_on_pairs(self):
        for n in (1, 2):
            family = [linear_order(n), linear_order(n + 1)]
            ef_rank = min_distinguishing_rank(linear_order(n), linear_order(n + 1), 4)
            for rank in (1, 2):
                found = search_sentence(
                    family, [True, False], variables=2, rank=rank
                ).found
                assert found == (ef_rank is not None and ef_rank <= rank)

    def test_parity_not_found_at_rank_one(self):
        family = [linear_order(n) for n in range(1, 5)]
        target = [n % 2 == 1 for n in range(1, 5)]
        result = search_sentence(family, target, variables=2, rank=1)
        assert not result.found
        assert result.queries_explored > 0

    def test_nonemptiness_found(self):
        family = [linear_order(0), linear_order(1), linear_order(2)]
        result = search_sentence(family, [False, True, True], variables=2, rank=1)
        assert result.found

    def test_at_least_two_found_at_rank_two(self):
        family = [linear_order(1), linear_order(2), linear_order(3)]
        assert search_sentence(family, [False, True, True], variables=2, rank=2)

    def test_target_length_checked(self):
        with pytest.raises(EncodingError):
            search_sentence([linear_order(1)], [True, False], variables=1, rank=0)

    def test_result_is_boolish(self):
        family = [linear_order(1)]
        result = search_sentence(family, [True], variables=1, rank=0)
        assert isinstance(result, SearchResult)
        assert bool(result) is True
