"""Tests for genericity checking (Definition 3.1 made operational)."""

from fractions import Fraction

import pytest

from repro.core.atoms import le, lt
from repro.core.database import Database
from repro.core.evaluator import evaluate
from repro.core.formula import constraint, exists, rel
from repro.core.relation import Relation
from repro.core.theory import DENSE_ORDER
from repro.genericity.automorphisms import moving
from repro.genericity.checks import (
    check_boolean_generic,
    check_generic,
    default_automorphisms,
)
from repro.queries.library import bounded_query, parity_procedural
from repro.workloads.generators import point_set


@pytest.fixture
def db():
    database = Database()
    database["S"] = Relation.from_points(("x",), [(0,), (4,)])
    return database


class TestGenericQueries:
    def test_fo_query_is_generic(self, db):
        def query(database):
            return evaluate(
                exists("y", rel("S", "y") & constraint(lt("x", "y"))), database
            )

        report = check_generic(query, db, count=6)
        assert report.generic
        assert report.witness is None

    def test_boolean_fo_query_is_generic(self, db):
        from repro.core.evaluator import evaluate_boolean

        def query(database):
            return evaluate_boolean(bounded_query("S"), database)

        assert check_boolean_generic(query, db, count=6)

    def test_parity_is_generic(self, db):
        assert check_boolean_generic(lambda d: parity_procedural(d, "S"), db, count=6)


class TestNonGenericMappings:
    def test_midpoint_is_not_generic(self, db):
        """The FO+ midpoint mapping fails genericity (Section 4)."""

        def midpoints(database):
            values = sorted(
                t.sample_point()["x"] for t in database["S"].tuples
            )
            points = {(a + b) / 2 for a in values for b in values}
            return Relation.from_points(("z",), [(p,) for p in points])

        # an automorphism that moves 2 = midpoint(0, 4) away from
        # midpoint(phi(0), phi(4))
        phi = moving({0: Fraction(0), 2: Fraction(10), 4: Fraction(12)})
        report = check_generic(midpoints, db, automorphisms=[phi])
        assert not report.generic
        assert report.witness is phi

    def test_constant_leak_is_not_generic(self, db):
        """A mapping hardwiring a constant is refuted."""

        def above_one(database):
            return evaluate(
                rel("S", "x") & constraint(lt(1, "x")), database
            )

        report = check_generic(above_one, db, count=8, seed=1)
        assert not report.generic


class TestDefaultAutomorphisms:
    def test_count_and_reflection(self, db):
        maps = default_automorphisms(db, count=5, include_reflection=True)
        assert len(maps) == 6
        assert not maps[-1].increasing

    def test_seeded(self, db):
        assert default_automorphisms(db, seed=3) == default_automorphisms(db, seed=3)

    def test_report_is_boolish(self, db):
        report = check_boolean_generic(lambda d: True, db, count=2)
        assert bool(report) is True
        assert report.tested == 2
