"""Shared hypothesis strategies for the test suite."""

from __future__ import annotations

from fractions import Fraction

from hypothesis import strategies as st

from repro.core.atoms import Op, atom
from repro.core.formula import (
    Constraint,
    Exists,
    ForAll,
    Formula,
    Not,
    conj,
    constraint,
    disj,
)
from repro.core.intervals import Interval, IntervalSet

#: small exact rationals (keeps witnesses readable and arithmetic fast)
fractions = st.fractions(
    min_value=-8, max_value=8, max_denominator=4
)

variable_names = st.sampled_from(["x", "y", "z", "u", "v"])

ops = st.sampled_from([Op.LT, Op.LE, Op.EQ, Op.NE, Op.GE, Op.GT])


@st.composite
def terms(draw):
    if draw(st.booleans()):
        return draw(variable_names)
    return draw(fractions)


@st.composite
def atoms(draw):
    """A random (possibly folding) atom over small terms."""
    return atom(draw(terms()), draw(ops), draw(terms()))


@st.composite
def real_atoms(draw):
    """A random non-folding atom (guaranteed Atom instance)."""
    a = draw(atoms())
    if isinstance(a, bool):
        a = atom(draw(variable_names), Op.LE, draw(fractions))
    if isinstance(a, bool):  # pragma: no cover - var vs const never folds
        raise AssertionError
    return a


@st.composite
def ne_free_atoms(draw):
    a = draw(real_atoms())
    if a.op is Op.NE:
        return a.expand_ne()[0]
    return a


@st.composite
def conjunctions(draw, min_size=0, max_size=5):
    return draw(st.lists(ne_free_atoms(), min_size=min_size, max_size=max_size))


@st.composite
def quantifier_free(draw, depth=2):
    """A quantifier-free formula over constraint atoms."""
    if depth == 0:
        return constraint(draw(atoms()))
    branch = draw(st.integers(min_value=0, max_value=3))
    if branch == 0:
        return constraint(draw(atoms()))
    if branch == 1:
        return Not(draw(quantifier_free(depth=depth - 1)))
    subs = draw(st.lists(quantifier_free(depth=depth - 1), min_size=1, max_size=3))
    return conj(*subs) if branch == 2 else disj(*subs)


@st.composite
def formulas(draw, depth=2):
    """A random constraint formula with quantifiers."""
    if depth == 0:
        return constraint(draw(atoms()))
    branch = draw(st.integers(min_value=0, max_value=5))
    if branch == 0:
        return constraint(draw(atoms()))
    if branch == 1:
        return Not(draw(formulas(depth=depth - 1)))
    if branch in (2, 3):
        subs = draw(st.lists(formulas(depth=depth - 1), min_size=1, max_size=3))
        return conj(*subs) if branch == 2 else disj(*subs)
    bound = draw(variable_names)
    body = draw(formulas(depth=depth - 1))
    return Exists(bound, body) if branch == 4 else ForAll(bound, body)


@st.composite
def intervals(draw):
    kind = draw(st.integers(min_value=0, max_value=4))
    if kind == 0:
        return Interval.point(draw(fractions))
    if kind == 1:
        return Interval.all()
    if kind == 2:
        lo = draw(fractions)
        return draw(
            st.sampled_from(
                [Interval.less_than(lo), Interval.at_most(lo), Interval.greater_than(lo), Interval.at_least(lo)]
            )
        )
    lo, hi = draw(fractions), draw(fractions)
    if lo > hi:
        lo, hi = hi, lo
    return Interval.make(lo, hi, draw(st.booleans()), draw(st.booleans()))


@st.composite
def interval_sets(draw, max_size=4):
    return IntervalSet(draw(st.lists(intervals(), max_size=max_size)))
