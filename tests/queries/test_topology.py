"""Tests for the FO topological operators."""

from fractions import Fraction

import pytest

from repro.core.atoms import le, lt
from repro.core.database import Database
from repro.core.intervals import Interval, IntervalSet
from repro.core.relation import Relation
from repro.core.theory import DENSE_ORDER
from repro.linear.region import closure as procedural_closure
from repro.queries.topology import (
    boundary,
    closure,
    interior,
    isolated_points,
    limit_points,
)
from repro.workloads.generators import point_set


def db_with(relation):
    database = Database()
    database["R"] = relation
    return database


def iset(relation):
    return IntervalSet.from_relation(relation)


@pytest.fixture
def half_open():
    # [0, 1) u {2}
    return db_with(
        IntervalSet([Interval.make(0, 1, False, True), Interval.point(2)]).to_relation(
            "x"
        )
    )


class TestUnaryOperators:
    def test_interior(self, half_open):
        out = interior(half_open, "R")
        assert iset(out) == IntervalSet([Interval.open(0, 1)])

    def test_closure(self, half_open):
        out = closure(half_open, "R")
        assert iset(out) == IntervalSet(
            [Interval.closed(0, 1), Interval.point(2)]
        )

    def test_boundary(self, half_open):
        out = boundary(half_open, "R")
        assert iset(out) == IntervalSet.of_points([0, 1, 2])

    def test_isolated_points(self, half_open):
        out = isolated_points(half_open, "R")
        assert iset(out) == IntervalSet.of_points([2])

    def test_limit_points(self, half_open):
        out = limit_points(half_open, "R")
        assert iset(out) == IntervalSet([Interval.closed(0, 1)])

    def test_finite_set_is_its_own_boundary(self):
        db = point_set(3, name="R")
        assert iset(boundary(db, "R")) == IntervalSet.of_points([0, 1, 2])
        assert interior(db, "R").is_empty()

    def test_closure_matches_procedural(self, half_open):
        fo = closure(half_open, "R").rename({"x0": "x"})
        weakened = procedural_closure(half_open["R"])
        assert fo.equivalent(weakened)


class TestLaws:
    def test_interior_idempotent(self, half_open):
        once = interior(half_open, "R")
        twice = interior(db_with(once.rename({"x0": "x0"})), "R")
        assert twice.equivalent(once)

    def test_interior_subset_closure(self, half_open):
        inner = interior(half_open, "R")
        outer = closure(half_open, "R")
        assert outer.contains(inner)

    def test_boundary_disjoint_from_interior(self, half_open):
        inner = interior(half_open, "R")
        edge = boundary(half_open, "R")
        assert inner.intersection(edge).is_empty()


class TestTwoDimensional:
    def test_square_interior(self):
        square = Relation.from_atoms(
            ("x", "y"),
            [[le(0, "x"), le("x", 1), le(0, "y"), le("y", 1)]],
            DENSE_ORDER,
        )
        db = db_with(square)
        inner = interior(db, "R")
        assert inner.contains_point([Fraction(1, 2), Fraction(1, 2)])
        assert not inner.contains_point([0, Fraction(1, 2)])
        edge = boundary(db, "R")
        assert edge.contains_point([0, Fraction(1, 2)])
        assert not edge.contains_point([Fraction(1, 2), Fraction(1, 2)])
