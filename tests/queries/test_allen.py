"""Tests for Allen's interval relations as FO queries."""

from fractions import Fraction

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.core.database import Database
from repro.core.evaluator import evaluate_boolean
from repro.core.formula import Exists, exists, rel
from repro.core.relation import Relation
from repro.core.sampling import eval_at
from repro.core.terms import Var
from repro.queries.allen import ALLEN_RELATIONS, before, during, meets, overlaps
from tests.strategies import fractions as fracs


def truth(builder, a, b):
    """Ground truth of one Allen relation on two concrete intervals."""
    env = {
        Var("a_lo"): a[0],
        Var("a_hi"): a[1],
        Var("b_lo"): b[0],
        Var("b_hi"): b[1],
    }
    return eval_at(builder(), None, env)


@st.composite
def proper_interval(draw):
    a, b = draw(fracs), draw(fracs)
    if a == b:
        b = a + 1
    return (min(a, b), max(a, b))


class TestIndividualRelations:
    def test_before(self):
        assert truth(before, (0, 1), (2, 3))
        assert not truth(before, (0, 2), (1, 3))

    def test_meets(self):
        assert truth(meets, (0, 1), (1, 2))
        assert not truth(meets, (0, 1), (2, 3))

    def test_overlaps(self):
        assert truth(overlaps, (0, 2), (1, 3))
        assert not truth(overlaps, (0, 1), (1, 2))  # that's meets

    def test_during(self):
        assert truth(during, (1, 2), (0, 3))
        assert not truth(during, (0, 2), (0, 3))  # that's starts


class TestPartitionProperty:
    @settings(max_examples=200)
    @given(proper_interval(), proper_interval())
    def test_exactly_one_relation_holds(self, a, b):
        """Allen's 13 relations partition all configurations."""
        holding = [
            name for name, builder in ALLEN_RELATIONS.items() if truth(builder, a, b)
        ]
        assert len(holding) == 1, f"{a} vs {b}: {holding}"

    @settings(max_examples=100)
    @given(proper_interval(), proper_interval())
    def test_converse_pairs(self, a, b):
        converses = {
            "before": "after",
            "meets": "met_by",
            "overlaps": "overlapped_by",
            "starts": "started_by",
            "during": "contains",
            "finishes": "finished_by",
            "equals": "equals",
        }
        for name, conv in converses.items():
            assert truth(ALLEN_RELATIONS[name], a, b) == truth(
                ALLEN_RELATIONS[conv], b, a
            )


class TestOverDatabases:
    def test_exists_overlapping_pair(self):
        db = Database()
        db["I"] = Relation.from_points(
            ("lo", "hi"), [(0, 2), (1, 3), (10, 11)]
        )
        pairs = exists(
            ["a_lo", "a_hi", "b_lo", "b_hi"],
            rel("I", "a_lo", "a_hi")
            & rel("I", "b_lo", "b_hi")
            & overlaps(),
        )
        assert evaluate_boolean(pairs, db)

    def test_no_meeting_pair(self):
        db = Database()
        db["I"] = Relation.from_points(("lo", "hi"), [(0, 2), (3, 5)])
        pairs = exists(
            ["a_lo", "a_hi", "b_lo", "b_hi"],
            rel("I", "a_lo", "a_hi") & rel("I", "b_lo", "b_hi") & meets(),
        )
        assert not evaluate_boolean(pairs, db)
