"""Tests for the query catalogue."""

from fractions import Fraction

import pytest

from repro.core.atoms import le
from repro.core.database import Database
from repro.core.evaluator import evaluate, evaluate_boolean
from repro.core.relation import Relation
from repro.core.theory import DENSE_ORDER
from repro.datalog.engine import evaluate_program
from repro.linear.theory import LINEAR
from repro.queries.library import (
    between_query,
    bounded_query,
    contains_open_interval_query,
    graph_connectivity_procedural,
    is_dense_in_itself_query,
    midpoint_formula,
    nonempty_query,
    parity_procedural,
    reachability_program,
    transitive_closure_program,
)
from repro.workloads.generators import (
    cycle_graph,
    disjoint_cycles,
    interval_chain,
    path_graph,
    point_set,
)


def unary(*conjs):
    return Relation.from_atoms(("x",), conjs, DENSE_ORDER)


class TestFOQueries:
    def test_nonempty(self):
        db = Database()
        db["R"] = unary([le(0, "x")])
        assert evaluate_boolean(nonempty_query("R", 1), db)
        db["R"] = Relation.empty(("x",))
        assert not evaluate_boolean(nonempty_query("R", 1), db)

    def test_bounded(self):
        db = Database()
        db["R"] = unary([le(0, "x"), le("x", 5)])
        assert evaluate_boolean(bounded_query("R"), db)
        db["R"] = unary([le(0, "x")])  # unbounded above
        assert not evaluate_boolean(bounded_query("R"), db)

    def test_contains_open_interval(self):
        db = Database()
        db["R"] = unary([le(0, "x"), le("x", 1)])
        assert evaluate_boolean(contains_open_interval_query("R"), db)
        db["R"] = point_set(5)["S"]
        assert not evaluate_boolean(contains_open_interval_query("R"), db)

    def test_dense_in_itself(self):
        db = Database()
        db["R"] = unary([le(0, "x"), le("x", 1)])
        assert evaluate_boolean(is_dense_in_itself_query("R"), db)
        db["R"] = point_set(3)["S"]
        assert not evaluate_boolean(is_dense_in_itself_query("R"), db)

    def test_between(self):
        db = point_set(2, step=10)  # {0, 10}
        out = evaluate(between_query("S"), db)
        assert out.contains_point([5])
        assert not out.contains_point([0])
        assert not out.contains_point([11])


class TestFOPlus:
    def test_midpoint(self):
        db = Database(theory=LINEAR)
        db["S"] = Relation.from_points(("x",), [(0,), (4,)], LINEAR)
        out = evaluate(midpoint_formula("S"), db, theory=LINEAR)
        assert out.contains_point([2])
        assert out.contains_point([0])
        assert not out.contains_point([1])


class TestDatalogPrograms:
    def test_reachability(self):
        db = path_graph(5)
        db["Src"] = Relation.from_points(("x",), [(0,)])
        result = evaluate_program(reachability_program(), db)
        assert result["reach"].contains_point([4])
        db2 = disjoint_cycles(3)
        db2["Src"] = Relation.from_points(("x",), [(0,)])
        result2 = evaluate_program(reachability_program(), db2)
        assert not result2["reach"].contains_point([5])

    def test_tc_on_cycle(self):
        db = cycle_graph(4)
        result = evaluate_program(transitive_closure_program(), db)
        assert result["tc"].contains_point([0, 0])  # cycles close on themselves


class TestProceduralReferences:
    def test_parity(self):
        for n in range(5):
            assert parity_procedural(point_set(n)) == (n % 2 == 1)

    def test_connectivity(self):
        assert graph_connectivity_procedural(path_graph(4))
        assert graph_connectivity_procedural(cycle_graph(5))
        assert not graph_connectivity_procedural(disjoint_cycles(3))
        assert graph_connectivity_procedural(path_graph(1))
        assert graph_connectivity_procedural(path_graph(0))
