"""Stateful model-based testing of the relation algebra.

A hypothesis state machine drives random sequences of algebra
operations on a pair of unary relations while maintaining a *model*:
the membership pattern on a fixed rational grid.  Any divergence
between the engine and the model after any operation sequence is a
bug; the machine also checks the canonical interval form stays in
sync.
"""

from fractions import Fraction

import hypothesis.strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.core.atoms import eq, le, lt
from repro.core.intervals import IntervalSet
from repro.core.relation import Relation
from repro.core.theory import DENSE_ORDER

GRID = [Fraction(n, 2) for n in range(-8, 9)]

bounds = st.integers(min_value=-3, max_value=3)


class RelationAlgebraMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.relation = Relation.empty(("x",), DENSE_ORDER)
        self.model = frozenset()

    def _sync(self, relation, model):
        self.relation = relation
        self.model = frozenset(model)

    @rule(a=bounds, b=bounds, closed=st.booleans())
    def add_interval(self, a, b, closed):
        lo, hi = min(a, b), max(a, b)
        make = le if closed else lt
        atoms = [make(lo, "x"), make("x", hi)]
        added = Relation.from_atoms(("x",), [atoms], DENSE_ORDER)
        new_model = {
            v
            for v in GRID
            if (lo <= v <= hi if closed else lo < v < hi)
        }
        self._sync(self.relation.union(added), set(self.model) | new_model)

    @rule(a=bounds)
    def add_point(self, a):
        added = Relation.from_atoms(("x",), [[eq("x", a)]], DENSE_ORDER)
        self._sync(
            self.relation.union(added),
            set(self.model) | ({Fraction(a)} if Fraction(a) in set(GRID) else set()),
        )

    @rule(a=bounds)
    def intersect_with_ray(self, a):
        ray = Relation.from_atoms(("x",), [[le(a, "x")]], DENSE_ORDER)
        self._sync(
            self.relation.intersection(ray),
            {v for v in self.model if v >= a},
        )

    @rule(a=bounds, b=bounds)
    def subtract_interval(self, a, b):
        lo, hi = min(a, b), max(a, b)
        cut = Relation.from_atoms(("x",), [[le(lo, "x"), le("x", hi)]], DENSE_ORDER)
        self._sync(
            self.relation.difference(cut),
            {v for v in self.model if not lo <= v <= hi},
        )

    @rule()
    def complement_twice(self):
        self._sync(self.relation.complement().complement(), self.model)

    @rule()
    def simplify(self):
        self._sync(self.relation.simplify(), self.model)

    @rule()
    def round_trip_intervals(self):
        as_intervals = IntervalSet.from_relation(self.relation)
        self._sync(as_intervals.to_relation("x"), self.model)

    @invariant()
    def engine_matches_model_on_grid(self):
        for v in GRID:
            assert self.relation.contains_point([v]) == (v in self.model), (
                f"divergence at {v}"
            )

    @invariant()
    def interval_form_agrees(self):
        as_intervals = IntervalSet.from_relation(self.relation)
        for v in GRID:
            assert as_intervals.contains(v) == self.relation.contains_point([v])


TestRelationAlgebraMachine = RelationAlgebraMachine.TestCase
TestRelationAlgebraMachine.settings = __import__("hypothesis").settings(
    max_examples=25, stateful_step_count=12, deadline=None
)
