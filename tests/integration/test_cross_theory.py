"""Cross-theory integration: FO (dense order) vs FO+ (linear).

FO is a sublanguage of FO+: translating every dense-order atom to its
linear form must preserve query answers exactly.  This exercises two
entirely different decision procedures (order-graph reasoning vs
Fourier-Motzkin) against each other.
"""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.atoms import Atom
from repro.core.database import Database
from repro.core.evaluator import evaluate, evaluate_boolean
from repro.core.formula import (
    And,
    Constraint,
    Exists,
    ForAll,
    Formula,
    Not,
    Or,
    RelationAtom,
    _Boolean,
)
from repro.core.gtuple import GTuple
from repro.core.relation import Relation
from repro.core.theory import DENSE_ORDER
from repro.linear.latoms import from_dense_atom
from repro.linear.theory import LINEAR
from repro.linear.translate import (
    dense_to_linear_formula as translate_formula,
    dense_to_linear_relation as translate_relation,
)
from tests.strategies import formulas, fractions as fracs


class TestAtomAgreement:
    @settings(max_examples=150)
    @given(formulas(depth=2), st.data())
    def test_pointwise_agreement(self, f, data):
        """Dense and linear engines agree at random points."""
        dense_out = evaluate(f, None, DENSE_ORDER)
        linear_out = evaluate(translate_formula(f), Database(theory=LINEAR), LINEAR)
        names = sorted(v.name for v in f.free_variables())
        point = [data.draw(fracs) for _ in names]
        assert dense_out.contains_point(point) == linear_out.contains_point(point)

    @settings(max_examples=80, deadline=None)
    @given(formulas(depth=2))
    def test_sentence_agreement(self, f):
        from repro.core.terms import Var

        names = sorted(v.name for v in f.free_variables())
        sentence = Exists(tuple(Var(n) for n in names), f) if names else f
        dense = evaluate_boolean(sentence, None, DENSE_ORDER)
        linear = evaluate_boolean(
            translate_formula(sentence), Database(theory=LINEAR), LINEAR
        )
        assert dense == linear


class TestDatabaseQueries:
    def test_triangle_query_agreement(self):
        from repro.core.atoms import le, lt
        from repro.core.formula import constraint, exists, rel

        dense_db = Database()
        dense_db["T"] = Relation.from_atoms(
            ("x", "y"), [[le("x", "y"), le(0, "x"), le("y", 10)]], DENSE_ORDER
        )
        linear_db = Database(theory=LINEAR)
        linear_db["T"] = translate_relation(dense_db["T"])

        f = exists("y", rel("T", "x", "y") & constraint(lt("y", 5)))
        g = translate_formula(f)
        dense_out = evaluate(f, dense_db, DENSE_ORDER)
        linear_out = evaluate(g, linear_db, LINEAR)
        for v in (-1, 0, 3, Fraction(49, 10), 5, 11):
            assert dense_out.contains_point([v]) == linear_out.contains_point([v])


class TestSatisfiabilityAgreement:
    @settings(max_examples=200)
    @given(st.lists(st.tuples(fracs, fracs), max_size=4))
    def test_interval_systems(self, bounds):
        """Conjunctions of interval constraints: both theories agree."""
        from repro.core.atoms import le

        dense_atoms = []
        linear_atoms = []
        for i, (lo, hi) in enumerate(bounds):
            var = f"v{i % 2}"
            for made in (le(lo, var), le(var, hi)):
                if isinstance(made, bool):
                    continue
                dense_atoms.append(made)
                linear_atoms.append(from_dense_atom(made))
        assert DENSE_ORDER.is_satisfiable(dense_atoms) == LINEAR.is_satisfiable(
            linear_atoms
        )
