"""Execute every pycon block of docs/TUTORIAL.md as a doctest.

Documentation that the test suite runs cannot rot.
"""

import doctest
import pathlib
import re

import pytest

TUTORIAL = pathlib.Path(__file__).resolve().parents[2] / "docs" / "TUTORIAL.md"


def extract_blocks(text: str):
    """The ```pycon fenced blocks, with their section heading as a name."""
    blocks = []
    heading = "intro"
    fence = None
    lines = []
    for line in text.splitlines():
        if line.startswith("#"):
            if fence is None:
                heading = line.lstrip("# ").strip()
        if line.strip() == "```pycon":
            fence = []
            continue
        if line.strip() == "```" and fence is not None:
            blocks.append((heading, "\n".join(fence)))
            fence = None
            continue
        if fence is not None:
            fence.append(line)
    return blocks


BLOCKS = extract_blocks(TUTORIAL.read_text(encoding="utf-8"))


def test_tutorial_has_blocks():
    assert len(BLOCKS) >= 10


@pytest.mark.parametrize(
    "heading,source", BLOCKS, ids=[f"block{i}" for i in range(len(BLOCKS))]
)
def test_tutorial_block(heading, source):
    """Each block runs in a fresh namespace seeded by all earlier blocks
    of the same document (the tutorial builds up state)."""
    index = BLOCKS.index((heading, source))
    namespace: dict = {}
    parser = doctest.DocTestParser()
    runner = doctest.DocTestRunner(optionflags=doctest.NORMALIZE_WHITESPACE)
    for i in range(index + 1):
        _, chunk = BLOCKS[i]
        test = doctest.DocTest(
            parser.get_examples(chunk + "\n"),
            namespace,
            f"tutorial-{i}",
            str(TUTORIAL),
            None,
            chunk,
        )
        result = runner.run(test, clear_globs=False)
        namespace.update(test.globs)  # DocTest copies globs; carry state on
        assert result.failed == 0, f"doctest failures in block {i} ({heading})"
