"""Robustness: adversarial shapes, extreme values, resource guards.

A production engine must be exact on ugly inputs, not just pretty ones:
huge rationals, deep quantifier nesting, wide schemas, degenerate
relations, and clashing names.
"""

from fractions import Fraction

import pytest

from repro.core.atoms import eq, le, lt
from repro.core.database import Database
from repro.core.evaluator import evaluate, evaluate_boolean
from repro.core.formula import Not, conj, constraint, exists, forall, rel
from repro.core.intervals import IntervalSet
from repro.core.qe import eliminate_quantifiers, is_valid
from repro.core.relation import Relation
from repro.core.theory import DENSE_ORDER
from repro.errors import ReproError, SchemaError


class TestExtremeValues:
    def test_huge_rationals(self):
        big = Fraction(10**30 + 1, 10**30)
        near = Fraction(10**30 - 1, 10**30)
        r = Relation.from_atoms(("x",), [[lt(near, "x"), lt("x", big)]], DENSE_ORDER)
        assert r.contains_point([Fraction(1)])
        assert not r.contains_point([near])
        s = IntervalSet.from_relation(r)
        assert s.contains(Fraction(1))

    def test_dense_cluster_of_constants(self):
        """Constants packed 1/n apart: cell machinery stays exact."""
        points = [(Fraction(1, k),) for k in range(1, 12)]
        db = Database()
        db["S"] = Relation.from_points(("x",), points)
        between = exists(
            ["a", "b"],
            rel("S", "a") & rel("S", "b")
            & constraint(lt("a", "x")) & constraint(lt("x", "b")),
        )
        out = evaluate(between, db)
        assert out.contains_point([Fraction(7, 24)])  # between 1/4 and 1/3
        assert not out.contains_point([Fraction(2)])

    def test_negative_and_mixed_signs(self):
        r = Relation.from_atoms(
            ("x",), [[le(Fraction(-10**12), "x"), le("x", Fraction(-1, 10**12))]],
            DENSE_ORDER,
        )
        assert r.contains_point([Fraction(-1)])
        assert not r.contains_point([Fraction(0)])


class TestDeepNesting:
    def test_alternating_quantifier_tower(self):
        """10 alternating quantifiers over a dense-order matrix."""
        body = constraint(lt("v0", "v9"))
        f = body
        for i in reversed(range(10)):
            wrapper = exists if i % 2 == 0 else forall
            f = wrapper(f"v{i}", f)
        assert isinstance(evaluate_boolean(f), bool)

    def test_deep_negation_tower(self):
        f = constraint(lt("x", 0))
        for _ in range(30):
            f = Not(f)
        # even number of negations: equivalent to the original
        out = evaluate(f)
        assert out.contains_point([Fraction(-1)])
        assert not out.contains_point([Fraction(1)])

    def test_wide_conjunction(self):
        parts = [constraint(lt(i, "x")) for i in range(25)]
        out = evaluate(conj(*parts))
        assert out.contains_point([Fraction(25)])
        assert not out.contains_point([Fraction(10)])
        # canonical form keeps only the strongest bound
        [t] = out.tuples
        assert len(t.atoms) == 1


class TestWideSchemas:
    def test_six_column_join_chain(self):
        schema = tuple(f"c{i}" for i in range(6))
        r = Relation.from_atoms(
            schema, [[lt(f"c{i}", f"c{i+1}") for i in range(5)]], DENSE_ORDER
        )
        projected = r.project(("c0", "c5"))
        assert projected.contains_point([0, 1])
        assert not projected.contains_point([1, 0])

    def test_projection_eliminates_many(self):
        schema = tuple(f"c{i}" for i in range(6))
        r = Relation.from_atoms(
            schema, [[lt("c0", "c5")] + [le(0, f"c{i}") for i in range(6)]], DENSE_ORDER
        )
        out = r.project(())
        assert not out.is_empty()


class TestDegenerateInputs:
    def test_empty_everything(self):
        db = Database()
        db["S"] = Relation.empty(("x",))
        assert not evaluate_boolean(exists("x", rel("S", "x")), db)
        assert evaluate_boolean(forall("x", Not(rel("S", "x"))), db)

    def test_zero_arity_relation(self):
        db = Database()
        db["Flag"] = Relation.universe(())
        assert evaluate_boolean(rel("Flag"), db)
        db["Flag"] = Relation.empty(())
        assert not evaluate_boolean(rel("Flag"), db)

    def test_duplicate_heavy_representation(self):
        """100 copies of the same tuple collapse to one."""
        tuples = [[le(0, "x"), le("x", 1)]] * 100
        r = Relation.from_atoms(("x",), tuples, DENSE_ORDER)
        assert len(r) == 1

    def test_redundant_constants_vanish_in_canonical_form(self):
        atoms = [lt("x", k) for k in range(1, 20)]
        r = Relation.from_atoms(("x",), [atoms], DENSE_ORDER)
        [t] = r.tuples
        assert t.atoms == frozenset({lt("x", 1)})


class TestNameHygiene:
    def test_query_variables_shadow_nothing(self):
        """Internal fresh names (__argN, __setN) cannot collide with
        user columns."""
        db = Database()
        db["R"] = Relation.from_atoms(
            ("__arg0", "x"), [[lt("__arg0", "x")]], DENSE_ORDER
        )
        out = evaluate(exists("q", rel("R", "q", "z")), db)
        assert out.contains_point([5])

    def test_error_types_are_catchable(self):
        with pytest.raises(ReproError):
            Relation.universe(("x",)).project(("nope",))
        with pytest.raises(SchemaError):
            Database()["missing"]


class TestValidityStress:
    def test_chain_validity(self):
        """(x0 < x1 and ... and x4 < x5) implies x0 < x5 -- valid."""
        premises = conj(*(constraint(lt(f"x{i}", f"x{i+1}")) for i in range(5)))
        claim = premises.implies(constraint(lt("x0", "x5")))
        assert is_valid(claim)

    def test_qe_idempotent_on_big_formula(self):
        f = exists(
            ["a", "b"],
            conj(
                constraint(lt("a", "b")),
                constraint(lt("a", "x")),
                constraint(lt("x", "b")),
                constraint(le(0, "a")),
                constraint(le("b", 100)),
            ),
        )
        once = eliminate_quantifiers(f)
        twice = eliminate_quantifiers(once)
        assert once == twice
