"""End-to-end validation of the paper's headline claims.

One test class per theorem/claim, exercising the full stack the way
the experiments do, at test-suite-friendly sizes.  These are the
integration counterparts of the benchmark experiments E1-E11.
"""

from fractions import Fraction

import pytest

from repro.cobjects.calculus import evaluate_ccalc_boolean, set_height
from repro.core.atoms import le, lt
from repro.core.database import Database
from repro.core.evaluator import evaluate, evaluate_boolean
from repro.core.formula import constraint, exists, forall, rel
from repro.core.relation import Relation
from repro.core.theory import DENSE_ORDER
from repro.datalog.engine import evaluate_program
from repro.encoding.ptime import (
    capture_boolean,
    cardinality_parity_program,
    graph_connectivity_program,
)
from repro.encoding.standard import decode_database, encode_database
from repro.genericity.checks import check_generic
from repro.genericity.ef_games import duplicator_wins, linear_order
from repro.linear.region import count_components, is_connected
from repro.queries.library import (
    graph_connectivity_procedural,
    parity_ccalc,
    parity_procedural,
    transitive_closure_program,
)
from repro.workloads.generators import (
    cycle_graph,
    disjoint_cycles,
    interval_chain,
    path_graph,
    point_set,
    random_finite_graph,
    random_interval_database,
)


class TestClosedFormEvaluation:
    """Section 3 / [KKR90]: FO maps instances to instances."""

    @pytest.mark.parametrize("seed", range(3))
    def test_output_is_finitely_representable_and_reencodable(self, seed):
        db = random_interval_database(seed, count=5)
        f = exists("y", rel("S", "x") & rel("S", "y") & constraint(lt("x", "y")))
        out = evaluate(f, db)
        # the output round-trips through the standard encoding: it IS an instance
        out_db = Database({"Out": out})
        assert decode_database(encode_database(out_db))["Out"].equivalent(out)


class TestTheorem42:
    """Parity/connectivity not FO: EF evidence + one-level-up computability."""

    def test_parity_alternates_while_ef_types_stabilize(self):
        # orders of size 3 and 4 are 2-round equivalent yet differ in parity
        assert duplicator_wins(linear_order(3), linear_order(4), 2)
        assert parity_procedural(point_set(3)) != parity_procedural(point_set(4))

    @pytest.mark.parametrize("n", (2, 3, 4))
    def test_parity_is_ptime_computable(self, n):
        assert capture_boolean(
            cardinality_parity_program("S"), point_set(n), "result_odd"
        ) == (n % 2 == 1)

    def test_connectivity_contrast_instances(self):
        assert graph_connectivity_procedural(cycle_graph(6))
        assert not graph_connectivity_procedural(disjoint_cycles(3))
        assert capture_boolean(
            graph_connectivity_program(), cycle_graph(6), "connected"
        )
        assert not capture_boolean(
            graph_connectivity_program(), disjoint_cycles(3), "connected"
        )


class TestTheorem43:
    """Region connectivity: decidable procedurally, coherent across forms."""

    @pytest.mark.parametrize("n,overlap,expected", [(3, True, 1), (3, False, 3)])
    def test_interval_regions(self, n, overlap, expected):
        db = interval_chain(n, overlap=overlap)
        assert count_components(db["S"]) == expected

    def test_connectivity_is_a_query(self):
        """Connectivity IS generic (closed under automorphisms) -- the
        theorem says it is not *linear*, not that it is not a query."""
        from repro.genericity.checks import check_boolean_generic

        db = interval_chain(3, overlap=False)
        report = check_boolean_generic(
            lambda d: is_connected(d["S"]), db, count=5
        )
        assert report.generic


class TestTheorem44:
    """Datalog(not) = PTIME: both halves on the same instances."""

    @pytest.mark.parametrize("n", (3, 5))
    def test_easy_half_terminates_polynomially(self, n):
        result = evaluate_program(transitive_closure_program(), path_graph(n))
        assert result.reached_fixpoint
        assert result.rounds <= n + 1

    @pytest.mark.parametrize("seed", range(3))
    def test_hard_half_capture_agrees(self, seed):
        db = random_finite_graph(seed, vertex_count=4, edge_probability=0.5)
        assert capture_boolean(
            graph_connectivity_program(), db, "connected"
        ) == graph_connectivity_procedural(db)

    def test_closure_of_the_two_halves(self):
        """The constraint engine and the capture pipeline agree on a
        reachability-flavored boolean."""
        db = path_graph(4)
        # constraint-engine side: tc(0, 3) derivable?
        tc = evaluate_program(transitive_closure_program(), db)["tc"]
        assert tc.contains_point([0, 3])
        # capture side: connected (path is connected)
        assert capture_boolean(graph_connectivity_program(), db, "connected")


class TestTheorem52:
    """PTIME <= C-CALC_1: parity in both frameworks."""

    @pytest.mark.parametrize("n", (0, 1, 2, 3))
    def test_ccalc1_matches_capture_pipeline(self, n):
        db = point_set(n)
        formula = parity_ccalc("S")
        assert set_height(formula) == 1
        via_ccalc = evaluate_ccalc_boolean(formula, db)
        via_capture = capture_boolean(
            cardinality_parity_program("S"), db, "result_odd"
        )
        assert via_ccalc == via_capture == (n % 2 == 1)


class TestSection6Remark:
    """Density matters: the QE law 'exists x (l < x < u) <=> l < u' is
    *false* over discrete orders -- the repo's engine is specifically a
    dense-order engine (cf. the paper's closing remark that Theorem 4.4
    fails for discrete orders)."""

    def test_density_law_fails_on_integers(self):
        f = exists("m", constraint(lt(0, "m")) & constraint(lt("m", 1)))
        # over Q: true (density); over Z it would be false
        assert evaluate_boolean(f)
        # the integer counterexample, decided by hand:
        integer_points_between_0_and_1 = [
            k for k in range(-5, 6) if 0 < k < 1
        ]
        assert integer_points_between_0_and_1 == []
