"""Tests for the PTIME capture pipeline (Theorem 4.4, hard direction)."""

from fractions import Fraction

import pytest

from repro.core.database import Database
from repro.core.relation import Relation
from repro.encoding.order_encoding import row_width
from repro.encoding.ptime import (
    capture_boolean,
    cardinality_parity_program,
    graph_connectivity_program,
    run_capture,
)
from repro.errors import EncodingError
from repro.queries.library import (
    graph_connectivity_procedural,
    parity_procedural,
)
from repro.workloads.generators import (
    cycle_graph,
    disjoint_cycles,
    path_graph,
    point_set,
    random_finite_graph,
)
from repro.datalog.ast import Program, pred, rule


class TestParityCapture:
    @pytest.mark.parametrize("n", range(7))
    def test_matches_reference(self, n):
        db = point_set(n)
        expected = n % 2 == 1
        assert capture_boolean(cardinality_parity_program("S"), db, "result_odd") == expected

    def test_rational_constants(self):
        db = Database()
        db["S"] = Relation.from_points(
            ("x",), [(Fraction(1, 3),), (Fraction(2, 3),), (Fraction(5),)]
        )
        assert capture_boolean(cardinality_parity_program("S"), db, "result_odd")

    @pytest.mark.parametrize("n", (2, 5))
    def test_agrees_with_procedural(self, n):
        db = point_set(n, step=3)
        assert (
            capture_boolean(cardinality_parity_program("S"), db, "result_odd")
            == parity_procedural(db, "S")
        )


class TestConnectivityCapture:
    def test_path_connected(self):
        db = path_graph(5)
        assert capture_boolean(graph_connectivity_program(), db, "connected")
        assert not capture_boolean(graph_connectivity_program(), db, "disconnected")

    def test_cycle_connected(self):
        assert capture_boolean(graph_connectivity_program(), cycle_graph(6), "connected")

    def test_disjoint_cycles_disconnected(self):
        db = disjoint_cycles(3)
        assert not capture_boolean(graph_connectivity_program(), db, "connected")
        assert capture_boolean(graph_connectivity_program(), db, "disconnected")

    def test_single_vertex(self):
        db = path_graph(1)
        assert capture_boolean(graph_connectivity_program(), db, "connected")

    @pytest.mark.parametrize("seed", range(4))
    def test_agrees_with_procedural(self, seed):
        db = random_finite_graph(seed, vertex_count=5, edge_probability=0.4)
        expected = graph_connectivity_procedural(db)
        got = capture_boolean(graph_connectivity_program(), db, "connected")
        assert got == expected


class TestRunCapture:
    def test_relation_output_decodes(self):
        """A capture program whose output is a set of cells decodes to a
        generalized relation: 'members of S', the identity query."""
        program = Program(
            [rule("out", ["x"], pred("S", "x"))],
            edb={"S": 1, "cell": 1, "cell_lt": 2, "cell_succ": 2, "cell_point": 1},
        )
        db = point_set(3)
        out = run_capture(program, db, "out", 1, ("x",))
        assert out.equivalent(db["S"])

    def test_output_must_be_idb(self):
        program = Program(
            [rule("out", ["x"], pred("S", "x"))],
            edb={"S": 1, "cell": 1, "cell_lt": 2, "cell_succ": 2, "cell_point": 1},
        )
        with pytest.raises(EncodingError):
            run_capture(program, point_set(2), "nope", 1, ("x",))

    def test_output_width_checked(self):
        program = Program(
            [rule("out", ["x"], pred("S", "x"))],
            edb={"S": 1, "cell": 1, "cell_lt": 2, "cell_succ": 2, "cell_point": 1},
        )
        with pytest.raises(EncodingError):
            run_capture(program, point_set(2), "out", 2, ("x", "y"))


class TestGenericityOfCapture:
    def test_invariance_under_automorphism(self):
        """The captured query commutes with automorphisms: the pipeline
        only sees the order type (Definition 3.1 made operational)."""
        from repro.genericity.automorphisms import moving

        db = point_set(4)
        phi = moving({0: Fraction(-10), 1: Fraction(-1, 2), 2: Fraction(3), 3: Fraction(44)})
        moved = phi.apply_to_database(db)
        program = cardinality_parity_program("S")
        assert capture_boolean(program, db, "result_odd") == capture_boolean(
            program, moved, "result_odd"
        )
