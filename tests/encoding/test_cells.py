"""Tests for canonical cell decompositions and complete types."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.atoms import le, lt
from repro.core.relation import Relation
from repro.core.theory import DENSE_ORDER
from repro.encoding.cells import CellDecomposition, CellType, weak_orderings
from repro.errors import EncodingError
from tests.strategies import interval_sets

FUBINI = {0: 1, 1: 1, 2: 3, 3: 13, 4: 75}


class TestWeakOrderings:
    @pytest.mark.parametrize("n", sorted(FUBINI))
    def test_fubini_counts(self, n):
        assert sum(1 for _ in weak_orderings(list(range(n)))) == FUBINI[n]

    def test_blocks_partition(self):
        for ordering in weak_orderings([0, 1, 2]):
            flat = [x for block in ordering for x in block]
            assert sorted(flat) == [0, 1, 2]


@pytest.fixture
def deco():
    return CellDecomposition([Fraction(0), Fraction(1)])


class TestOneDim:
    def test_cell_count(self, deco):
        assert deco.cell_count == 5

    def test_cell_intervals(self, deco):
        texts = [str(deco.cell_interval(i)) for i in range(5)]
        assert texts == ["(-inf, 0)", "[0, 0]", "(0, 1)", "[1, 1]", "(1, +inf)"]

    def test_point_cells_odd(self, deco):
        assert [deco.is_point_cell(i) for i in range(5)] == [
            False, True, False, True, False,
        ]

    def test_cell_of_value(self, deco):
        assert deco.cell_of_value(Fraction(-5)) == 0
        assert deco.cell_of_value(Fraction(0)) == 1
        assert deco.cell_of_value(Fraction(1, 2)) == 2
        assert deco.cell_of_value(Fraction(1)) == 3
        assert deco.cell_of_value(Fraction(7)) == 4

    def test_cell_sample_in_cell(self, deco):
        for i in range(deco.cell_count):
            assert deco.cell_interval(i).contains(deco.cell_sample(i))

    def test_sample_ranks_increase(self, deco):
        for i in (0, 2, 4):
            a = deco.cell_sample(i, 0, 3)
            b = deco.cell_sample(i, 1, 3)
            c = deco.cell_sample(i, 2, 3)
            assert a < b < c
            for v in (a, b, c):
                assert deco.cell_interval(i).contains(v)

    def test_bad_index(self, deco):
        with pytest.raises(EncodingError):
            deco.cell_interval(9)

    def test_empty_decomposition(self):
        d = CellDecomposition([])
        assert d.cell_count == 1
        assert str(d.cell_interval(0)) == "(-inf, +inf)"


class TestCompleteTypes:
    def test_unary_count(self, deco):
        assert deco.type_count(1) == 5

    def test_binary_count(self, deco):
        # 5*5 cell pairs; the 3 same-open-cell pairs each expand to 3 orderings
        assert deco.type_count(2) == 31

    def test_types_are_distinct(self, deco):
        types = list(deco.complete_types(2))
        assert len(types) == len(set(types))

    def test_samples_realize_their_type(self, deco):
        for t in deco.complete_types(2):
            assert deco.type_of_point(deco.type_sample(t)) == t

    def test_ternary_samples_realize_their_type(self):
        d = CellDecomposition([Fraction(0)])
        for t in d.complete_types(3):
            assert d.type_of_point(d.type_sample(t)) == t

    def test_types_partition_sample_space(self, deco):
        """Every point belongs to exactly one complete type."""
        points = [
            (Fraction(-1), Fraction(2)),
            (Fraction(0), Fraction(0)),
            (Fraction(1, 3), Fraction(2, 3)),
            (Fraction(1, 2), Fraction(1, 2)),
        ]
        all_types = set(deco.complete_types(2))
        for p in points:
            t = deco.type_of_point(p)
            assert t in all_types


class TestSignatures:
    def test_segment_signature(self, deco):
        r = Relation.from_atoms(("x",), [[le(0, "x"), le("x", 1)]], DENSE_ORDER)
        sig = deco.signature(r)
        assert sorted(t.cells[0] for t in sig) == [1, 2, 3]

    def test_signature_round_trip(self, deco):
        r = Relation.from_atoms(
            ("x", "y"), [[le(0, "x"), le("x", "y"), le("y", 1)]], DENSE_ORDER
        )
        sig = deco.signature(r)
        back = deco.relation_of_signature(sig, ("x", "y"))
        assert back.equivalent(r)

    def test_signature_equivalence_is_canonical(self, deco):
        a = Relation.from_atoms(("x",), [[le(0, "x"), le("x", 1)]], DENSE_ORDER)
        b = Relation.from_atoms(
            ("x",),
            [[le(0, "x"), lt("x", Fraction(1, 2))], [le(Fraction(1, 2), "x"), le("x", 1)]],
            DENSE_ORDER,
        )
        big = CellDecomposition([Fraction(0), Fraction(1, 2), Fraction(1)])
        assert big.signature(a) == big.signature(b)

    def test_missing_constants_rejected(self, deco):
        r = Relation.from_atoms(("x",), [[le(7, "x")]], DENSE_ORDER)
        with pytest.raises(EncodingError):
            deco.signature(r)

    @settings(max_examples=60, deadline=None)
    @given(interval_sets(max_size=3))
    def test_random_unary_round_trip(self, s):
        r = s.to_relation("x")
        deco = CellDecomposition(r.constants())
        back = deco.relation_of_signature(deco.signature(r), ("x",))
        assert back.equivalent(r)
