"""Tests for the Theorem 4.4 order encoding / relational representation."""

from fractions import Fraction

import pytest
from hypothesis import given, settings

from repro.core.atoms import le, lt
from repro.core.database import Database
from repro.core.relation import Relation
from repro.core.theory import DENSE_ORDER
from repro.encoding.cells import CellDecomposition, CellType
from repro.encoding.order_encoding import (
    AUX_RELATIONS,
    encode_instance,
    decode_rows,
    row_of_type,
    row_width,
    rows_of_signature,
    type_of_row,
)
from repro.errors import EncodingError
from tests.strategies import interval_sets


class TestRowCodec:
    def test_row_width(self):
        assert row_width(0) == 0
        assert row_width(1) == 1
        assert row_width(2) == 3
        assert row_width(3) == 6

    def test_round_trip(self):
        t = CellType((2, 2), (-1,))
        assert type_of_row(row_of_type(t), 2) == t

    def test_bad_width_rejected(self):
        with pytest.raises(EncodingError):
            type_of_row((Fraction(1), Fraction(2)), 2)

    def test_bad_pattern_rejected(self):
        with pytest.raises(EncodingError):
            type_of_row((Fraction(0), Fraction(0), Fraction(9)), 2)

    def test_rows_are_small_consecutive_integers(self):
        """The paper: constants become consecutive integers."""
        deco = CellDecomposition([Fraction(-5), Fraction(22, 7)])
        for t in deco.complete_types(1):
            (cell,) = row_of_type(t)
            assert cell.denominator == 1
            assert 0 <= cell < deco.cell_count


class TestEncodeInstance:
    def test_aux_relations_present(self):
        db = Database()
        db["S"] = Relation.from_points(("x",), [(0,), (1,)])
        encoded = encode_instance(db)
        for name in AUX_RELATIONS:
            assert name in encoded.instance

    def test_cell_order_is_linear(self):
        db = Database()
        db["S"] = Relation.from_points(("x",), [(0,), (1,)])
        encoded = encode_instance(db)
        n = encoded.decomposition.cell_count
        assert len(encoded.instance["cell"]) == n
        assert len(encoded.instance["cell_lt"]) == n * (n - 1) // 2
        assert len(encoded.instance["cell_succ"]) == n - 1

    def test_reserved_names_rejected(self):
        db = Database()
        db["cell"] = Relation.from_points(("x",), [(0,)])
        with pytest.raises(EncodingError):
            encode_instance(db)

    def test_extra_constants_refine(self):
        db = Database()
        db["S"] = Relation.from_points(("x",), [(0,)])
        plain = encode_instance(db)
        refined = encode_instance(db, extra_constants=[Fraction(5)])
        assert refined.decomposition.cell_count > plain.decomposition.cell_count

    def test_decode_round_trip(self):
        db = Database()
        db["T"] = Relation.from_atoms(
            ("x", "y"), [[le(0, "x"), le("x", "y"), le("y", 1)]], DENSE_ORDER
        )
        encoded = encode_instance(db)
        back = encoded.decode("T", 2, ("x", "y"))
        assert back.equivalent(db["T"])

    @settings(max_examples=40, deadline=None)
    @given(interval_sets(max_size=3))
    def test_random_unary_round_trip(self, s):
        db = Database()
        db["S"] = s.to_relation("x")
        encoded = encode_instance(db)
        back = encoded.decode("S", 1, ("x",))
        assert back.equivalent(db["S"])

    def test_order_isomorphic_instances_encode_identically(self):
        """The whole point of the order encoding: only the order type of
        the constants matters, not their values."""
        a = Database()
        a["S"] = Relation.from_points(("x",), [(0,), (1,)])
        b = Database()
        b["S"] = Relation.from_points(("x",), [(Fraction(-7, 3),), (Fraction(100),)])
        ea, eb = encode_instance(a), encode_instance(b)
        assert ea.instance["S"] == eb.instance["S"]
        assert ea.instance["cell"] == eb.instance["cell"]
