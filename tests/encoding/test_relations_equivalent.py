"""Tests for the cell-signature equivalence fast path."""

from fractions import Fraction

import pytest
from hypothesis import given, settings

from repro.core.atoms import le, lt
from repro.core.relation import Relation
from repro.core.theory import DENSE_ORDER
from repro.encoding.cells import relations_equivalent
from repro.linear.latoms import lin_le
from repro.linear.theory import LINEAR
from tests.strategies import interval_sets


def seg(lo, hi, column="x"):
    return Relation.from_atoms((column,), [[le(lo, column), le(column, hi)]], DENSE_ORDER)


class TestFastPath:
    def test_equal_different_representations(self):
        a = seg(0, 2)
        b = Relation.from_atoms(
            ("x",),
            [[le(0, "x"), lt("x", 1)], [le(1, "x"), le("x", 2)]],
            DENSE_ORDER,
        )
        assert relations_equivalent(a, b)

    def test_unequal(self):
        assert not relations_equivalent(seg(0, 1), seg(0, 2))

    def test_schema_mismatch_is_false(self):
        assert not relations_equivalent(seg(0, 1), seg(0, 1, column="y"))

    def test_binary_relations(self):
        a = Relation.from_atoms(
            ("x", "y"), [[le("x", "y"), le(0, "x"), le("y", 1)]], DENSE_ORDER
        )
        split = Relation.from_atoms(
            ("x", "y"),
            [
                [le("x", "y"), le(0, "x"), lt("y", Fraction(1, 2))],
                [le("x", "y"), le(Fraction(1, 2), "y"), le("y", 1), le(0, "x")],
            ],
            DENSE_ORDER,
        )
        assert relations_equivalent(a, split)

    def test_linear_fallback(self):
        a = Relation.from_atoms(("x",), [[lin_le({"x": 2}, 2)]], LINEAR)
        b = Relation.from_atoms(("x",), [[lin_le({"x": 1}, 1)]], LINEAR)
        assert relations_equivalent(a, b)

    @settings(max_examples=50, deadline=None)
    @given(interval_sets(max_size=3), interval_sets(max_size=3))
    def test_agrees_with_generic_equivalence(self, s, t):
        a, b = s.to_relation("x"), t.to_relation("x")
        assert relations_equivalent(a, b) == a.equivalent(b)

    @settings(max_examples=40, deadline=None)
    @given(interval_sets(max_size=3))
    def test_reflexive(self, s):
        a = s.to_relation("x")
        assert relations_equivalent(a, a.simplify())
