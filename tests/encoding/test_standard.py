"""Tests for the standard string encoding (Section 3)."""

from fractions import Fraction

import pytest
from hypothesis import given, settings

from repro.core.atoms import eq, le, lt
from repro.core.database import Database
from repro.core.relation import Relation
from repro.core.theory import DENSE_ORDER
from repro.encoding.standard import (
    decode_database,
    encode_database,
    encoding_size,
    is_integer_instance,
)
from repro.errors import EncodingError
from repro.linear.theory import LINEAR
from repro.workloads.generators import random_interval_database
from tests.strategies import interval_sets

import hypothesis.strategies as st


class TestRoundTrip:
    def test_simple(self):
        db = Database()
        db["T"] = Relation.from_atoms(
            ("x", "y"), [[le("x", "y"), le(0, "x"), le("y", 10)]], DENSE_ORDER
        )
        back = decode_database(encode_database(db))
        assert back["T"].equivalent(db["T"])
        assert back.schema("T") == ("x", "y")

    def test_rationals(self):
        db = Database()
        db["S"] = Relation.from_atoms(
            ("x",), [[eq("x", Fraction(22, 7))]], DENSE_ORDER
        )
        back = decode_database(encode_database(db))
        assert back["S"].contains_point([Fraction(22, 7)])

    def test_empty_relation(self):
        db = Database()
        db["S"] = Relation.empty(("x",))
        back = decode_database(encode_database(db))
        assert back["S"].is_empty()
        assert back.schema("S") == ("x",)

    def test_multiple_relations(self):
        db = Database()
        db["A"] = Relation.from_points(("x",), [(1,)])
        db["B"] = Relation.from_points(("x", "y"), [(2, 3)])
        back = decode_database(encode_database(db))
        assert set(back.names()) == {"A", "B"}

    @settings(max_examples=50, deadline=None)
    @given(interval_sets(max_size=3))
    def test_random_round_trip(self, s):
        db = Database()
        db["S"] = s.to_relation("x")
        back = decode_database(encode_database(db))
        assert back["S"].equivalent(db["S"])

    def test_deterministic(self):
        db = random_interval_database(3, count=4)
        assert encode_database(db) == encode_database(db)


class TestValidation:
    def test_linear_database_rejected(self):
        db = Database(theory=LINEAR)
        with pytest.raises(EncodingError):
            encode_database(db)

    def test_bad_lines_rejected(self):
        with pytest.raises(EncodingError):
            decode_database("garbage line")
        with pytest.raises(EncodingError):
            decode_database("atom var:x < var:y")  # atom outside a tuple


class TestSizeMeasure:
    def test_size_grows_with_content(self):
        small = random_interval_database(1, count=2)
        large = random_interval_database(1, count=20)
        assert encoding_size(large) > encoding_size(small)

    def test_integer_instance_detection(self):
        db = Database()
        db["S"] = Relation.from_points(("x",), [(1,), (2,)])
        assert is_integer_instance(db)
        db["S"] = Relation.from_points(("x",), [(Fraction(1, 2),)])
        assert not is_integer_instance(db)
