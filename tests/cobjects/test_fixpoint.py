"""Tests for the C-CALC fixpoint extension (Theorem 5.6)."""

from fractions import Fraction

import pytest

from repro.cobjects.calculus import CAnd, CConstraint, CExists, COr, CRelation
from repro.cobjects.fixpoint import FixpointQuery, evaluate_fixpoint
from repro.core.atoms import le, lt
from repro.core.database import Database
from repro.core.relation import Relation
from repro.core.terms import as_term
from repro.errors import DatalogError, EvaluationError
from repro.workloads.generators import path_graph


def R(name, *args):
    return CRelation(name, tuple(as_term(a) for a in args))


class TestTransitiveClosure:
    def test_tc_in_ccalc0_fixpoint(self):
        """Transitive closure -- not FO, definable in C-CALC_0 + fixpoint."""
        db = path_graph(5)
        step = COr(
            (
                R("E", "x", "y"),
                CExists(("z",), CAnd((R("TC", "x", "z"), R("E", "z", "y")))),
            )
        )
        query = FixpointQuery("TC", ("x", "y"), step)
        tc = evaluate_fixpoint(query, db)
        assert tc.contains_point([0, 4])
        assert not tc.contains_point([4, 0])

    def test_dense_interval_spread(self):
        """Fixpoint over constraint relations stays in closed form."""
        db = Database()
        db["S"] = Relation.from_points(("x",), [(0,), (10,)])
        body = COr(
            (
                R("S", "x"),
                CExists(
                    ("a", "b"),
                    CAnd(
                        (
                            R("F", "a"),
                            R("F", "b"),
                            CConstraint(lt("a", "x")),
                            CConstraint(lt("x", "b")),
                        )
                    ),
                ),
            )
        )
        query = FixpointQuery("F", ("x",), body)
        out = evaluate_fixpoint(query, db)
        assert out.contains_point([5])
        assert out.contains_point([0])
        assert not out.contains_point([11])


class TestGuards:
    def test_name_clash_rejected(self):
        db = path_graph(2)
        query = FixpointQuery("E", ("x", "y"), R("E", "x", "y"))
        with pytest.raises(DatalogError):
            evaluate_fixpoint(query, db)

    def test_max_rounds(self):
        db = path_graph(6)
        step = COr(
            (
                R("E", "x", "y"),
                CExists(("z",), CAnd((R("TC", "x", "z"), R("E", "z", "y")))),
            )
        )
        query = FixpointQuery("TC", ("x", "y"), step)
        with pytest.raises(EvaluationError):
            evaluate_fixpoint(query, db, max_rounds=1)

    def test_arity_property(self):
        q = FixpointQuery("X", ("a", "b", "c"), CRelation("E", ()))
        assert q.arity == 3
