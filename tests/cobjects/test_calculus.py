"""Tests for C-CALC evaluation under the active-domain semantics."""

from fractions import Fraction

import pytest

from repro.cobjects.calculus import (
    CAnd,
    CConstraint,
    CExists,
    CForAll,
    CNot,
    CRelation,
    CTrue,
    Comprehension,
    ExistsSet,
    ForAllSet,
    Member,
    MemberSet,
    SetConst,
    SetEq,
    SetVar,
    evaluate_ccalc,
    evaluate_ccalc_boolean,
    set_height,
)
from repro.cobjects.objects import finite_set, region
from repro.cobjects.types import Q, SetType, TupleType
from repro.core.atoms import le, lt
from repro.core.database import Database
from repro.core.relation import Relation
from repro.core.terms import Var, as_term
from repro.core.theory import DENSE_ORDER
from repro.errors import EvaluationError, TypeCheckError
from repro.queries.library import parity_ccalc
from repro.workloads.generators import point_set


def seg(lo, hi):
    return Relation.from_atoms(("x",), [[le(lo, "x"), le("x", hi)]], DENSE_ORDER)


def S(v):
    return CRelation("S", (as_term(v),))


class TestSetHeight:
    def test_fo_fragment_is_height_zero(self):
        f = CExists(("x",), CAnd((S("x"), CConstraint(lt("x", 1)))))
        assert set_height(f) == 0

    def test_flat_set_variable_is_one(self):
        T = SetVar("T", SetType(Q))
        f = ExistsSet(T, Member((as_term("x"),), T))
        assert set_height(f) == 1

    def test_nested_is_two(self):
        U = SetVar("U", SetType(SetType(Q)))
        T = SetVar("T", SetType(Q))
        f = ExistsSet(U, ExistsSet(T, MemberSet(T, U)))
        assert set_height(f) == 2

    def test_comprehension_counts(self):
        c = Comprehension(("x",), S("x"))
        f = SetEq(c, c)
        assert set_height(f) == 1


class TestGroundEvaluation:
    def test_membership_in_constant_region(self):
        f = Member((as_term("x"),), SetConst(region(seg(0, 1))))
        out = evaluate_ccalc(f, Database(), extra_constants=[Fraction(0), Fraction(1)])
        assert out.contains_point([Fraction(1, 2)])
        assert not out.contains_point([Fraction(2)])

    def test_set_equality_of_constants(self):
        a = SetConst(region(seg(0, 1)))
        b = SetConst(region(seg(0, 1)))
        c = SetConst(region(seg(0, 2)))
        assert evaluate_ccalc_boolean(SetEq(a, b), Database())
        assert not evaluate_ccalc_boolean(SetEq(a, c), Database())

    def test_member_set(self):
        element = SetConst(region(seg(0, 1)))
        container = SetConst(finite_set([region(seg(0, 1)), region(seg(2, 3))]))
        assert evaluate_ccalc_boolean(MemberSet(element, container), Database())
        other = SetConst(region(seg(5, 6)))
        assert not evaluate_ccalc_boolean(MemberSet(other, container), Database())

    def test_unbound_set_variable_rejected(self):
        T = SetVar("T", SetType(Q))
        with pytest.raises(EvaluationError):
            evaluate_ccalc_boolean(Member((as_term("x"),), T), Database())


class TestComprehension:
    def test_comprehension_equals_relation(self):
        db = Database()
        db["S"] = seg(0, 1)
        c = Comprehension(("x",), S("x"))
        f = SetEq(c, SetConst(region(seg(0, 1))))
        assert evaluate_ccalc_boolean(f, db)

    def test_comprehension_with_connectives(self):
        db = Database()
        db["S"] = seg(0, 2)
        c = Comprehension(("x",), CAnd((S("x"), CConstraint(lt("x", 1)))))
        half_open = Relation.from_atoms(
            ("x",), [[le(0, "x"), lt("x", 1)]], DENSE_ORDER
        )
        assert evaluate_ccalc_boolean(SetEq(c, SetConst(region(half_open))), db)


class TestSetQuantifiers:
    def test_exists_superset_cell_union(self):
        """There is an active-domain set containing all of S."""
        db = point_set(2)
        T = SetVar("T", SetType(Q))
        f = ExistsSet(
            T, CForAll(("x",), S("x").implies(Member((as_term("x"),), T)))
        )
        assert evaluate_ccalc_boolean(f, db)

    def test_forall_fails_on_empty_set(self):
        """Not every active-domain set contains S (the empty one)."""
        db = point_set(1)
        T = SetVar("T", SetType(Q))
        f = ForAllSet(
            T, CForAll(("x",), S("x").implies(Member((as_term("x"),), T)))
        )
        assert not evaluate_ccalc_boolean(f, db)

    def test_parity_in_ccalc1(self):
        """Theorem 5.2's flavor: a PTIME non-FO query in C-CALC_1."""
        f = parity_ccalc("S")
        assert set_height(f) == 1
        for n in (0, 1, 2, 3):
            db = point_set(n)
            assert evaluate_ccalc_boolean(f, db) == (n % 2 == 1)

    def test_binary_set_variable(self):
        """Set variables over Q^2 range over unions of 2-D cells.

        A constant-free instance keeps the active domain tiny (the 3
        order cells of Q^2, so 8 candidate sets): enumeration over
        binary set types is exponential in the 2-type count.
        """
        db = Database()
        db["E"] = Relation.from_atoms(("x", "y"), [[lt("x", "y")]], DENSE_ORDER)
        T = SetVar("T", SetType(TupleType((Q, Q))))
        member = Member((as_term("x"), as_term("y")), T)
        f = ExistsSet(
            T,
            CForAll(
                ("x", "y"),
                CRelation("E", (as_term("x"), as_term("y"))).iff(member),
            ),
        )
        assert evaluate_ccalc_boolean(f, db)


class TestFreePointVariables:
    def test_result_over_free_vars(self):
        db = point_set(2)
        T = SetVar("T", SetType(Q))
        # x such that every active-domain set containing S contains x:
        # exactly the points of S
        f = ForAllSet(
            T,
            CForAll(("y",), S("y").implies(Member((as_term("y"),), T))).implies(
                Member((as_term("x"),), T)
            ),
        )
        out = evaluate_ccalc(f, db)
        assert out.contains_point([0])
        assert out.contains_point([1])
        assert not out.contains_point([Fraction(1, 2)])

    def test_sentence_check(self):
        db = point_set(1)
        with pytest.raises(EvaluationError):
            evaluate_ccalc_boolean(S("x"), db)
