"""Tests for the while extension (Theorem 5.6)."""

from fractions import Fraction

import pytest

from repro.cobjects.calculus import CAnd, CConstraint, CExists, CNot, COr, CRelation
from repro.cobjects.while_loop import WhileDivergence, WhileQuery, evaluate_while
from repro.core.atoms import le, lt
from repro.core.database import Database
from repro.core.relation import Relation
from repro.core.terms import as_term
from repro.errors import DatalogError
from repro.workloads.generators import path_graph


def R(name, *args):
    return CRelation(name, tuple(as_term(a) for a in args))


class TestStabilization:
    def test_transitive_closure_as_while(self):
        """Inflationary bodies stabilize: S := E union (S ; E)."""
        db = path_graph(4)
        body = COr(
            (
                R("E", "x", "y"),
                CExists(("z",), CAnd((R("W", "x", "z"), R("E", "z", "y")))),
            )
        )
        out = evaluate_while(WhileQuery("W", ("x", "y"), body), db)
        assert out.contains_point([0, 3])
        assert not out.contains_point([3, 0])

    def test_constant_body_stabilizes_immediately(self):
        db = Database()
        db["S"] = Relation.from_points(("x",), [(1,)])
        body = R("S", "x")
        out = evaluate_while(WhileQuery("W", ("x",), body), db)
        assert out.contains_point([1])

    def test_empty_loop(self):
        db = Database()
        db["S"] = Relation.empty(("x",))
        body = R("S", "x")
        out = evaluate_while(WhileQuery("W", ("x",), body), db)
        assert out.is_empty()


class TestDivergence:
    def test_complement_alternation_diverges(self):
        """S := {x | not W(x) and 0 <= x <= 1} flips between the empty
        set and [0, 1]: a 2-cycle, detected exactly."""
        db = Database()
        db["S"] = Relation.from_points(("x",), [(0,), (1,)])
        body = CAnd(
            (
                CNot(R("W", "x")),
                CConstraint(le(0, "x")),
                CConstraint(le("x", 1)),
            )
        )
        with pytest.raises(WhileDivergence):
            evaluate_while(WhileQuery("W", ("x",), body), db)

    def test_max_rounds_guard(self):
        db = path_graph(6)
        body = COr(
            (
                R("E", "x", "y"),
                CExists(("z",), CAnd((R("W", "x", "z"), R("E", "z", "y")))),
            )
        )
        from repro.errors import EvaluationError

        with pytest.raises(EvaluationError):
            evaluate_while(WhileQuery("W", ("x", "y"), body), db, max_rounds=1)


class TestGuards:
    def test_name_clash(self):
        db = path_graph(2)
        with pytest.raises(DatalogError):
            evaluate_while(WhileQuery("E", ("x", "y"), R("E", "x", "y")), db)

    def test_formula_constants_join_the_decomposition(self):
        """Constants appearing only in the body do not break state
        hashing (they refine the decomposition up front)."""
        db = Database()
        db["S"] = Relation.from_points(("x",), [(0,)])
        body = COr(
            (
                R("S", "x"),
                CAnd((CConstraint(le(5, "x")), CConstraint(le("x", 6)))),
            )
        )
        out = evaluate_while(WhileQuery("W", ("x",), body), db)
        assert out.contains_point([Fraction(11, 2)])
        assert out.contains_point([0])
