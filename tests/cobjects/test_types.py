"""Tests for c-types and set-height."""

import pytest

from repro.cobjects.types import (
    Q,
    QType,
    SetType,
    TupleType,
    flat_arity,
    is_flat,
    set_height,
)
from repro.errors import TypeCheckError


class TestConstruction:
    def test_q_singleton_semantics(self):
        assert QType() == Q

    def test_tuple_needs_components(self):
        with pytest.raises(TypeCheckError):
            TupleType(())

    def test_non_type_rejected(self):
        with pytest.raises(TypeCheckError):
            TupleType((Q, "oops"))
        with pytest.raises(TypeCheckError):
            SetType("oops")

    def test_str(self):
        t = SetType(TupleType((Q, Q)))
        assert str(t) == "{[Q, Q]}"


class TestSetHeight:
    def test_base(self):
        assert set_height(Q) == 0

    def test_tuple_takes_max(self):
        t = TupleType((Q, SetType(Q)))
        assert set_height(t) == 1

    def test_nesting_adds(self):
        assert set_height(SetType(SetType(Q))) == 2
        assert set_height(SetType(TupleType((SetType(Q), Q)))) == 2

    def test_paper_hierarchy_measure(self):
        """C-CALC_i uses types of set-height <= i; heights must be
        strictly increasing along nesting (Theorem 5.4's axis)."""
        levels = [Q]
        for _ in range(4):
            levels.append(SetType(levels[-1]))
        assert [set_height(t) for t in levels] == [0, 1, 2, 3, 4]


class TestFlatness:
    def test_q_is_flat(self):
        assert is_flat(Q)
        assert flat_arity(Q) == 1

    def test_tuple_of_q_is_flat(self):
        t = TupleType((Q, Q, Q))
        assert is_flat(t)
        assert flat_arity(t) == 3

    def test_set_is_not_flat(self):
        assert not is_flat(SetType(Q))
        with pytest.raises(TypeCheckError):
            flat_arity(SetType(Q))

    def test_tuple_with_set_not_flat(self):
        assert not is_flat(TupleType((Q, SetType(Q))))
