"""Tests for the active-domain construction (Section 5 semantics)."""

from fractions import Fraction

import pytest

from repro.cobjects.active_domain import ActiveDomain
from repro.cobjects.objects import FiniteSetObject, PointObject, RegionObject, TupleObject
from repro.cobjects.types import Q, SetType, TupleType
from repro.workloads.generators import point_set


@pytest.fixture
def ad():
    return ActiveDomain(point_set(2))


class TestDomainSizes:
    def test_base(self, ad):
        # constants {0, 1} -> 5 cells
        assert ad.domain_size(Q) == 5

    def test_tuple_product(self, ad):
        assert ad.domain_size(TupleType((Q, Q))) == 25

    def test_flat_set_is_powerset_of_cells(self, ad):
        assert ad.domain_size(SetType(Q)) == 2 ** 5

    def test_binary_flat_set(self, ad):
        count = ad.decomposition.type_count(2)
        assert ad.domain_size(SetType(TupleType((Q, Q)))) == 2 ** count

    def test_hyper_exponential_growth(self, ad):
        """Each set construct exponentiates: the Theorem 5.3-5.5 axis."""
        h1 = ad.domain_size(SetType(Q))
        h2 = ad.domain_size(SetType(SetType(Q)))
        assert h1 == 32
        assert h2 == 2 ** 32

    def test_extra_constants_refine(self):
        db = point_set(1)
        small = ActiveDomain(db)
        big = ActiveDomain(db, extra_constants=[Fraction(10)])
        assert big.domain_size(Q) > small.domain_size(Q)


class TestEnumeration:
    def test_points_cover_cells(self, ad):
        values = [o.value for o in ad.enumerate(Q)]
        assert len(values) == 5
        assert Fraction(0) in values and Fraction(1) in values

    def test_enumerate_matches_size(self, ad):
        for ctype in (Q, TupleType((Q, Q)), SetType(Q)):
            objects = list(ad.enumerate(ctype))
            assert len(objects) == ad.domain_size(ctype)
            assert len(set(objects)) == len(objects)

    def test_region_objects_are_unions_of_cells(self, ad):
        for obj in ad.enumerate(SetType(Q)):
            assert isinstance(obj, RegionObject)
            assert obj.arity == 1

    def test_nested_sets_enumerate(self):
        ad = ActiveDomain(point_set(0))  # no constants: 1 cell
        assert ad.domain_size(SetType(Q)) == 2
        nested = list(ad.enumerate(SetType(SetType(Q))))
        assert len(nested) == 4  # powerset of a 2-element domain
        assert all(isinstance(o, FiniteSetObject) for o in nested)

    def test_point_values(self, ad):
        values = ad.point_values()
        assert values == sorted(values)
        assert len(values) == 5
