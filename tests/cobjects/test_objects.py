"""Tests for c-objects."""

from fractions import Fraction

import pytest

from repro.cobjects.objects import (
    FiniteSetObject,
    PointObject,
    RegionObject,
    TupleObject,
    check_type,
    finite_set,
    point,
    region,
    tup,
)
from repro.cobjects.types import Q, SetType, TupleType
from repro.core.atoms import le, lt
from repro.core.relation import Relation
from repro.core.theory import DENSE_ORDER
from repro.errors import TypeCheckError
from repro.linear.theory import LINEAR


def seg(lo, hi):
    return Relation.from_atoms(("x",), [[le(lo, "x"), le("x", hi)]], DENSE_ORDER)


class TestPointsAndTuples:
    def test_point_coercion(self):
        assert point(3).value == Fraction(3)

    def test_tuple(self):
        t = tup(point(1), point(2))
        assert t.components == (PointObject(Fraction(1)), PointObject(Fraction(2)))

    def test_hashable(self):
        assert hash(tup(point(1))) == hash(tup(point(1)))


class TestRegionObjects:
    def test_equality_is_semantic(self):
        a = region(seg(0, 2))
        split = Relation.from_atoms(
            ("x",),
            [[le(0, "x"), lt("x", 1)], [le(1, "x"), le("x", 2)]],
            DENSE_ORDER,
        )
        b = region(split)
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality(self):
        assert region(seg(0, 1)) != region(seg(0, 2))

    def test_junk_constants_still_equal(self):
        """Representations mentioning extra constants compare correctly."""
        a = region(seg(0, 2))
        redundant = Relation.from_atoms(
            ("x",), [[le(0, "x"), le("x", 2), lt("x", 5)]], DENSE_ORDER
        )
        b = region(redundant)
        assert a == b

    def test_arity_mismatch_not_equal(self):
        assert region(seg(0, 1)) != region(Relation.universe(("x", "y")))

    def test_linear_rejected(self):
        with pytest.raises(TypeCheckError):
            region(Relation.universe(("x",), LINEAR))

    def test_empty(self):
        assert region(Relation.empty(("x",))).is_empty()
        assert not region(seg(0, 1)).is_empty()


class TestFiniteSets:
    def test_set_of_regions(self):
        s = finite_set([region(seg(0, 1)), region(seg(2, 3))])
        assert len(s.elements) == 2

    def test_semantic_dedup_inside_sets(self):
        a = region(seg(0, 1))
        b = region(
            Relation.from_atoms(
                ("x",), [[le(0, "x"), le("x", 1)], [le(0, "x"), le("x", 1)]], DENSE_ORDER
            )
        )
        s = finite_set([a, b])
        assert len(s.elements) == 1


class TestCheckType:
    def test_points(self):
        assert check_type(point(1), Q)
        assert not check_type(point(1), SetType(Q))

    def test_tuples(self):
        t = tup(point(1), point(2))
        assert check_type(t, TupleType((Q, Q)))
        assert not check_type(t, TupleType((Q, Q, Q)))

    def test_regions(self):
        r = region(seg(0, 1))
        assert check_type(r, SetType(Q))
        assert not check_type(r, SetType(TupleType((Q, Q))))
        r2 = region(Relation.universe(("x", "y")))
        assert check_type(r2, SetType(TupleType((Q, Q))))

    def test_nested_sets(self):
        s = finite_set([region(seg(0, 1))])
        assert check_type(s, SetType(SetType(Q)))
        assert not check_type(s, SetType(Q))
