"""Tests for the range-restricted semantics (paper §5, closing remark)."""

import time
from fractions import Fraction

import pytest

from repro.cobjects.calculus import (
    CAnd,
    CConstraint,
    CForAll,
    CRelation,
    Comprehension,
    ExistsSet,
    ForAllSet,
    Member,
    SetConst,
    SetEq,
    SetVar,
    evaluate_ccalc_boolean,
)
from repro.cobjects.objects import region
from repro.cobjects.range_restriction import (
    RangeRestrictionError,
    check_range_restricted,
    evaluate_ccalc_restricted_boolean,
    restricted_domain,
)
from repro.cobjects.types import Q, SetType
from repro.core.atoms import le, lt
from repro.core.database import Database
from repro.core.relation import Relation
from repro.core.terms import as_term
from repro.core.theory import DENSE_ORDER
from repro.workloads.generators import point_set


def seg(lo, hi):
    return Relation.from_atoms(("x",), [[le(lo, "x"), le("x", hi)]], DENSE_ORDER)


T = SetVar("T", SetType(Q))


def comprehension_of_s():
    return Comprehension(("x",), CRelation("S", (as_term("x"),)))


class TestSyntacticCheck:
    def test_bound_by_equality_passes(self):
        f = ExistsSet(T, SetEq(T, comprehension_of_s()))
        assert check_range_restricted(f) == []

    def test_bound_by_constant_passes(self):
        f = ExistsSet(T, SetEq(T, SetConst(region(seg(0, 1)))))
        assert check_range_restricted(f) == []

    def test_unbound_variable_flagged(self):
        f = ExistsSet(T, Member((as_term("x"),), T))
        assert check_range_restricted(f) == ["T"]

    def test_variable_equals_variable_not_binding(self):
        U = SetVar("U", SetType(Q))
        f = ExistsSet(T, ExistsSet(U, SetEq(T, U)))
        assert set(check_range_restricted(f)) == {"T", "U"}

    def test_shadowing_respected(self):
        inner = ExistsSet(T, SetEq(T, SetConst(region(seg(0, 1)))))
        outer = ExistsSet(T, CAnd((inner, Member((as_term("x"),), T))))
        assert check_range_restricted(outer) == ["T"]


class TestRestrictedDomain:
    def test_contains_stored_relations(self):
        db = Database()
        db["S"] = seg(0, 1)
        f = ExistsSet(T, SetEq(T, SetConst(region(seg(5, 6)))))
        domain = restricted_domain(f, db, SetType(Q))
        assert region(seg(0, 1).rename({"x": "x0"})) in domain
        assert region(seg(5, 6)) in domain

    def test_linear_not_exponential(self):
        """|restricted domain| is linear in input size (vs 2^cells)."""
        db = point_set(4)
        f = ExistsSet(T, SetEq(T, comprehension_of_s()))
        domain = restricted_domain(f, db, SetType(Q))
        assert len(domain) <= 3  # stored S + the comprehension value


class TestRestrictedEvaluation:
    def test_rejects_unrestricted(self):
        db = point_set(2)
        f = ExistsSet(T, Member((as_term("x"),), T))
        with pytest.raises(RangeRestrictionError):
            evaluate_ccalc_restricted_boolean(
                CForAll(("x",), f), db
            )

    def test_agrees_with_active_domain_on_restricted_query(self):
        """'There is an input-derived set equal to {x | S(x)} whose
        members are all <= 3' -- restricted and active-domain semantics
        coincide whenever the witness set comes from the input."""
        db = Database()
        db["S"] = seg(0, 2)
        body = CAnd(
            (
                SetEq(T, comprehension_of_s()),
                CForAll(
                    ("x",),
                    Member((as_term("x"),), T).implies(CConstraint(le("x", 3))),
                ),
            )
        )
        f = ExistsSet(T, body)
        restricted = evaluate_ccalc_restricted_boolean(f, db)
        active = evaluate_ccalc_boolean(f, db)
        assert restricted == active == True  # noqa: E712

    def test_restricted_faster_than_active_domain(self):
        db = point_set(3)  # 7 cells -> 128 active-domain sets
        f = ExistsSet(
            T,
            CAnd(
                (
                    SetEq(T, comprehension_of_s()),
                    CForAll(
                        ("x",),
                        Member((as_term("x"),), T).implies(CConstraint(le("x", 10))),
                    ),
                )
            ),
        )
        t0 = time.perf_counter()
        restricted = evaluate_ccalc_restricted_boolean(f, db)
        restricted_time = time.perf_counter() - t0
        t0 = time.perf_counter()
        active = evaluate_ccalc_boolean(f, db)
        active_time = time.perf_counter() - t0
        assert restricted == active
        assert restricted_time < active_time

    def test_restricted_misses_non_input_witnesses(self):
        """The semantics differ where the paper says they should: a set
        NOT derivable from the input can witness the active-domain
        quantifier but not the restricted one."""
        db = Database()
        db["S"] = seg(0, 2)
        strange = CAnd(
            (
                SetEq(T, SetConst(region(seg(0, 1)))),  # binding occurrence
                Member((as_term("w"),), T),
            )
        )
        # under both semantics this particular query agrees (the witness
        # is a constant of the query) -- the difference shows with a
        # purely active-domain witness:
        halves = ExistsSet(
            T,
            CAnd(
                (
                    SetEq(T, comprehension_of_s()),
                    Member((Fraction(1),), T),
                )
            ),
        )
        assert evaluate_ccalc_restricted_boolean(halves, db)
