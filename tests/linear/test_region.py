"""Unit tests for topological (region) connectivity -- Theorem 4.3's query."""

from fractions import Fraction

import pytest

from repro.core.atoms import le, lt
from repro.core.relation import Relation
from repro.core.theory import DENSE_ORDER
from repro.linear.latoms import lin_le, lin_lt
from repro.linear.region import (
    closure,
    closure_tuple,
    connected_components,
    count_components,
    gluing_graph,
    is_connected,
    tuples_glued,
)
from repro.linear.theory import LINEAR
from repro.workloads.generators import checkerboard_region, interval_chain, staircase_region


def square(a, closed=True, theory=LINEAR):
    op = lin_le if closed else lin_lt
    return [op(a, "x"), op("x", a + 1), op(a, "y"), op("y", a + 1)]


def rel2(*tuples, theory=LINEAR):
    return Relation.from_atoms(("x", "y"), tuples, theory)


class TestClosure:
    def test_weakens_strict(self):
        r = Relation.from_atoms(("x",), [[lt(0, "x"), lt("x", 1)]], DENSE_ORDER)
        c = closure(r)
        assert c.contains_point([0])
        assert c.contains_point([1])
        assert not c.contains_point([2])

    def test_closed_set_fixed(self):
        r = Relation.from_atoms(("x",), [[le(0, "x"), le("x", 1)]], DENSE_ORDER)
        assert closure(r).equivalent(r)


class TestGluing:
    def test_overlapping_squares(self):
        r = rel2([lin_le(0, "x"), lin_le("x", 2)], [lin_le(1, "x"), lin_le("x", 3)])
        [a, b] = r.tuples
        assert tuples_glued(a, b)

    def test_touching_closed_squares(self):
        r = rel2(square(0), square(1))
        [a, b] = r.tuples
        assert tuples_glued(a, b)  # share the corner (1, 1)

    def test_open_corner_squares_not_glued(self):
        r = rel2(square(0, closed=False), square(1, closed=False))
        [a, b] = r.tuples
        assert not tuples_glued(a, b)

    def test_half_open_boundary(self):
        # [0,1) and [1,2] on the line: glued ([1,2] contains the limit 1)
        left = Relation.from_atoms(
            ("x",), [[le(0, "x"), lt("x", 1)], [le(1, "x"), le("x", 2)]], DENSE_ORDER
        )
        [a, b] = left.tuples
        assert tuples_glued(a, b)

    def test_open_gap_not_glued(self):
        r = Relation.from_atoms(
            ("x",), [[lt(0, "x"), lt("x", 1)], [lt(1, "x"), lt("x", 2)]], DENSE_ORDER
        )
        [a, b] = r.tuples
        assert not tuples_glued(a, b)


class TestConnectivity:
    def test_empty_is_connected(self):
        assert is_connected(Relation.empty(("x",), DENSE_ORDER))
        assert count_components(Relation.empty(("x",), DENSE_ORDER)) == 0

    def test_interval_chain_connected(self):
        db = interval_chain(6, overlap=True)
        assert is_connected(db["S"])
        assert count_components(db["S"]) == 1

    def test_interval_chain_separated(self):
        db = interval_chain(6, overlap=False)
        assert not is_connected(db["S"])
        assert count_components(db["S"]) == 6

    def test_checkerboard_connected(self):
        db = checkerboard_region(3)
        assert is_connected(db["R"])

    def test_staircase_gap(self):
        assert is_connected(staircase_region(5)["R"])
        assert count_components(staircase_region(5, gap=True)["R"]) == 2

    def test_components_partition(self):
        db = interval_chain(4, overlap=False)
        parts = connected_components(db["S"])
        assert len(parts) == 4
        total = parts[0]
        for p in parts[1:]:
            total = total.union(p)
        assert total.equivalent(db["S"])

    def test_gluing_graph_shape(self):
        db = interval_chain(3, overlap=True)
        graph = gluing_graph(db["S"])
        # chain: 0-1, 1-2 at least; all within one component
        assert len(graph) == len(db["S"].tuples)

    def test_linear_wedge(self):
        """Two triangles meeting at one point: connected."""
        lower = [lin_le(0, "x"), lin_le("y", "x"), lin_le({"x": 1, "y": 1}, 2), lin_le(0, "y")]
        upper = [lin_le("x", 0), lin_le("y", {"x": -1}), lin_le(-2, {"x": 1, "y": 1}), lin_le("y", 0)]
        r = rel2(lower, upper)
        if len(r.tuples) == 2:
            assert is_connected(r)
