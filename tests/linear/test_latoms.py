"""Unit tests for linear expressions and atoms."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.atoms import eq, le, lt, ne
from repro.core.terms import Var
from repro.errors import TheoryError
from repro.linear.latoms import (
    LinAtom,
    LinExpr,
    LinOp,
    from_dense_atom,
    lin_eq,
    lin_ge,
    lin_gt,
    lin_le,
    lin_lt,
    lin_ne,
    linatom,
    linexpr,
)
from tests.strategies import fractions as fracs


class TestLinExpr:
    def test_make_drops_zero_coefficients(self):
        e = LinExpr.make({"x": 0, "y": 2}, 1)
        assert e.coeffs == (("y", Fraction(2)),)
        assert e.const == 1

    def test_add_sub(self):
        a = LinExpr.make({"x": 1, "y": 2}, 3)
        b = LinExpr.make({"x": -1, "z": 1}, 1)
        s = a + b
        assert s.coefficient("x") == 0
        assert s.coefficient("y") == 2
        assert s.coefficient("z") == 1
        assert s.const == 4
        assert (a - a).is_constant

    def test_scale(self):
        e = LinExpr.make({"x": 2}, 4).scale(Fraction(1, 2))
        assert e.coefficient("x") == 1
        assert e.const == 2

    def test_substitute(self):
        e = LinExpr.make({"x": 2, "y": 1})
        s = e.substitute({"x": LinExpr.make({"z": 1}, 5)})
        assert s.coefficient("z") == 2
        assert s.coefficient("y") == 1
        assert s.const == 10

    def test_evaluate(self):
        e = LinExpr.make({"x": 2, "y": -1}, 1)
        value = e.evaluate({Var("x"): Fraction(3), Var("y"): Fraction(2)})
        assert value == 5

    def test_evaluate_missing_raises(self):
        with pytest.raises(TheoryError):
            LinExpr.of_var("x").evaluate({})

    def test_str_forms(self):
        assert str(LinExpr.make({"x": 1, "y": -1})) == "x - y"
        assert str(LinExpr.make({}, 3)) == "3"

    @given(fracs, fracs)
    def test_linearity(self, a, b):
        e = LinExpr.make({"x": 2}, 1)
        env = {Var("x"): a + b}
        assert e.evaluate(env) == 2 * (a + b) + 1


class TestLinAtomNormalization:
    def test_folds_ground(self):
        assert lin_lt(1, 2) is True
        assert lin_lt(2, 1) is False
        assert lin_eq(3, 3) is True

    def test_scaling_canonical(self):
        assert lin_le({"x": 2, "y": 2}, 2) == lin_le({"x": 1, "y": 1}, 1)

    def test_eq_sign_canonical(self):
        assert lin_eq({"x": -1}, 1) == lin_eq({"x": 1}, -1)

    def test_ge_gt_flip(self):
        a = lin_ge("x", "y")  # x >= y  <=>  y - x <= 0
        b = lin_le("y", "x")
        assert a == b
        assert lin_gt("x", 0) == lin_lt(0, "x")

    def test_ne_splits(self):
        parts = lin_ne("x", "y")
        assert len(parts) == 2
        assert all(p.op is LinOp.LT for p in parts)


class TestLinAtomProtocol:
    def test_variables_constants(self):
        a = lin_le({"x": 1, "y": 2}, 3)
        assert a.variables == {Var("x"), Var("y")}

    def test_negate_partition(self):
        a = lin_lt({"x": 1}, 1)  # x < 1
        [n] = a.negate()  # x >= 1
        assert n.evaluate({Var("x"): Fraction(1)})
        assert not n.evaluate({Var("x"): Fraction(0)})

    def test_negate_eq(self):
        a = lin_eq({"x": 1}, 0)
        parts = a.negate()
        assert len(parts) == 2
        for value in (Fraction(-1), Fraction(1)):
            assert any(p.evaluate({Var("x"): value}) for p in parts)
        assert not any(p.evaluate({Var("x"): Fraction(0)}) for p in parts)

    def test_substitute_folds(self):
        a = lin_lt({"x": 1}, 1)
        from repro.core.terms import Const

        assert a.substitute({Var("x"): Const(Fraction(0))}) is True
        assert a.substitute({Var("x"): Const(Fraction(2))}) is False

    def test_evaluate(self):
        a = lin_le({"x": 1, "y": 1}, 1)  # x + y <= 1
        assert a.evaluate({Var("x"): Fraction(1, 2), Var("y"): Fraction(1, 2)})
        assert not a.evaluate({Var("x"): Fraction(1), Var("y"): Fraction(1)})

    @given(fracs, fracs)
    def test_negation_complement(self, x, y):
        a = lin_lt({"x": 2, "y": -3}, 1)
        env = {Var("x"): x, Var("y"): y}
        assert a.evaluate(env) != any(n.evaluate(env) for n in a.negate())


class TestFromDenseAtom:
    @given(fracs, fracs)
    def test_agrees_with_dense(self, x, y):
        env = {Var("x"): x, Var("y"): y}
        for dense in (lt("x", "y"), le("x", 1), eq("x", "y")):
            if isinstance(dense, bool):
                continue
            linear = from_dense_atom(dense)
            assert linear.evaluate(env) == dense.evaluate(env)

    def test_ne_gives_disjunction(self):
        parts = from_dense_atom(ne("x", "y"))
        assert isinstance(parts, list)
        assert len(parts) == 2


class TestLinexprCoercions:
    def test_accepts_everything(self):
        assert linexpr("x") == LinExpr.of_var("x")
        assert linexpr(3) == LinExpr.of_const(3)
        assert linexpr({"x": 2}) == LinExpr.make({"x": 2})
        assert linexpr(Var("y")) == LinExpr.of_var("y")
        e = LinExpr.make({"z": 1})
        assert linexpr(e) is e
