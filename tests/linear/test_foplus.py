"""FO+ end-to-end: the generic engine over the linear theory."""

from fractions import Fraction

import pytest

from repro.core.database import Database
from repro.core.evaluator import evaluate, evaluate_boolean
from repro.core.formula import Not, constraint, exists, forall, rel
from repro.core.relation import Relation
from repro.linear.latoms import lin_eq, lin_le, lin_lt
from repro.linear.theory import LINEAR


def C(a):
    return constraint(a)


@pytest.fixture
def db():
    database = Database(theory=LINEAR)
    # the triangle x + y <= 1, x >= 0, y >= 0
    database["T"] = Relation.from_atoms(
        ("x", "y"),
        [[lin_le({"x": 1, "y": 1}, 1), lin_le(0, "x"), lin_le(0, "y")]],
        LINEAR,
    )
    database["S"] = Relation.from_points(("x",), [(0,), (4,)], LINEAR)
    return database


class TestEvaluation:
    def test_projection_of_triangle(self, db):
        out = evaluate(exists("y", rel("T", "x", "y")), db, theory=LINEAR)
        assert out.contains_point([Fraction(1, 2)])
        assert out.contains_point([0])
        assert out.contains_point([1])
        assert not out.contains_point([Fraction(3, 2)])

    def test_diagonal_slice(self, db):
        # points of T on the line x = y: 0 <= x <= 1/2
        out = evaluate(rel("T", "x", "x"), db, theory=LINEAR)
        assert out.contains_point([Fraction(1, 2)])
        assert not out.contains_point([Fraction(3, 4)])

    def test_midpoint_query(self, db):
        """The FO+ midpoint query: z with x + y = 2z for S-members x, y."""
        f = exists(
            ["mx", "my"],
            rel("S", "mx") & rel("S", "my") & C(lin_eq({"mx": 1, "my": 1}, {"z": 2})),
        )
        out = evaluate(f, db, theory=LINEAR)
        assert out.contains_point([0])  # (0+0)/2
        assert out.contains_point([2])  # (0+4)/2
        assert out.contains_point([4])
        assert not out.contains_point([1])

    def test_complement(self, db):
        out = evaluate(Not(rel("T", "x", "y")), db, theory=LINEAR)
        assert out.contains_point([2, 2])
        assert not out.contains_point([Fraction(1, 4), Fraction(1, 4)])

    def test_sentences(self, db):
        assert evaluate_boolean(
            exists(["x", "y"], rel("T", "x", "y")), db, theory=LINEAR
        )
        # all triangle points satisfy x <= 1
        f = forall(
            ["x", "y"], rel("T", "x", "y").implies(C(lin_le("x", 1)))
        )
        assert evaluate_boolean(f, db, theory=LINEAR)

    def test_addition_is_really_needed(self, db):
        """Scaling: FO+ can define {x | 2x in S}, unreachable in FO."""
        f = exists("s", rel("S", "s") & C(lin_eq({"s": 1}, {"x": 2})))
        out = evaluate(f, db, theory=LINEAR)
        assert out.contains_point([2])  # 2*2 = 4 in S
        assert out.contains_point([0])
        assert not out.contains_point([4])


class TestClosedForm:
    def test_fo_plus_is_closed(self, db):
        """Output of an FO+ query is again a linear relation (Tarski's
        additive fragment; [Tar51] via Fourier-Motzkin)."""
        f = exists("y", rel("T", "x", "y") & C(lin_lt("y", Fraction(1, 2))))
        out = evaluate(f, db, theory=LINEAR)
        assert out.theory is LINEAR
        assert out.contains_point([1])
        assert not out.contains_point([Fraction(3, 2)])
