"""Unit and property tests for Fourier-Motzkin and the linear theory."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.terms import Var
from repro.linear.latoms import LinExpr, lin_eq, lin_le, lin_lt
from repro.linear.theory import LINEAR

import hypothesis.strategies as hst
from tests.strategies import fractions as fracs


@hst.composite
def linear_conjunctions(draw, max_atoms=4, variables=("x", "y")):
    atoms = []
    for _ in range(draw(hst.integers(min_value=0, max_value=max_atoms))):
        coeffs = {v: draw(hst.integers(min_value=-2, max_value=2)) for v in variables}
        rhs = draw(fracs)
        op = draw(hst.sampled_from([lin_lt, lin_le, lin_eq]))
        made = op(coeffs, rhs)
        if not isinstance(made, bool):
            atoms.append(made)
    return atoms


class TestSatisfiability:
    def test_empty_satisfiable(self):
        assert LINEAR.is_satisfiable([])

    def test_triangle(self):
        atoms = [lin_le({"x": 1, "y": 1}, 1), lin_le(0, "x"), lin_le(0, "y")]
        assert LINEAR.is_satisfiable(atoms)

    def test_contradiction(self):
        atoms = [lin_lt({"x": 1, "y": 1}, 0), lin_le(1, "x"), lin_le(1, "y")]
        assert not LINEAR.is_satisfiable(atoms)

    def test_tight_equality(self):
        atoms = [lin_eq({"x": 1, "y": 1}, 2), lin_eq({"x": 1, "y": -1}, 0), lin_le("x", 1)]
        assert LINEAR.is_satisfiable(atoms)  # x = y = 1

    def test_strict_against_equality(self):
        atoms = [lin_eq({"x": 1}, 1), lin_lt("x", 1)]
        assert not LINEAR.is_satisfiable(atoms)


class TestProjection:
    def test_strict_composition(self):
        # exists y: x < y and y < z  =>  x < z
        [result] = LINEAR.project_out([lin_lt("x", "y"), lin_lt("y", "z")], Var("y"))
        assert result == [lin_lt("x", "z")]

    def test_scaled_bounds(self):
        # exists y: 2y <= x and z <= 3y  =>  z/3 <= x/2  <=> 2z <= 3x
        [result] = LINEAR.project_out(
            [lin_le({"y": 2}, {"x": 1}), lin_le({"z": 1}, {"y": 3})], Var("y")
        )
        assert result == [lin_le({"z": 2}, {"x": 3})]

    def test_equality_substitution(self):
        # exists y: y = x + 1 and y <= 4  =>  x + 1 <= 4
        [result] = LINEAR.project_out(
            [lin_eq({"y": 1, "x": -1}, 1), lin_le("y", 4)], Var("y")
        )
        assert result == [lin_le("x", 3)]

    def test_one_sided_vanishes(self):
        [result] = LINEAR.project_out([lin_le("x", "y")], Var("y"))
        assert result == []

    @settings(max_examples=150, deadline=None)
    @given(linear_conjunctions(), st.data())
    def test_projection_sound_and_complete(self, atoms, data):
        """FM elimination: a point satisfies the projection iff it
        extends to a point of the original system."""
        cases = LINEAR.project_out(atoms, Var("y"))
        x_value = data.draw(fracs)
        if not cases:
            # projection collapsed to false: original must be unsat at any x
            assert not LINEAR.is_satisfiable(atoms + [lin_eq("x", x_value)])
            return
        [projected] = cases
        projected_holds = LINEAR.is_satisfiable(projected + [lin_eq("x", x_value)])
        original_extends = LINEAR.is_satisfiable(atoms + [lin_eq("x", x_value)])
        assert projected_holds == original_extends


class TestSolve:
    @settings(max_examples=150, deadline=None)
    @given(linear_conjunctions())
    def test_witness_iff_satisfiable(self, atoms):
        witness = LINEAR.solve(atoms)
        if LINEAR.is_satisfiable(atoms):
            assert witness is not None
            for a in atoms:
                assert a.evaluate(witness), f"{a} fails under {witness}"
        else:
            assert witness is None

    def test_pinned_system(self):
        atoms = [lin_eq({"x": 1, "y": 1}, 2), lin_eq({"x": 1, "y": -1}, 0)]
        witness = LINEAR.solve(atoms)
        assert witness == {Var("x"): Fraction(1), Var("y"): Fraction(1)}


class TestEntailment:
    def test_scaled_entailment(self):
        assert LINEAR.entails([lin_le({"x": 2}, 2)], lin_le({"x": 1}, 1))

    def test_sum_entailment(self):
        premises = [lin_le("x", 1), lin_le("y", 1)]
        assert LINEAR.entails(premises, lin_le({"x": 1, "y": 1}, 2))
        assert not LINEAR.entails(premises, lin_le({"x": 1, "y": 1}, 1))


class TestCanonicalize:
    def test_drops_entailed(self):
        atoms = [lin_le("x", 1), lin_le("x", 2)]
        canon = LINEAR.canonicalize(atoms)
        assert canon == frozenset({lin_le("x", 1)})

    def test_keeps_independent(self):
        atoms = [lin_le("x", 1), lin_le("y", 1)]
        assert LINEAR.canonicalize(atoms) == frozenset(atoms)


class TestWeaken:
    def test_weaken_strict(self):
        from repro.linear.latoms import LinOp

        a = lin_lt("x", 1)
        w = LINEAR.weaken_atom(a)
        assert w.op is LinOp.LE
        assert LINEAR.weaken_atom(w) == w
