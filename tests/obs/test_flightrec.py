"""Flight recorder: ring capture, post-mortem documents, dump hooks."""

import json

import pytest

from repro.core.database import Database
from repro.core.relation import Relation
from repro.datalog.engine import evaluate_program
from repro.errors import EncodingError
from repro.lang import parse_program
from repro.obs import (
    POSTMORTEM_SCHEMA,
    Tracer,
    flight_recorder,
    last_postmortem,
    load_postmortem,
    validate_postmortem,
)
from repro.obs.flightrec import FlightRecorder
from repro.runtime.budget import Budget, BudgetExceeded
from repro.runtime.faults import FaultRegistry, fault_point
from repro.runtime.guard import EvaluationGuard

TC_PROGRAM = "T(x, y) :- E(x, y).\nT(x, z) :- T(x, y), E(y, z).\n"


@pytest.fixture(autouse=True)
def clean_recorder():
    """Tests share the process-wide recorder; leave it as found."""
    recorder = flight_recorder()
    saved = (recorder.dump_dir, recorder.enabled)
    recorder.reset()
    yield recorder
    recorder.dump_dir, recorder.enabled = saved
    recorder.reset()


def tc_database():
    db = Database()
    db["E"] = Relation.from_points(("x", "y"), [(0, 1), (1, 2), (2, 3)])
    return db


class TestRecording:
    def test_tracer_records_into_global_ring(self, clean_recorder):
        tracer = Tracer()
        with tracer:
            tracer.log("hello", round=1)
        names = [r["name"] for r in clean_recorder.ring.snapshot()]
        assert "hello" in names

    def test_disabled_recorder_records_nothing(self, clean_recorder):
        clean_recorder.enabled = False
        with Tracer() as tracer:
            tracer.log("dropped")
        assert len(clean_recorder.ring) == 0

    def test_private_instance_is_bounded(self):
        recorder = FlightRecorder(capacity=4)
        for i in range(10):
            recorder.record({"name": f"e{i}"})
        assert len(recorder.ring) == 4
        assert recorder.ring.dropped == 6


class TestPostmortemDocument:
    def test_validate_accepts_own_output(self):
        recorder = FlightRecorder()
        recorder.record({"name": "e1"})
        doc = recorder.postmortem(reason="manual")
        assert validate_postmortem(doc) is doc
        assert doc["schema"] == POSTMORTEM_SCHEMA
        assert doc["error"] is None
        assert [e["name"] for e in doc["events"]] == ["e1"]

    def test_error_and_guard_and_trace_sections(self):
        recorder = FlightRecorder()
        guard = EvaluationGuard()
        tracer = Tracer()
        with guard, tracer:
            error = BudgetExceeded("too much", site="t", limit=1)
            doc = recorder.postmortem(error=error, guard=guard, tracer=tracer)
        assert doc["error"]["type"] == "BudgetExceeded"
        assert doc["error"]["diagnostics"]["limit"] == 1
        assert doc["guard"]["ticks"] == guard.stats()["ticks"]
        assert doc["trace"]["id"] == tracer.trace_id
        assert "cache.hits" in doc["kernel"]
        json.dumps(doc, default=str)

    def test_open_spans_listed_as_active(self):
        recorder = FlightRecorder()
        tracer = Tracer()
        with tracer:
            context = tracer.span("stuck.phase", depth=3)
            context.__enter__()
            doc = recorder.postmortem(tracer=tracer)
        assert [s["name"] for s in doc["trace"]["active_spans"]] == ["stuck.phase"]
        assert doc["trace"]["active_spans"][0]["attrs"]["depth"] == 3


class TestDump:
    def test_dump_without_dir_keeps_document_in_memory(self, clean_recorder):
        assert clean_recorder.dump(reason="manual") is None
        assert last_postmortem()["reason"] == "manual"
        assert clean_recorder.last_path is None

    def test_dump_with_dir_writes_file(self, clean_recorder, tmp_path):
        clean_recorder.configure(dump_dir=str(tmp_path / "pm"))
        path = clean_recorder.dump(error=ValueError("boom"), reason="manual")
        assert path is not None and path.endswith(".json")
        doc = load_postmortem(path)
        assert doc["error"]["type"] == "ValueError"

    def test_same_error_object_dumped_once(self, clean_recorder, tmp_path):
        clean_recorder.configure(dump_dir=str(tmp_path))
        error = ValueError("boom")
        first = clean_recorder.dump(error=error)
        again = clean_recorder.dump(error=error)
        assert first == again
        assert clean_recorder.dumps == 1

    def test_distinct_errors_get_distinct_files(self, clean_recorder, tmp_path):
        clean_recorder.configure(dump_dir=str(tmp_path))
        first = clean_recorder.dump(error=ValueError("a"))
        second = clean_recorder.dump(error=ValueError("b"))
        assert first != second


class TestGuardHook:
    def test_budget_trip_inside_guard_captures_postmortem(self, clean_recorder):
        program = parse_program(TC_PROGRAM)
        guard = EvaluationGuard(Budget(max_rounds=1))
        tracer = Tracer()
        with pytest.raises(BudgetExceeded):
            with tracer:
                evaluate_program(program, tc_database(), guard=guard)
        doc = last_postmortem()
        assert doc is not None and doc["reason"] == "guard"
        assert doc["error"]["type"] == "RoundLimitExceeded"
        assert doc["guard"]["rounds_completed"] >= 1
        assert any(e["name"] == "datalog.naive.round" for e in doc["events"])

    def test_uncaught_exception_inside_guard_captured(self, clean_recorder):
        guard = EvaluationGuard()
        with pytest.raises(RuntimeError):
            with guard:
                raise RuntimeError("engine bug")
        assert last_postmortem()["error"]["type"] == "RuntimeError"

    def test_clean_exit_captures_nothing(self, clean_recorder):
        with EvaluationGuard():
            pass
        assert last_postmortem() is None


class TestFaultHook:
    def test_fired_fault_dumps_with_fault_reason(self, clean_recorder):
        registry = FaultRegistry().inject("s", error=ValueError("injected"))
        with pytest.raises(ValueError):
            with registry:
                fault_point("s")
        doc = last_postmortem()
        assert doc["reason"] == "fault"
        assert any(e["name"] == "fault.fired" for e in doc["events"])

    def test_fault_inside_guard_dumped_once(self, clean_recorder, tmp_path):
        clean_recorder.configure(dump_dir=str(tmp_path))
        registry = FaultRegistry().inject("s", error=ValueError("injected"))
        with pytest.raises(ValueError):
            with EvaluationGuard(), registry:
                fault_point("s")
        assert clean_recorder.dumps == 1


class TestValidation:
    def base(self):
        return FlightRecorder().postmortem()

    def test_wrong_schema_rejected(self):
        doc = self.base()
        doc["schema"] = "repro.postmortem/99"
        with pytest.raises(EncodingError):
            validate_postmortem(doc)

    def test_missing_key_rejected(self):
        doc = self.base()
        del doc["events_dropped"]
        with pytest.raises(EncodingError):
            validate_postmortem(doc)

    def test_nameless_event_rejected(self):
        doc = self.base()
        doc["events"] = [{"kind": "log"}]
        with pytest.raises(EncodingError):
            validate_postmortem(doc)

    def test_error_without_type_rejected(self):
        doc = self.base()
        doc["error"] = {"message": "boom"}
        with pytest.raises(EncodingError):
            validate_postmortem(doc)

    def test_load_rejects_non_json(self, tmp_path):
        path = tmp_path / "pm.json"
        path.write_text("not json", encoding="utf-8")
        with pytest.raises(EncodingError):
            load_postmortem(str(path))


class TestCliAcceptance:
    def test_max_rounds_kill_produces_valid_postmortem(self, tmp_path, capsys):
        """The ISSUE's acceptance check: a --max-rounds kill on the CLI
        leaves a loadable repro.postmortem/1 with ring events and guard
        counters."""
        from repro.cli import EXIT_BUDGET, main
        from repro.encoding.standard import encode_database

        db = Database()
        db["e"] = Relation.from_points(("x", "y"), [(0, 1), (1, 2), (2, 3)])
        db_path = tmp_path / "db.cdb"
        db_path.write_text(encode_database(db), encoding="utf-8")
        program_path = tmp_path / "tc.dl"
        program_path.write_text(
            "tc(x, y) :- e(x, y).\ntc(x, z) :- tc(x, y), e(y, z).\n",
            encoding="utf-8",
        )
        pm_dir = tmp_path / "pm"
        code = main(
            [
                "datalog", str(db_path), str(program_path),
                "--max-rounds", "1", "--postmortem-dir", str(pm_dir),
            ]
        )
        assert code == EXIT_BUDGET
        assert "post-mortem:" in capsys.readouterr().err
        dumps = sorted(pm_dir.glob("postmortem-*.json"))
        assert len(dumps) == 1
        doc = load_postmortem(str(dumps[0]))
        assert doc["reason"] == "guard"
        assert doc["error"]["type"] == "RoundLimitExceeded"
        assert doc["guard"]["rounds_completed"] >= 1
        assert any(e["name"] == "datalog.naive.round" for e in doc["events"])
