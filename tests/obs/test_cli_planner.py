"""The planner's CLI surface: ``--optimize`` on query/datalog/explain,
``repro plan``, ``repro calibrate``, and ``repro profile --fit``."""

from __future__ import annotations

import contextlib
import io
import json

import pytest

from repro.core.costmodel import COST_MODEL_SCHEMA, load_cost_model
from repro.core.database import Database
from repro.core.relation import Relation
from repro.encoding.standard import encode_database


@pytest.fixture()
def workload(tmp_path):
    n = 12
    edges = [(i, (i + 1) % n) for i in range(n)]
    db = Database({"edge": Relation.from_points(("x", "y"), edges)})
    db_path = tmp_path / "db.cdb"
    db_path.write_text(encode_database(db))
    program = tmp_path / "tc.dl"
    program.write_text(
        "tc(x, y) :- edge(x, y).\ntc(x, z) :- tc(x, y), edge(y, z).\n"
    )
    return str(db_path), str(program)


def _run_cli(argv):
    from repro.cli import main

    out, err = io.StringIO(), io.StringIO()
    with contextlib.redirect_stdout(out), contextlib.redirect_stderr(err):
        code = main(argv)
    return code, out.getvalue(), err.getvalue()


QUERY = "exists y (edge(x, y) and edge(y, z))"


class TestOptimizeFlag:
    def test_query_modes_agree(self, workload):
        db, _ = workload
        outputs = {}
        for mode in ("none", "heuristic", "cost"):
            code, out, _ = _run_cli(
                ["query", db, QUERY, "--optimize", mode]
            )
            assert code == 0
            outputs[mode] = out
        assert outputs["none"] == outputs["heuristic"] == outputs["cost"]

    def test_parallel_implies_cost_mode(self, workload):
        db, _ = workload
        plain_code, plain_out, _ = _run_cli(["query", db, QUERY])
        code, out, err = _run_cli(["query", db, QUERY, "--parallel"])
        assert code == 0
        assert "serially" not in err  # the auto-degrade warning is gone
        assert sorted(out.splitlines()) == sorted(plain_out.splitlines())

    def test_datalog_planned_matches_unplanned(self, workload):
        db, program = workload
        base_code, base_out, _ = _run_cli(["datalog", db, program])
        code, out, _ = _run_cli(["datalog", db, program, "--optimize", "cost"])
        assert base_code == code == 0
        assert sorted(out.splitlines()) == sorted(base_out.splitlines())

    def test_explain_accepts_optimize(self, workload):
        db, _ = workload
        code, out, _ = _run_cli(
            ["explain", db, QUERY, "--optimize", "cost"]
        )
        assert code == 0
        # plan provenance: the planning step shows up in the profile
        assert "planner.plan" in out
        assert "result:" in out

    def test_bad_cost_model_file_is_a_clean_error(self, workload, tmp_path):
        db, _ = workload
        bad = tmp_path / "bad.json"
        bad.write_text("{nope")
        code, _, err = _run_cli(
            ["query", db, QUERY, "--optimize", "cost",
             "--cost-model", str(bad)]
        )
        assert code != 0
        assert "not JSON" in err


class TestPlanCommand:
    def test_plan_formula_lists_nodes_and_verdicts(self, workload):
        db, _ = workload
        code, out, _ = _run_cli(["plan", db, QUERY])
        assert code == 0
        assert "est_rows" in out and "est_cost" in out
        assert "[serial]" in out
        assert "total modeled cost" in out

    def test_plan_program_prints_one_plan_per_rule(self, workload):
        db, program = workload
        code, out, _ = _run_cli(["plan", db, program])
        assert code == 0
        assert "-- rule 1:" in out and "-- rule 2:" in out
        assert out.count("total modeled cost") == 2

    def test_plan_with_parallel_capability(self, workload):
        db, _ = workload
        code, out, _ = _run_cli(
            ["plan", db, QUERY, "--parallel", "--workers", "4"]
        )
        assert code == 0
        assert "pool capacity: 4 worker(s)" in out

    def test_plan_with_fitted_model(self, workload, tmp_path):
        db, program = workload
        profile = tmp_path / "profile.json"
        model = tmp_path / "model.json"
        assert _run_cli(["profile", db, program, "--out", str(profile)])[0] == 0
        assert _run_cli(
            ["calibrate", str(profile), "--out", str(model)]
        )[0] == 0
        code, out, _ = _run_cli(
            ["plan", db, QUERY, "--cost-model", str(model)]
        )
        assert code == 0
        assert "cost model: fit" in out


class TestCalibrate:
    def test_round_trip_from_profile_documents(self, workload, tmp_path):
        db, program = workload
        profile = tmp_path / "profile.json"
        code, _, _ = _run_cli(["profile", db, program, "--out", str(profile)])
        assert code == 0
        model_path = tmp_path / "model.json"
        code, out, _ = _run_cli(
            ["calibrate", str(profile), "--out", str(model_path)]
        )
        assert code == 0
        assert "fitted cost model" in out
        assert "join" in out
        document = json.loads(model_path.read_text())
        assert document["schema"] == COST_MODEL_SCHEMA
        model = load_cost_model(str(model_path))
        assert model.records_used > 0

    def test_corrupt_profile_rejected(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": "wrong"}))
        code, _, err = _run_cli(["calibrate", str(bad)])
        assert code != 0
        assert "schema" in err


class TestProfileFit:
    def test_fit_writes_a_loadable_model(self, workload, tmp_path):
        db, program = workload
        model_path = tmp_path / "model.json"
        code, out, _ = _run_cli(
            ["profile", db, program, "--fit", str(model_path)]
        )
        assert code == 0
        assert "cost model fitted" in out
        model = load_cost_model(str(model_path))
        assert model.source == "fit"
        assert model.records_used > 0

    def test_profile_documents_carry_estimator_kinds(self, workload, tmp_path):
        db, program = workload
        profile = tmp_path / "profile.json"
        assert _run_cli(["profile", db, program, "--out", str(profile)])[0] == 0
        document = json.loads(profile.read_text())
        kinds = {r.get("estimator") for r in document["records"]}
        assert any(k and "." in k for k in kinds)
