"""Structured log records: emission, correlation, levels, mirroring."""

import json

from repro.obs import CollectingSink, LOG_SCHEMA, Tracer, log_event
from repro.obs.trace import span


class TestDisabledPath:
    def test_no_tracer_is_a_noop(self):
        log_event("orphan.event", round=1)  # must not raise

    def test_no_tracer_reaches_no_sink(self):
        tracer = Tracer()
        sink = tracer.add_sink(CollectingSink())
        log_event("before.activation")  # tracer built but not active
        assert len(sink) == 0


class TestEmission:
    def test_record_shape(self):
        tracer = Tracer()
        sink = tracer.add_sink(CollectingSink())
        with tracer:
            log_event("engine.round", round=3, delta_tuples=12)
        records = [r for r in sink.records if r["kind"] == "log"]
        assert len(records) == 1
        record = records[0]
        assert record["schema"] == LOG_SCHEMA
        assert record["name"] == "engine.round"
        assert record["level"] == "info"
        assert record["trace"] == tracer.trace_id
        assert record["attrs"] == {"round": 3, "delta_tuples": 12}
        json.dumps(record)  # JSON-safe

    def test_span_correlation(self):
        tracer = Tracer()
        sink = tracer.add_sink(CollectingSink())
        with tracer:
            log_event("outside")
            with span("work") as sp:
                log_event("inside")
                inner_id = sp.span_id
        logs = {r["name"]: r for r in sink.records if r["kind"] == "log"}
        assert logs["outside"]["span"] is None
        assert logs["inside"]["span"] == inner_id

    def test_trace_ids_differ_between_tracers(self):
        assert Tracer().trace_id != Tracer().trace_id

    def test_explicit_trace_id_kept(self):
        assert Tracer(trace_id="run-42").trace_id == "run-42"


class TestMirroring:
    def test_span_close_mirrored_with_duration(self):
        tracer = Tracer()
        sink = tracer.add_sink(CollectingSink())
        with tracer:
            with span("qe.eliminate", vars=2):
                pass
        mirrored = [r for r in sink.records if r["kind"] == "span"]
        assert len(mirrored) == 1
        assert mirrored[0]["name"] == "qe.eliminate"
        assert mirrored[0]["level"] == "debug"
        assert mirrored[0]["attrs"]["vars"] == 2
        assert mirrored[0]["attrs"]["duration"] >= 0.0

    def test_instant_event_mirrored(self):
        tracer = Tracer()
        sink = tracer.add_sink(CollectingSink())
        with tracer:
            tracer.event("round.delta", size=7)
        mirrored = [r for r in sink.records if r["kind"] == "event"]
        assert [r["name"] for r in mirrored] == ["round.delta"]


class TestLevelFiltering:
    def test_min_level_filters_per_sink(self):
        tracer = Tracer()
        quiet = tracer.add_sink(CollectingSink(min_level="warning"))
        verbose = tracer.add_sink(CollectingSink())
        with tracer:
            log_event("fine", level="debug")
            log_event("notable", level="warning")
            log_event("broken", level="error")
        assert [r["name"] for r in quiet.records] == ["notable", "broken"]
        assert {"fine", "notable", "broken"} <= {r["name"] for r in verbose.records}

    def test_span_mirrors_are_debug_level(self):
        tracer = Tracer()
        quiet = tracer.add_sink(CollectingSink(min_level="info"))
        with tracer:
            with span("noise"):
                pass
            log_event("signal")
        assert [r["name"] for r in quiet.records] == ["signal"]


class TestEngineIntegration:
    def test_fixpoint_rounds_logged(self):
        from repro.core.database import Database
        from repro.core.relation import Relation
        from repro.datalog.engine import evaluate_program
        from repro.lang import parse_program

        db = Database()
        db["E"] = Relation.from_points(("x", "y"), [(0, 1), (1, 2), (2, 3)])
        program = parse_program(
            "T(x, y) :- E(x, y).\nT(x, z) :- T(x, y), E(y, z).\n"
        )
        tracer = Tracer()
        sink = tracer.add_sink(CollectingSink())
        with tracer:
            result = evaluate_program(program, db)
        rounds = [
            r for r in sink.records
            if r["kind"] == "log" and r["name"] == "datalog.naive.round"
        ]
        assert len(rounds) == result.rounds
        assert rounds[0]["attrs"]["round"] == 1
        assert all(r["trace"] == tracer.trace_id for r in rounds)
