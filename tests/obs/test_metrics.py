"""Unit tests for the metrics registry: counters, histograms, merging."""

import pytest

from repro.obs.metrics import Histogram, Metrics


class TestCounters:
    def test_count_accumulates(self):
        m = Metrics()
        m.count("x")
        m.count("x", 4)
        assert m.counter("x") == 5

    def test_missing_counter_reads_zero(self):
        assert Metrics().counter("nope") == 0

    def test_merge_counters_with_prefix(self):
        m = Metrics()
        m.merge_counters({"joins": 3, "qe": 7}, prefix="guard.")
        assert m.counter("guard.joins") == 3
        assert m.counter("guard.qe") == 7


class TestHistograms:
    def test_observe_tracks_aggregates(self):
        m = Metrics()
        for v in (2, 5, 3):
            m.observe("sizes", v)
        h = m.histogram("sizes")
        assert h.count == 3
        assert h.total == 10
        assert h.min == 2
        assert h.max == 5
        assert h.mean == pytest.approx(10 / 3)

    def test_missing_histogram_is_none(self):
        assert Metrics().histogram("nope") is None

    def test_histogram_merge(self):
        a, b = Histogram(), Histogram()
        a.observe(1)
        a.observe(3)
        b.observe(10)
        a.merge(b)
        assert a.count == 3
        assert a.total == 14
        assert a.max == 10


class TestSnapshotAndMerge:
    def test_snapshot_shape(self):
        m = Metrics()
        m.count("c", 2)
        m.observe("h", 1.5)
        snap = m.snapshot()
        assert snap["counters"] == {"c": 2}
        assert snap["histograms"]["h"]["count"] == 1
        assert snap["histograms"]["h"]["total"] == 1.5

    def test_merge_combines_both_kinds(self):
        a, b = Metrics(), Metrics()
        a.count("c", 1)
        b.count("c", 2)
        b.observe("h", 4)
        a.merge(b)
        assert a.counter("c") == 3
        assert a.histogram("h").total == 4

    def test_is_empty(self):
        m = Metrics()
        assert m.is_empty()
        m.count("c")
        assert not m.is_empty()
