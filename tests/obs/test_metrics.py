"""Unit tests for the metrics registry: counters, histograms, merging."""

import math

import pytest

from repro.obs.metrics import (
    QUANTILES,
    Histogram,
    Metrics,
    histogram_from_snapshot,
)


class TestCounters:
    def test_count_accumulates(self):
        m = Metrics()
        m.count("x")
        m.count("x", 4)
        assert m.counter("x") == 5

    def test_missing_counter_reads_zero(self):
        assert Metrics().counter("nope") == 0

    def test_merge_counters_with_prefix(self):
        m = Metrics()
        m.merge_counters({"joins": 3, "qe": 7}, prefix="guard.")
        assert m.counter("guard.joins") == 3
        assert m.counter("guard.qe") == 7


class TestHistograms:
    def test_observe_tracks_aggregates(self):
        m = Metrics()
        for v in (2, 5, 3):
            m.observe("sizes", v)
        h = m.histogram("sizes")
        assert h.count == 3
        assert h.total == 10
        assert h.min == 2
        assert h.max == 5
        assert h.mean == pytest.approx(10 / 3)

    def test_missing_histogram_is_none(self):
        assert Metrics().histogram("nope") is None

    def test_histogram_merge(self):
        a, b = Histogram(), Histogram()
        a.observe(1)
        a.observe(3)
        b.observe(10)
        a.merge(b)
        assert a.count == 3
        assert a.total == 14
        assert a.max == 10


class TestSnapshotAndMerge:
    def test_snapshot_shape(self):
        m = Metrics()
        m.count("c", 2)
        m.observe("h", 1.5)
        snap = m.snapshot()
        assert snap["counters"] == {"c": 2}
        assert snap["histograms"]["h"]["count"] == 1
        assert snap["histograms"]["h"]["total"] == 1.5

    def test_merge_combines_both_kinds(self):
        a, b = Metrics(), Metrics()
        a.count("c", 1)
        b.count("c", 2)
        b.observe("h", 4)
        a.merge(b)
        assert a.counter("c") == 3
        assert a.histogram("h").total == 4

    def test_is_empty(self):
        m = Metrics()
        assert m.is_empty()
        m.count("c")
        assert not m.is_empty()


class TestQuantiles:
    def test_empty_histogram_has_no_quantiles(self):
        h = Histogram()
        assert h.quantile(0.5) is None

    def test_single_value_reports_itself(self):
        h = Histogram()
        h.observe(3.0)
        for q in QUANTILES:
            assert h.quantile(q) == pytest.approx(3.0)

    def test_quantiles_are_monotone_and_bounded(self):
        h = Histogram()
        for i in range(1, 1001):
            h.observe(i / 1000.0)
        p50, p95, p99 = (h.quantile(q) for q in QUANTILES)
        assert h.min <= p50 <= p95 <= p99 <= h.max

    def test_estimate_within_a_factor_of_sqrt_two(self):
        h = Histogram()
        for i in range(1, 1001):
            h.observe(i / 1000.0)
        # true p50 = 0.5; the power-of-two buckets guarantee sqrt(2)
        assert 0.5 / math.sqrt(2) <= h.quantile(0.5) <= 0.5 * math.sqrt(2)
        assert 0.95 / math.sqrt(2) <= h.quantile(0.95) <= 0.95 * math.sqrt(2)

    def test_skewed_tail_separates_p50_from_p99(self):
        h = Histogram()
        for _ in range(98):
            h.observe(0.001)
        h.observe(10.0)
        h.observe(10.0)
        # estimates are geometric bucket midpoints: good to sqrt(2)
        assert h.quantile(0.5) == pytest.approx(0.001, rel=0.5)
        assert h.quantile(0.99) > 1.0

    def test_zero_and_negative_values_land_in_bucket_zero(self):
        h = Histogram()
        h.observe(0.0)
        h.observe(-1.0)
        assert h.quantile(0.5) is not None  # no crash; clamped to min/max

    def test_snapshot_carries_quantiles(self):
        h = Histogram()
        for v in (1.0, 2.0, 4.0):
            h.observe(v)
        snap = h.snapshot()
        assert snap["p50"] == h.quantile(0.5)
        assert snap["p95"] == h.quantile(0.95)
        assert snap["p99"] == h.quantile(0.99)
        assert snap["buckets"]

    def test_snapshot_round_trip_preserves_quantiles(self):
        h = Histogram()
        for i in range(100):
            h.observe(0.001 * (i + 1))
        rebuilt = histogram_from_snapshot(h.snapshot())
        for q in QUANTILES:
            assert rebuilt.quantile(q) == pytest.approx(h.quantile(q))

    def test_pre_bucket_snapshot_degrades_to_bounds(self):
        # documents written before buckets existed: no "buckets" key
        rebuilt = histogram_from_snapshot(
            {"count": 3, "total": 9.0, "min": 1.0, "max": 5.0}
        )
        assert rebuilt.quantile(0.5) == pytest.approx(5.0)  # max clamp

    def test_merge_combines_buckets(self):
        a, b = Histogram(), Histogram()
        for _ in range(90):
            a.observe(0.001)
        for _ in range(10):
            b.observe(8.0)
        a.merge(b)
        assert a.quantile(0.5) == pytest.approx(0.001, rel=0.5)
        assert a.quantile(0.99) == pytest.approx(8.0)
