"""Trace diffing: the repro.trace-diff/1 document and its report.

The acceptance scenario lives in ``TestPlannedParallelDiff``: diffing
a serial run's trace against a planned-parallel run of the *same*
workload attributes the latency delta to named operators — the
``worker.*`` and ``parallel.*`` spans that exist only on one side.
"""

from __future__ import annotations

import pytest

from repro.core.relation import Relation
from repro.errors import EncodingError
from repro.obs import (
    TRACE_DIFF_SCHEMA,
    Tracer,
    diff_traces,
    load_trace_diff,
    render_trace_diff,
    trace_document,
    validate_trace_diff,
    write_trace_diff,
)
from repro.parallel import ExecutionContext


def _doc(spans, counters=None):
    document = {
        "spans": [
            {"id": s[0], "parent": s[1], "name": s[2], "start": s[3],
             "end": s[4], "attrs": {}}
            for s in spans
        ]
    }
    if counters is not None:
        document["metrics"] = {"counters": counters}
    return document


BEFORE = _doc(
    [
        (1, None, "query", 0.0, 10.0),
        (2, 1, "relation.join", 1.0, 9.0),
    ],
    counters={"kernel.cache.hits": 10, "qe.calls": 2},
)
AFTER = _doc(
    [
        (1, None, "query", 0.0, 6.0),
        (2, 1, "relation.join", 1.0, 3.0),
        (3, 1, "relation.project", 3.0, 5.0),
    ],
    counters={"kernel.cache.hits": 25, "qe.calls": 2},
)


class TestDiffDocument:
    def test_schema_and_totals(self):
        document = diff_traces(BEFORE, AFTER)
        assert document["schema"] == TRACE_DIFF_SCHEMA
        assert document["total"]["before_seconds"] == pytest.approx(10.0)
        assert document["total"]["after_seconds"] == pytest.approx(6.0)
        assert document["total"]["delta_seconds"] == pytest.approx(-4.0)

    def test_rows_sorted_by_absolute_delta(self):
        rows = diff_traces(BEFORE, AFTER)["operators"]
        deltas = [abs(r["delta_self_seconds"]) for r in rows]
        assert deltas == sorted(deltas, reverse=True)

    def test_operator_only_in_after_joins_against_zero(self):
        rows = {r["name"]: r for r in diff_traces(BEFORE, AFTER)["operators"]}
        project = rows["relation.project"]
        assert project["before_calls"] == 0
        assert project["after_calls"] == 1
        assert project["before_self_seconds"] == 0.0
        assert project["delta_self_seconds"] == pytest.approx(2.0)

    def test_operator_only_in_before_joins_against_zero(self):
        rows = {r["name"]: r for r in diff_traces(AFTER, BEFORE)["operators"]}
        assert rows["relation.project"]["after_calls"] == 0
        assert rows["relation.project"]["delta_self_seconds"] == pytest.approx(-2.0)

    def test_counter_deltas_keep_only_nonzero(self):
        counters = diff_traces(BEFORE, AFTER)["counters"]
        assert counters == {"kernel.cache.hits": 15}

    def test_labels_ride_along(self):
        document = diff_traces(BEFORE, AFTER, label_before="v1", label_after="v2")
        assert document["labels"] == {"before": "v1", "after": "v2"}


class TestValidationAndRoundTrip:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "diff.json")
        document = diff_traces(BEFORE, AFTER)
        write_trace_diff(path, document)
        assert load_trace_diff(path) == document

    def test_bad_schema_rejected(self):
        document = diff_traces(BEFORE, AFTER)
        document["schema"] = "repro.trace/1"
        with pytest.raises(EncodingError):
            validate_trace_diff(document)

    def test_missing_total_rejected(self):
        document = diff_traces(BEFORE, AFTER)
        del document["total"]
        with pytest.raises(EncodingError):
            validate_trace_diff(document)

    def test_non_numeric_row_field_rejected(self):
        document = diff_traces(BEFORE, AFTER)
        document["operators"][0]["delta_self_seconds"] = "fast"
        with pytest.raises(EncodingError):
            validate_trace_diff(document)


class TestRender:
    def test_report_names_biggest_mover_first(self):
        text = render_trace_diff(diff_traces(BEFORE, AFTER))
        lines = text.splitlines()
        table_start = lines.index("operators by self-time delta:")
        # relation.join moved by -6s of self time; project by +2s
        assert "relation.join" in lines[table_start + 2]

    def test_report_shows_signed_deltas_and_totals(self):
        text = render_trace_diff(diff_traces(BEFORE, AFTER))
        assert "-4.000 s" in text or "-4.000" in text
        assert "counter deltas:" in text
        assert "kernel.cache.hits" in text

    def test_identical_traces_render_without_tables(self):
        text = render_trace_diff(diff_traces(BEFORE, BEFORE))
        assert "operators by self-time delta:" not in text


class TestPlannedParallelDiff:
    def test_serial_vs_parallel_attributes_delta_to_named_operators(self):
        """Acceptance: the diff of a serial trace against a parallel
        trace of the same two-hop workload names the operators that
        moved — the worker/dispatch spans on the parallel side."""
        r = Relation.from_points(
            ("x", "y"), [(i, (i * 7 + 3) % 40) for i in range(40)]
        )

        def two_hop():
            return r.join(r.rename({"x": "y", "y": "z"})).project(("x", "z"))

        serial = Tracer()
        with serial:
            with serial.span("query"):
                expected = two_hop()
        parallel = Tracer()
        ctx = ExecutionContext(workers=2, pool="thread")
        try:
            with parallel, ctx:
                with parallel.span("query"):
                    got = two_hop()
        finally:
            ctx.close()
        assert set(got.tuples) == set(expected.tuples)

        document = validate_trace_diff(
            diff_traces(
                trace_document(serial),
                trace_document(parallel),
                label_before="serial",
                label_after="parallel",
            )
        )
        rows = {r["name"]: r for r in document["operators"]}
        worker_rows = [n for n in rows if n.startswith("worker.")]
        assert worker_rows, "parallel-side worker spans must appear as movers"
        for name in worker_rows:
            assert rows[name]["before_calls"] == 0
            assert rows[name]["after_calls"] > 0
            assert rows[name]["delta_self_seconds"] > 0.0
        text = render_trace_diff(document)
        assert "serial → parallel" in text
        assert any(name in text for name in worker_rows)
