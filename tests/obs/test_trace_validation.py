"""``repro.trace/1`` validation failures: malformed nesting, negative
durations, unknown schema ids, and other corrupted documents.

``tests/obs/test_export.py`` checks that well-formed documents round
trip; this battery checks the other direction — every invariant named
in :func:`repro.obs.export.validate_trace` actually rejects."""

import pytest

from repro.core.database import Database
from repro.core.relation import Relation
from repro.datalog.engine import evaluate_program
from repro.errors import EncodingError
from repro.lang import parse_program
from repro.obs import TRACE_SCHEMA, Tracer, trace_document, validate_trace


def base_document():
    return {
        "schema": TRACE_SCHEMA,
        "spans": [],
        "events": [],
        "metrics": {"counters": {}, "histograms": {}},
        "guard": None,
        "dropped_spans": 0,
    }


def span_entry(span_id, parent=None, start=0.0, end=1.0, name="s"):
    return {
        "id": span_id, "parent": parent, "name": name,
        "start": start, "end": end, "attrs": {},
    }


class TestSchemaId:
    @pytest.mark.parametrize(
        "schema",
        ["repro.trace/2", "repro.trace", "trace/1", "", None, 1],
    )
    def test_unknown_schema_id_rejected(self, schema):
        doc = base_document()
        doc["schema"] = schema
        with pytest.raises(EncodingError, match="schema"):
            validate_trace(doc)

    def test_missing_schema_rejected(self):
        doc = base_document()
        del doc["schema"]
        with pytest.raises(EncodingError):
            validate_trace(doc)

    def test_non_object_rejected(self):
        with pytest.raises(EncodingError):
            validate_trace([base_document()])


class TestSpanNesting:
    def test_child_starting_before_parent_rejected(self):
        doc = base_document()
        doc["spans"] = [
            span_entry(1, start=5.0, end=9.0),
            span_entry(2, parent=1, start=2.0, end=6.0),
        ]
        with pytest.raises(EncodingError, match="before its parent"):
            validate_trace(doc)

    def test_self_parent_rejected(self):
        # stitching rewrites parent ids, so a span claiming itself as
        # parent is a representable corruption the validator must catch
        # (it would make the span tree unrenderable)
        doc = base_document()
        doc["spans"] = [span_entry(1, parent=1)]
        with pytest.raises(EncodingError, match="own parent"):
            validate_trace(doc)

    def test_two_span_parent_cycle_rejected(self):
        # A under B under A: every parent reference resolves and every
        # span nests "inside" the other, so only the chain walk sees it
        doc = base_document()
        doc["spans"] = [
            span_entry(1, parent=2, start=1.0, end=2.0),
            span_entry(2, parent=1, start=1.0, end=2.0),
        ]
        with pytest.raises(EncodingError, match="cycle"):
            validate_trace(doc)

    def test_cycle_below_valid_subtree_rejected(self):
        # the memo of known-safe ids must not mask a cycle elsewhere
        doc = base_document()
        doc["spans"] = [
            span_entry(1, start=0.0, end=9.0),
            span_entry(2, parent=1, start=1.0, end=2.0),
            span_entry(3, parent=4, start=3.0, end=4.0),
            span_entry(4, parent=3, start=3.0, end=4.0),
        ]
        with pytest.raises(EncodingError, match="cycle"):
            validate_trace(doc)

    def test_colliding_span_ids_rejected(self):
        # span ids are the join key for events, log records, and
        # stitched worker subtrees — a collision silently reparents
        # all of them, so the validator must refuse the document
        doc = base_document()
        doc["spans"] = [
            span_entry(1, start=0.0, end=2.0),
            span_entry(1, start=1.0, end=2.0, name="imposter"),
        ]
        with pytest.raises(EncodingError, match="duplicate span id"):
            validate_trace(doc)

    def test_forward_parent_reference_allowed(self):
        # span order in the document is collection order, not tree
        # order; a parent listed later must still resolve
        doc = base_document()
        doc["spans"] = [
            span_entry(2, parent=1, start=1.0, end=2.0),
            span_entry(1, start=0.5, end=3.0),
        ]
        assert validate_trace(doc) is doc


class TestDurations:
    def test_negative_duration_rejected(self):
        doc = base_document()
        doc["spans"] = [span_entry(1, start=3.0, end=1.0)]
        with pytest.raises(EncodingError, match="closes before it opens"):
            validate_trace(doc)

    def test_open_span_tolerated(self):
        doc = base_document()
        doc["spans"] = [span_entry(1, end=None)]
        assert validate_trace(doc) is doc

    def test_zero_duration_tolerated(self):
        doc = base_document()
        doc["spans"] = [span_entry(1, start=1.0, end=1.0)]
        assert validate_trace(doc) is doc


class TestEvents:
    def test_event_with_unknown_parent_rejected(self):
        doc = base_document()
        doc["events"] = [{"name": "e", "time": 0.0, "parent": 404, "attrs": {}}]
        with pytest.raises(EncodingError, match="unknown parent"):
            validate_trace(doc)

    def test_event_missing_time_rejected(self):
        doc = base_document()
        doc["events"] = [{"name": "e"}]
        with pytest.raises(EncodingError):
            validate_trace(doc)


class TestStructure:
    def test_span_missing_key_rejected(self):
        doc = base_document()
        entry = span_entry(1)
        del entry["attrs"]
        doc["spans"] = [entry]
        with pytest.raises(EncodingError, match="missing key"):
            validate_trace(doc)

    def test_non_string_span_name_rejected(self):
        doc = base_document()
        doc["spans"] = [span_entry(1, name=7)]
        with pytest.raises(EncodingError):
            validate_trace(doc)

    def test_spans_must_be_an_array(self):
        doc = base_document()
        doc["spans"] = {"1": span_entry(1)}
        with pytest.raises(EncodingError):
            validate_trace(doc)

    def test_histogram_without_aggregates_rejected(self):
        doc = base_document()
        doc["metrics"]["histograms"] = {"h": {"total": 3.0}}
        with pytest.raises(EncodingError):
            validate_trace(doc)


class TestCorruptedRealDocument:
    def test_real_trace_survives_then_breaks_when_corrupted(self):
        db = Database()
        db["E"] = Relation.from_points(("x", "y"), [(0, 1), (1, 2)])
        program = parse_program(
            "T(x, y) :- E(x, y).\nT(x, z) :- T(x, y), E(y, z).\n"
        )
        tracer = Tracer()
        with tracer:
            evaluate_program(program, db)
        doc = validate_trace(trace_document(tracer))
        doc["spans"][0]["start"] = doc["spans"][0]["end"] + 1.0
        with pytest.raises(EncodingError):
            validate_trace(doc)
