"""The ``repro trace`` subcommand family and the ``--memory`` flag.

End-to-end through :func:`repro.cli.main`: run real workloads with
``--trace`` to produce documents, then analyze / flame / diff them,
and pin the exit-code contract (1 for a missing or malformed trace —
same class as any other input error).
"""

from __future__ import annotations

import json

import pytest

from repro.cli import EXIT_ERROR, EXIT_OK, main
from repro.core.database import Database
from repro.core.relation import Relation
from repro.encoding.standard import encode_database
from repro.obs import validate_speedscope, validate_trace_diff

TC_PROGRAM = "tc(x, y) :- e(x, y).\ntc(x, z) :- tc(x, y), e(y, z).\n"


@pytest.fixture
def db_file(tmp_path):
    db = Database()
    db["e"] = Relation.from_points(
        ("x", "y"), [(i, i + 1) for i in range(8)]
    )
    path = tmp_path / "db.cdb"
    path.write_text(encode_database(db), encoding="utf-8")
    return str(path)


@pytest.fixture
def trace_file(tmp_path, db_file):
    path = str(tmp_path / "trace.json")
    assert main(
        ["query", db_file, "exists y (e(x, y))", "--trace", path]
    ) == EXIT_OK
    return path


class TestTraceAnalyze:
    def test_prints_critical_path_and_hotspots(self, trace_file, capsys):
        assert main(["trace", "analyze", trace_file]) == EXIT_OK
        out = capsys.readouterr().out
        assert "critical path" in out
        assert "hotspots" in out
        assert "fo.evaluate" in out

    def test_max_path_truncates(self, tmp_path, db_file, capsys):
        program = tmp_path / "tc.dl"
        program.write_text(TC_PROGRAM, encoding="utf-8")
        trace = str(tmp_path / "t.json")
        main(["datalog", db_file, str(program), "--trace", trace])
        assert main(
            ["trace", "analyze", trace, "--max-path", "2"]
        ) == EXIT_OK
        assert "more segment(s)" in capsys.readouterr().out

    def test_missing_file_exits_one(self, tmp_path, capsys):
        assert main(
            ["trace", "analyze", str(tmp_path / "nope.json")]
        ) == EXIT_ERROR

    def test_malformed_document_exits_one(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": "wrong/9"}', encoding="utf-8")
        assert main(["trace", "analyze", str(bad)]) == EXIT_ERROR


class TestTraceFlame:
    def test_speedscope_to_stdout_validates(self, trace_file, capsys):
        assert main(["trace", "flame", trace_file]) == EXIT_OK
        validate_speedscope(json.loads(capsys.readouterr().out))

    def test_speedscope_to_file(self, tmp_path, trace_file, capsys):
        out = str(tmp_path / "f.speedscope.json")
        assert main(["trace", "flame", trace_file, "-o", out]) == EXIT_OK
        with open(out, encoding="utf-8") as handle:
            doc = validate_speedscope(json.load(handle))
        assert doc["name"] == "trace.json"  # defaults to the basename

    def test_collapsed_to_stdout(self, trace_file, capsys):
        assert main(
            ["trace", "flame", trace_file, "--format", "collapsed"]
        ) == EXIT_OK
        out = capsys.readouterr().out
        assert "fo.evaluate" in out

    def test_name_flag_overrides_basename(self, trace_file, capsys):
        assert main(
            ["trace", "flame", trace_file, "--name", "mylabel"]
        ) == EXIT_OK
        doc = json.loads(capsys.readouterr().out)
        assert doc["name"] == "mylabel"


class TestTraceDiff:
    def test_diff_two_runs(self, tmp_path, db_file, capsys):
        a = str(tmp_path / "a.json")
        b = str(tmp_path / "b.json")
        main(["query", db_file, "exists y (e(x, y))", "--trace", a])
        main(["query", db_file, "exists y (e(x, y))", "--trace", b])
        out_doc = str(tmp_path / "diff.json")
        assert main(
            ["trace", "diff", a, b, "-o", out_doc,
             "--label-before", "run-a", "--label-after", "run-b"]
        ) == EXIT_OK
        text = capsys.readouterr().out
        assert "trace diff: run-a → run-b" in text
        with open(out_doc, encoding="utf-8") as handle:
            validate_trace_diff(json.load(handle))

    def test_missing_side_exits_one(self, tmp_path, trace_file):
        assert main(
            ["trace", "diff", trace_file, str(tmp_path / "nope.json")]
        ) == EXIT_ERROR


class TestMemoryFlag:
    def test_query_memory_requires_no_other_obs_flag(self, db_file, capsys):
        # --memory alone must arm a tracer (span attribution needs one)
        assert main(
            ["query", db_file, "exists y (e(x, y))", "--memory"]
        ) == EXIT_OK

    def test_traced_spans_carry_memory_attrs(self, tmp_path, db_file):
        trace = str(tmp_path / "m.json")
        assert main(
            ["query", db_file, "exists y (e(x, y))", "--trace", trace,
             "--memory"]
        ) == EXIT_OK
        with open(trace, encoding="utf-8") as handle:
            document = json.load(handle)
        attred = [
            s for s in document["spans"]
            if "mem_alloc_blocks" in (s.get("attrs") or {})
        ]
        assert attred

    def test_memory_off_leaves_trace_clean(self, tmp_path, db_file):
        trace = str(tmp_path / "m.json")
        main(["query", db_file, "exists y (e(x, y))", "--trace", trace])
        with open(trace, encoding="utf-8") as handle:
            document = json.load(handle)
        assert all(
            "mem_alloc_blocks" not in (s.get("attrs") or {})
            for s in document["spans"]
        )

    def test_tracemalloc_backend_adds_alloc_bytes(self, tmp_path, db_file):
        trace = str(tmp_path / "m.json")
        assert main(
            ["query", db_file, "exists y (e(x, y))", "--trace", trace,
             "--memory", "--memory-backend", "tracemalloc"]
        ) == EXIT_OK
        with open(trace, encoding="utf-8") as handle:
            document = json.load(handle)
        assert any(
            "mem_alloc_bytes" in (s.get("attrs") or {})
            for s in document["spans"]
        )

    def test_results_byte_identical_with_memory(self, db_file, capsys):
        assert main(["query", db_file, "exists y (e(x, y))"]) == EXIT_OK
        plain = capsys.readouterr().out
        assert main(
            ["query", db_file, "exists y (e(x, y))", "--memory"]
        ) == EXIT_OK
        assert capsys.readouterr().out == plain

    def test_explain_memory_renders_attribution_table(
        self, db_file, capsys
    ):
        assert main(
            ["explain", db_file, "exists y (e(x, y))", "--memory"]
        ) == EXIT_OK
        assert "memory attribution" in capsys.readouterr().out

    def test_profile_memory_adds_ledger_columns(self, db_file, capsys):
        assert main(
            ["profile", db_file, "exists y (e(x, y))", "--memory"]
        ) == EXIT_OK
        out = capsys.readouterr().out
        assert "alloc blocks" in out
