"""Per-span memory attribution: backends, nesting, and the plumbing
from ``--memory`` through the tracer, the cost ledger, and the worker
pool.

The byte-identical-results contract (E21's gate rides on it) is pinned
here at unit scale: evaluating with a memory profiler armed changes
span *attrs*, never the evaluation result.
"""

from __future__ import annotations

import pytest

from repro.core.relation import Relation
from repro.obs import (
    CostLedger,
    MemoryProfiler,
    Tracer,
    memory_summary,
    render_cost_ledger,
    trace_document,
    validate_profile,
    validate_trace,
)
from repro.obs.ledger import profile_document
from repro.obs.memory import BACKENDS, DEFAULT_BACKEND
from repro.parallel import ExecutionContext
from repro.parallel.context import MEMORY_BACKENDS


def _rel(n=30):
    return Relation.from_points(
        ("x", "y"), [(i, (i * 7 + 3) % n) for i in range(n)]
    )


class TestBackendNames:
    def test_context_constant_pins_memory_module(self):
        """context.py must stay stdlib-only, so it duplicates the
        backend tuple; this is the test that keeps the copies equal."""
        assert MEMORY_BACKENDS == BACKENDS

    def test_default_is_rss(self):
        assert DEFAULT_BACKEND == "rss"
        assert MemoryProfiler().backend == "rss"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            MemoryProfiler("valgrind")
        with pytest.raises(ValueError):
            ExecutionContext(workers=1, memory="valgrind")


@pytest.mark.parametrize("backend", BACKENDS)
class TestProfilerFrames:
    def test_pop_returns_memory_attrs(self, backend):
        profiler = MemoryProfiler(backend)
        profiler.start()
        try:
            frame = profiler.push()
            ballast = [bytearray(1024) for _ in range(200)]
            attrs = profiler.pop(frame)
        finally:
            profiler.stop()
        assert attrs["mem_alloc_blocks"] >= 0
        assert attrs["mem_peak_bytes"] >= 0
        if backend == "tracemalloc":
            # tracemalloc sees the ~200KiB ballast exactly
            assert attrs["mem_alloc_bytes"] >= 200 * 1024
            assert attrs["mem_peak_bytes"] >= attrs["mem_alloc_bytes"]
        del ballast

    def test_frames_nest(self, backend):
        profiler = MemoryProfiler(backend)
        profiler.start()
        try:
            outer = profiler.push()
            inner = profiler.push()
            ballast = [bytearray(1024) for _ in range(100)]
            inner_attrs = profiler.pop(inner)
            outer_attrs = profiler.pop(outer)
        finally:
            profiler.stop()
        # the child's peak is visible to the parent too (monotone rss;
        # folded traced peak) — the parent never reports less
        assert outer_attrs["mem_peak_bytes"] >= inner_attrs["mem_peak_bytes"]
        del ballast

    def test_out_of_order_pop_discards_inner_frames(self, backend):
        profiler = MemoryProfiler(backend)
        profiler.start()
        try:
            outer = profiler.push()
            profiler.push()  # never popped
            attrs = profiler.pop(outer)
            assert "mem_alloc_blocks" in attrs
            # the stack is empty again: a fresh push/pop still works
            frame = profiler.push()
            assert profiler.pop(frame)
        finally:
            profiler.stop()

    def test_pop_of_unknown_frame_is_empty(self, backend):
        profiler = MemoryProfiler(backend)
        profiler.start()
        try:
            assert profiler.pop([0, 0, 0]) == {}
        finally:
            profiler.stop()


class TestTracerIntegration:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_spans_close_with_memory_attrs(self, backend):
        tracer = Tracer()
        tracer.memory = MemoryProfiler(backend)
        with tracer:
            with tracer.span("query"):
                with tracer.span("relation.join"):
                    _rel().join(_rel().rename({"x": "y", "y": "z"}))
        for record in tracer.spans:
            assert "mem_alloc_blocks" in record.attrs
            assert "mem_peak_bytes" in record.attrs
        validate_trace(trace_document(tracer))

    def test_results_identical_with_and_without_memory(self):
        r = _rel()

        def work():
            return r.join(r.rename({"x": "y", "y": "z"})).project(("x", "z"))

        plain = work()
        tracer = Tracer()
        tracer.memory = MemoryProfiler("rss")
        with tracer:
            with tracer.span("query"):
                traced = work()
        assert traced.tuples == plain.tuples

    def test_untraced_runs_carry_no_memory_attrs(self):
        tracer = Tracer()
        with tracer:
            with tracer.span("query"):
                pass
        assert "mem_alloc_blocks" not in tracer.spans[0].attrs


class TestLedgerMemoryFields:
    def test_operator_preambles_record_memory(self):
        tracer = Tracer()
        tracer.memory = MemoryProfiler("rss")
        with tracer:
            with tracer.span("query"):
                _rel().join(_rel().rename({"x": "y", "y": "z"}))
        records = [r for r in tracer.ledger.records if r.op == "join"]
        assert records
        assert all(r.alloc_blocks >= 0 and r.peak_bytes >= 0 for r in records)

    @staticmethod
    def _tracer_with(ledger):
        tracer = Tracer()
        tracer.ledger = ledger
        return tracer

    def test_profile_document_round_trips_memory_fields(self):
        ledger = CostLedger()
        ledger.add("join", in_tuples=4, out_tuples=2, est_out=4,
                   alloc_blocks=10, alloc_bytes=2048, peak_bytes=4096)
        document = validate_profile(profile_document(self._tracer_with(ledger)))
        record = document["records"][0]
        assert record["alloc_blocks"] == 10
        assert record["alloc_bytes"] == 2048
        assert record["peak_bytes"] == 4096

    def test_zero_memory_fields_stay_off_the_wire(self):
        ledger = CostLedger()
        ledger.add("join", in_tuples=4, out_tuples=2, est_out=4)
        record = profile_document(self._tracer_with(ledger))["records"][0]
        assert "alloc_blocks" not in record
        assert "peak_bytes" not in record

    def test_negative_memory_field_rejected(self):
        ledger = CostLedger()
        ledger.add("join", in_tuples=4, out_tuples=2, est_out=4)
        document = profile_document(self._tracer_with(ledger))
        document["records"][0]["peak_bytes"] = -1
        from repro.errors import EncodingError

        with pytest.raises(EncodingError):
            validate_profile(document)

    def test_render_shows_memory_table_when_recorded(self):
        ledger = CostLedger()
        ledger.add("join", in_tuples=4, out_tuples=2, est_out=4,
                   alloc_blocks=10, peak_bytes=4096)
        text = render_cost_ledger(ledger)
        assert "memory" in text
        assert "4096" in text

    def test_render_warns_on_dropped_records(self):
        ledger = CostLedger(max_records=1)
        ledger.add("join", in_tuples=1, out_tuples=1, est_out=1)
        ledger.add("join", in_tuples=1, out_tuples=1, est_out=1)
        text = render_cost_ledger(ledger)
        assert "warning" in text
        assert "truncated" in text

    def test_no_warning_under_the_cap(self):
        ledger = CostLedger()
        ledger.add("join", in_tuples=1, out_tuples=1, est_out=1)
        assert "warning" not in render_cost_ledger(ledger)


class TestWorkerCapture:
    def test_memory_attrs_cross_the_pool_boundary(self):
        """--memory on a --parallel run: stitched worker.* spans carry
        memory attrs measured inside the worker."""
        tracer = Tracer()
        tracer.memory = MemoryProfiler("rss")
        ctx = ExecutionContext(workers=2, pool="thread", memory="rss")
        try:
            with tracer, ctx:
                with tracer.span("query"):
                    out = _rel(40).join(_rel(40).rename({"x": "y", "y": "z"}))
        finally:
            ctx.close()
        assert out.tuples
        workers = [s for s in tracer.spans if s.name.startswith("worker.")]
        assert workers
        for span in workers:
            assert "mem_alloc_blocks" in span.attrs
            assert "mem_peak_bytes" in span.attrs

    def test_memory_off_means_no_worker_attrs(self):
        tracer = Tracer()
        ctx = ExecutionContext(workers=2, pool="thread")
        try:
            with tracer, ctx:
                with tracer.span("query"):
                    _rel(40).join(_rel(40).rename({"x": "y", "y": "z"}))
        finally:
            ctx.close()
        workers = [s for s in tracer.spans if s.name.startswith("worker.")]
        assert workers
        assert all("mem_alloc_blocks" not in s.attrs for s in workers)

    def test_context_stats_report_backend(self):
        ctx = ExecutionContext(workers=1, memory="tracemalloc")
        try:
            assert ctx.stats()["memory"] == "tracemalloc"
        finally:
            ctx.close()


class TestMemorySummary:
    def test_aggregates_per_name(self):
        document = {
            "spans": [
                {"name": "relation.join",
                 "attrs": {"mem_alloc_blocks": 5, "mem_peak_bytes": 100}},
                {"name": "relation.join",
                 "attrs": {"mem_alloc_blocks": 3, "mem_peak_bytes": 300}},
                {"name": "qe.eliminate",
                 "attrs": {"mem_alloc_blocks": 1, "mem_peak_bytes": 50,
                           "mem_alloc_bytes": 640}},
                {"name": "bare", "attrs": {}},
            ]
        }
        rows = memory_summary(document)
        assert [r["name"] for r in rows] == ["relation.join", "qe.eliminate"]
        join = rows[0]
        assert join["calls"] == 2
        assert join["alloc_blocks"] == 8
        assert join["peak_bytes"] == 300
        assert rows[1]["alloc_bytes"] == 640

    def test_top_truncates(self):
        document = {
            "spans": [
                {"name": f"op.{i}",
                 "attrs": {"mem_alloc_blocks": 1, "mem_peak_bytes": i}}
                for i in range(20)
            ]
        }
        assert len(memory_summary(document, top=5)) == 5
