"""Unit tests for the span API: nesting, timing, ambient activation."""

import pytest

from repro.obs.trace import Tracer, active_tracer, event, span


class FakeClock:
    """A manually advanced monotonic clock for deterministic spans."""

    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


class TestActivation:
    def test_no_tracer_by_default(self):
        assert active_tracer() is None

    def test_with_activates_and_deactivates(self):
        tracer = Tracer()
        with tracer:
            assert active_tracer() is tracer
        assert active_tracer() is None

    def test_nested_activation_restores_outer(self):
        outer, inner = Tracer(), Tracer()
        with outer:
            with inner:
                assert active_tracer() is inner
            assert active_tracer() is outer

    def test_ambient_span_is_noop_without_tracer(self):
        with span("anything", k=1) as sp:
            assert sp is None

    def test_ambient_event_is_dropped_without_tracer(self):
        event("nothing", x=1)  # must not raise

    def test_ambient_span_records_on_active_tracer(self):
        tracer = Tracer()
        with tracer:
            with span("work", k=2) as sp:
                assert sp is not None
        assert [s.name for s in tracer.spans] == ["work"]
        assert tracer.spans[0].attrs == {"k": 2}


class TestNesting:
    def test_parent_child_links(self, clock):
        tracer = Tracer(clock=clock)
        with tracer:
            with tracer.span("outer"):
                with tracer.span("inner"):
                    pass
        outer, inner = tracer.spans
        assert outer.parent_id is None
        assert inner.parent_id == outer.span_id
        assert tracer.children(outer) == [inner]
        assert tracer.root_spans() == [outer]

    def test_siblings_share_parent(self, clock):
        tracer = Tracer(clock=clock)
        with tracer.span("root"):
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        root, a, b = tracer.spans
        assert a.parent_id == root.span_id
        assert b.parent_id == root.span_id

    def test_span_ids_unique(self):
        tracer = Tracer()
        for _ in range(10):
            with tracer.span("s"):
                pass
        ids = [s.span_id for s in tracer.spans]
        assert len(set(ids)) == len(ids)


class TestTiming:
    def test_duration_from_injected_clock(self, clock):
        tracer = Tracer(clock=clock)
        with tracer.span("timed"):
            clock.advance(0.25)
        assert tracer.spans[0].duration == pytest.approx(0.25)

    def test_open_span_has_zero_duration(self, clock):
        tracer = Tracer(clock=clock)
        cm = tracer.span("open")
        record = cm.__enter__()
        clock.advance(1.0)
        assert record.duration == 0.0
        cm.__exit__(None, None, None)
        assert record.duration == pytest.approx(1.0)

    def test_timestamps_relative_to_epoch_and_monotone(self, clock):
        tracer = Tracer(clock=clock)
        with tracer.span("first"):
            clock.advance(0.1)
        clock.advance(0.1)
        with tracer.span("second"):
            clock.advance(0.1)
        first, second = tracer.spans
        assert first.start == pytest.approx(0.0)
        assert first.end <= second.start
        assert second.end >= second.start

    def test_child_nests_inside_parent_times(self, clock):
        tracer = Tracer(clock=clock)
        with tracer.span("outer"):
            clock.advance(0.1)
            with tracer.span("inner"):
                clock.advance(0.1)
            clock.advance(0.1)
        outer, inner = tracer.spans
        assert outer.start <= inner.start
        assert inner.end <= outer.end

    def test_real_clock_monotonicity(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        for record in tracer.spans:
            assert record.end >= record.start


class TestErrorsAndCaps:
    def test_exception_tags_span_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("doomed"):
                raise ValueError("boom")
        record = tracer.spans[0]
        assert record.attrs["error"] == "ValueError"
        assert record.end is not None

    def test_max_spans_cap_counts_drops(self):
        tracer = Tracer(max_spans=3)
        for _ in range(5):
            with tracer.span("s"):
                pass
        assert len(tracer.spans) == 3
        assert tracer.dropped_spans == 2

    def test_events_record_under_open_span(self, clock):
        tracer = Tracer(clock=clock)
        with tracer.span("round"):
            tracer.event("delta", size=7)
        assert tracer.events[0]["name"] == "delta"
        assert tracer.events[0]["parent"] == tracer.spans[0].span_id
        assert tracer.events[0]["attrs"] == {"size": 7}

    def test_attrs_extendable_until_close(self):
        tracer = Tracer()
        with tracer.span("round", round=1) as sp:
            sp.attrs["delta_tuples"] = 3
        assert tracer.spans[0].attrs == {"round": 1, "delta_tuples": 3}
