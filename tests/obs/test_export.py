"""Trace-document export: schema validation and JSON round-trip."""

import json

import pytest

from repro.core.database import Database
from repro.core.relation import Relation
from repro.datalog.engine import evaluate_program
from repro.errors import EncodingError
from repro.lang import parse_program
from repro.obs import (
    TRACE_SCHEMA,
    Tracer,
    load_trace,
    phase_breakdown,
    render_profile,
    trace_document,
    validate_trace,
    write_trace,
)
from repro.runtime.guard import EvaluationGuard


@pytest.fixture
def traced_run():
    db = Database()
    db["E"] = Relation.from_points(("x", "y"), [(0, 1), (1, 2), (2, 3)])
    program = parse_program("T(x, y) :- E(x, y).\nT(x, z) :- T(x, y), E(y, z).\n")
    tracer = Tracer()
    guard = EvaluationGuard()
    with tracer:
        evaluate_program(program, db, guard=guard)
    return tracer, guard


class TestDocument:
    def test_document_shape(self, traced_run):
        tracer, guard = traced_run
        doc = trace_document(tracer, guard)
        assert doc["schema"] == TRACE_SCHEMA
        assert doc["spans"]
        assert doc["metrics"]["counters"]
        assert doc["guard"]["rounds_completed"] >= 1
        assert doc["dropped_spans"] == 0

    def test_document_is_json_serializable(self, traced_run):
        tracer, guard = traced_run
        text = json.dumps(trace_document(tracer, guard))
        assert TRACE_SCHEMA in text

    def test_validate_accepts_own_output(self, traced_run):
        tracer, guard = traced_run
        doc = trace_document(tracer, guard)
        assert validate_trace(doc) is doc

    def test_non_scalar_attrs_coerced_to_strings(self):
        tracer = Tracer()
        with tracer.span("s", payload=object()):
            pass
        doc = trace_document(tracer)
        assert isinstance(doc["spans"][0]["attrs"]["payload"], str)


class TestRoundTrip:
    def test_write_then_load(self, traced_run, tmp_path):
        tracer, guard = traced_run
        path = tmp_path / "trace.json"
        written = write_trace(str(path), tracer, guard)
        loaded = load_trace(str(path))
        assert loaded == written
        assert loaded["schema"] == TRACE_SCHEMA

    def test_load_rejects_non_json(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("not json {", encoding="utf-8")
        with pytest.raises(EncodingError):
            load_trace(str(path))


class TestValidation:
    def base(self):
        return {
            "schema": TRACE_SCHEMA,
            "spans": [],
            "events": [],
            "metrics": {"counters": {}, "histograms": {}},
            "guard": None,
            "dropped_spans": 0,
        }

    def test_wrong_schema_rejected(self):
        doc = self.base()
        doc["schema"] = "repro.trace/99"
        with pytest.raises(EncodingError):
            validate_trace(doc)

    def test_duplicate_span_id_rejected(self):
        doc = self.base()
        span = {"id": 1, "parent": None, "name": "s", "start": 0.0, "end": 1.0,
                "attrs": {}}
        doc["spans"] = [span, dict(span)]
        with pytest.raises(EncodingError):
            validate_trace(doc)

    def test_unknown_parent_rejected(self):
        doc = self.base()
        doc["spans"] = [
            {"id": 1, "parent": 99, "name": "s", "start": 0.0, "end": 1.0,
             "attrs": {}}
        ]
        with pytest.raises(EncodingError):
            validate_trace(doc)

    def test_span_closing_before_opening_rejected(self):
        doc = self.base()
        doc["spans"] = [
            {"id": 1, "parent": None, "name": "s", "start": 5.0, "end": 1.0,
             "attrs": {}}
        ]
        with pytest.raises(EncodingError):
            validate_trace(doc)

    def test_non_integer_counter_rejected(self):
        doc = self.base()
        doc["metrics"]["counters"] = {"c": "three"}
        with pytest.raises(EncodingError):
            validate_trace(doc)


class TestProfileRendering:
    def test_render_profile_mentions_rounds_and_operators(self, traced_run):
        tracer, guard = traced_run
        text = render_profile(tracer, guard)
        assert "datalog.naive" in text
        assert "relation algebra" in text
        assert "guard stats" in text

    def test_phase_breakdown_machine_readable(self, traced_run):
        tracer, _ = traced_run
        breakdown = phase_breakdown(tracer)
        assert breakdown["total_seconds"] > 0
        assert breakdown["fixpoint"]["rounds"]["datalog.naive"] >= 1
        assert breakdown["fixpoint"]["deltas"]["datalog.naive"][-1] == 0
        operators = {row["operator"] for row in breakdown["operators"]}
        assert "project" in operators
