"""Flame-graph export: collapsed stacks and speedscope documents.

The speedscope export uses the ``sampled`` profile type because
stitched sibling worker spans overlap in time, which an ``evented``
profile forbids; the resilience test pins that a trace with retried
*and* quarantined shards still exports a document our validator (and
hence speedscope's loader contract) accepts.
"""

from __future__ import annotations

import contextlib
import json

import pytest

from repro.errors import EncodingError
from repro.obs import (
    SPEEDSCOPE_SCHEMA,
    Tracer,
    collapsed_stacks,
    speedscope_document,
    trace_document,
    validate_speedscope,
    write_flame,
)
from repro.parallel import ExecutionContext, ResiliencePolicy
from repro.runtime.faults import FaultRegistry, TransientEvaluationError


def _doc(spans):
    return {
        "spans": [
            {"id": s[0], "parent": s[1], "name": s[2], "start": s[3],
             "end": s[4], "attrs": {}}
            for s in spans
        ]
    }


SIMPLE = _doc([
    (1, None, "query", 0.0, 10.0),
    (2, 1, "fo.evaluate", 1.0, 4.0),
    (3, 1, "relation.join", 5.0, 9.0),
])


def _double(payload):
    return payload * 2


class TestCollapsedStacks:
    def test_lines_carry_self_time_in_microseconds(self):
        lines = collapsed_stacks(SIMPLE).splitlines()
        assert "query 3000000" in lines
        assert "query;fo.evaluate 3000000" in lines
        assert "query;relation.join 4000000" in lines

    def test_same_path_spans_fold_into_one_line(self):
        doc = _doc([
            (1, None, "q", 0.0, 6.0),
            (2, 1, "fo.evaluate", 0.0, 2.0),
            (3, 1, "fo.evaluate", 3.0, 6.0),
        ])
        lines = collapsed_stacks(doc).splitlines()
        assert lines.count("q;fo.evaluate 5000000") == 1

    def test_zero_self_time_paths_are_dropped(self):
        doc = _doc([
            (1, None, "wrapper", 0.0, 4.0),
            (2, 1, "inner", 0.0, 4.0),
        ])
        assert "wrapper;inner" in collapsed_stacks(doc)
        assert "\nwrapper " not in "\n" + collapsed_stacks(doc)

    def test_empty_trace_is_empty_text(self):
        assert collapsed_stacks({"spans": []}) == ""


class TestSpeedscope:
    def test_document_validates(self):
        validate_speedscope(speedscope_document(SIMPLE))

    def test_end_value_covers_total_weight(self):
        doc = speedscope_document(SIMPLE)
        profile = doc["profiles"][0]
        assert profile["endValue"] == pytest.approx(sum(profile["weights"]))
        assert profile["endValue"] == pytest.approx(10.0)

    def test_frames_deduplicate_by_name(self):
        doc = _doc([
            (1, None, "q", 0.0, 6.0),
            (2, 1, "fo.evaluate", 0.0, 2.0),
            (3, 1, "fo.evaluate", 3.0, 6.0),
        ])
        out = speedscope_document(doc)
        names = [f["name"] for f in out["shared"]["frames"]]
        assert names.count("fo.evaluate") == 1

    def test_samples_reference_frame_table(self):
        out = speedscope_document(SIMPLE)
        nframes = len(out["shared"]["frames"])
        for stack in out["profiles"][0]["samples"]:
            assert stack
            assert all(0 <= i < nframes for i in stack)

    def test_validator_rejects_missing_schema(self):
        out = speedscope_document(SIMPLE)
        del out["$schema"]
        with pytest.raises(EncodingError):
            validate_speedscope(out)

    def test_validator_rejects_dangling_frame_index(self):
        out = speedscope_document(SIMPLE)
        out["profiles"][0]["samples"][0] = [999]
        with pytest.raises(EncodingError):
            validate_speedscope(out)

    def test_validator_rejects_mismatched_weights(self):
        out = speedscope_document(SIMPLE)
        out["profiles"][0]["weights"].append(1.0)
        with pytest.raises(EncodingError):
            validate_speedscope(out)


class TestWriteFlame:
    def test_speedscope_file_round_trips(self, tmp_path):
        path = str(tmp_path / "x.speedscope.json")
        write_flame(path, SIMPLE, name="unit")
        with open(path, encoding="utf-8") as handle:
            loaded = json.load(handle)
        validate_speedscope(loaded)
        assert loaded["$schema"] == SPEEDSCOPE_SCHEMA
        assert loaded["name"] == "unit"

    def test_collapsed_file(self, tmp_path):
        path = str(tmp_path / "x.collapsed")
        write_flame(path, SIMPLE, fmt="collapsed")
        with open(path, encoding="utf-8") as handle:
            assert "query;relation.join 4000000" in handle.read()

    def test_unknown_format_rejected(self, tmp_path):
        with pytest.raises(EncodingError):
            write_flame(str(tmp_path / "x"), SIMPLE, fmt="svg")


class TestResilientTraceExport:
    SITE = "worker._double"

    def _exhaust(self, registry, hits):
        with registry:
            for _ in range(hits):
                with contextlib.suppress(Exception):
                    registry.fire(self.SITE)

    def test_retried_and_quarantined_trace_exports_validly(self):
        """The satellite scenario: a trace whose shards were retried
        and quarantined — overlapping worker spans, attempt/quarantine
        attrs — still yields a valid speedscope document whose weight
        total matches the trace's self-time total."""
        registry = FaultRegistry(seed=5)
        registry.inject(
            self.SITE, error=TransientEvaluationError("poisoned"), times=3
        )
        self._exhaust(registry, 3)  # burn quarantine's ambient budget
        tracer = Tracer()
        ctx = ExecutionContext(
            workers=1, pool="thread",
            resilience=ResiliencePolicy(max_retries=2, backoff_base=0.001),
        )
        try:
            with registry, tracer:
                with tracer.span("query"):
                    out = ctx.run_shards(_double, [4])
        finally:
            ctx.close()
        assert out == [8]
        assert ctx.quarantined == 1
        document = trace_document(tracer)
        speedscope = validate_speedscope(speedscope_document(document))
        frame_names = {f["name"] for f in speedscope["shared"]["frames"]}
        assert any(n.startswith("worker.") for n in frame_names)
        text = collapsed_stacks(document)
        assert "worker._double" in text
