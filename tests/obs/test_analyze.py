"""Trace analysis: critical paths and bottleneck aggregation.

The core invariant: the critical path is an *exact decomposition* of
the root spans' wall time — segment seconds sum to the total, so the
report never silently loses time.  The stitched-trace test pins the
headline capability of the toolkit: the path descends through a
``worker.*`` span grafted from another process's tracer.
"""

from __future__ import annotations

import pytest

from repro.core.relation import Relation
from repro.obs import (
    Tracer,
    analyze_trace,
    critical_path,
    operator_hotspots,
    phase_totals,
    render_analysis,
    span_self_seconds,
    trace_document,
    validate_trace,
)
from repro.parallel import ExecutionContext


def _doc(spans):
    """A minimal repro.trace/1-shaped document from (id, parent, name,
    start, end[, attrs]) tuples."""
    return {
        "spans": [
            {
                "id": s[0],
                "parent": s[1],
                "name": s[2],
                "start": s[3],
                "end": s[4],
                "attrs": s[5] if len(s) > 5 else {},
            }
            for s in spans
        ]
    }


NESTED = _doc([
    (1, None, "query", 0.0, 10.0),
    (2, 1, "fo.evaluate", 1.0, 4.0),
    (3, 1, "relation.join", 5.0, 9.0),
    (4, 3, "qe.eliminate", 6.0, 8.0),
])


class TestCriticalPath:
    def test_segments_sum_exactly_to_root_duration(self):
        path = critical_path(NESTED)
        assert sum(s["seconds"] for s in path) == pytest.approx(10.0)

    def test_path_walks_latest_ending_children(self):
        names = [s["name"] for s in critical_path(NESTED)]
        assert names == ["query", "fo.evaluate", "relation.join", "qe.eliminate"]

    def test_parent_keeps_only_gap_time(self):
        by_name = {s["name"]: s for s in critical_path(NESTED)}
        # query: 10s minus [1,4] and [5,9] = 3s of gaps
        assert by_name["query"]["seconds"] == pytest.approx(3.0)
        # relation.join: 4s minus the 2s child
        assert by_name["relation.join"]["seconds"] == pytest.approx(2.0)
        assert by_name["qe.eliminate"]["depth"] == 2

    def test_open_spans_are_ignored(self):
        doc = _doc([
            (1, None, "query", 0.0, 5.0),
            (2, 1, "crashed", 1.0, None),
        ])
        assert [s["name"] for s in critical_path(doc)] == ["query"]

    def test_empty_document(self):
        assert critical_path({"spans": []}) == []

    def test_multiple_roots_in_chronological_order(self):
        doc = _doc([
            (1, None, "b", 5.0, 7.0),
            (2, None, "a", 0.0, 2.0),
        ])
        assert [s["name"] for s in critical_path(doc)] == ["a", "b"]

    def test_overlapping_parallel_children_do_not_double_count(self):
        # two workers covering [1,9] and [2,8]: the exact-partition
        # invariant must hold even when sibling intervals overlap
        doc = _doc([
            (1, None, "dispatch", 0.0, 10.0),
            (2, 1, "worker.join_shard", 1.0, 9.0),
            (3, 1, "worker.join_shard", 2.0, 8.0),
        ])
        path = critical_path(doc)
        assert sum(s["seconds"] for s in path) == pytest.approx(10.0)


class TestSelfTime:
    def test_self_excludes_direct_children(self):
        self_s = span_self_seconds(NESTED["spans"])
        assert self_s[1] == pytest.approx(3.0)
        assert self_s[3] == pytest.approx(2.0)
        assert self_s[4] == pytest.approx(2.0)

    def test_overlapping_children_clamp_at_zero(self):
        doc = _doc([
            (1, None, "dispatch", 0.0, 4.0),
            (2, 1, "worker.a", 0.0, 3.0),
            (3, 1, "worker.b", 0.0, 3.0),
        ])
        assert span_self_seconds(doc["spans"])[1] == 0.0


class TestAggregates:
    def test_hotspots_sorted_by_self_time(self):
        rows = operator_hotspots(NESTED)
        assert rows[0]["name"] in ("query", "fo.evaluate")
        assert all(
            rows[i]["self_seconds"] >= rows[i + 1]["self_seconds"]
            for i in range(len(rows) - 1)
        )

    def test_hotspot_row_counts_calls(self):
        doc = _doc([
            (1, None, "q", 0.0, 6.0),
            (2, 1, "fo.evaluate", 0.0, 2.0),
            (3, 1, "fo.evaluate", 3.0, 6.0),
        ])
        row = {r["name"]: r for r in operator_hotspots(doc)}["fo.evaluate"]
        assert row["calls"] == 2
        assert row["seconds"] == pytest.approx(5.0)
        assert row["max_seconds"] == pytest.approx(3.0)

    def test_phases_group_by_leading_component(self):
        phases = {r["phase"] for r in phase_totals(NESTED)}
        assert phases == {"query", "fo", "relation", "qe"}

    def test_phase_self_time_sums_to_total(self):
        total = sum(r["self_seconds"] for r in phase_totals(NESTED))
        assert total == pytest.approx(10.0)


class TestAnalyzeTrace:
    def test_reconciliation_within_one_percent(self):
        """The acceptance bar: path totals reconcile with the trace's
        wall time (the decomposition is exact, so this is tight)."""
        analysis = analyze_trace(NESTED)
        path_total = sum(s["seconds"] for s in analysis["critical_path"])
        assert path_total == pytest.approx(analysis["total_seconds"], rel=0.01)

    def test_percentages_sum_to_hundred(self):
        analysis = analyze_trace(NESTED)
        assert sum(s["pct"] for s in analysis["critical_path"]) == pytest.approx(100.0)

    def test_serial_trace_has_zero_worker_seconds(self):
        assert analyze_trace(NESTED)["worker_seconds"] == 0.0

    def test_render_mentions_path_and_hotspots(self):
        text = render_analysis(analyze_trace(NESTED))
        assert "critical path" in text
        assert "hotspots" in text
        assert "relation.join" in text

    def test_render_truncates_long_paths(self):
        spans = [(1, None, "root", 0.0, 100.0)]
        for i in range(2, 60):
            spans.append((i, 1, f"step.{i}", float(i), float(i) + 0.5))
        text = render_analysis(analyze_trace(_doc(spans)), max_path=5)
        assert "more segment(s)" in text


class TestStitchedTrace:
    def test_critical_path_crosses_a_worker_span(self):
        """End to end on a real stitched document: a planned-parallel
        two-hop run's critical path descends into a ``worker.*`` span
        captured inside the pool, and still reconciles exactly."""
        r = Relation.from_points(
            ("x", "y"), [(i, (i * 7 + 3) % 40) for i in range(40)]
        )
        tracer = Tracer()
        ctx = ExecutionContext(workers=2, pool="thread")
        try:
            with tracer, ctx:
                with tracer.span("query"):
                    r.join(r.rename({"x": "y", "y": "z"})).project(("x", "z"))
        finally:
            ctx.close()
        document = validate_trace(trace_document(tracer))
        analysis = analyze_trace(document)
        assert analysis["worker_seconds"] > 0.0
        names = [s["name"] for s in analysis["critical_path"]]
        assert any(n.startswith("worker.") for n in names)
        path_total = sum(s["seconds"] for s in analysis["critical_path"])
        assert path_total == pytest.approx(analysis["total_seconds"], rel=0.01)
        depths = {s["name"]: s["depth"] for s in analysis["critical_path"]}
        worker_depth = max(
            d for n, d in depths.items() if n.startswith("worker.")
        )
        assert worker_depth > depths["query"]
