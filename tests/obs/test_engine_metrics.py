"""Metrics accumulate across all five engines, and tracing never
changes results (the no-observer fast path is semantically inert)."""

import pytest

from repro.cobjects.calculus import CAnd, CExists, COr, CRelation
from repro.cobjects.fixpoint import FixpointQuery, evaluate_fixpoint
from repro.cobjects.while_loop import WhileQuery, evaluate_while
from repro.core.database import Database
from repro.core.evaluator import evaluate
from repro.core.relation import Relation
from repro.core.terms import as_term
from repro.datalog.engine import evaluate_program
from repro.datalog.finite import FiniteInstance, evaluate_finite
from repro.datalog.seminaive import evaluate_seminaive
from repro.datalog.stratified import evaluate_stratified
from repro.lang import parse_formula, parse_program
from repro.obs import Tracer
from repro.runtime.guard import EvaluationGuard

TC_TEXT = """
T(x, y) :- E(x, y).
T(x, z) :- T(x, y), E(y, z).
"""


@pytest.fixture
def chain_db():
    db = Database()
    db["E"] = Relation.from_points(("x", "y"), [(0, 1), (1, 2), (2, 3)])
    return db


@pytest.fixture
def tc_program():
    return parse_program(TC_TEXT)


def tuple_sets(result, names):
    return {name: frozenset(result[name].tuples) for name in names}


class TestNaive:
    def test_rounds_and_deltas_recorded(self, chain_db, tc_program):
        tracer = Tracer()
        with tracer:
            result = evaluate_program(tc_program, chain_db)
        rounds = tracer.metrics.counter("datalog.naive.rounds")
        assert rounds == result.rounds
        deltas = tracer.metrics.histogram("datalog.naive.delta_tuples")
        assert deltas.count == rounds
        assert deltas.min == 0  # the stagnant final round

    def test_round_spans_nested_under_engine_span(self, chain_db, tc_program):
        tracer = Tracer()
        with tracer:
            evaluate_program(tc_program, chain_db)
        (root,) = [s for s in tracer.spans if s.name == "datalog.naive"]
        rounds = [s for s in tracer.spans if s.name == "datalog.naive.round"]
        assert rounds
        assert all(s.parent_id == root.span_id for s in rounds)
        assert [s.attrs["round"] for s in rounds] == list(range(1, len(rounds) + 1))

    def test_tracing_does_not_change_result(self, chain_db, tc_program):
        plain = evaluate_program(tc_program, chain_db)
        with Tracer():
            traced = evaluate_program(tc_program, chain_db)
        assert plain.rounds == traced.rounds
        assert tuple_sets(plain, ["T"]) == tuple_sets(traced, ["T"])


class TestSeminaive:
    def test_rounds_and_deltas_recorded(self, chain_db, tc_program):
        tracer = Tracer()
        with tracer:
            result = evaluate_seminaive(tc_program, chain_db)
        assert tracer.metrics.counter("datalog.seminaive.rounds") == result.rounds
        deltas = tracer.metrics.histogram("datalog.seminaive.delta_tuples")
        assert deltas.count == result.rounds

    def test_tracing_does_not_change_result(self, chain_db, tc_program):
        plain = evaluate_seminaive(tc_program, chain_db)
        with Tracer():
            traced = evaluate_seminaive(tc_program, chain_db)
        assert tuple_sets(plain, ["T"]) == tuple_sets(traced, ["T"])


class TestStratified:
    def test_rounds_recorded(self, chain_db, tc_program):
        tracer = Tracer()
        with tracer:
            result = evaluate_stratified(tc_program, chain_db)
        assert tracer.metrics.counter("datalog.stratified.rounds") == result.rounds
        deltas = tracer.metrics.histogram("datalog.stratified.delta_tuples")
        assert deltas.count == result.rounds

    def test_tracing_does_not_change_result(self, chain_db, tc_program):
        plain = evaluate_stratified(tc_program, chain_db)
        with Tracer():
            traced = evaluate_stratified(tc_program, chain_db)
        assert tuple_sets(plain, ["T"]) == tuple_sets(traced, ["T"])


class TestFinite:
    @pytest.fixture
    def instance(self):
        return FiniteInstance({"E": [(0, 1), (1, 2), (2, 3)]})

    def test_rounds_and_deltas_recorded(self, instance, tc_program):
        tracer = Tracer()
        with tracer:
            result = evaluate_finite(tc_program, instance)
        assert tracer.metrics.counter("datalog.finite.rounds") == result.rounds
        deltas = tracer.metrics.histogram("datalog.finite.delta_tuples")
        assert deltas.count == result.rounds
        # round 1 derives the 3 base edges
        assert deltas.max >= 3

    def test_tracing_does_not_change_result(self, instance, tc_program):
        plain = evaluate_finite(tc_program, instance)
        with Tracer():
            traced = evaluate_finite(tc_program, instance)
        assert plain.rounds == traced.rounds
        assert plain["T"] == traced["T"]


def R(name, *args):
    return CRelation(name, tuple(as_term(a) for a in args))


class TestCCalc:
    @pytest.fixture
    def db(self, chain_db):
        return chain_db

    @pytest.fixture
    def tc_fixpoint(self):
        # S(x, y) := E(x, y) or exists z (S(x, z) and E(z, y))
        body = COr(
            (
                R("E", "x", "y"),
                CExists(("z",), CAnd((R("S", "x", "z"), R("E", "z", "y")))),
            )
        )
        return FixpointQuery("S", ("x", "y"), body)

    def test_fixpoint_rounds_and_deltas(self, db, tc_fixpoint):
        tracer = Tracer()
        with tracer:
            result = evaluate_fixpoint(tc_fixpoint, db)
        rounds = tracer.metrics.counter("ccalc.fixpoint.rounds")
        assert rounds >= 2
        deltas = tracer.metrics.histogram("ccalc.fixpoint.delta_tuples")
        assert deltas.count == rounds
        assert not result.is_empty()

    def test_fixpoint_tracing_does_not_change_result(self, db, tc_fixpoint):
        plain = evaluate_fixpoint(tc_fixpoint, db)
        with Tracer():
            traced = evaluate_fixpoint(tc_fixpoint, db)
        assert frozenset(plain.tuples) == frozenset(traced.tuples)

    def test_while_rounds_recorded(self, db):
        query = WhileQuery("S", ("x", "y"), R("E", "x", "y"))
        tracer = Tracer()
        with tracer:
            result = evaluate_while(query, db)
        assert tracer.metrics.counter("ccalc.while.rounds") >= 1
        assert not result.is_empty()


class TestAlgebraAndGuardMetrics:
    def test_fo_query_records_operator_metrics(self, chain_db):
        formula = parse_formula("exists y (E(x, y) and not (y < 1))")
        tracer = Tracer()
        with tracer:
            evaluate(formula, chain_db)
        m = tracer.metrics
        assert m.counter("relation.project.calls") >= 1
        assert m.counter("relation.complement.calls") >= 1
        assert m.counter("fo.negations") >= 1
        assert m.counter("fo.projections") >= 1
        assert m.counter("qe.eliminated_vars") >= 1
        assert m.histogram("relation.project.seconds").count >= 1

    def test_guard_counters_merge_on_deactivation(self, chain_db, tc_program):
        tracer = Tracer()
        guard = EvaluationGuard()
        with tracer:
            evaluate_program(tc_program, chain_db, guard=guard)
        m = tracer.metrics
        assert m.counter("guard.rounds") == guard.counters["rounds"]
        assert m.counter("guard.ticks") == guard.ticks
        assert (
            m.counter("guard.tuples_materialized") == guard.tuples_materialized
        )

    def test_guard_reactivation_merges_only_the_delta(self, chain_db, tc_program):
        guard = EvaluationGuard()
        # first activation outside any tracer: nothing merged
        evaluate_program(tc_program, chain_db, guard=guard)
        first_rounds = guard.counters["rounds"]
        tracer = Tracer()
        with tracer:
            evaluate_program(tc_program, chain_db, guard=guard)
        merged = tracer.metrics.counter("guard.rounds")
        assert merged == guard.counters["rounds"] - first_rounds

    def test_no_tracer_leaves_no_trace_state(self, chain_db, tc_program):
        # the disabled path must not create any tracer-side effects
        result = evaluate_program(tc_program, chain_db)
        assert result.reached_fixpoint
