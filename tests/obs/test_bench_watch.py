"""Bench history records and the regression watch
(``repro.bench-history/1`` + ``repro bench-watch``)."""

import json

import pytest

from repro.errors import EncodingError
from repro.obs import (
    HISTORY_SCHEMA,
    append_history,
    compare_latest,
    load_history,
    render_watch_report,
    validate_history_record,
)
from repro.obs.history import provenance


def record(**metrics):
    return {
        "schema": HISTORY_SCHEMA,
        "created_unix": 1.0,
        "provenance": {"git": None, "python": "x", "platform": "y", "argv": "z"},
        "metrics": metrics,
    }


class TestAppendAndLoad:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "history.jsonl")
        append_history(path, {"tc_seconds": 0.5})
        append_history(path, {"tc_seconds": 0.6, "fo_seconds": 0.1})
        records = load_history(path)
        assert len(records) == 2
        assert records[0]["metrics"] == {"tc_seconds": 0.5}
        assert records[1]["metrics"]["fo_seconds"] == 0.1

    def test_records_are_provenance_stamped(self, tmp_path):
        path = str(tmp_path / "history.jsonl")
        appended = append_history(path, {"m": 1.0})
        stamp = appended["provenance"]
        assert set(stamp) == {"git", "python", "platform", "argv"}
        assert stamp["python"]

    def test_append_is_append_only(self, tmp_path):
        path = str(tmp_path / "history.jsonl")
        append_history(path, {"m": 1.0})
        before = open(path, encoding="utf-8").read()
        append_history(path, {"m": 2.0})
        after = open(path, encoding="utf-8").read()
        assert after.startswith(before)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "history.jsonl"
        path.write_text(
            json.dumps(record(m=1.0)) + "\n\n" + json.dumps(record(m=2.0)) + "\n",
            encoding="utf-8",
        )
        assert len(load_history(str(path))) == 2

    def test_bad_json_line_reported_with_lineno(self, tmp_path):
        path = tmp_path / "history.jsonl"
        path.write_text(
            json.dumps(record(m=1.0)) + "\n{broken\n", encoding="utf-8"
        )
        with pytest.raises(EncodingError, match="line 2"):
            load_history(str(path))

    def test_provenance_never_raises(self):
        stamp = provenance()
        assert "python" in stamp and "platform" in stamp


class TestValidation:
    def test_wrong_schema_rejected(self):
        bad = record(m=1.0)
        bad["schema"] = "repro.bench-history/99"
        with pytest.raises(EncodingError):
            validate_history_record(bad)

    def test_negative_metric_rejected(self):
        with pytest.raises(EncodingError, match="negative"):
            validate_history_record(record(m=-0.1))

    def test_non_numeric_metric_rejected(self):
        with pytest.raises(EncodingError):
            validate_history_record(record(m="fast"))

    def test_boolean_metric_rejected(self):
        with pytest.raises(EncodingError):
            validate_history_record(record(m=True))

    def test_missing_provenance_rejected(self):
        bad = record(m=1.0)
        del bad["provenance"]
        with pytest.raises(EncodingError):
            validate_history_record(bad)


class TestCompareLatest:
    def test_insufficient_history(self):
        report = compare_latest([record(m=1.0)])
        assert report["status"] == "insufficient-history"
        assert report["rows"] == []

    def test_flat_history_is_ok(self):
        report = compare_latest(
            [record(m=1.0), record(m=0.98), record(m=1.02)]
        )
        assert report["status"] == "ok"
        (row,) = report["rows"]
        assert not row["regressed"] and row["ratio"] == pytest.approx(
            1.02 / 0.99, rel=1e-6
        )

    def test_2x_slowdown_flagged(self):
        report = compare_latest(
            [record(m=1.0), record(m=1.0), record(m=2.0)], threshold=1.5
        )
        assert report["status"] == "regression"
        assert report["rows"][0]["regressed"]

    def test_threshold_is_respected(self):
        records = [record(m=1.0), record(m=1.0), record(m=2.0)]
        assert compare_latest(records, threshold=2.5)["status"] == "ok"

    def test_median_baseline_shrugs_off_one_noisy_run(self):
        report = compare_latest(
            [record(m=1.0), record(m=9.0), record(m=1.0), record(m=1.1)]
        )
        assert report["status"] == "ok"
        assert report["rows"][0]["baseline"] == 1.0

    def test_window_limits_the_baseline(self):
        # ancient fast runs outside the window must not poison the
        # baseline of a workload that legitimately got slower
        records = [record(m=0.1)] * 10 + [record(m=1.0)] * 5 + [record(m=1.1)]
        report = compare_latest(records, threshold=1.5, window=5)
        assert report["status"] == "ok"
        assert report["rows"][0]["baseline"] == 1.0
        assert report["baseline_runs"] == 5

    def test_new_metric_reported_but_never_flagged(self):
        report = compare_latest(
            [record(old=1.0), record(old=1.0, fresh=99.0)]
        )
        assert report["status"] == "ok"
        rows = {r["metric"]: r for r in report["rows"]}
        assert rows["fresh"]["baseline"] is None
        assert not rows["fresh"]["regressed"]

    def test_multiple_metrics_one_regression_suffices(self):
        report = compare_latest(
            [record(a=1.0, b=1.0), record(a=1.0, b=1.0), record(a=1.0, b=3.0)]
        )
        assert report["status"] == "regression"
        rows = {r["metric"]: r for r in report["rows"]}
        assert not rows["a"]["regressed"] and rows["b"]["regressed"]


class TestRenderReport:
    def test_report_mentions_every_metric_and_status(self):
        report = compare_latest(
            [record(a=1.0, b=1.0), record(a=1.0, b=1.0), record(a=1.0, b=3.0)]
        )
        text = render_watch_report(report)
        assert "a" in text and "b" in text
        assert "REGRESSED" in text
        assert text.endswith("status: regression")

    def test_insufficient_history_report(self):
        text = render_watch_report(compare_latest([record(m=1.0)]))
        assert "insufficient history" in text

    def test_new_metric_rendered_as_new(self):
        report = compare_latest([record(old=1.0), record(old=1.0, fresh=2.0)])
        assert "(new)" in render_watch_report(report)
