"""The CLI observation surfaces: explain, --trace, --profile, --stats,
and the hardened ``info`` subcommand."""

import json

import pytest

from repro.cli import main
from repro.core.database import Database
from repro.core.relation import Relation
from repro.encoding.standard import encode_database
from repro.obs import TRACE_SCHEMA, load_trace

TC_PROGRAM = "tc(x, y) :- e(x, y).\ntc(x, z) :- tc(x, y), e(y, z).\n"


@pytest.fixture
def db_file(tmp_path):
    db = Database()
    db["e"] = Relation.from_points(("x", "y"), [(0, 1), (1, 2), (2, 3)])
    path = tmp_path / "db.cdb"
    path.write_text(encode_database(db), encoding="utf-8")
    return str(path)


@pytest.fixture
def program_file(tmp_path):
    path = tmp_path / "tc.dl"
    path.write_text(TC_PROGRAM, encoding="utf-8")
    return str(path)


class TestExplainCommand:
    def test_program_profile(self, db_file, program_file, capsys):
        assert main(["explain", db_file, program_file]) == 0
        out = capsys.readouterr().out
        assert "fixpoint after" in out
        assert "evaluation profile" in out
        assert "datalog.naive" in out
        assert "guard stats" in out

    def test_seminaive_engine_selectable(self, db_file, program_file, capsys):
        assert main(
            ["explain", db_file, program_file, "--engine", "seminaive"]
        ) == 0
        assert "datalog.seminaive" in capsys.readouterr().out

    def test_formula_profile(self, db_file, capsys):
        assert main(["explain", db_file, "exists y e(x, y)"]) == 0
        out = capsys.readouterr().out
        assert "generalized tuple(s)" in out
        assert "fo.evaluate" in out

    def test_writes_trace_file(self, db_file, program_file, tmp_path):
        trace = tmp_path / "trace.json"
        assert main(
            ["explain", db_file, program_file, "--trace", str(trace)]
        ) == 0
        document = load_trace(str(trace))
        assert document["schema"] == TRACE_SCHEMA
        assert document["guard"] is not None


class TestQueryObservation:
    def test_trace_flag_writes_valid_json(self, db_file, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        assert main(
            ["query", db_file, "exists y e(x, y)", "--trace", str(trace)]
        ) == 0
        document = json.loads(trace.read_text(encoding="utf-8"))
        assert document["schema"] == TRACE_SCHEMA
        assert any(s["name"] == "fo.evaluate" for s in document["spans"])

    def test_profile_flag_prints_tree(self, db_file, capsys):
        assert main(["query", db_file, "exists y e(x, y)", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "evaluation profile" in out
        assert "quantifier elimination" in out

    def test_stats_flag_prints_guard_table(self, db_file, capsys):
        assert main(["query", db_file, "exists y e(x, y)", "--stats"]) == 0
        captured = capsys.readouterr()
        assert "guard stats" in captured.err
        assert "guard stats" not in captured.out  # result stream stays clean

    def test_verbose_metrics_on_stderr(self, db_file, capsys):
        assert main(["query", db_file, "exists y e(x, y)", "-v"]) == 0
        assert "qe.eliminated_vars" in capsys.readouterr().err

    def test_no_flags_no_observation_output(self, db_file, capsys):
        assert main(["query", db_file, "exists y e(x, y)"]) == 0
        captured = capsys.readouterr()
        assert "metrics" not in captured.err
        assert "profile" not in captured.out


class TestDatalogObservation:
    def test_stats_and_profile_together(self, db_file, program_file, capsys):
        assert main(
            ["datalog", db_file, program_file, "--profile", "--stats"]
        ) == 0
        captured = capsys.readouterr()
        assert "fixpoint after" in captured.out
        assert "evaluation profile" in captured.out
        assert "guard stats" in captured.err

    def test_trace_written_even_on_budget_trip(
        self, db_file, program_file, tmp_path, capsys
    ):
        trace = tmp_path / "trace.json"
        code = main(
            ["datalog", db_file, program_file, "--max-tuples", "1",
             "--trace", str(trace)]
        )
        assert code == 3
        document = json.loads(trace.read_text(encoding="utf-8"))
        assert document["schema"] == TRACE_SCHEMA


class TestInfoHardening:
    def test_per_relation_table(self, db_file, capsys):
        assert main(["info", db_file]) == 0
        out = capsys.readouterr().out
        assert "relation" in out
        assert "gtuples" in out
        assert "bytes" in out
        assert "e/2" in out

    def test_malformed_constant_exits_one(self, tmp_path, capsys):
        bad = tmp_path / "bad.cdb"
        good = encode_database(
            Database({"e": Relation.from_points(("x",), [(1,)])})
        )
        bad.write_text(good.replace("const:1/1", "const:a/b"), encoding="utf-8")
        assert main(["info", str(bad)]) == 1
        assert "error" in capsys.readouterr().err

    def test_malformed_operator_exits_one(self, tmp_path, capsys):
        bad = tmp_path / "bad.cdb"
        good = encode_database(
            Database({"e": Relation.from_points(("x",), [(1,)])})
        )
        bad.write_text(good.replace(" = ", " =? "), encoding="utf-8")
        code = main(["info", str(bad)])
        captured = capsys.readouterr()
        assert code == 1
        assert "error" in captured.err
