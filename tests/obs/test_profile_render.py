"""``render_profile`` edge cases: empty tracers, metrics-only runs,
folded sibling spans, and budget-aborted runs with partial guard
counters.  ``tests/obs/test_export.py`` covers the happy path."""

from __future__ import annotations

import pytest

from repro.core.database import Database
from repro.core.relation import Relation
from repro.datalog.engine import evaluate_program
from repro.lang import parse_program
from repro.obs import Tracer, render_profile
from repro.runtime.budget import Budget, BudgetExceeded
from repro.runtime.guard import EvaluationGuard


def _db(n=8):
    edges = [(i, (i + 1) % n) for i in range(n)]
    return Database({"edge": Relation.from_points(("x", "y"), edges)})


def _tc():
    return parse_program(
        "tc(x, y) :- edge(x, y).\ntc(x, z) :- tc(x, y), edge(y, z).\n"
    )


class TestEmptyTracer:
    def test_never_activated_tracer_renders(self):
        text = render_profile(Tracer())
        assert "evaluation profile" in text
        assert "total 0.0" in text

    def test_activated_but_idle_tracer_renders(self):
        tracer = Tracer()
        with tracer:
            pass
        text = render_profile(tracer)
        assert "evaluation profile" in text
        # no operators ran: no algebra table, no ledger table
        assert "relation algebra" not in text
        assert "cost ledger" not in text


class TestMetricsOnly:
    def test_counters_without_spans_render(self):
        # engines can record metrics through an active tracer without
        # opening any span (e.g. a future sampling profiler); the span
        # tree is empty but the tables must still appear
        tracer = Tracer()
        with tracer:
            tracer.metrics.count("relation.join.calls", 2)
            tracer.metrics.observe("relation.join.in_tuples", 10)
            tracer.metrics.observe("relation.join.out_tuples", 4)
            tracer.metrics.observe("relation.join.seconds", 0.25)
            tracer.metrics.count("qe.eliminated_vars", 3)
        text = render_profile(tracer)
        assert "relation algebra" in text
        assert "join" in text
        assert "3 variable(s) eliminated" in text
        assert not tracer.spans

    def test_ledger_without_spans_renders(self):
        tracer = Tracer()
        with tracer:
            tracer.ledger.add("join", in_tuples=6, out_tuples=2, est_out=9)
        text = render_profile(tracer)
        assert "cost ledger" in text
        assert "est/act" in text


class TestFoldedSiblings:
    def test_repeated_childless_leaves_fold_into_one_line(self):
        tracer = Tracer()
        with tracer:
            with tracer.span("engine"):
                for _ in range(7):
                    with tracer.span("fo.evaluate"):
                        pass
        text = render_profile(tracer)
        assert "fo.evaluate ×7" in text
        # folded means the individual lines are gone
        assert text.count("fo.evaluate") == 1

    def test_single_leaf_is_not_folded(self):
        tracer = Tracer()
        with tracer:
            with tracer.span("engine"):
                with tracer.span("fo.evaluate"):
                    pass
        text = render_profile(tracer)
        assert "fo.evaluate" in text
        assert "×" not in text

    def test_round_spans_never_fold(self):
        # round spans carry per-round attrs (delta sizes) — folding
        # them would erase exactly what the profile exists to show
        tracer = Tracer()
        with tracer:
            with tracer.span("engine"):
                for i in range(3):
                    with tracer.span("naive.round", round=i, delta_tuples=i):
                        pass
        text = render_profile(tracer)
        assert "naive.round #0" in text
        assert "naive.round #2" in text


class TestBudgetAborted:
    def test_partial_guard_counters_render_after_abort(self):
        tracer = Tracer()
        guard = EvaluationGuard(Budget(max_tuples=5))
        with tracer:
            with pytest.raises(BudgetExceeded):
                evaluate_program(_tc(), _db(), guard=guard)
        text = render_profile(tracer, guard)
        # the work done before the trip is all present
        assert "evaluation profile" in text
        assert "guard stats" in text
        assert "tuples 5" in text or "tuples" in text
        stats = guard.stats()
        assert stats["tuples_materialized"] >= 5
        assert "relation.join" in text or "relation algebra" in text

    def test_aborted_run_keeps_partial_ledger(self):
        # the guard trips at the charge *inside* an operator — before
        # that operator's ledger postamble — so the budget must be wide
        # enough to let at least one operator complete first
        tracer = Tracer()
        guard = EvaluationGuard(Budget(max_tuples=20))
        with tracer:
            with pytest.raises(BudgetExceeded):
                evaluate_program(_tc(), _db(), guard=guard)
        assert not tracer.ledger.is_empty()
        text = render_profile(tracer, guard)
        assert "cost ledger" in text
