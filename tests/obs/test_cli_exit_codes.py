"""The CLI exit-code contract: 0 ok, 1 input error, 2 usage, 3 budget,
4 bench regression — one code per failure class, documented in README."""

import json
import time

import pytest

from repro.cli import (
    EXIT_BUDGET,
    EXIT_ERROR,
    EXIT_OK,
    EXIT_REGRESSION,
    EXIT_USAGE,
    main,
)
from repro.core.database import Database
from repro.core.relation import Relation
from repro.encoding.standard import encode_database
from repro.obs import HISTORY_SCHEMA

TC_PROGRAM = "tc(x, y) :- e(x, y).\ntc(x, z) :- tc(x, y), e(y, z).\n"


@pytest.fixture
def db_file(tmp_path):
    db = Database()
    db["e"] = Relation.from_points(("x", "y"), [(0, 1), (1, 2), (2, 3)])
    path = tmp_path / "db.cdb"
    path.write_text(encode_database(db), encoding="utf-8")
    return str(path)


@pytest.fixture
def program_file(tmp_path):
    path = tmp_path / "tc.dl"
    path.write_text(TC_PROGRAM, encoding="utf-8")
    return str(path)


def write_history(path, *runs):
    with open(path, "w", encoding="utf-8") as handle:
        for metrics in runs:
            handle.write(json.dumps({
                "schema": HISTORY_SCHEMA,
                "created_unix": time.time(),
                "provenance": {"git": None, "python": "x", "platform": "y",
                               "argv": "synthetic"},
                "metrics": metrics,
            }))
            handle.write("\n")


class TestDistinctCodes:
    def test_the_five_codes_are_distinct_and_documented(self):
        codes = [EXIT_OK, EXIT_ERROR, EXIT_USAGE, EXIT_BUDGET, EXIT_REGRESSION]
        assert codes == [0, 1, 2, 3, 4]


class TestExitOk:
    def test_successful_query(self, db_file, capsys):
        assert main(["query", db_file, "exists y e(x, y)"]) == EXIT_OK
        capsys.readouterr()


class TestExitError:
    def test_missing_input_file(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.cdb")
        assert main(["query", missing, "e(x, y)"]) == EXIT_ERROR
        assert "error:" in capsys.readouterr().err

    def test_malformed_database(self, tmp_path, capsys):
        path = tmp_path / "bad.cdb"
        path.write_text("this is not a constraint database", encoding="utf-8")
        assert main(["query", str(path), "e(x, y)"]) == EXIT_ERROR
        capsys.readouterr()

    def test_malformed_formula(self, db_file, capsys):
        assert main(["query", db_file, "exists exists ((("]) == EXIT_ERROR
        capsys.readouterr()


class TestExitUsage:
    def test_unknown_subcommand(self, capsys):
        with pytest.raises(SystemExit) as err:
            main(["frobnicate"])
        assert err.value.code == EXIT_USAGE
        capsys.readouterr()

    def test_missing_required_argument(self, capsys):
        with pytest.raises(SystemExit) as err:
            main(["query"])
        assert err.value.code == EXIT_USAGE
        capsys.readouterr()


class TestExitBudget:
    def test_round_limit(self, db_file, program_file, capsys):
        code = main(["datalog", db_file, program_file, "--max-rounds", "1"])
        assert code == EXIT_BUDGET
        assert "budget exceeded" in capsys.readouterr().err

    def test_explain_budget_abort_still_prints_profile(
        self, db_file, program_file, capsys
    ):
        code = main(["explain", db_file, program_file, "--max-rounds", "1"])
        assert code == EXIT_BUDGET
        captured = capsys.readouterr()
        # satellite: the partial profile and guard counters must still
        # surface when the guard trips mid-run
        assert "evaluation profile" in captured.out
        assert "guard stats" in captured.out
        assert "budget exceeded" in captured.err


class TestExitRegression:
    def test_injected_2x_slowdown_detected(self, tmp_path, capsys):
        history = str(tmp_path / "history.jsonl")
        write_history(
            history,
            {"tc_seconds": 1.00},
            {"tc_seconds": 0.98},
            {"tc_seconds": 1.02},
            {"tc_seconds": 2.04},  # the injected 2x slowdown
        )
        code = main(["bench-watch", "--history", history])
        assert code == EXIT_REGRESSION
        out = capsys.readouterr().out
        assert "REGRESSED" in out and "status: regression" in out

    def test_flat_history_passes(self, tmp_path, capsys):
        history = str(tmp_path / "history.jsonl")
        write_history(
            history,
            {"tc_seconds": 1.00},
            {"tc_seconds": 0.98},
            {"tc_seconds": 1.02},
        )
        assert main(["bench-watch", "--history", history]) == EXIT_OK
        assert "status: ok" in capsys.readouterr().out

    def test_missing_history_is_an_input_error(self, tmp_path, capsys):
        missing = str(tmp_path / "none.jsonl")
        assert main(["bench-watch", "--history", missing]) == EXIT_ERROR
        capsys.readouterr()
