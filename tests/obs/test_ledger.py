"""The per-operator cost ledger: records, bounds, document round-trip,
rendering, and the ``repro profile`` CLI surface."""

from __future__ import annotations

import contextlib
import io
import json

import pytest

from repro.core.database import Database
from repro.core.relation import Relation
from repro.encoding.standard import encode_database
from repro.errors import EncodingError
from repro.obs import (
    PROFILE_SCHEMA,
    CostLedger,
    CostRecord,
    Tracer,
    load_profile,
    profile_document,
    render_cost_ledger,
    validate_profile,
    write_profile,
)
from repro.obs.ledger import OPERATORS
from repro.parallel import ExecutionContext


def _rel(n=20):
    return Relation.from_points(
        ("x", "y"), [(i, (i * 7 + 3) % n) for i in range(n)]
    )


def _traced_workload():
    tracer = Tracer()
    with tracer:
        with tracer.span("query"):
            r = _rel()
            joined = r.join(r.rename({"x": "y", "y": "z"}))
            joined.project(("x", "z"))
            Relation.from_points(("x",), [(1,), (2,)]).complement()
    return tracer


# ------------------------------------------------------------------- records


class TestCostRecord:
    def test_fields_and_atoms_per_tuple(self):
        record = CostRecord(
            "join", in_tuples=10, out_tuples=4, est_out=8, out_atoms=12,
            cache_hits=3, cache_misses=1, seconds=0.5, shards=2, skew=1.2,
            parallel=True,
        )
        assert record.atoms_per_tuple == 3.0
        d = record.as_dict()
        assert d["op"] == "join" and d["parallel"] is True
        assert d["est_out"] == 8 and d["skew"] == 1.2

    def test_estimator_defaults_to_op(self):
        record = CostRecord("join", in_tuples=1, out_tuples=1, est_out=1)
        assert record.estimator == "join"
        assert record.as_dict()["estimator"] == "join"

    def test_explicit_estimator_kind_exported(self):
        record = CostRecord(
            "join", in_tuples=1, out_tuples=1, est_out=1,
            estimator="join.indexed",
        )
        assert record.as_dict()["estimator"] == "join.indexed"

    def test_negative_cache_counts_clamped(self):
        record = CostRecord(
            "join", in_tuples=1, out_tuples=1, est_out=1,
            cache_hits=-5, cache_misses=-2,
        )
        assert record.cache_hits == 0 and record.cache_misses == 0

    def test_empty_output_has_zero_atoms_per_tuple(self):
        record = CostRecord("project", in_tuples=3, out_tuples=0, est_out=3)
        assert record.atoms_per_tuple == 0.0


class TestCostLedger:
    def test_bounded_appends_count_dropped(self):
        ledger = CostLedger(max_records=2)
        for _ in range(5):
            ledger.add("join", in_tuples=1, out_tuples=1, est_out=1)
        assert len(ledger) == 2
        assert ledger.dropped == 3
        assert not ledger.is_empty()

    def test_operator_summary_orders_known_ops_first(self):
        ledger = CostLedger()
        ledger.add("zeta", in_tuples=1, out_tuples=1, est_out=1)
        ledger.add("absorb", in_tuples=2, out_tuples=1, est_out=2)
        ledger.add("join", in_tuples=4, out_tuples=3, est_out=5,
                   shards=2, skew=1.5, parallel=True)
        ledger.add("join", in_tuples=2, out_tuples=1, est_out=2)
        rows = ledger.operator_summary()
        assert [r["operator"] for r in rows] == ["join", "absorb", "zeta"]
        join_row = rows[0]
        assert join_row["calls"] == 2
        assert join_row["in_tuples"] == 6
        assert join_row["parallel_calls"] == 1
        assert join_row["max_skew"] == 1.5


# ---------------------------------------------------------- tracer integration


class TestTracerLedger:
    def test_serial_traced_ops_append_records(self):
        tracer = _traced_workload()
        ops = {record.op for record in tracer.ledger}
        # complement drives _absorb internally, so all four appear
        assert ops == set(OPERATORS)
        assert all(not record.parallel for record in tracer.ledger)
        assert all(record.shards == 0 for record in tracer.ledger)

    def test_records_carry_estimator_kinds(self):
        tracer = _traced_workload()
        kinds = {record.op: record.estimator for record in tracer.ledger}
        assert kinds["join"] in ("join.indexed", "join.cross")
        assert kinds["project"] == "project.input"
        assert kinds["complement"] in ("complement.linear", "complement.product")
        assert kinds["absorb"] == "absorb.dedup"

    def test_complement_estimate_is_an_upper_bound(self):
        # the tightened estimator (min of the per-stage linear bound
        # and the capped DNF product) must still never under-estimate
        tracer = _traced_workload()
        complements = [r for r in tracer.ledger if r.op == "complement"]
        assert complements
        for record in complements:
            assert record.est_out >= record.out_tuples

    def test_join_estimate_is_an_upper_bound(self):
        tracer = _traced_workload()
        joins = [r for r in tracer.ledger if r.op == "join"]
        assert joins
        for record in joins:
            assert record.est_out >= record.out_tuples

    def test_parallel_records_carry_dispatch_shape(self):
        tracer = Tracer()
        ctx = ExecutionContext(workers=2, pool="thread")
        try:
            with tracer, ctx:
                with tracer.span("query"):
                    r = _rel(40)
                    r.join(r.rename({"x": "y", "y": "z"})).project(("x", "z"))
        finally:
            ctx.close()
        parallel = [record for record in tracer.ledger if record.parallel]
        assert parallel
        assert all(record.shards >= 1 for record in parallel)
        assert all(record.skew >= 1.0 for record in parallel)

    def test_untraced_ops_record_nothing(self):
        r = _rel()
        r.join(r.rename({"x": "y", "y": "z"}))
        # no tracer was active; nothing observable to assert except that
        # the call ran without a ledger (no ambient tracer to hold one)
        tracer = Tracer()
        assert tracer.ledger.is_empty()


# -------------------------------------------------------- document round-trip


class TestProfileDocument:
    def test_round_trip(self, tmp_path):
        tracer = _traced_workload()
        path = tmp_path / "profile.json"
        written = write_profile(str(path), tracer)
        loaded = load_profile(str(path))
        assert loaded == written
        assert loaded["schema"] == PROFILE_SCHEMA
        assert loaded["trace"] == tracer.trace_id
        assert len(loaded["records"]) == len(tracer.ledger)
        assert loaded["dropped_records"] == 0
        assert "cache.hits" in loaded["kernel"]

    def test_guard_stats_ride_along(self, tmp_path):
        from repro.runtime.guard import EvaluationGuard

        tracer = Tracer()
        guard = EvaluationGuard(None)
        with tracer, guard:
            with tracer.span("query"):
                _rel().join(_rel().rename({"x": "y", "y": "z"}))
        document = profile_document(tracer, guard)
        assert document["guard"] is not None
        validate_profile(document)

    @pytest.mark.parametrize(
        "mutate, match",
        [
            (lambda d: d.update(schema="repro.profile/2"), "schema"),
            (lambda d: d.update(records=7), "arrays"),
            (lambda d: d.update(dropped_records=-1), "dropped_records"),
            (lambda d: d["records"][0].update(op=3), "op"),
            (lambda d: d["records"][0].update(estimator=3), "estimator"),
            (lambda d: d["records"][0].update(in_tuples="x"), "in_tuples"),
            (lambda d: d["records"][0].update(seconds=-1.0), "negative"),
            (lambda d: d["records"][0].update(parallel="yes"), "parallel"),
            (lambda d: d["operators"][0].update(calls=0), "calls"),
            (lambda d: d.update(kernel=None), "kernel"),
        ],
    )
    def test_corrupted_documents_rejected(self, mutate, match):
        document = profile_document(_traced_workload())
        mutate(document)
        with pytest.raises(EncodingError, match=match):
            validate_profile(document)

    def test_estimator_field_is_optional(self):
        # documents written before the estimator column existed load
        document = profile_document(_traced_workload())
        for record in document["records"]:
            record.pop("estimator", None)
        validate_profile(document)

    def test_parallel_record_without_shards_rejected(self):
        document = profile_document(_traced_workload())
        document["records"][0]["parallel"] = True
        document["records"][0]["shards"] = 0
        with pytest.raises(EncodingError, match="shards"):
            validate_profile(document)

    def test_non_json_file_raises_encoding_error(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(EncodingError, match="not JSON"):
            load_profile(str(path))


# ------------------------------------------------------------------ rendering


class TestRenderCostLedger:
    def test_empty_ledger_renders_placeholder(self):
        assert "no operator calls" in render_cost_ledger(CostLedger())

    def test_table_has_estimate_and_cache_columns(self):
        tracer = _traced_workload()
        text = render_cost_ledger(tracer.ledger)
        assert "est out" in text and "actual out" in text
        assert "est/act" in text and "hit%" in text
        assert "join" in text and "serial" in text

    def test_zero_output_renders_dash_ratio(self):
        ledger = CostLedger()
        ledger.add("join", in_tuples=5, out_tuples=0, est_out=25)
        text = render_cost_ledger(ledger)
        assert "—" in text

    def test_dropped_records_noted(self):
        ledger = CostLedger(max_records=1)
        ledger.add("join", in_tuples=1, out_tuples=1, est_out=1)
        ledger.add("join", in_tuples=1, out_tuples=1, est_out=1)
        assert "1 dropped" in render_cost_ledger(ledger)

    def test_parallel_column_counts_parallel_calls(self):
        ledger = CostLedger()
        ledger.add("join", in_tuples=4, out_tuples=2, est_out=4,
                   shards=2, parallel=True)
        ledger.add("join", in_tuples=4, out_tuples=2, est_out=4)
        assert "1/2" in render_cost_ledger(ledger)


# ------------------------------------------------------------------ CLI surface


@pytest.fixture()
def workload(tmp_path):
    n = 12
    edges = [(i, (i + 1) % n) for i in range(n)]
    db = Database({"edge": Relation.from_points(("x", "y"), edges)})
    db_path = tmp_path / "db.cdb"
    db_path.write_text(encode_database(db))
    program = tmp_path / "tc.dl"
    program.write_text("tc(x, y) :- edge(x, y).\ntc(x, z) :- tc(x, y), edge(y, z).\n")
    return str(db_path), str(program)


def _run_cli(argv):
    from repro.cli import main

    out, err = io.StringIO(), io.StringIO()
    with contextlib.redirect_stdout(out), contextlib.redirect_stderr(err):
        code = main(argv)
    return code, out.getvalue(), err.getvalue()


class TestProfileCli:
    def test_profile_prints_ledger_table(self, workload):
        db, program = workload
        code, out, _ = _run_cli(["profile", db, program, "--engine", "seminaive"])
        assert code == 0
        assert "cost ledger" in out
        assert "join" in out and "est out" in out

    def test_profile_out_writes_valid_document(self, workload, tmp_path):
        db, program = workload
        out_path = tmp_path / "profile.json"
        code, _, _ = _run_cli(
            ["profile", db, program, "--out", str(out_path)]
        )
        assert code == 0
        document = load_profile(str(out_path))
        assert document["schema"] == PROFILE_SCHEMA
        assert document["records"]
        assert json.loads(out_path.read_text())["operators"]

    def test_profile_budget_abort_still_emits_partial_ledger(self, workload, tmp_path):
        db, program = workload
        out_path = tmp_path / "profile.json"
        code, out, err = _run_cli(
            ["profile", db, program, "--max-tuples", "1",
             "--out", str(out_path)]
        )
        assert code == 3
        assert "budget exceeded" in err
        assert "cost ledger" in out
        document = load_profile(str(out_path))
        assert document["guard"] is not None

    def test_profile_accepts_parallel_flags(self, workload):
        db, program = workload
        code, out, _ = _run_cli(
            ["profile", db, program, "--parallel", "--workers", "2"]
        )
        assert code == 0
        assert "cost ledger" in out
