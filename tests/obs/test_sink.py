"""Telemetry sinks: levels, ring semantics, JSONL output, Prometheus."""

import io
import json

from repro.obs import (
    LEVELS,
    CollectingSink,
    JsonlSink,
    Metrics,
    RingBufferSink,
    prometheus_text,
    write_prometheus,
)
from repro.obs.sink import level_number


def rec(name, level="info", **attrs):
    return {
        "schema": "repro.log/1",
        "ts": 0.0,
        "level": level,
        "kind": "log",
        "name": name,
        "trace": "abc",
        "span": None,
        "attrs": attrs,
    }


class TestLevels:
    def test_severity_order(self):
        assert LEVELS["debug"] < LEVELS["info"] < LEVELS["warning"] < LEVELS["error"]

    def test_unknown_level_ranks_lowest(self):
        assert level_number("chatty") < level_number("debug")


class TestCollectingSink:
    def test_collects_in_order(self):
        sink = CollectingSink()
        sink.emit(rec("a"))
        sink.emit(rec("b"))
        assert [r["name"] for r in sink.records] == ["a", "b"]
        assert len(sink) == 2


class TestRingBufferSink:
    def test_keeps_last_n_and_counts_dropped(self):
        ring = RingBufferSink(capacity=3)
        for i in range(5):
            ring.emit(rec(f"e{i}"))
        assert [r["name"] for r in ring.snapshot()] == ["e2", "e3", "e4"]
        assert ring.dropped == 2
        assert len(ring) == 3

    def test_snapshot_is_a_copy(self):
        ring = RingBufferSink(capacity=2)
        ring.emit(rec("a"))
        snap = ring.snapshot()
        ring.emit(rec("b"))
        ring.emit(rec("c"))
        assert [r["name"] for r in snap] == ["a"]

    def test_clear_resets_dropped(self):
        ring = RingBufferSink(capacity=1)
        ring.emit(rec("a"))
        ring.emit(rec("b"))
        ring.clear()
        assert len(ring) == 0 and ring.dropped == 0


class TestJsonlSink:
    def test_writes_one_compact_object_per_line(self, tmp_path):
        path = tmp_path / "log.jsonl"
        sink = JsonlSink(str(path))
        sink.emit(rec("a", round=1))
        sink.emit(rec("b"))
        sink.close()
        lines = path.read_text(encoding="utf-8").splitlines()
        assert len(lines) == 2 and sink.lines_written == 2
        first = json.loads(lines[0])
        assert first["name"] == "a" and first["attrs"] == {"round": 1}
        assert ": " not in lines[0]  # compact separators

    def test_handle_target_left_open(self):
        buffer = io.StringIO()
        sink = JsonlSink(buffer)
        sink.emit(rec("a"))
        sink.close()
        assert not buffer.closed
        assert json.loads(buffer.getvalue())["name"] == "a"

    def test_non_json_attrs_coerced(self, tmp_path):
        path = tmp_path / "log.jsonl"
        sink = JsonlSink(str(path))
        sink.emit(rec("a", what={1, 2}.__class__))
        sink.close()
        json.loads(path.read_text(encoding="utf-8"))  # default=str kept it valid


class TestPrometheus:
    def metrics(self):
        m = Metrics()
        m.count("relation.join.calls", 3)
        m.observe("qe.vars", 2)
        m.observe("qe.vars", 5)
        return m

    def test_counters_and_summaries(self):
        text = prometheus_text(self.metrics())
        assert "# TYPE repro_relation_join_calls counter" in text
        assert "repro_relation_join_calls 3" in text
        assert "# TYPE repro_qe_vars summary" in text
        assert "repro_qe_vars_count 2" in text
        assert "repro_qe_vars_sum 7" in text
        assert "repro_qe_vars_min 2" in text
        assert "repro_qe_vars_max 5" in text

    def test_name_sanitization_and_namespace(self):
        m = Metrics()
        m.count("guard.site:odd name!", 1)
        text = prometheus_text(m, namespace="custom")
        assert "custom_guard_site:odd_name_ 1" in text

    def test_accepts_snapshot_dict(self):
        text = prometheus_text(self.metrics().snapshot())
        assert "repro_relation_join_calls 3" in text

    def test_write_prometheus_round_trip(self, tmp_path):
        path = tmp_path / "metrics.prom"
        assert write_prometheus(str(path), self.metrics()) == str(path)
        content = path.read_text(encoding="utf-8")
        assert content.endswith("\n")
        assert "repro_qe_vars_count 2" in content

    def test_summaries_include_quantile_samples(self):
        text = prometheus_text(self.metrics())
        assert 'repro_qe_vars{quantile="0.5"}' in text
        assert 'repro_qe_vars{quantile="0.95"}' in text
        assert 'repro_qe_vars{quantile="0.99"}' in text

    def test_quantile_samples_are_bounded_by_min_max(self):
        text = prometheus_text(self.metrics())
        for line in text.splitlines():
            if "{quantile=" in line:
                value = float(line.rsplit(" ", 1)[1])
                assert 2 <= value <= 5
