"""Physical planning: per-operator dispatch decisions, the planned
executor, and the QueryPlanner facade."""

import pytest

from repro.core.atoms import le, lt
from repro.core.costmodel import CostModel
from repro.core.database import Database
from repro.core.evaluator import evaluate
from repro.core.formula import Not, constraint, exists, rel
from repro.core.physical import (
    OPTIMIZE_MODES,
    PARALLEL_OPS,
    QueryPlanner,
    execute_plan,
    plan_physical,
    render_plan,
)
from repro.core.planner import (
    Absorb,
    Join,
    Scan,
    Shared,
    Union,
    compile_formula,
    optimize,
)
from repro.core.relation import Relation
from repro.core.terms import Var
from repro.core.theory import DENSE_ORDER
from repro.obs import Tracer
from repro.parallel import ExecutionContext


def _db(n=16):
    database = Database()
    database["E"] = Relation.from_points(
        ("x", "y"), [(i, (i + 1) % n) for i in range(n)]
    )
    database["S"] = Relation.from_points(("x",), [(1,), (5,), (9,)])
    database["T"] = Relation.from_atoms(
        ("x", "y"), [[le("x", "y"), le(0, "x"), le("y", 10)]], DENSE_ORDER
    )
    return database


def _join_plan(db):
    f = exists("y", rel("E", "x", "y") & rel("E", "y", "z"))
    return optimize(compile_formula(f), db)


def _cheap_dispatch_model():
    """A model under which sharding is nearly free: parallel wins."""
    return CostModel(
        coefficients={"join": {"base": 0.0, "per_input": 1e-3,
                               "per_unit": 1e-3, "per_output": 1e-3}},
        dispatch={"base": 1e-9, "per_shard": 1e-9, "per_tuple": 1e-12,
                  "efficiency": 1.0},
    )


class TestPlanPhysical:
    def test_capacity_one_means_all_serial(self):
        db = _db()
        decisions = plan_physical(_join_plan(db), db, max_workers=1)
        assert decisions  # joins and the project got verdicts
        assert all(not d.parallel for d in decisions.values())
        assert all("capacity" in d.reason for d in decisions.values())

    def test_default_model_keeps_small_inputs_serial(self):
        # conservative dispatch pricing: milliseconds of overhead never
        # pay off against microsecond ops — the 1-core regression fix
        db = _db()
        decisions = plan_physical(_join_plan(db), db, max_workers=4)
        assert all(not d.parallel for d in decisions.values())

    def test_cheap_dispatch_model_goes_parallel(self):
        db = _db(64)
        decisions = plan_physical(
            _join_plan(db), db, _cheap_dispatch_model(), max_workers=4
        )
        parallel = [d for d in decisions.values() if d.parallel]
        assert parallel
        assert all(1 < d.workers <= 4 for d in parallel)
        assert all(d.est_parallel < d.est_serial for d in parallel)

    def test_tiny_inputs_stay_below_the_shard_floor(self):
        db = _db()
        db["P"] = Relation.from_points(("x",), [(1,)])
        plan = Join((Scan("P", (Var("x"),)), Scan("P", (Var("x"),))))
        decisions = plan_physical(
            plan, db, _cheap_dispatch_model(), max_workers=4
        )
        (decision,) = decisions.values()
        assert not decision.parallel
        assert "floor" in decision.reason

    def test_absorb_prefers_cell_strategy(self):
        db = _db(64)
        plan = Absorb(_join_plan(db))
        decisions = plan_physical(
            plan, db, _cheap_dispatch_model(), max_workers=4,
            default_strategy="hash",
        )
        absorb = decisions[plan]
        if absorb.parallel:
            assert absorb.strategy == "cell"
        joins = [d for node, d in decisions.items()
                 if isinstance(node, Join) and d.parallel]
        assert all(d.strategy == "hash" for d in joins)

    def test_decisions_keyed_by_node_value(self):
        db = _db()
        plan = _join_plan(db)
        decisions = plan_physical(plan, db)
        target = next(n for n in decisions if isinstance(n, PARALLEL_OPS))
        assert decisions[target].as_attrs()["node"]


class TestExecutePlan:
    def test_matches_direct_evaluation(self):
        db = _db()
        f = exists("y", rel("E", "x", "y") & rel("E", "y", "z"))
        direct = evaluate(f, db)
        planned = execute_plan(optimize(compile_formula(f), db), db)
        assert planned.equivalent(direct)

    def test_shared_subtrees_execute_once(self):
        db = _db()
        calls = []
        original = Relation.join

        def counting_join(self, other, **kwargs):
            calls.append(1)
            return original(self, other, **kwargs)

        sub = Join((Scan("E", (Var("x"), Var("y"))),
                    Scan("E", (Var("y"), Var("z")))))
        plan = Union((Shared(sub), Shared(sub)))
        try:
            Relation.join = counting_join
            execute_plan(plan, db)
        finally:
            Relation.join = original
        assert sum(calls) == 1

    def test_parallel_decisions_match_serial_results(self):
        db = _db(32)
        plan = _join_plan(db)
        serial = execute_plan(plan, db)
        ctx = ExecutionContext(workers=2, pool="thread")
        try:
            decisions = plan_physical(
                plan, db, _cheap_dispatch_model(), max_workers=2
            )
            assert any(d.parallel for d in decisions.values())
            parallel = execute_plan(plan, db, context=ctx, decisions=decisions)
        finally:
            ctx.close()
        assert parallel.equivalent(serial)

    def test_context_settings_restored_after_dispatch(self):
        db = _db(32)
        plan = _join_plan(db)
        ctx = ExecutionContext(workers=4, shard_strategy="hash", pool="thread")
        try:
            decisions = plan_physical(
                plan, db, _cheap_dispatch_model(), max_workers=2
            )
            execute_plan(plan, db, context=ctx, decisions=decisions)
            assert ctx.workers == 4
            assert ctx.shard_strategy == "hash"
        finally:
            ctx.close()


class TestQueryPlanner:
    def test_mode_validation(self):
        assert OPTIMIZE_MODES == ("none", "heuristic", "cost")
        with pytest.raises(ValueError, match="mode"):
            QueryPlanner(mode="fast")

    def test_run_matches_evaluator(self):
        db = _db()
        f = Not(rel("S", "x")) & constraint(lt("x", 20)) & constraint(lt(0, "x"))
        for mode in ("heuristic", "cost"):
            planner = QueryPlanner(mode=mode)
            assert planner.run(f, db, db.theory).equivalent(evaluate(f, db))

    def test_logical_plans_are_cached(self):
        db = _db()
        f = exists("y", rel("E", "x", "y"))
        planner = QueryPlanner(mode="cost")
        first = planner.logical_plan(f, db)
        second = planner.logical_plan(f, db)
        assert first is second

    def test_heuristic_mode_never_dispatches(self):
        db = _db()
        ctx = ExecutionContext(workers=4, pool="thread")
        try:
            planner = QueryPlanner(mode="heuristic", context=ctx)
            assert planner.max_workers == 1
            plan = planner.logical_plan(exists("y", rel("E", "x", "y")), db)
            assert planner.physical_plan(plan, db) == {}
        finally:
            ctx.close()

    def test_planner_metrics_and_decision_logs(self):
        from repro.obs.sink import CollectingSink

        db = _db()
        f = exists("y", rel("E", "x", "y") & rel("E", "y", "z"))
        planner = QueryPlanner(mode="cost")
        tracer = Tracer()
        sink = tracer.add_sink(CollectingSink())
        with tracer:
            with tracer.span("query"):
                planner.run(f, db, db.theory)
                planner.run(f, db, db.theory)  # second plan hits the cache
        counters = tracer.metrics.counters
        assert counters.get("planner.plans") == 1
        assert counters.get("planner.cache.hits") == 1
        assert counters.get("planner.nodes.serial", 0) >= 1
        decisions = [r for r in sink.records if r["name"] == "planner.decision"]
        assert decisions
        assert {"node", "parallel", "reason"} <= set(decisions[0]["attrs"])
        spans = [r for r in sink.records
                 if r["kind"] == "span" and r["name"] == "planner.plan"]
        assert spans  # plan provenance rides the trace

    def test_guard_counters_attributed(self):
        from repro.runtime.guard import EvaluationGuard

        db = _db()
        f = exists("y", rel("E", "x", "y") & rel("E", "y", "z"))
        guard = EvaluationGuard()
        planner = QueryPlanner(mode="cost")
        planner.run(f, db, db.theory, guard=guard)
        assert guard.tuples_materialized > 0


class TestRenderPlan:
    def test_listing_shape(self):
        db = _db()
        text = render_plan(_join_plan(db), db, max_workers=1)
        assert "est_rows" in text and "est_cost" in text
        assert "[serial]" in text
        assert "total modeled cost" in text
        assert "pool capacity: 1 worker(s)" in text

    def test_parallel_verdicts_rendered(self):
        db = _db(64)
        text = render_plan(
            _join_plan(db), db, _cheap_dispatch_model(), max_workers=4
        )
        assert "parallel×" in text
        assert "chosen parallel" in text
