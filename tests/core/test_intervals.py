"""Unit and property tests for the canonical 1-D interval form."""

from fractions import Fraction

import pytest
from hypothesis import given, settings

from repro.core.atoms import le, lt
from repro.core.intervals import Interval, IntervalSet
from repro.core.relation import Relation
from repro.core.theory import DENSE_ORDER
from repro.errors import SchemaError
from tests.strategies import fractions as fracs, interval_sets, intervals

GRID = [Fraction(n, 2) for n in range(-8, 9)]


def grid_points(s: IntervalSet):
    return {v for v in GRID if s.contains(v)}


class TestInterval:
    def test_point(self):
        p = Interval.point(3)
        assert p.is_point()
        assert p.contains(3)
        assert not p.contains(Fraction(31, 10))

    def test_open_excludes_endpoints(self):
        i = Interval.open(0, 1)
        assert not i.contains(0)
        assert not i.contains(1)
        assert i.contains(Fraction(1, 2))

    def test_closed_includes_endpoints(self):
        i = Interval.closed(0, 1)
        assert i.contains(0)
        assert i.contains(1)

    def test_empty_detection(self):
        assert Interval.open(1, 1).is_empty()
        assert Interval.make(2, 1).is_empty()
        assert not Interval.point(1).is_empty()
        assert not Interval.all().is_empty()

    def test_rays(self):
        assert Interval.less_than(0).contains(-100)
        assert not Interval.less_than(0).contains(0)
        assert Interval.at_most(0).contains(0)
        assert Interval.greater_than(0).contains(100)
        assert Interval.at_least(0).contains(0)

    def test_intersection(self):
        a = Interval.closed(0, 2)
        b = Interval.open(1, 3)
        i = a.intersection(b)
        assert i.contains(Fraction(3, 2))
        assert not i.contains(1)
        assert i.contains(2)

    def test_touches_adjacent_half_open(self):
        a = Interval.closed(0, 1)
        b = Interval.open(1, 2)
        assert a.touches(b)
        assert b.touches(a)

    def test_open_gap_does_not_touch(self):
        a = Interval.open(0, 1)
        b = Interval.open(1, 2)
        assert not a.touches(b)

    def test_complement_of_closed(self):
        parts = Interval.closed(0, 1).complement()
        assert len(parts) == 2
        assert parts[0].contains(-1) and not parts[0].contains(0)
        assert parts[1].contains(2) and not parts[1].contains(1)

    def test_complement_of_all_is_empty(self):
        assert Interval.all().complement() == []

    def test_str(self):
        assert str(Interval.closed(0, 1)) == "[0, 1]"
        assert str(Interval.open(0, 1)) == "(0, 1)"
        assert str(Interval.all()) == "(-inf, +inf)"


class TestIntervalSetCanonical:
    def test_overlapping_merged(self):
        s = IntervalSet([Interval.closed(0, 2), Interval.closed(1, 3)])
        assert len(s) == 1
        assert s.intervals[0] == Interval.closed(0, 3)

    def test_adjacent_merged(self):
        s = IntervalSet([Interval.closed(0, 1), Interval.open(1, 2)])
        assert len(s) == 1

    def test_gap_kept(self):
        s = IntervalSet([Interval.open(0, 1), Interval.open(1, 2)])
        assert len(s) == 2

    def test_point_plugs_gap(self):
        s = IntervalSet([Interval.open(0, 1), Interval.point(1), Interval.open(1, 2)])
        assert len(s) == 1
        assert s.intervals[0] == Interval.open(0, 2)

    def test_empties_dropped(self):
        s = IntervalSet([Interval.open(1, 1), Interval.make(3, 2)])
        assert s.is_empty()

    def test_canonical_equality(self):
        a = IntervalSet([Interval.closed(0, 1), Interval.closed(1, 2)])
        b = IntervalSet([Interval.closed(0, 2)])
        assert a == b
        assert hash(a) == hash(b)

    @settings(max_examples=150)
    @given(interval_sets(), interval_sets())
    def test_algebra_pointwise(self, a, b):
        pa, pb = grid_points(a), grid_points(b)
        assert grid_points(a.union(b)) == pa | pb
        assert grid_points(a.intersection(b)) == pa & pb
        assert grid_points(a.difference(b)) == pa - pb

    @settings(max_examples=100)
    @given(interval_sets())
    def test_double_complement(self, a):
        assert a.complement().complement() == a

    @settings(max_examples=100)
    @given(interval_sets())
    def test_union_with_complement_is_all(self, a):
        assert a.union(a.complement()) == IntervalSet.all()
        assert a.intersection(a.complement()).is_empty()


class TestRelationConversion:
    def test_from_unary_relation(self):
        r = Relation.from_atoms(
            ("x",),
            [[le(0, "x"), le("x", 1)], [lt(5, "x")]],
            DENSE_ORDER,
        )
        s = IntervalSet.from_relation(r)
        assert s == IntervalSet([Interval.closed(0, 1), Interval.greater_than(5)])

    def test_point_tuple(self):
        r = Relation.from_points(("x",), [(3,)])
        assert IntervalSet.from_relation(r) == IntervalSet([Interval.point(3)])

    def test_arity_guard(self):
        with pytest.raises(SchemaError):
            IntervalSet.from_relation(Relation.universe(("x", "y")))

    def test_round_trip(self):
        s = IntervalSet([Interval.open(0, 1), Interval.point(2), Interval.at_least(3)])
        assert IntervalSet.from_relation(s.to_relation()) == s

    @settings(max_examples=100)
    @given(interval_sets())
    def test_round_trip_random(self, s):
        assert IntervalSet.from_relation(s.to_relation()) == s

    @settings(max_examples=60)
    @given(interval_sets())
    def test_relation_complement_matches_interval_complement(self, s):
        r = s.to_relation()
        assert IntervalSet.from_relation(r.complement()) == s.complement()
