"""Tests for the query planner and optimizer."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.atoms import le, lt
from repro.core.database import Database
from repro.core.evaluator import evaluate
from repro.core.formula import Not, constraint, exists, forall, rel
from repro.core.planner import (
    Complement,
    ConstraintScan,
    Join,
    Plan,
    Project,
    Scan,
    Select,
    Union,
    compile_formula,
    execute,
    explain,
    optimize,
)
from repro.core.relation import Relation
from repro.core.theory import DENSE_ORDER
from tests.strategies import formulas, fractions as fracs


@pytest.fixture
def db():
    database = Database()
    database["T"] = Relation.from_atoms(
        ("x", "y"), [[le("x", "y"), le(0, "x"), le("y", 10)]], DENSE_ORDER
    )
    database["S"] = Relation.from_points(("x",), [(1,), (5,), (9,)])
    return database


class TestCompile:
    def test_relation_atom(self):
        plan = compile_formula(rel("T", "a", "b"))
        assert isinstance(plan, Scan)
        assert plan.schema == ("a", "b")

    def test_and_is_join(self):
        plan = compile_formula(rel("S", "x") & constraint(lt("x", 5)))
        assert isinstance(plan, Join)

    def test_exists_is_project(self):
        plan = compile_formula(exists("y", rel("T", "x", "y")))
        assert isinstance(plan, Project)
        assert plan.schema == ("x",)

    def test_forall_compiles_via_duals(self):
        plan = compile_formula(forall("y", rel("T", "x", "y")))
        assert isinstance(plan, Complement)


class TestOptimizePasses:
    def test_constraint_becomes_selection(self):
        plan = optimize(compile_formula(rel("S", "x") & constraint(lt("x", 5))))
        assert isinstance(plan, Select)
        assert isinstance(plan.source, Scan)

    def test_join_flattening(self):
        f = (rel("S", "x") & rel("T", "x", "y")) & rel("S", "y")
        plan = optimize(compile_formula(f))
        assert isinstance(plan, Join)
        assert len(plan.parts) == 3

    def test_join_reordering_by_size(self, db):
        big = Relation.from_points(("x",), [(i,) for i in range(8)])
        db["Big"] = big
        f = rel("Big", "x") & rel("S", "x")
        plan = optimize(compile_formula(f), db)
        assert isinstance(plan, Join)
        # with only 2 parts order is untouched; with 3+, smallest first
        f3 = rel("Big", "x") & rel("S", "x") & rel("T", "x", "y")
        plan3 = optimize(compile_formula(f3), db)
        sizes = []
        from repro.core.planner import _estimate

        for part in plan3.parts:
            sizes.append(_estimate(part, db))
        assert sizes == sorted(sizes)

    def test_explain_renders(self, db):
        plan = optimize(compile_formula(exists("y", rel("T", "x", "y") & constraint(lt("y", 5)))))
        text = explain(plan)
        assert "Project" in text
        assert "Scan T" in text
        assert "Select" in text


class TestExecution:
    def test_matches_evaluator_on_example(self, db):
        f = exists("y", rel("T", "x", "y") & constraint(lt("y", 5)))
        direct = evaluate(f, db)
        naive = execute(compile_formula(f), db)
        optimized = execute(optimize(compile_formula(f), db), db)
        assert naive.equivalent(direct)
        assert optimized.equivalent(direct)

    def test_union_with_mixed_schemas(self, db):
        f = rel("S", "x") | constraint(lt("y", 0))
        plan = optimize(compile_formula(f), db)
        out = execute(plan, db)
        assert out.schema == ("x", "y")
        assert out.contains_point([1, 100])
        assert out.contains_point([100, -1])

    def test_complement(self, db):
        f = Not(rel("S", "x"))
        out = execute(optimize(compile_formula(f), db), db)
        assert out.contains_point([2])
        assert not out.contains_point([5])

    @settings(max_examples=80, deadline=None)
    @given(formulas(depth=2), st.data())
    def test_random_formulas_agree(self, f, data):
        """compile -> optimize -> execute == evaluate, pointwise."""
        direct = evaluate(f)
        via_plan = execute(optimize(compile_formula(f)))
        names = sorted(v.name for v in f.free_variables())
        point = [data.draw(fracs) for _ in names]
        assert direct.contains_point(point) == via_plan.contains_point(point)

    def test_sentences(self, db):
        f = exists(["x", "y"], rel("T", "x", "y"))
        out = execute(optimize(compile_formula(f), db), db)
        assert not out.is_empty()


class TestOptimizerWins:
    def test_selection_pushdown_shrinks_intermediates(self, db):
        """With the selection pushed into the scan, the join sees fewer
        tuples; verify via representation sizes, not wall-clock."""
        f = rel("S", "x") & rel("S", "y") & constraint(lt("x", 2)) & constraint(lt("y", 2))
        naive_plan = compile_formula(f)
        fast_plan = optimize(naive_plan, db)
        naive_out = execute(naive_plan, db)
        fast_out = execute(fast_plan, db)
        assert fast_out.equivalent(naive_out)
        # the optimized plan has selections directly on scans
        text = explain(fast_plan)
        assert text.count("Select") >= 2
