"""Contract tests: every ConstraintTheory obeys the engine's assumptions.

The generic engine (tuples, relations, evaluator, Datalog) only sees
the :class:`~repro.core.theory.ConstraintTheory` interface; these tests
run both shipped theories through one battery so a third theory can be
validated by adding a fixture param.
"""

from fractions import Fraction

import pytest

from repro.core.atoms import eq, le, lt
from repro.core.terms import Const, Var
from repro.core.theory import DENSE_ORDER
from repro.linear.latoms import lin_eq, lin_le, lin_lt
from repro.linear.theory import LINEAR

THEORIES = {
    "dense-order": (
        DENSE_ORDER,
        {
            "lt": lambda a, b: lt(a, b),
            "le": lambda a, b: le(a, b),
            "eq": lambda a, b: eq(a, b),
        },
    ),
    "linear": (
        LINEAR,
        {
            "lt": lambda a, b: lin_lt(a, b),
            "le": lambda a, b: lin_le(a, b),
            "eq": lambda a, b: lin_eq(a, b),
        },
    ),
}


@pytest.fixture(params=sorted(THEORIES))
def theory_kit(request):
    return THEORIES[request.param]


class TestSatisfiability:
    def test_empty(self, theory_kit):
        theory, _ = theory_kit
        assert theory.is_satisfiable([])

    def test_chain(self, theory_kit):
        theory, ops = theory_kit
        assert theory.is_satisfiable([ops["lt"]("x", "y"), ops["lt"]("y", "z")])

    def test_contradiction(self, theory_kit):
        theory, ops = theory_kit
        assert not theory.is_satisfiable([ops["lt"]("x", "y"), ops["lt"]("y", "x")])

    def test_tight_equalities(self, theory_kit):
        theory, ops = theory_kit
        atoms = [ops["le"]("x", "y"), ops["le"]("y", "x"), ops["eq"]("x", 3)]
        assert theory.is_satisfiable(atoms)
        witness = theory.solve(atoms)
        assert witness[Var("x")] == witness[Var("y")] == Fraction(3)


class TestProjection:
    def test_density_law(self, theory_kit):
        """exists y (x < y < z)  <=>  x < z  in both theories."""
        theory, ops = theory_kit
        [projected] = theory.project_out(
            [ops["lt"]("x", "y"), ops["lt"]("y", "z")], Var("y")
        )
        # semantically x < z: satisfiable with x < z, unsat with z <= x
        assert theory.is_satisfiable(projected + [ops["lt"]("x", "z")])
        assert not theory.is_satisfiable(projected + [ops["le"]("z", "x")])

    def test_no_endpoints(self, theory_kit):
        theory, ops = theory_kit
        [projected] = theory.project_out([ops["lt"]("y", "x")], Var("y"))
        assert projected == []

    def test_pin_substitution(self, theory_kit):
        theory, ops = theory_kit
        [projected] = theory.project_out(
            [ops["eq"]("y", 3), ops["lt"]("x", "y")], Var("y")
        )
        assert theory.is_satisfiable(projected + [ops["eq"]("x", 0)])
        assert not theory.is_satisfiable(projected + [ops["eq"]("x", 5)])


class TestNegation:
    @pytest.mark.parametrize("value", [Fraction(-1), Fraction(0), Fraction(1)])
    def test_atom_negation_partitions(self, theory_kit, value):
        theory, ops = theory_kit
        for make in (ops["lt"], ops["le"], ops["eq"]):
            a = make("x", 0)
            env = {Var("x"): value}
            holds = theory.evaluate_atom(a, env)
            negated = any(theory.evaluate_atom(n, env) for n in theory.negate_atom(a))
            assert holds != negated


class TestEntailment:
    def test_transitivity(self, theory_kit):
        theory, ops = theory_kit
        premises = [ops["lt"]("x", "y"), ops["lt"]("y", "z")]
        assert theory.entails(premises, ops["lt"]("x", "z"))
        assert not theory.entails(premises, ops["eq"]("x", "z"))

    def test_entailer_matches_entails(self, theory_kit):
        theory, ops = theory_kit
        premises = [ops["le"]("x", 1), ops["le"](1, "x")]
        check = theory.make_entailer(premises)
        for candidate in (ops["eq"]("x", 1), ops["lt"]("x", 2), ops["lt"]("x", 1)):
            assert check(candidate) == theory.entails(premises, candidate)


class TestCanonicalization:
    def test_fused_path_agrees(self, theory_kit):
        theory, ops = theory_kit
        atoms = [ops["le"]("x", 1), ops["le"]("x", 2)]
        fused = theory.canonicalize_if_satisfiable(atoms)
        assert fused == theory.canonicalize(atoms)
        bad = [ops["lt"]("x", 0), ops["lt"](1, "x")]
        assert theory.canonicalize_if_satisfiable(bad) is None

    def test_canonical_form_equivalent(self, theory_kit):
        theory, ops = theory_kit
        atoms = [ops["le"]("x", "y"), ops["le"]("y", "x")]
        canon = list(theory.canonicalize(atoms))
        for a in atoms:
            assert theory.entails(canon, a)
        for a in canon:
            assert theory.entails(atoms, a)


class TestEqualityAndWeakening:
    def test_equality_atom(self, theory_kit):
        theory, _ = theory_kit
        a = theory.equality_atom(Var("x"), Const(Fraction(2)))
        assert theory.evaluate_atom(a, {Var("x"): Fraction(2)})
        assert not theory.evaluate_atom(a, {Var("x"): Fraction(3)})

    def test_weaken_admits_boundary(self, theory_kit):
        theory, ops = theory_kit
        strict = ops["lt"]("x", 1)
        weak = theory.weaken_atom(strict)
        assert theory.evaluate_atom(weak, {Var("x"): Fraction(1)})
        assert not theory.evaluate_atom(strict, {Var("x"): Fraction(1)})
        assert theory.weaken_atom(weak) == weak
