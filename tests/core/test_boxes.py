"""Unit tests for the box (rectangle) fast path of paper Section 2."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.atoms import lt
from repro.core.boxes import Box, BoxSet
from repro.core.intervals import Interval
from repro.core.relation import Relation
from repro.core.theory import DENSE_ORDER
from repro.errors import SchemaError
from tests.strategies import fractions as fracs

GRID2 = [
    (Fraction(a, 2), Fraction(b, 2)) for a in range(-4, 5) for b in range(-4, 5)
]


def grid_points(s: BoxSet):
    return {p for p in GRID2 if s.contains(p)}


@st.composite
def boxes2(draw):
    a, b = sorted([draw(fracs), draw(fracs)])
    c, d = sorted([draw(fracs), draw(fracs)])
    open_x, open_y = draw(st.booleans()), draw(st.booleans())
    return Box(
        (
            Interval.make(a, b, open_x, open_x),
            Interval.make(c, d, open_y, open_y),
        )
    )


@st.composite
def box_sets2(draw, max_size=3):
    return BoxSet(draw(st.lists(boxes2(), max_size=max_size)), dimension=2)


class TestBox:
    def test_closed_rectangle(self):
        b = Box.closed((0, 2), (0, 1))
        assert b.dimension == 2
        assert b.contains([1, Fraction(1, 2)])
        assert not b.contains([3, 0])

    def test_open_excludes_border(self):
        b = Box.open((0, 1), (0, 1))
        assert not b.contains([0, Fraction(1, 2)])

    def test_empty(self):
        assert Box.open((1, 1), (0, 2)).is_empty()
        assert not Box.closed((1, 1), (0, 2)).is_empty()

    def test_intersection(self):
        a = Box.closed((0, 2), (0, 2))
        b = Box.closed((1, 3), (1, 3))
        i = a.intersection(b)
        assert i.contains([Fraction(3, 2), Fraction(3, 2)])
        assert not i.contains([Fraction(1, 2), Fraction(1, 2)])

    def test_dimension_mismatch(self):
        with pytest.raises(SchemaError):
            Box.closed((0, 1)).intersection(Box.closed((0, 1), (0, 1)))

    def test_to_gtuple(self):
        t = Box.closed((0, 1), (2, 3)).to_gtuple(("x", "y"))
        assert t.contains_point([Fraction(1, 2), Fraction(5, 2)])
        assert not t.contains_point([Fraction(1, 2), Fraction(1, 2)])


class TestBoxSet:
    def test_union_contains_both(self):
        s = BoxSet([Box.closed((0, 1), (0, 1))]).union(BoxSet([Box.closed((2, 3), (2, 3))]))
        assert s.contains([Fraction(1, 2), Fraction(1, 2)])
        assert s.contains([Fraction(5, 2), Fraction(5, 2)])

    def test_complement_of_square(self):
        s = BoxSet([Box.closed((0, 1), (0, 1))])
        c = s.complement()
        assert c.contains([2, 2])
        assert c.contains([Fraction(1, 2), 2])
        assert not c.contains([Fraction(1, 2), Fraction(1, 2)])

    def test_empty_needs_dimension(self):
        with pytest.raises(SchemaError):
            BoxSet([])

    @settings(max_examples=80, deadline=None)
    @given(box_sets2(), box_sets2())
    def test_algebra_pointwise(self, a, b):
        pa, pb = grid_points(a), grid_points(b)
        assert grid_points(a.union(b)) == pa | pb
        assert grid_points(a.intersection(b)) == pa & pb
        assert grid_points(a.difference(b)) == pa - pb

    @settings(max_examples=60, deadline=None)
    @given(box_sets2())
    def test_complement_pointwise(self, a):
        assert grid_points(a.complement()) == set(GRID2) - grid_points(a)


class TestRelationConversion:
    def test_round_trip(self):
        s = BoxSet([Box.closed((0, 1), (0, 1)), Box.open((2, 3), (2, 3))])
        r = s.to_relation(("x", "y"))
        back = BoxSet.from_relation(r)
        assert grid_points(back) == grid_points(s)

    def test_relation_and_boxset_agree(self):
        s = BoxSet([Box.closed((0, 2), (1, 3))])
        r = s.to_relation(("x", "y"))
        for p in GRID2:
            assert r.contains_point(list(p)) == s.contains(p)

    def test_non_axis_aligned_rejected(self):
        r = Relation.from_atoms(("x", "y"), [[lt("x", "y")]], DENSE_ORDER)
        with pytest.raises(SchemaError):
            BoxSet.from_relation(r)

    @settings(max_examples=40, deadline=None)
    @given(box_sets2())
    def test_complement_matches_relation_complement(self, s):
        r = s.to_relation(("x", "y"))
        rc = r.complement()
        sc = s.complement()
        for p in GRID2:
            assert rc.contains_point(list(p)) == sc.contains(p)
