"""Unit tests for database instances."""

from fractions import Fraction

import pytest

from repro.core.atoms import le, lt
from repro.core.database import Database
from repro.core.relation import Relation
from repro.core.theory import DENSE_ORDER, DenseOrderTheory
from repro.errors import SchemaError


@pytest.fixture
def db():
    d = Database()
    d["S"] = Relation.from_atoms(("x",), [[lt(0, "x"), lt("x", 1)]], DENSE_ORDER)
    d["T"] = Relation.from_atoms(("x", "y"), [[le("x", "y")]], DENSE_ORDER)
    return d


class TestMapping:
    def test_get_set(self, db):
        assert db["S"].arity == 1
        assert "S" in db and "T" in db
        assert "U" not in db

    def test_unknown_raises(self, db):
        with pytest.raises(SchemaError):
            db["U"]

    def test_invalid_name(self, db):
        with pytest.raises(SchemaError):
            db[""] = Relation.empty(("x",))

    def test_len_iter_names(self, db):
        assert len(db) == 2
        assert set(db) == {"S", "T"}
        assert db.names() == ("S", "T")

    def test_theory_mismatch(self, db):
        class OtherTheory(DenseOrderTheory):
            name = "other"

        with pytest.raises(SchemaError):
            db["U"] = Relation.empty(("x",), OtherTheory())

    def test_equal_theory_instances_accepted(self, db):
        # theories are value objects: a separately constructed instance
        # of the same theory class must interoperate (regression)
        db["U"] = Relation.empty(("x",), DenseOrderTheory())
        assert "U" in db


class TestInspection:
    def test_schema_arity(self, db):
        assert db.schema("T") == ("x", "y")
        assert db.arity("T") == 2

    def test_constants(self, db):
        assert db.constants() == {Fraction(0), Fraction(1)}

    def test_copy_is_shallow_independent(self, db):
        c = db.copy()
        c["U"] = Relation.empty(("x",))
        assert "U" not in db

    def test_repr(self, db):
        assert "S/1" in repr(db)
        assert "T/2" in repr(db)
