"""Unit and property tests for the order-constraint reasoner."""

from fractions import Fraction

import pytest
from hypothesis import given, settings

from repro.core.atoms import Op, eq, le, lt, ne
from repro.core.ordergraph import OrderGraph
from repro.core.terms import Const, Var
from repro.errors import TheoryError
from tests.strategies import conjunctions


class TestSatisfiability:
    def test_empty_is_satisfiable(self):
        assert OrderGraph([]).is_satisfiable()

    def test_simple_chain(self):
        g = OrderGraph([lt("x", "y"), lt("y", "z")])
        assert g.is_satisfiable()

    def test_strict_cycle_unsat(self):
        g = OrderGraph([lt("x", "y"), le("y", "x")])
        assert not g.is_satisfiable()

    def test_weak_cycle_sat(self):
        g = OrderGraph([le("x", "y"), le("y", "x")])
        assert g.is_satisfiable()

    def test_constants_forced_equal_unsat(self):
        g = OrderGraph([le(1, "x"), le("x", 1), eq("x", 2)])
        assert not g.is_satisfiable()

    def test_implicit_constant_order(self):
        # 2 <= x and x <= 1 contradicts 1 < 2 even though no atom says so
        g = OrderGraph([le(2, "x"), le("x", 1)])
        assert not g.is_satisfiable()

    def test_implicit_constant_order_weakly_ok(self):
        g = OrderGraph([le(1, "x"), le("x", 2)])
        assert g.is_satisfiable()

    def test_transitive_contradiction(self):
        g = OrderGraph([lt("x", "y"), lt("y", "z"), lt("z", "x")])
        assert not g.is_satisfiable()

    def test_pinned_between_constants(self):
        g = OrderGraph([lt(0, "x"), lt("x", 1), eq("x", Fraction(1, 2))])
        assert g.is_satisfiable()


class TestImplication:
    def test_transitive_strict(self):
        g = OrderGraph([lt("x", "y"), lt("y", "z")])
        assert g.implies(lt("x", "z"))
        assert g.implies(le("x", "z"))
        assert g.implies(ne("x", "z"))
        assert not g.implies(eq("x", "z"))

    def test_weak_chain_implies_weak_only(self):
        g = OrderGraph([le("x", "y"), le("y", "z")])
        assert g.implies(le("x", "z"))
        assert not g.implies(lt("x", "z"))

    def test_mixed_chain_is_strict(self):
        g = OrderGraph([le("x", "y"), lt("y", "z")])
        assert g.implies(lt("x", "z"))

    def test_equality_from_two_weaks(self):
        g = OrderGraph([le("x", "y"), le("y", "x")])
        assert g.implies(eq("x", "y"))

    def test_constant_gap(self):
        g = OrderGraph([le("x", 1), le(2, "y")])
        assert g.implies(lt("x", "y"))

    def test_unsat_implies_everything(self):
        g = OrderGraph([lt("x", "x") if False else lt("x", "y"), lt("y", "x")])
        assert g.implies(eq("x", "y"))
        assert g.implies(lt("y", "x"))

    def test_boolean_candidates(self):
        g = OrderGraph([lt("x", "y")])
        assert g.implies(True)
        assert not g.implies(False)


class TestRelationBetween:
    def test_unrelated(self):
        g = OrderGraph([lt("x", "y")])
        assert g.relation_between(Var("x"), Var("z")) is None

    def test_constants_numeric(self):
        g = OrderGraph([])
        assert g.relation_between(Const(Fraction(1)), Const(Fraction(2))) is Op.LT
        assert g.relation_between(Const(Fraction(2)), Const(Fraction(1))) is Op.GT

    def test_same_term(self):
        g = OrderGraph([])
        assert g.relation_between(Var("x"), Var("x")) is Op.EQ


class TestEqualityClasses:
    def test_merges_chain_of_equalities(self):
        g = OrderGraph([eq("x", "y"), eq("y", "z")])
        classes = {frozenset(v.name for v in cls if isinstance(v, Var)) for cls in g.equality_classes()}
        assert frozenset({"x", "y", "z"}) in classes

    def test_weak_cycle_merges(self):
        g = OrderGraph([le("x", "y"), le("y", "z"), le("z", "x")])
        [cls] = g.equality_classes()
        assert cls == frozenset({Var("x"), Var("y"), Var("z")})


class TestCanonicalAtoms:
    def test_unsat_raises(self):
        g = OrderGraph([lt("x", "y"), lt("y", "x")])
        with pytest.raises(TheoryError):
            g.canonical_atoms()

    def test_transitive_edge_dropped(self):
        g = OrderGraph([lt("x", "y"), lt("y", "z"), lt("x", "z")])
        assert g.canonical_atoms() == frozenset({lt("x", "y"), lt("y", "z")})

    def test_equalities_to_constant_representative(self):
        g = OrderGraph([eq("x", "y"), eq("y", 3)])
        assert g.canonical_atoms() == frozenset({eq("x", 3), eq("y", 3)})

    def test_constant_constant_edges_implicit(self):
        g = OrderGraph([le(1, "x"), le("x", 2)])
        assert g.canonical_atoms() == frozenset({le(1, "x"), le("x", 2)})

    def test_equivalent_conjunctions_same_canonical_form(self):
        a = OrderGraph([le("x", "y"), le("y", "x")])
        b = OrderGraph([eq("x", "y")])
        assert a.canonical_atoms() == b.canonical_atoms()

    def test_redundant_constant_bound_dropped(self):
        g = OrderGraph([lt("x", 1), lt("x", 2)])
        assert g.canonical_atoms() == frozenset({lt("x", 1)})

    def test_bound_through_variable_dropped(self):
        g = OrderGraph([lt("x", "y"), lt("y", 5), lt("x", 5)])
        assert g.canonical_atoms() == frozenset({lt("x", "y"), lt("y", 5)})


class TestSolve:
    def test_unsat_returns_none(self):
        assert OrderGraph([lt("x", "y"), lt("y", "x")]).solve() is None

    def test_witness_satisfies_all_atoms(self):
        atoms = [lt("x", "y"), le("y", "z"), lt(0, "x"), lt("z", 1)]
        witness = OrderGraph(atoms).solve()
        assert witness is not None
        for a in atoms:
            assert a.evaluate(witness)

    def test_pinned_variable(self):
        witness = OrderGraph([eq("x", Fraction(7, 2))]).solve()
        assert witness == {Var("x"): Fraction(7, 2)}

    def test_unconstrained_variable_gets_value(self):
        witness = OrderGraph([le("x", "x") if False else lt("x", "y")]).solve()
        assert set(witness) == {Var("x"), Var("y")}

    @settings(max_examples=200)
    @given(conjunctions(max_size=6))
    def test_solve_iff_satisfiable(self, atoms):
        atoms = [a for a in atoms if not isinstance(a, bool)]
        g = OrderGraph(atoms)
        witness = g.solve()
        if g.is_satisfiable():
            assert witness is not None
            for a in atoms:
                assert a.evaluate(witness), f"{a} fails under {witness}"
        else:
            assert witness is None

    @settings(max_examples=200)
    @given(conjunctions(min_size=1, max_size=6))
    def test_canonical_form_equivalent(self, atoms):
        """The canonical atom set entails and is entailed by the original."""
        atoms = [a for a in atoms if not isinstance(a, bool)]
        g = OrderGraph(atoms)
        if not g.is_satisfiable():
            return
        canon = g.canonical_atoms()
        h = OrderGraph(canon)
        for a in atoms:
            assert h.implies(a), f"canonical form lost {a}"
        for a in canon:
            assert g.implies(a), f"canonical form invented {a}"
