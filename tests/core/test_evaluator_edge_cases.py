"""Evaluator edge cases beyond the main suite."""

from fractions import Fraction

import pytest

from repro.core.atoms import eq, le, lt, ne
from repro.core.database import Database
from repro.core.evaluator import evaluate, evaluate_boolean
from repro.core.formula import (
    FALSE,
    TRUE,
    And,
    Not,
    Or,
    conj,
    constraint,
    disj,
    exists,
    forall,
    rel,
)
from repro.core.relation import Relation
from repro.core.theory import DENSE_ORDER


def C(a):
    return constraint(a)


class TestBooleanNodes:
    def test_true_false_leaves(self):
        assert evaluate_boolean(TRUE)
        assert not evaluate_boolean(FALSE)

    def test_empty_connectives(self):
        assert evaluate_boolean(And(()))
        assert not evaluate_boolean(Or(()))

    def test_mixed_boolean_leaves(self):
        assert evaluate_boolean(TRUE & Not(FALSE))
        assert not evaluate_boolean(TRUE & FALSE)


class TestMultiVariableQuantifiers:
    def test_forall_block(self):
        f = forall(["a", "b", "c"],
                   (C(lt("a", "b")) & C(lt("b", "c"))).implies(C(lt("a", "c"))))
        assert evaluate_boolean(f)

    def test_exists_block_with_constraints(self):
        f = exists(["a", "b", "c"], C(lt("a", "b")) & C(lt("b", "c")) & C(lt("c", "a")))
        assert not evaluate_boolean(f)

    def test_quantifying_absent_variable(self):
        """Quantifying a variable not occurring in the body is a no-op."""
        f = exists("ghost", C(lt("x", 1)))
        out = evaluate(f)
        assert out.schema == ("x",)
        assert out.contains_point([0])

    def test_forall_absent_variable(self):
        f = forall("ghost", C(lt("x", 1)))
        out = evaluate(f)
        assert out.contains_point([0])
        assert not out.contains_point([2])


class TestNeInQueries:
    def test_ne_against_relation(self):
        db = Database()
        db["S"] = Relation.from_points(("x",), [(0,), (1,)])
        f = rel("S", "x") & C(ne("x", 0))
        out = evaluate(f, db)
        assert out.contains_point([1])
        assert not out.contains_point([0])

    def test_ne_between_variables(self):
        f = C(ne("x", "y"))
        out = evaluate(f)
        assert out.contains_point([1, 2])
        assert not out.contains_point([1, 1])


class TestRepeatedAndConstantArguments:
    @pytest.fixture
    def db(self):
        d = Database()
        d["T"] = Relation.from_atoms(
            ("x", "y"), [[le("x", "y"), le(0, "x"), le("y", 4)]], DENSE_ORDER
        )
        return d

    def test_both_constants(self, db):
        assert evaluate_boolean(rel("T", 1, 2), db)
        assert not evaluate_boolean(rel("T", 2, 1), db)

    def test_triple_use_of_one_variable(self, db):
        db["U"] = Relation.universe(("a", "b", "c"))
        f = rel("U", "x", "x", "x") & C(lt("x", 1))
        out = evaluate(f, db)
        assert out.schema == ("x",)
        assert out.contains_point([0])

    def test_constant_and_repeated(self, db):
        f = rel("T", "z", "z") & rel("T", 0, "z")
        out = evaluate(f, db)
        assert out.contains_point([2])
        assert not out.contains_point([5])


class TestSchemaOrderingInvariants:
    def test_result_schema_is_sorted(self):
        f = C(lt("zeta", "alpha"))
        out = evaluate(f)
        assert out.schema == ("alpha", "zeta")

    def test_or_branches_align(self):
        f = disj(C(lt("b", 1)), C(lt("a", 1)), C(lt("c", 1)))
        out = evaluate(f)
        assert out.schema == ("a", "b", "c")
        assert out.contains_point([0, 5, 5])
        assert out.contains_point([5, 0, 5])
        assert out.contains_point([5, 5, 0])
        assert not out.contains_point([5, 5, 5])

    def test_nested_or_and_mix(self):
        f = (C(lt("a", 0)) | C(lt("b", 0))) & (C(lt("a", 1)) | C(lt("c", 0)))
        out = evaluate(f)
        assert out.schema == ("a", "b", "c")
        assert out.contains_point([-1, 5, 5])   # a<0 covers both conjuncts
        assert out.contains_point([5, -1, -1])  # b<0 and c<0
        assert not out.contains_point([5, -1, 5])


class TestRenameSwaps:
    def test_simultaneous_column_swap(self):
        r = Relation.from_atoms(("x", "y"), [[lt("x", "y")]], DENSE_ORDER)
        swapped = r.rename({"x": "y", "y": "x"})
        assert swapped.schema == ("y", "x")
        # the pointset follows the columns: first column (now y) < second (x)
        assert swapped.contains_point([1, 2])
        assert not swapped.contains_point([2, 1])

    def test_swap_round_trip(self):
        r = Relation.from_atoms(("x", "y"), [[lt("x", "y"), le(0, "x")]], DENSE_ORDER)
        back = r.rename({"x": "y", "y": "x"}).rename({"x": "y", "y": "x"})
        assert back.schema == r.schema
        assert back.equivalent(r)
