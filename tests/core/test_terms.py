"""Unit tests for repro.core.terms."""

from fractions import Fraction

import pytest

from repro.core.terms import Const, Var, as_fraction, as_term, substitute_term, term_key
from repro.errors import TheoryError


class TestVar:
    def test_name_round_trip(self):
        assert Var("x").name == "x"
        assert str(Var("abc")) == "abc"

    def test_empty_name_rejected(self):
        with pytest.raises(TheoryError):
            Var("")

    def test_equality_and_hash(self):
        assert Var("x") == Var("x")
        assert Var("x") != Var("y")
        assert hash(Var("x")) == hash(Var("x"))

    def test_ordering(self):
        assert Var("a") < Var("b")


class TestConst:
    def test_coerces_to_fraction(self):
        assert Const(3).value == Fraction(3)
        assert isinstance(Const(3).value, Fraction)

    def test_fraction_preserved(self):
        assert Const(Fraction(1, 3)).value == Fraction(1, 3)

    def test_str(self):
        assert str(Const(Fraction(1, 2))) == "1/2"


class TestAsFraction:
    def test_int(self):
        assert as_fraction(7) == Fraction(7)

    def test_fraction_identity(self):
        f = Fraction(2, 5)
        assert as_fraction(f) is f

    def test_string(self):
        assert as_fraction("3/4") == Fraction(3, 4)

    def test_float_rejected(self):
        with pytest.raises(TheoryError):
            as_fraction(0.5)

    def test_bool_rejected(self):
        with pytest.raises(TheoryError):
            as_fraction(True)


class TestAsTerm:
    def test_string_is_variable(self):
        assert as_term("x") == Var("x")

    def test_int_is_constant(self):
        assert as_term(5) == Const(Fraction(5))

    def test_term_passthrough(self):
        v = Var("x")
        assert as_term(v) is v


class TestTermKey:
    def test_vars_before_consts(self):
        assert term_key(Var("z")) < term_key(Const(Fraction(-100)))

    def test_consts_by_value(self):
        assert term_key(Const(Fraction(1))) < term_key(Const(Fraction(2)))


class TestSubstituteTerm:
    def test_variable_replaced(self):
        assert substitute_term(Var("x"), {Var("x"): Const(Fraction(1))}) == Const(Fraction(1))

    def test_unmapped_variable_kept(self):
        assert substitute_term(Var("y"), {Var("x"): Const(Fraction(1))}) == Var("y")

    def test_constant_untouched(self):
        c = Const(Fraction(2))
        assert substitute_term(c, {Var("x"): Var("y")}) is c
