"""The ledger-calibrated cost model: document round-trip, fitting from
profile documents, and plan-tree estimation."""

import json

import pytest

from repro.core.atoms import le, lt
from repro.core.costmodel import (
    COST_MODEL_SCHEMA,
    DEFAULT_COEFFICIENTS,
    DEFAULT_DISPATCH,
    CostModel,
    estimate_plan,
    fit_cost_model,
    load_cost_model,
    validate_cost_model,
)
from repro.core.database import Database
from repro.core.formula import Not, constraint, exists, rel
from repro.core.planner import Absorb, Join, Scan, Shared, Union, compile_formula, optimize
from repro.core.relation import Relation
from repro.core.terms import Var
from repro.core.theory import DENSE_ORDER
from repro.errors import EncodingError
from repro.obs import Tracer, profile_document


def _profile_doc(n=24):
    """A real repro.profile/1 document from a traced workload."""
    tracer = Tracer()
    with tracer:
        with tracer.span("query"):
            r = Relation.from_points(
                ("x", "y"), [(i, (i * 7 + 3) % n) for i in range(n)]
            )
            joined = r.join(r.rename({"x": "y", "y": "z"}))
            joined.project(("x", "z"))
            Relation.from_points(("x",), [(1,), (2,)]).complement()
    return profile_document(tracer)


def _synthetic_doc(coefs, calls=12):
    """Records whose seconds follow ``coefs`` exactly, with enough
    spread in (in, unit, out) for the normal equations to recover them."""
    records = []
    for i in range(1, calls + 1):
        in_t, out_t = 3 * i, 2 * i
        unit = float(out_t)  # join's work term
        seconds = (
            coefs["base"] + coefs["per_input"] * in_t
            + coefs["per_unit"] * unit + coefs["per_output"] * out_t
        )
        records.append({
            "op": "join", "estimator": "join.indexed",
            "in_tuples": in_t, "out_tuples": out_t, "est_out": out_t * 2,
            "out_atoms": out_t, "cache_hits": 0, "cache_misses": 0,
            "seconds": seconds, "shards": 0, "skew": 1.0, "parallel": False,
        })
    return {
        "schema": "repro.profile/1", "trace": "t" * 8, "records": records,
        "operators": [{
            "operator": "join", "calls": calls,
            "in_tuples": sum(r["in_tuples"] for r in records),
            "out_tuples": sum(r["out_tuples"] for r in records),
            "est_out": sum(r["est_out"] for r in records),
            "out_atoms": sum(r["out_atoms"] for r in records),
            "seconds": sum(r["seconds"] for r in records),
            "cache_hits": 0, "cache_misses": 0,
            "parallel_calls": 0, "max_skew": 1.0,
        }],
        "dropped_records": 0, "kernel": {"cache.hits": 0},
        "spans": [], "guard": None,
    }


class TestCostModelDocument:
    def test_default_model_document_is_valid(self):
        model = CostModel()
        document = validate_cost_model(model.as_document())
        assert document["schema"] == COST_MODEL_SCHEMA
        assert document["source"] == "default"
        assert set(document["coefficients"]) >= {"join", "project", "complement", "absorb"}

    def test_save_load_round_trip(self, tmp_path):
        model = CostModel(
            coefficients={"join": {"per_unit": 1.5e-4}},
            ratios={"join.cross": 0.25},
            source="fit", records_used=42,
        )
        path = tmp_path / "model.json"
        model.save(str(path))
        loaded = load_cost_model(str(path))
        assert loaded.coefficients["join"]["per_unit"] == 1.5e-4
        assert loaded.ratio("join.cross") == 0.25
        assert loaded.source == "fit" and loaded.records_used == 42
        # unspecified operators keep their defaults
        assert loaded.coefficients["project"] == DEFAULT_COEFFICIENTS["project"]

    def test_non_json_file_raises_encoding_error(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(EncodingError, match="not JSON"):
            load_cost_model(str(path))

    @pytest.mark.parametrize(
        "mutate, match",
        [
            (lambda d: d.update(schema="repro.cost-model/2"), "schema"),
            (lambda d: d.update(source=3), "source"),
            (lambda d: d.update(records_used=-1), "records_used"),
            (lambda d: d.update(coefficients=None), "coefficients"),
            (lambda d: d["coefficients"]["join"].update(base="x"), "join.base"),
            (lambda d: d["coefficients"]["join"].update(per_unit=-1.0), "negative"),
            (lambda d: d.update(dispatch=[]), "dispatch"),
            (lambda d: d["dispatch"].update(per_shard=None), "per_shard"),
            (lambda d: d["dispatch"].update(efficiency=1.5), "efficiency"),
            (lambda d: d.update(ratios=7), "ratios"),
            (lambda d: d["ratios"].update({"join.cross": 0.0}), "positive"),
        ],
    )
    def test_corrupted_documents_rejected(self, mutate, match):
        document = CostModel(ratios={"join.cross": 1.0}).as_document()
        mutate(document)
        with pytest.raises(EncodingError, match=match):
            validate_cost_model(document)


class TestPricing:
    def test_op_seconds_grows_with_work(self):
        model = CostModel()
        assert model.op_seconds("join", 100, 50) > model.op_seconds("join", 10, 5)
        # unknown operators price like a scan rather than failing
        assert model.op_seconds("mystery", 10, 10) > 0

    def test_ratio_defaults_to_one(self):
        model = CostModel(ratios={"join.cross": 0.5})
        assert model.ratio("join.cross") == 0.5
        assert model.ratio("project.input") == 1.0
        assert model.corrected("join.cross", 100.0) == 50.0

    def test_parallel_seconds_includes_dispatch_overhead(self):
        model = CostModel()
        serial = 1e-4  # a tiny op: sharding must look like a loss
        assert model.parallel_seconds(serial, 4, 100) > serial
        # a big op amortizes the overhead and wins
        big = 10.0
        assert model.parallel_seconds(big, 4, 100) < big

    def test_single_shard_still_pays_the_dispatch_base(self):
        model = CostModel()
        assert model.parallel_seconds(1.0, 1, 10) == 1.0 + DEFAULT_DISPATCH["base"]


class TestFitting:
    def test_fit_recovers_synthetic_coefficients(self):
        truth = {"base": 1e-4, "per_input": 2e-5, "per_unit": 5e-5, "per_output": 3e-5}
        model = fit_cost_model([_synthetic_doc(truth)])
        fitted = model.coefficients["join"]
        predicted = model.op_seconds("join", 30, 20, unit=20.0)
        expected = (
            truth["base"] + truth["per_input"] * 30
            + truth["per_unit"] * 20 + truth["per_output"] * 20
        )
        assert predicted == pytest.approx(expected, rel=1e-3)
        assert all(v >= 0 for v in fitted.values())

    def test_fit_computes_estimator_ratios(self):
        truth = {"base": 1e-4, "per_input": 2e-5, "per_unit": 5e-5, "per_output": 3e-5}
        model = fit_cost_model([_synthetic_doc(truth)])
        # est_out is always 2x the actual in the synthetic doc
        assert model.ratio("join.indexed") == pytest.approx(0.5)

    def test_fit_from_real_profile_document(self):
        model = fit_cost_model([_profile_doc()], source="calibrated")
        assert model.source == "calibrated"
        assert model.records_used > 0
        document = validate_cost_model(model.as_document())
        assert document["records_used"] == model.records_used

    def test_too_few_records_keeps_defaults(self):
        doc = _synthetic_doc(
            {"base": 1e-4, "per_input": 2e-5, "per_unit": 5e-5, "per_output": 3e-5},
            calls=2,
        )
        model = fit_cost_model([doc])
        assert model.coefficients["join"] == DEFAULT_COEFFICIENTS["join"]
        assert model.dispatch == DEFAULT_DISPATCH

    def test_ratios_clamped_against_pathological_records(self):
        doc = _synthetic_doc(
            {"base": 1e-4, "per_input": 2e-5, "per_unit": 5e-5, "per_output": 3e-5}
        )
        for record in doc["records"]:
            record["est_out"] = 10_000_000
        model = fit_cost_model([doc])
        assert model.ratio("join.indexed") == 1e-3

    def test_invalid_profile_document_rejected(self):
        with pytest.raises(EncodingError):
            fit_cost_model([{"schema": "wrong"}])


class TestEstimatePlan:
    def _db(self):
        database = Database()
        database["S"] = Relation.from_points(("x",), [(i,) for i in range(6)])
        database["T"] = Relation.from_atoms(
            ("x", "y"), [[le("x", "y"), le(0, "x"), le("y", 10)]], DENSE_ORDER
        )
        return database

    def test_scan_rows_come_from_the_database(self):
        db = self._db()
        est = estimate_plan(Scan("S", (Var("x"),)), db)
        assert est.rows == 6.0
        assert est.node == Scan("S", (Var("x"),))
        # unknown relations get a token default instead of crashing
        unknown = estimate_plan(Scan("Z", (Var("x"),)), db)
        assert unknown.rows == 8.0

    def test_tree_totals_include_children(self):
        db = self._db()
        f = exists("y", rel("T", "x", "y") & constraint(lt("y", 5)))
        est = estimate_plan(optimize(compile_formula(f), db), db)
        assert est.total_seconds >= est.seconds
        assert est.children
        assert est.total_seconds == pytest.approx(
            est.seconds + sum(c.total_seconds for c in est.children)
        )

    def test_estimator_kinds_match_the_ledger(self):
        db = self._db()
        f = Not(rel("S", "x") & rel("S", "y"))
        est = estimate_plan(optimize(compile_formula(f), db), db)
        kinds = set()

        def visit(e):
            if e.estimator:
                kinds.add(e.estimator)
            for c in e.children:
                visit(c)

        visit(est)
        assert "complement.linear" in kinds

    def test_ratios_scale_estimates(self):
        db = self._db()
        plan = Join((Scan("S", (Var("x"),)), Scan("S", (Var("y"),))))
        plain = estimate_plan(plan, db)
        tight = estimate_plan(plan, db, CostModel(ratios={"join.cross": 0.1}))
        assert tight.rows == pytest.approx(plain.rows * 0.1)

    def test_shared_subtrees_priced_once(self):
        db = self._db()
        sub = Join((Scan("S", (Var("x"),)), Scan("S", (Var("y"),))))
        plan = Union((Shared(sub), Shared(sub)))
        est = estimate_plan(plan, db)
        first, second = est.children
        assert not first.cached and second.cached
        assert second.total_seconds == 0.0
        assert second.rows == first.rows

    def test_absorb_estimate_does_not_inflate_rows(self):
        db = self._db()
        est = estimate_plan(Absorb(Scan("S", (Var("x"),))), db)
        assert est.rows <= 6.0
        assert est.estimator == "absorb.dedup"
