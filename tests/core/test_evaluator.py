"""Unit tests for closed-form FO evaluation (paper Section 3)."""

from fractions import Fraction

import pytest

from repro.core.atoms import eq, le, lt, ne
from repro.core.database import Database
from repro.core.evaluator import evaluate, evaluate_boolean
from repro.core.formula import Not, constraint, exists, forall, rel
from repro.core.gtuple import GTuple
from repro.core.relation import Relation
from repro.core.theory import DENSE_ORDER
from repro.errors import EvaluationError, SchemaError


def C(a):
    return constraint(a)


@pytest.fixture
def db():
    triangle = GTuple.make(
        DENSE_ORDER, ("x", "y"), [le("x", "y"), le(0, "x"), le("y", 10)]
    )
    segment = GTuple.make(DENSE_ORDER, ("x",), [lt(2, "x"), lt("x", 4)])
    database = Database()
    database["T"] = Relation(DENSE_ORDER, ("x", "y"), [triangle])
    database["S"] = Relation(DENSE_ORDER, ("x",), [segment])
    database["E"] = Relation.from_points(("x", "y"), [(1, 2), (2, 3), (5, 6)])
    return database


class TestConstraints:
    def test_single_atom(self):
        out = evaluate(C(lt("x", 3)))
        assert out.schema == ("x",)
        assert out.contains_point([2])
        assert not out.contains_point([3])

    def test_ne_expands(self):
        out = evaluate(C(ne("x", 0)))
        assert out.contains_point([1])
        assert out.contains_point([-1])
        assert not out.contains_point([0])

    def test_sentence_true(self):
        assert evaluate_boolean(C(lt(0, 1)))

    def test_sentence_with_free_variable_rejected(self):
        with pytest.raises(EvaluationError):
            evaluate_boolean(C(lt("x", 1)))


class TestRelationAtoms:
    def test_plain(self, db):
        out = evaluate(rel("T", "a", "b"), db)
        assert out.schema == ("a", "b")
        assert out.contains_point([1, 5])
        assert not out.contains_point([5, 1])

    def test_constant_argument(self, db):
        out = evaluate(rel("T", 0, "b"), db)
        assert out.schema == ("b",)
        assert out.contains_point([7])
        assert not out.contains_point([11])

    def test_repeated_variable(self, db):
        out = evaluate(rel("T", "a", "a"), db)  # diagonal of the triangle
        assert out.contains_point([5])
        assert not out.contains_point([11])
        assert not out.contains_point([-1])

    def test_arity_mismatch(self, db):
        with pytest.raises(SchemaError):
            evaluate(rel("S", "a", "b"), db)

    def test_unknown_relation(self, db):
        with pytest.raises(SchemaError):
            evaluate(rel("Nope", "a"), db)


class TestConnectives:
    def test_and_is_intersection(self, db):
        out = evaluate(rel("S", "x") & C(lt("x", 3)), db)
        assert out.contains_point([Fraction(5, 2)])
        assert not out.contains_point([Fraction(7, 2)])

    def test_or_pads_schemas(self, db):
        out = evaluate(rel("S", "x") | C(lt("y", 0)), db)
        assert out.schema == ("x", "y")
        assert out.contains_point([3, 100])  # from S(x)
        assert out.contains_point([100, -1])  # from y < 0

    def test_not_is_complement(self, db):
        out = evaluate(Not(rel("S", "x")), db)
        assert out.contains_point([2])
        assert out.contains_point([4])
        assert not out.contains_point([3])


class TestQuantifiers:
    def test_exists_projection(self, db):
        out = evaluate(exists("y", rel("T", "x", "y")), db)
        assert out.schema == ("x",)
        assert out.contains_point([0])
        assert out.contains_point([10])
        assert not out.contains_point([11])
        assert not out.contains_point([-1])

    def test_forall(self, db):
        # forall y (0 < y < 1 -> S does not contain y): S = (2,4)
        f = forall("y", (C(lt(0, "y")) & C(lt("y", 1))).implies(Not(rel("S", "y"))))
        assert evaluate_boolean(f, db)

    def test_forall_false(self, db):
        f = forall("y", rel("S", "y"))
        assert not evaluate_boolean(f, db)

    def test_density_sentence(self):
        f = forall(
            ["a", "b"],
            C(lt("a", "b")).implies(exists("m", C(lt("a", "m")) & C(lt("m", "b")))),
        )
        assert evaluate_boolean(f)

    def test_no_endpoints_sentence(self):
        f = forall("a", exists("b", C(lt("b", "a"))))
        assert evaluate_boolean(f)

    def test_discreteness_fails(self):
        """'a has an immediate successor' is false in Q."""
        f = exists(
            ["a", "b"],
            C(lt("a", "b"))
            & forall("m", Not(C(lt("a", "m")) & C(lt("m", "b")))),
        )
        assert not evaluate_boolean(f)


class TestFiniteRelations:
    def test_finite_join(self, db):
        # E composed with E: pairs (x, z) with E(x,y), E(y,z)
        f = exists("y", rel("E", "x", "y") & rel("E", "y", "z"))
        out = evaluate(f, db)
        assert out.contains_point([1, 3])
        assert not out.contains_point([2, 6])
        assert not out.contains_point([1, 6])

    def test_theory_mismatch_detected(self, db):
        from repro.core.theory import DenseOrderTheory

        class OtherTheory(DenseOrderTheory):
            name = "other"

        with pytest.raises(EvaluationError):
            evaluate(rel("E", "x", "y"), db, theory=OtherTheory())

    def test_equal_theory_instance_accepted(self, db):
        # regression: a separately constructed DenseOrderTheory is the
        # same theory by value and must not be rejected
        from repro.core.theory import DenseOrderTheory

        out = evaluate(rel("E", "x", "y"), db, theory=DenseOrderTheory())
        assert out.contains_point([1, 2])


class TestClosedForm:
    def test_output_is_instance(self, db):
        """Closed form: the output is again a generalized relation whose
        constants come from the input (no new constants invented)."""
        f = exists("y", rel("T", "x", "y") & C(lt("y", 8)))
        out = evaluate(f, db)
        assert out.constants() <= db.constants() | {Fraction(8)}

    def test_empty_result(self, db):
        out = evaluate(rel("S", "x") & C(lt("x", 0)), db)
        assert out.is_empty()
