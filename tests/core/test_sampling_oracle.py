"""Cross-validation: closed-form evaluator vs sample-point oracle.

The two implementations of FO semantics share no code above the atom
level; agreement on random formulas over random databases is strong
evidence for both.
"""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.atoms import le, lt
from repro.core.database import Database
from repro.core.evaluator import evaluate, evaluate_boolean
from repro.core.formula import Exists, ForAll, Formula, constraint, exists, forall, rel
from repro.core.gtuple import GTuple
from repro.core.relation import Relation
from repro.core.sampling import eval_at, evaluate_sentence, sample_points
from repro.core.terms import Var
from repro.core.theory import DENSE_ORDER
from repro.errors import EvaluationError
from tests.strategies import formulas, fractions as fracs


class TestSamplePoints:
    def test_no_constants(self):
        assert sample_points([]) == [Fraction(0)]

    def test_covers_all_cells(self):
        pts = sample_points([Fraction(0), Fraction(2)])
        assert pts == [Fraction(-1), Fraction(0), Fraction(1), Fraction(2), Fraction(3)]

    def test_duplicates_ignored(self):
        assert sample_points([Fraction(1), Fraction(1)]) == [Fraction(0), Fraction(1), Fraction(2)]


class TestEvalAt:
    def test_simple_atom(self):
        f = constraint(lt("x", 1))
        assert eval_at(f, None, {Var("x"): Fraction(0)})
        assert not eval_at(f, None, {Var("x"): Fraction(2)})

    def test_missing_assignment_raises(self):
        with pytest.raises(EvaluationError):
            eval_at(constraint(lt("x", 1)), None, {})

    def test_quantifier_uses_parameters(self):
        # exists y (x < y and y < 1): truth depends on x even though
        # x's value is not a formula constant
        f = exists("y", constraint(lt("x", "y")) & constraint(lt("y", 1)))
        assert eval_at(f, None, {Var("x"): Fraction(0)})
        assert not eval_at(f, None, {Var("x"): Fraction(2)})

    def test_database_membership(self):
        db = Database()
        db["S"] = Relation.from_atoms(("x",), [[lt(0, "x"), lt("x", 1)]], DENSE_ORDER)
        f = rel("S", "x")
        assert eval_at(f, db, {Var("x"): Fraction(1, 2)})
        assert not eval_at(f, db, {Var("x"): Fraction(2)})


class TestCrossValidation:
    @settings(max_examples=120, deadline=None)
    @given(formulas(depth=2), st.data())
    def test_closed_form_matches_oracle_on_points(self, f, data):
        """For random formulas, membership in the evaluated relation
        agrees with the sampling oracle at random points."""
        out = evaluate(f)
        names = sorted(v.name for v in f.free_variables())
        values = [data.draw(fracs) for _ in names]
        closed_form = out.contains_point(values)
        oracle = eval_at(f, None, {Var(n): v for n, v in zip(names, values)})
        assert closed_form == oracle

    @settings(max_examples=80, deadline=None)
    @given(formulas(depth=2))
    def test_sentences_agree(self, f):
        names = sorted(v.name for v in f.free_variables())
        sentence: Formula = f
        if names:
            sentence = Exists(tuple(Var(n) for n in names), f)
        assert evaluate_boolean(sentence) == evaluate_sentence(sentence)

    @settings(max_examples=60, deadline=None)
    @given(formulas(depth=2))
    def test_universal_closure_agrees(self, f):
        names = sorted(v.name for v in f.free_variables())
        sentence: Formula = f
        if names:
            sentence = ForAll(tuple(Var(n) for n in names), f)
        assert evaluate_boolean(sentence) == evaluate_sentence(sentence)

    def test_oracle_agrees_on_database_query(self):
        db = Database()
        db["T"] = Relation.from_atoms(
            ("x", "y"), [[le("x", "y"), le(0, "x"), le("y", 10)]], DENSE_ORDER
        )
        f = exists("y", rel("T", "x", "y") & constraint(lt("y", 5)))
        out = evaluate(f, db)
        for value in sample_points(db.constants() | {Fraction(5)}):
            assert out.contains_point([value]) == eval_at(f, db, {Var("x"): value})
