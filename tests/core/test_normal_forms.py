"""Tests for NNF and prenex normal forms."""

import pytest
from hypothesis import given, settings

from repro.core.atoms import eq, le, lt
from repro.core.formula import (
    And,
    Constraint,
    Exists,
    ForAll,
    Not,
    Or,
    constraint,
    exists,
    forall,
    rel,
)
from repro.core.normal_forms import (
    is_quantifier_free,
    matrix_and_prefix,
    to_nnf,
    to_prenex,
)
from repro.core.qe import equivalent
from repro.errors import EvaluationError
from tests.strategies import formulas


def C(a):
    return constraint(a)


class TestNNF:
    def test_double_negation(self):
        f = Not(Not(C(lt("x", 1))))
        assert to_nnf(f) == C(lt("x", 1))

    def test_de_morgan(self):
        f = Not(C(lt("x", 1)) & C(lt("y", 1)))
        g = to_nnf(f)
        assert isinstance(g, Or)
        assert all(isinstance(s, Not) or isinstance(s, Constraint) for s in g.subs)

    def test_quantifier_duals(self):
        f = Not(exists("x", C(lt("x", 1))))
        g = to_nnf(f)
        assert isinstance(g, ForAll)

    def test_expand_ne_removes_all_negation(self):
        f = Not(C(le("x", 1)) | Not(C(eq("x", "y"))))
        g = to_nnf(f, expand_ne=True)

        def no_not(node):
            if isinstance(node, Not):
                return False
            if isinstance(node, (And, Or)):
                return all(no_not(s) for s in node.subs)
            if isinstance(node, (Exists, ForAll)):
                return no_not(node.sub)
            return True

        assert no_not(g)

    def test_negated_relation_atom_keeps_not(self):
        f = Not(rel("R", "x"))
        assert to_nnf(f) == f

    @settings(max_examples=100, deadline=None)
    @given(formulas(depth=2))
    def test_nnf_preserves_semantics(self, f):
        assert equivalent(f, to_nnf(f))
        assert equivalent(f, to_nnf(f, expand_ne=True))


class TestPrenex:
    def test_already_prenex(self):
        f = exists("x", forall("y", C(lt("x", "y"))))
        g = to_prenex(f)
        prefix, matrix = matrix_and_prefix(g)
        assert [k for k, _ in prefix] == ["exists", "forall"]
        assert is_quantifier_free(matrix)

    def test_pulls_from_conjunction(self):
        f = exists("x", C(lt("x", 0))) & exists("x", C(lt(0, "x")))
        g = to_prenex(f)
        prefix, matrix = matrix_and_prefix(g)
        assert len(prefix) == 2
        # the two bound x's must have been renamed apart
        names = {v.name for _, v in prefix}
        assert len(names) == 2

    def test_negation_flips_quantifier(self):
        f = Not(exists("x", C(lt("x", "y"))))
        g = to_prenex(f)
        prefix, _ = matrix_and_prefix(g)
        assert prefix[0][0] == "forall"

    def test_capture_avoidance(self):
        # free y outside, bound y inside a sibling
        f = C(lt("y", 0)) & exists("y", C(lt(0, "y")))
        g = to_prenex(f)
        prefix, matrix = matrix_and_prefix(g)
        [(kind, bound)] = prefix
        assert bound.name != "y"
        assert g.free_variables() == f.free_variables()

    @settings(max_examples=100, deadline=None)
    @given(formulas(depth=2))
    def test_prenex_preserves_semantics(self, f):
        g = to_prenex(f)
        matrix_and_prefix(g)  # must not raise: g is prenex
        assert equivalent(f, g)


class TestMatrixAndPrefix:
    def test_rejects_non_prenex(self):
        f = exists("x", C(lt("x", 0))) & C(lt("y", 0))
        with pytest.raises(EvaluationError):
            matrix_and_prefix(f)

    def test_quantifier_free_passthrough(self):
        f = C(lt("x", 0)) & C(lt("y", 0))
        prefix, matrix = matrix_and_prefix(f)
        assert prefix == []
        assert matrix == f
