"""Unit tests for repro.core.atoms."""

from fractions import Fraction

import pytest
from hypothesis import given

from repro.core.atoms import Atom, Op, atom, eq, ge, gt, le, lt, ne
from repro.core.terms import Const, Var
from tests.strategies import fractions, real_atoms


class TestNormalization:
    def test_ge_flips(self):
        a = ge("x", "y")
        assert a.op is Op.LE
        assert a.left == Var("y") and a.right == Var("x")

    def test_gt_flips(self):
        a = gt("x", 3)
        assert a.op is Op.LT
        assert a.left == Const(Fraction(3)) and a.right == Var("x")

    def test_eq_sides_sorted(self):
        assert eq("y", "x") == eq("x", "y")
        assert eq(3, "x") == eq("x", 3)

    def test_ne_sides_sorted(self):
        assert ne("y", "x") == ne("x", "y")

    def test_constant_folding(self):
        assert atom(1, "<", 2) is True
        assert atom(2, "<", 1) is False
        assert atom(1, "=", 1) is True
        assert atom(1, "!=", 1) is False
        assert atom(Fraction(1, 2), "<=", Fraction(1, 2)) is True

    def test_reflexive_folding(self):
        assert lt("x", "x") is False
        assert le("x", "x") is True
        assert eq("x", "x") is True
        assert ne("x", "x") is False
        assert ge("x", "x") is True
        assert gt("x", "x") is False


class TestNegate:
    def test_lt(self):
        [n] = lt("x", "y").negate()
        assert n == le("y", "x")

    def test_le(self):
        [n] = le("x", "y").negate()
        assert n == lt("y", "x")

    def test_eq_splits(self):
        parts = eq("x", "y").negate()
        assert set(parts) == {lt("x", "y"), lt("y", "x")}

    @given(real_atoms())
    def test_negation_is_complement(self, a):
        """At any sample point exactly one of atom / negation holds."""
        if a.op is Op.NE:
            a = a.expand_ne()[0]
        assignment = {v: Fraction(i - 1, 2) for i, v in enumerate(sorted(a.variables))}
        original = a.evaluate(assignment)
        negated = any(n.evaluate(assignment) for n in a.negate())
        assert original != negated


class TestExpandNe:
    def test_ne_expands(self):
        parts = ne("x", 3).expand_ne()
        assert set(parts) == {lt("x", 3), lt(3, "x")}

    def test_other_ops_unchanged(self):
        a = lt("x", "y")
        assert a.expand_ne() == [a]


class TestEvaluate:
    def test_lt(self):
        a = lt("x", "y")
        assert a.evaluate({Var("x"): Fraction(1), Var("y"): Fraction(2)})
        assert not a.evaluate({Var("x"): Fraction(2), Var("y"): Fraction(1)})

    def test_against_constant(self):
        a = le("x", Fraction(1, 2))
        assert a.evaluate({Var("x"): Fraction(1, 2)})
        assert not a.evaluate({Var("x"): Fraction(1)})

    def test_missing_variable_raises(self):
        from repro.errors import TheoryError

        with pytest.raises(TheoryError):
            lt("x", "y").evaluate({Var("x"): Fraction(0)})


class TestAccessors:
    def test_variables(self):
        assert lt("x", "y").variables == {Var("x"), Var("y")}
        assert lt("x", 1).variables == {Var("x")}

    def test_constants(self):
        assert lt("x", Fraction(1, 3)).constants == {Fraction(1, 3)}
        assert lt("x", "y").constants == frozenset()

    def test_str(self):
        assert str(lt("x", 1)) == "x < 1"
        assert str(le(2, "y")) == "2 <= y"


class TestOpProperties:
    @given(fractions, fractions)
    def test_holds_matches_python(self, a, b):
        assert Op.LT.holds(a, b) == (a < b)
        assert Op.LE.holds(a, b) == (a <= b)
        assert Op.EQ.holds(a, b) == (a == b)
        assert Op.NE.holds(a, b) == (a != b)
        assert Op.GE.holds(a, b) == (a >= b)
        assert Op.GT.holds(a, b) == (a > b)

    def test_negated_involution(self):
        for op in Op:
            assert op.negated.negated is op

    def test_flip_involution(self):
        for op in Op:
            assert op.flipped.flipped is op
