"""Unit and property tests for generalized relations and their algebra."""

from fractions import Fraction

import pytest
from hypothesis import given, settings

from repro.core.atoms import eq, le, lt
from repro.core.gtuple import GTuple
from repro.core.relation import Relation
from repro.core.theory import DENSE_ORDER
from repro.errors import SchemaError
from tests.strategies import conjunctions, fractions as fracs

import hypothesis.strategies as st


def rel_from(schema, *conjs):
    return Relation.from_atoms(schema, conjs, DENSE_ORDER)


SAMPLE_GRID = [Fraction(n, 2) for n in range(-6, 7)]


def points1(relation):
    """Membership fingerprint of a unary relation on a fixed grid."""
    return {v for v in SAMPLE_GRID if relation.contains_point([v])}


@st.composite
def unary_relations(draw, max_tuples=3):
    """Random unary relations over column x."""
    tuples = []
    for _ in range(draw(st.integers(min_value=0, max_value=max_tuples))):
        kind = draw(st.integers(min_value=0, max_value=3))
        a, b = draw(fracs), draw(fracs)
        lo, hi = min(a, b), max(a, b)
        if kind == 0:
            tuples.append([eq("x", lo)])
        elif kind == 1:
            tuples.append([lt(lo, "x"), lt("x", hi)])
        elif kind == 2:
            tuples.append([le(lo, "x"), le("x", hi)])
        else:
            tuples.append([le("x", lo)])
    return rel_from(("x",), *tuples)


class TestConstruction:
    def test_empty(self):
        r = Relation.empty(("x",))
        assert r.is_empty()
        assert not r.contains_point([Fraction(0)])

    def test_universe(self):
        r = Relation.universe(("x", "y"))
        assert r.contains_point([Fraction(5), Fraction(-5)])

    def test_unsatisfiable_tuples_filtered(self):
        r = rel_from(("x",), [lt("x", 0), lt(0, "x")])
        assert r.is_empty()

    def test_duplicate_tuples_merged(self):
        r = rel_from(("x",), [le("x", 1)], [le("x", 1)])
        assert len(r) == 1

    def test_from_points(self):
        r = Relation.from_points(("x", "y"), [(1, 2), (3, 4)])
        assert r.contains_point([1, 2])
        assert r.contains_point([3, 4])
        assert not r.contains_point([1, 4])

    def test_schema_mismatch_rejected(self):
        t = GTuple.universe(DENSE_ORDER, ("x",))
        with pytest.raises(SchemaError):
            Relation(DENSE_ORDER, ("y",), [t])


class TestSetAlgebra:
    def test_union(self):
        a = rel_from(("x",), [lt("x", 0)])
        b = rel_from(("x",), [lt(0, "x")])
        u = a.union(b)
        assert u.contains_point([Fraction(-1)])
        assert u.contains_point([Fraction(1)])
        assert not u.contains_point([Fraction(0)])

    def test_intersection(self):
        a = rel_from(("x",), [le(0, "x")])
        b = rel_from(("x",), [le("x", 1)])
        i = a.intersection(b)
        assert i.contains_point([Fraction(1, 2)])
        assert not i.contains_point([Fraction(2)])

    def test_complement_of_interval(self):
        a = rel_from(("x",), [le(0, "x"), le("x", 1)])
        c = a.complement()
        assert c.contains_point([Fraction(-1)])
        assert c.contains_point([Fraction(2)])
        assert not c.contains_point([Fraction(1, 2)])
        assert not c.contains_point([Fraction(0)])

    def test_complement_of_empty_is_universe(self):
        assert Relation.empty(("x",)).complement().contains_point([Fraction(9)])

    def test_complement_of_universe_is_empty(self):
        assert Relation.universe(("x",)).complement().is_empty()

    def test_difference(self):
        a = rel_from(("x",), [le(0, "x"), le("x", 10)])
        b = rel_from(("x",), [lt(2, "x"), lt("x", 3)])
        d = a.difference(b)
        assert d.contains_point([Fraction(2)])
        assert d.contains_point([Fraction(3)])
        assert not d.contains_point([Fraction(5, 2)])

    @settings(max_examples=100)
    @given(unary_relations(), unary_relations())
    def test_algebra_matches_pointwise(self, a, b):
        """Union/intersection/difference agree with pointwise semantics."""
        pa, pb = points1(a), points1(b)
        assert points1(a.union(b)) == pa | pb
        assert points1(a.intersection(b)) == pa & pb
        assert points1(a.difference(b)) == pa - pb

    @settings(max_examples=60)
    @given(unary_relations())
    def test_double_complement(self, a):
        assert a.complement().complement().equivalent(a)

    @settings(max_examples=60)
    @given(unary_relations())
    def test_complement_is_pointwise_negation(self, a):
        pa = points1(a)
        pc = points1(a.complement())
        assert pc == set(SAMPLE_GRID) - pa


class TestRelationalOps:
    def test_select(self):
        r = Relation.universe(("x", "y"))
        s = r.select([lt("x", "y")])
        assert s.contains_point([1, 2])
        assert not s.contains_point([2, 1])

    def test_project_uses_density(self):
        r = rel_from(("x", "y"), [lt("x", "y"), lt("y", 3)])
        p = r.project(("x",))
        # exists y (x < y < 3) <=> x < 3
        assert p.contains_point([Fraction(2)])
        assert not p.contains_point([Fraction(3)])

    def test_project_empty_schema(self):
        r = rel_from(("x",), [lt("x", 0)])
        p = r.project(())
        assert not p.is_empty()  # "exists x (x < 0)" is true

    def test_project_unknown_column_raises(self):
        with pytest.raises(SchemaError):
            Relation.universe(("x",)).project(("z",))

    def test_rename(self):
        r = rel_from(("x",), [le("x", 1)])
        s = r.rename({"x": "t"})
        assert s.schema == ("t",)
        assert s.contains_point([Fraction(0)])

    def test_join_on_shared_column(self):
        r = rel_from(("x", "y"), [lt("x", "y")])
        s = rel_from(("y", "z"), [lt("y", "z")])
        j = r.join(s)
        assert j.schema == ("x", "y", "z")
        assert j.contains_point([1, 2, 3])
        assert not j.contains_point([1, 2, 0])

    def test_join_disjoint_is_product(self):
        r = rel_from(("x",), [le(0, "x")])
        s = rel_from(("y",), [le("y", 0)])
        j = r.join(s)
        assert j.schema == ("x", "y")
        assert j.contains_point([1, -1])
        assert not j.contains_point([-1, -1])


class TestComparisons:
    def test_contains(self):
        big = rel_from(("x",), [le(0, "x"), le("x", 10)])
        small = rel_from(("x",), [le(2, "x"), le("x", 3)])
        assert big.contains(small)
        assert not small.contains(big)

    def test_equivalent_different_representations(self):
        a = rel_from(("x",), [le(0, "x"), le("x", 2)])
        b = rel_from(("x",), [le(0, "x"), le("x", 1)], [le(1, "x"), le("x", 2)])
        assert a.equivalent(b)

    def test_not_equivalent(self):
        a = rel_from(("x",), [le(0, "x")])
        b = rel_from(("x",), [lt(0, "x")])
        assert not a.equivalent(b)
        assert a.contains(b)

    @settings(max_examples=60)
    @given(unary_relations(), unary_relations())
    def test_containment_sound_on_grid(self, a, b):
        if a.contains(b):
            assert points1(b) <= points1(a)


class TestSimplify:
    def test_subsumed_tuple_dropped(self):
        r = rel_from(("x",), [le(0, "x")], [le(1, "x")])
        s = r.simplify()
        assert len(s) == 1
        assert s.equivalent(r)

    def test_incomparable_tuples_kept(self):
        r = rel_from(("x",), [le("x", 0)], [le(1, "x")])
        assert len(r.simplify()) == 2

    @settings(max_examples=60)
    @given(unary_relations())
    def test_simplify_preserves_semantics(self, a):
        assert a.simplify().equivalent(a)


class TestSamplePoints:
    def test_samples_in_relation(self):
        r = rel_from(("x", "y"), [lt("x", "y")], [lt("y", "x"), lt("x", 0)])
        for pt in r.sample_points():
            assert r.contains_point([pt["x"], pt["y"]])
