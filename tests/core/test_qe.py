"""Unit tests for quantifier elimination and decision procedures."""

import pytest
from hypothesis import given, settings

from repro.core.atoms import eq, le, lt
from repro.core.formula import FALSE, TRUE, Not, constraint, exists, forall, rel
from repro.core.qe import (
    eliminate_quantifiers,
    equivalent,
    formula_to_relation,
    is_satisfiable,
    is_valid,
    relation_to_formula,
)
from repro.core.sampling import eval_at
from repro.errors import EvaluationError
from tests.strategies import formulas


def C(a):
    return constraint(a)


class TestEliminateQuantifiers:
    def test_density_example(self):
        f = exists("y", C(lt("x", "y")) & C(lt("y", "z")))
        g = eliminate_quantifiers(f)
        assert equivalent(g, C(lt("x", "z")))
        assert g.quantifier_rank() == 0

    def test_sentence_collapses(self):
        f = exists("x", C(lt("x", 0)))
        assert eliminate_quantifiers(f) is TRUE
        g = exists("x", C(lt("x", 0)) & C(lt(1, "x")))
        assert eliminate_quantifiers(g) is FALSE

    def test_forall(self):
        f = forall("y", C(le("x", "y")) | C(le("y", "x")))
        assert eliminate_quantifiers(f) is TRUE

    def test_relation_atoms_rejected(self):
        with pytest.raises(EvaluationError):
            eliminate_quantifiers(exists("x", rel("R", "x")))

    @settings(max_examples=100, deadline=None)
    @given(formulas(depth=2))
    def test_result_is_quantifier_free_and_equivalent(self, f):
        g = eliminate_quantifiers(f)
        assert g.quantifier_rank() == 0
        assert equivalent(f, g)


class TestDecisionProcedures:
    def test_satisfiable(self):
        assert is_satisfiable(C(lt("x", "y")))
        assert not is_satisfiable(C(lt("x", "y")) & C(lt("y", "x")))

    def test_valid(self):
        assert is_valid(C(le("x", "y")) | C(le("y", "x")))
        assert not is_valid(C(le("x", "y")))

    def test_equivalent(self):
        a = C(le("x", "y")) & C(le("y", "x"))
        b = C(eq("x", "y"))
        assert equivalent(a, b)
        assert not equivalent(C(le("x", "y")), C(lt("x", "y")))

    @settings(max_examples=100, deadline=None)
    @given(formulas(depth=2))
    def test_excluded_middle(self, f):
        assert is_valid(f | Not(f))
        assert not is_satisfiable(f & Not(f))


class TestRelationFormulaRoundTrip:
    def test_round_trip(self):
        f = C(lt(0, "x")) & C(lt("x", 1)) | C(eq("x", 5))
        r = formula_to_relation(f)
        g = relation_to_formula(r)
        assert equivalent(f, g)

    def test_empty_relation_is_false(self):
        r = formula_to_relation(C(lt("x", 0)) & C(lt(0, "x")))
        assert relation_to_formula(r) is FALSE
