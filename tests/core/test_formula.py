"""Unit tests for the FO formula AST."""

from fractions import Fraction

import pytest

from repro.core.atoms import eq, le, lt
from repro.core.formula import (
    FALSE,
    TRUE,
    And,
    Constraint,
    Exists,
    ForAll,
    Not,
    Or,
    RelationAtom,
    conj,
    constraint,
    disj,
    exists,
    forall,
    rel,
)
from repro.core.terms import Const, Var
from repro.errors import EvaluationError


class TestFreeVariables:
    def test_constraint(self):
        f = constraint(lt("x", "y"))
        assert f.free_variables() == {Var("x"), Var("y")}

    def test_relation_atom(self):
        f = rel("R", "x", 3, "y")
        assert f.free_variables() == {Var("x"), Var("y")}

    def test_quantifier_binds(self):
        f = exists("x", constraint(lt("x", "y")))
        assert f.free_variables() == {Var("y")}

    def test_nested(self):
        f = forall("y", exists("x", constraint(lt("x", "y")) & constraint(lt("z", "x"))))
        assert f.free_variables() == {Var("z")}

    def test_boolean(self):
        assert TRUE.free_variables() == frozenset()


class TestConstants:
    def test_collects_from_atoms_and_args(self):
        f = constraint(lt("x", Fraction(1, 2))) & rel("R", 3, "x")
        assert f.constants() == {Fraction(1, 2), Fraction(3)}


class TestRelationNames:
    def test_collects(self):
        f = exists("x", rel("R", "x") | Not(rel("S", "x")))
        assert f.relation_names() == {"R", "S"}


class TestSubstitution:
    def test_free_variable_substituted(self):
        f = constraint(lt("x", "y"))
        g = f.substitute({Var("x"): Const(Fraction(1))})
        assert g == constraint(lt(1, "y"))

    def test_folds_to_boolean(self):
        f = constraint(lt("x", "y"))
        g = f.substitute({Var("x"): Const(Fraction(1)), Var("y"): Const(Fraction(2))})
        assert g is TRUE

    def test_bound_variable_untouched(self):
        f = exists("x", constraint(lt("x", "y")))
        g = f.substitute({Var("x"): Const(Fraction(9))})
        assert g == f

    def test_capture_avoided(self):
        """Substituting y := x under exists x must rename the bound x."""
        f = exists("x", constraint(lt("x", "y")))
        g = f.substitute({Var("y"): Var("x")})
        assert isinstance(g, Exists)
        bound = g.variables[0]
        assert bound != Var("x")
        # body must now be  bound < x
        assert g.sub == constraint(lt(bound, "x"))

    def test_relation_atom_args_substituted(self):
        f = rel("R", "x", "y")
        g = f.substitute({Var("x"): Const(Fraction(0))})
        assert g == RelationAtom("R", (Const(Fraction(0)), Var("y")))


class TestQuantifierRank:
    def test_quantifier_free_is_zero(self):
        assert (constraint(lt("x", "y")) & TRUE).quantifier_rank() == 0

    def test_counts_nesting(self):
        f = exists("x", forall("y", constraint(lt("x", "y"))))
        assert f.quantifier_rank() == 2

    def test_parallel_branches_take_max(self):
        f = exists("x", TRUE) | exists(["y", "z"], TRUE)
        assert f.quantifier_rank() == 2


class TestSugar:
    def test_operators(self):
        a = constraint(lt("x", 0))
        b = constraint(lt(0, "x"))
        assert isinstance(a & b, And)
        assert isinstance(a | b, Or)
        assert isinstance(~a, Not)

    def test_implies_iff(self):
        a, b = constraint(lt("x", 0)), constraint(lt("x", 1))
        assert isinstance(a.implies(b), Or)
        assert isinstance(a.iff(b), And)

    def test_conj_disj_edge_cases(self):
        assert conj() is TRUE
        assert disj() is FALSE
        a = constraint(lt("x", 0))
        assert conj(a) is a
        assert disj(a) is a

    def test_constraint_wraps_booleans(self):
        assert constraint(True) is TRUE
        assert constraint(False) is FALSE

    def test_quantifier_without_variables_rejected(self):
        with pytest.raises(EvaluationError):
            Exists((), TRUE)

    def test_multi_variable_quantifier(self):
        f = exists(["x", "y"], constraint(lt("x", "y")))
        assert f.free_variables() == frozenset()

    def test_str_forms(self):
        f = exists("x", constraint(lt("x", 1)) & rel("R", "x"))
        text = str(f)
        assert "exists x" in text
        assert "R(x)" in text


class TestEquality:
    def test_structural_equality(self):
        f = exists("x", constraint(lt("x", "y")))
        g = exists("x", constraint(lt("x", "y")))
        assert f == g
        assert hash(f) == hash(g)

    def test_exists_forall_differ(self):
        f = exists("x", TRUE)
        g = forall("x", TRUE)
        assert f != g
