"""The rewrite-rule engine: named rules, fixpoint, firing budget,
absorption placement, and common-subplan dedup."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.atoms import le, lt
from repro.core.database import Database
from repro.core.evaluator import evaluate
from repro.core.formula import Not, constraint, exists, rel
from repro.core.planner import (
    Absorb,
    Complement,
    Empty,
    Join,
    Plan,
    Project,
    Scan,
    Select,
    Shared,
    Union,
    Universe,
    compile_formula,
    execute,
    optimize,
)
from repro.core.relation import Relation
from repro.core.rules import (
    DEFAULT_FIRING_BUDGET,
    HEURISTIC_RULES,
    DedupCommonSubplans,
    PlaceAbsorb,
    PropagateEmpty,
    RemoveDoubleComplement,
    RuleEngine,
    heuristic_engine,
)
from repro.core.terms import Var
from repro.core.theory import DENSE_ORDER
from tests.strategies import formulas, fractions as fracs


def _scan(name, *cols):
    return Scan(name, tuple(Var(c) for c in cols))


def _db():
    database = Database()
    database["S"] = Relation.from_points(("x",), [(1,), (5,), (9,)])
    database["T"] = Relation.from_atoms(
        ("x", "y"), [[le("x", "y"), le(0, "x"), le("y", 10)]], DENSE_ORDER
    )
    return database


def _nodes(plan: Plan):
    yield plan
    for child in plan.children():
        yield from _nodes(child)


class TestEngine:
    def test_named_rules_record_firing_counts(self):
        f = (rel("S", "x") & rel("T", "x", "y")) & constraint(lt("x", 5))
        engine = heuristic_engine(_db())
        engine.run(compile_formula(f))
        assert engine.fired  # at least one rule fired
        assert all(isinstance(k, str) and v >= 1 for k, v in engine.fired.items())
        assert "flatten-join" in engine.fired

    def test_run_reaches_fixpoint(self):
        f = exists("y", rel("T", "x", "y") & constraint(lt("y", 5)))
        engine = heuristic_engine(_db())
        plan = engine.run(compile_formula(f))
        # a second pass over the output is a no-op: the plan is stable
        again = heuristic_engine(_db())
        assert again.run(plan) == plan
        assert not again.fired

    def test_firing_budget_bounds_work(self):
        f = (rel("S", "x") & rel("T", "x", "y")) & constraint(lt("x", 5))
        engine = RuleEngine(HEURISTIC_RULES, _db(), budget=1)
        engine.run(compile_formula(f))
        assert sum(engine.fired.values()) <= 1

    def test_default_budget_is_generous(self):
        assert DEFAULT_FIRING_BUDGET >= 1024

    def test_unchanged_apply_is_not_a_firing(self):
        # ReorderJoin matches any >=3-way join but returns it unchanged
        # when already sorted; that must not burn budget
        db = _db()
        db["A"] = Relation.from_points(("x",), [(1,)])
        db["B"] = Relation.from_points(("x",), [(1,), (2,)])
        plan = Join((_scan("A", "x"), _scan("T", "x", "y"), _scan("B", "x")))
        engine = heuristic_engine(db)
        out = engine.run(plan)
        assert out == plan
        assert "reorder-join" not in engine.fired


class TestIndividualRules:
    def test_double_complement_collapses(self):
        inner = _scan("S", "x")
        plan = Complement(Complement(inner))
        rule = RemoveDoubleComplement()
        assert rule.matches(plan)
        assert rule.apply(plan, None) == inner

    def test_propagate_empty_preserves_schema(self):
        rule = PropagateEmpty()
        plan = Project(Empty(("x", "y")), ("x",))
        out = rule.apply(plan, None)
        assert isinstance(out, Empty)
        assert out.schema == ("x",)
        comp = Complement(Universe(("x",)))
        assert rule.apply(comp, None) == Empty(("x",))

    def test_propagate_empty_keeps_widening_union_parts(self):
        # dropping an Empty part that carries schema columns would
        # change the output schema; the rule must refuse
        rule = PropagateEmpty()
        plan = Union((_scan("S", "x"), Empty(("x", "y"))))
        assert rule.apply(plan, None) == plan

    def test_join_with_empty_folds_to_empty(self):
        rule = PropagateEmpty()
        plan = Join((_scan("T", "x", "y"), Empty(("x",))))
        out = rule.apply(plan, None)
        assert isinstance(out, Empty)
        assert out.schema == ("x", "y")

    def test_place_absorb_under_complement(self):
        plan = Complement(Join((_scan("S", "x"), _scan("T", "x", "y"))))
        rule = PlaceAbsorb()
        assert rule.matches(plan)
        out = rule.apply(plan, None)
        assert isinstance(out, Complement)
        assert isinstance(out.source, Absorb)
        # idempotent: once wrapped, the consumer no longer matches
        assert not rule.matches(out)

    def test_place_absorb_over_wide_unions(self):
        wide = Union(tuple(Scan(n, ("x",)) for n in ("A", "B", "C")))
        plan = Project(wide, ("x",))
        rule = PlaceAbsorb()
        assert rule.matches(plan)
        out = rule.apply(plan, None)
        assert isinstance(out.source, Absorb)
        # a 2-part union is left alone
        narrow = Project(Union((_scan("A", "x"), _scan("B", "x"))), ("x",))
        assert not rule.matches(narrow)

    def test_dedup_wraps_repeated_subtrees(self):
        sub = Select(_scan("T", "x", "y"), (lt("x", 5),))
        plan = Union((Project(sub, ("x",)), Complement(sub)))
        out = DedupCommonSubplans().apply(plan, None)
        shared = [n for n in _nodes(out) if isinstance(n, Shared)]
        assert len(shared) == 2
        assert all(s.source == sub for s in shared)

    def test_dedup_never_wraps_root_or_leaves(self):
        leaf = _scan("S", "x")
        plan = Union((leaf, leaf))
        out = DedupCommonSubplans().apply(plan, None)
        assert out == plan  # leaves are free to re-execute
        root_repeat = Select(_scan("T", "x", "y"), (lt("x", 5),))
        assert not isinstance(
            DedupCommonSubplans().apply(root_repeat, None), Shared
        )

    def test_dedup_is_idempotent(self):
        sub = Select(_scan("T", "x", "y"), (lt("x", 5),))
        plan = Union((Project(sub, ("x",)), Complement(sub)))
        rule = DedupCommonSubplans()
        once = rule.apply(plan, None)
        assert rule.apply(once, None) == once


class TestPinnedShapes:
    """The optimize() output shapes the seed tests pinned must survive
    the move from fixed passes to the rule engine."""

    def test_optimize_delegates_to_engine(self):
        f = rel("S", "x") & constraint(lt("x", 5))
        plan = optimize(compile_formula(f), _db())
        assert isinstance(plan, Select)
        assert isinstance(plan.source, Scan)

    def test_absorb_placed_by_full_pipeline(self):
        f = Not(rel("S", "x") & rel("T", "x", "y"))
        plan = optimize(compile_formula(f), _db())
        absorbs = [n for n in _nodes(plan) if isinstance(n, Absorb)]
        assert absorbs, "complement of a join should absorb its input"


class TestEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(formulas(depth=2), st.data())
    def test_rule_engine_preserves_semantics(self, f, data):
        direct = evaluate(f)
        plan = heuristic_engine(None).run(compile_formula(f))
        via_plan = execute(plan)
        assert via_plan.schema == direct.schema
        names = sorted(v.name for v in f.free_variables())
        point = [data.draw(fracs) for _ in names]
        assert direct.contains_point(point) == via_plan.contains_point(point)

    def test_shared_and_absorb_execute_correctly(self, ):
        db = _db()
        sub = Select(_scan("T", "x", "y"), (lt("x", 5),))
        plan = Union((Project(Shared(sub), ("x",)), Project(Shared(sub), ("x",))))
        out = execute(plan, db)
        ref = execute(Union((Project(sub, ("x",)), Project(sub, ("x",)))), db)
        assert out.equivalent(ref)
        wrapped = Complement(Absorb(_scan("S", "x")))
        assert execute(wrapped, db).equivalent(execute(Complement(_scan("S", "x")), db))
