"""Property tests: the relational algebra satisfies the boolean and
relational laws.

These laws are what make the closed-form evaluation *compositional*:
the evaluator silently relies on all of them when it maps connectives
to algebra operations.
"""

from fractions import Fraction

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.core.atoms import eq, le, lt
from repro.core.relation import Relation
from repro.core.theory import DENSE_ORDER
from tests.strategies import fractions as fracs


@st.composite
def unary(draw, column="x", max_tuples=3):
    tuples = []
    for _ in range(draw(st.integers(min_value=0, max_value=max_tuples))):
        a, b = sorted([draw(fracs), draw(fracs)])
        kind = draw(st.integers(min_value=0, max_value=2))
        if kind == 0:
            tuples.append([eq(column, a)])
        elif kind == 1:
            tuples.append([lt(a, column), lt(column, b)])
        else:
            tuples.append([le(a, column), le(column, b)])
    return Relation.from_atoms((column,), tuples, DENSE_ORDER)


@st.composite
def binary(draw, max_tuples=2):
    tuples = []
    for _ in range(draw(st.integers(min_value=0, max_value=max_tuples))):
        a = draw(fracs)
        pattern = draw(st.integers(min_value=0, max_value=2))
        if pattern == 0:
            tuples.append([lt("x", "y"), le(a, "x")])
        elif pattern == 1:
            tuples.append([le("x", a), le(a, "y")])
        else:
            tuples.append([eq("x", "y")])
    return Relation.from_atoms(("x", "y"), tuples, DENSE_ORDER)


class TestBooleanLaws:
    @settings(max_examples=80)
    @given(unary(), unary())
    def test_de_morgan(self, a, b):
        left = a.union(b).complement()
        right = a.complement().intersection(b.complement())
        assert left.equivalent(right)

    @settings(max_examples=80)
    @given(unary(), unary())
    def test_de_morgan_dual(self, a, b):
        left = a.intersection(b).complement()
        right = a.complement().union(b.complement())
        assert left.equivalent(right)

    @settings(max_examples=60)
    @given(unary(), unary(), unary())
    def test_distributivity(self, a, b, c):
        left = a.intersection(b.union(c))
        right = a.intersection(b).union(a.intersection(c))
        assert left.equivalent(right)

    @settings(max_examples=60)
    @given(unary(), unary())
    def test_absorption(self, a, b):
        assert a.union(a.intersection(b)).equivalent(a)
        assert a.intersection(a.union(b)).equivalent(a)

    @settings(max_examples=60)
    @given(unary())
    def test_complement_laws(self, a):
        assert a.union(a.complement()).equivalent(Relation.universe(("x",)))
        assert a.intersection(a.complement()).is_empty()

    @settings(max_examples=60)
    @given(unary(), unary())
    def test_difference_definition(self, a, b):
        assert a.difference(b).equivalent(a.intersection(b.complement()))


class TestRelationalLaws:
    @settings(max_examples=60, deadline=None)
    @given(binary(), binary())
    def test_join_commutes_semantically(self, r, s):
        """R join S == S join R (same pointset; column order aside)."""
        left = r.join(s)
        right = s.join(r)
        assert left.schema == right.schema == ("x", "y")
        assert left.equivalent(right)

    @settings(max_examples=50, deadline=None)
    @given(binary())
    def test_projection_after_join_with_universe(self, r):
        """Joining with the universe then projecting is the identity."""
        u = Relation.universe(("y", "z"))
        wide = r.join(u)
        back = wide.project(("x", "y"))
        assert back.equivalent(r)

    @settings(max_examples=50, deadline=None)
    @given(binary())
    def test_projection_order_irrelevant(self, r):
        """Eliminating x then y equals eliminating y then x."""
        via_x = r.project(("y",)).project(())
        via_y = r.project(("x",)).project(())
        assert via_x.is_empty() == via_y.is_empty()

    @settings(max_examples=50, deadline=None)
    @given(binary(), unary(column="x"))
    def test_selection_pushes_through_join(self, r, s):
        """sigma(R) join S == sigma(R join S) for a selection on R's column."""
        condition = [le(0, "x")]
        left = r.select(condition).join(s)
        right = r.join(s).select(condition)
        assert left.equivalent(right)

    @settings(max_examples=60)
    @given(unary())
    def test_rename_round_trip(self, a):
        assert a.rename({"x": "t"}).rename({"t": "x"}).equivalent(a)

    @settings(max_examples=60)
    @given(unary())
    def test_extend_then_project_identity(self, a):
        assert a.extend(("x", "w")).project(("x",)).equivalent(a)


class TestMonotonicity:
    @settings(max_examples=50, deadline=None)
    @given(unary(), unary(), unary())
    def test_union_monotone_in_containment(self, a, b, c):
        if a.contains(b):
            assert a.union(c).contains(b.union(c))

    @settings(max_examples=50, deadline=None)
    @given(unary(), unary())
    def test_complement_antitone(self, a, b):
        if a.contains(b):
            assert b.complement().contains(a.complement())
