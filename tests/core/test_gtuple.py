"""Unit tests for generalized tuples."""

from fractions import Fraction

import pytest
from hypothesis import given, settings

from repro.core.atoms import eq, le, lt
from repro.core.gtuple import GTuple, check_schema
from repro.core.terms import Const, Var
from repro.core.theory import DENSE_ORDER
from repro.errors import SchemaError
from tests.strategies import conjunctions


def make(schema, atoms=()):
    return GTuple.make(DENSE_ORDER, schema, atoms)


class TestCheckSchema:
    def test_valid(self):
        assert check_schema(["x", "y"]) == ("x", "y")

    def test_duplicate_rejected(self):
        with pytest.raises(SchemaError):
            check_schema(["x", "x"])

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            check_schema([""])


class TestMake:
    def test_paper_triangle(self):
        """The paper's binary generalized tuple x <= y and x >= 0 and y <= 10."""
        t = make(("x", "y"), [le("x", "y"), le(0, "x"), le("y", 10)])
        assert t is not None
        assert t.arity == 2
        assert t.contains_point([Fraction(1), Fraction(5)])
        assert not t.contains_point([Fraction(5), Fraction(1)])
        assert not t.contains_point([Fraction(-1), Fraction(5)])

    def test_unsatisfiable_returns_none(self):
        assert make(("x",), [lt("x", 0), lt(1, "x")]) is None

    def test_true_atoms_dropped(self):
        t = make(("x",), [True, le("x", 1)])
        assert t.atoms == frozenset({le("x", 1)})

    def test_false_atom_returns_none(self):
        assert make(("x",), [False]) is None

    def test_non_schema_variable_rejected(self):
        with pytest.raises(SchemaError):
            make(("x",), [lt("x", "y")])

    def test_equivalent_conjunctions_equal(self):
        a = make(("x", "y"), [le("x", "y"), le("y", "x")])
        b = make(("x", "y"), [eq("x", "y")])
        assert a == b
        assert hash(a) == hash(b)

    def test_universe(self):
        u = GTuple.universe(DENSE_ORDER, ("x", "y"))
        assert u.atoms == frozenset()
        assert u.contains_point([Fraction(100), Fraction(-100)])

    def test_point(self):
        p = GTuple.point(DENSE_ORDER, ("x", "y"), [1, 2])
        assert p.contains_point([Fraction(1), Fraction(2)])
        assert not p.contains_point([Fraction(1), Fraction(3)])


class TestProjectOut:
    def test_density_used(self):
        """exists y (x < y and y < z)  <=>  x < z  (density of Q)."""
        t = make(("x", "y", "z"), [lt("x", "y"), lt("y", "z")])
        [p] = t.project_out_all("y")
        assert p.schema == ("x", "z")
        assert p.atoms == frozenset({lt("x", "z")})

    def test_weak_bounds_compose_weakly(self):
        t = make(("x", "y", "z"), [le("x", "y"), le("y", "z")])
        [p] = t.project_out_all("y")
        assert p.atoms == frozenset({le("x", "z")})

    def test_mixed_bounds_compose_strictly(self):
        t = make(("x", "y", "z"), [le("x", "y"), lt("y", "z")])
        [p] = t.project_out_all("y")
        assert p.atoms == frozenset({lt("x", "z")})

    def test_no_endpoints_one_sided_vanishes(self):
        """exists y (y < x) is true for every x: Q has no least element."""
        t = make(("x", "y"), [lt("y", "x")])
        [p] = t.project_out_all("y")
        assert p.atoms == frozenset()

    def test_pinned_variable_substituted(self):
        t = make(("x", "y"), [eq("y", 3), lt("x", "y")])
        [p] = t.project_out_all("y")
        assert p.atoms == frozenset({lt("x", 3)})

    def test_pinned_to_variable(self):
        t = make(("x", "y", "z"), [eq("y", "x"), lt("y", "z")])
        [p] = t.project_out_all("y")
        assert p.atoms == frozenset({lt("x", "z")})

    def test_unknown_column_raises(self):
        t = make(("x",), [])
        with pytest.raises(SchemaError):
            t.project_out_all("q")

    @settings(max_examples=150)
    @given(conjunctions(max_size=5))
    def test_projection_preserves_satisfiability(self, atoms):
        """A satisfiable tuple projects to a satisfiable tuple, and points
        in the projection extend to points in the original (checked via
        the witness of the projection)."""
        names = sorted({v.name for a in atoms if not isinstance(a, bool) for v in a.variables})
        if "x" not in names:
            return
        t = make(tuple(names), [a for a in atoms if not isinstance(a, bool)])
        if t is None:
            return
        results = t.project_out_all("x")
        assert len(results) == 1
        [p] = results
        # soundness: any witness of p extends to a witness of t
        witness = p.sample_point()
        extended = dict(witness)
        # re-solve the original with the projection witness pinned
        pins = [eq(c, v) for c, v in witness.items()]
        pinned = t.conjoin(pins)
        assert pinned is not None, f"projection witness {witness} does not extend"


class TestTransforms:
    def test_rename(self):
        t = make(("x", "y"), [lt("x", "y")])
        r = t.rename({"x": "a", "y": "b"})
        assert r.schema == ("a", "b")
        assert r.atoms == frozenset({lt("a", "b")})

    def test_extend(self):
        t = make(("x",), [le("x", 1)])
        e = t.extend(("x", "y"))
        assert e.schema == ("x", "y")
        assert e.contains_point([Fraction(0), Fraction(99)])

    def test_extend_cannot_drop(self):
        t = make(("x", "y"), [])
        with pytest.raises(SchemaError):
            t.extend(("x",))

    def test_reorder(self):
        t = make(("x", "y"), [lt("x", "y")])
        r = t.reorder(("y", "x"))
        assert r.schema == ("y", "x")
        assert r.contains_point([Fraction(2), Fraction(1)])  # y=2, x=1

    def test_substitute_to_constant(self):
        t = make(("x", "y"), [lt("x", "y")])
        s = t.substitute({"y": Const(Fraction(3))})
        assert s.schema == ("x",)
        assert s.atoms == frozenset({lt("x", 3)})

    def test_substitute_unsatisfiable(self):
        t = make(("x",), [lt("x", 0)])
        assert t.substitute({"x": Const(Fraction(5))}) is None

    def test_merge(self):
        a = make(("x",), [le(0, "x")])
        b = make(("x",), [le("x", 1)])
        m = a.merge(b, ("x",))
        assert m.contains_point([Fraction(1, 2)])
        assert not m.contains_point([Fraction(2)])

    def test_merge_unsatisfiable(self):
        a = make(("x",), [lt("x", 0)])
        b = make(("x",), [lt(1, "x")])
        assert a.merge(b, ("x",)) is None


class TestSemantics:
    def test_sample_point_in_tuple(self):
        t = make(("x", "y"), [lt("x", "y"), lt(0, "x"), lt("y", 1)])
        pt = t.sample_point()
        assert t.contains_point([pt["x"], pt["y"]])

    def test_entails(self):
        t = make(("x", "y"), [lt("x", 0), lt(0, "y")])
        assert t.entails(lt("x", "y"))
        assert not t.entails(eq("x", "y"))

    def test_constants(self):
        t = make(("x",), [le(0, "x"), le("x", Fraction(7, 2))])
        assert t.constants() == {Fraction(0), Fraction(7, 2)}
