"""Tests for the seeded workload generators."""

from fractions import Fraction

import pytest

from repro.core.intervals import IntervalSet
from repro.linear.region import count_components, is_connected
from repro.queries.library import graph_connectivity_procedural
from repro.workloads.generators import (
    checkerboard_region,
    cycle_graph,
    disjoint_cycles,
    interval_chain,
    interval_pairs_relation,
    path_graph,
    point_set,
    random_box_database,
    random_finite_graph,
    random_interval_database,
    random_interval_set,
    rng_of,
    staircase_region,
)


class TestSeeding:
    def test_same_seed_same_output(self):
        a = random_interval_set(42, count=5)
        b = random_interval_set(42, count=5)
        assert a == b

    def test_different_seeds_differ(self):
        assert random_interval_set(1, count=5) != random_interval_set(2, count=5)

    def test_rng_passthrough(self):
        import random

        r = random.Random(0)
        assert rng_of(r) is r
        assert rng_of(3).random() == rng_of(3).random()


class TestGraphs:
    def test_path_connected(self):
        assert graph_connectivity_procedural(path_graph(6))

    def test_cycle_edges(self):
        db = cycle_graph(4)
        assert db["E"].contains_point([3, 0])

    def test_disjoint_cycles_disconnected(self):
        assert not graph_connectivity_procedural(disjoint_cycles(4))

    def test_random_graph_shape(self):
        db = random_finite_graph(0, vertex_count=6, edge_probability=1.0)
        assert db["E"].contains_point([0, 5])
        db2 = random_finite_graph(0, vertex_count=6, edge_probability=0.0)
        assert db2["E"].is_empty()

    def test_empty_graph(self):
        db = path_graph(0)
        assert db["V"].is_empty()
        assert db["E"].is_empty()


class TestPointsAndIntervals:
    def test_point_set_contents(self):
        db = point_set(3, start=5, step=2)
        for v in (5, 7, 9):
            assert db["S"].contains_point([v])
        assert not db["S"].contains_point([6])

    def test_interval_chain_components(self):
        assert count_components(interval_chain(5, overlap=True)["S"]) == 1
        assert count_components(interval_chain(5, overlap=False)["S"]) == 5

    def test_interval_pairs_are_ordered(self):
        db = interval_pairs_relation(9, count=8)
        for t in db["I"].tuples:
            p = t.sample_point()
            assert p["lo"] < p["hi"]

    def test_random_interval_database_unary(self):
        db = random_interval_database(5, count=6)
        assert db["S"].arity == 1
        assert not db["S"].is_empty()


class TestRegions:
    def test_random_boxes(self):
        db = random_box_database(2, count=3, dimension=2)
        assert db["R"].arity == 2
        assert len(db["R"]) <= 3

    def test_checkerboard_connected(self):
        assert is_connected(checkerboard_region(2)["R"])

    def test_staircase(self):
        assert count_components(staircase_region(4)["R"]) == 1
        assert count_components(staircase_region(5, gap=True)["R"]) == 2


class TestAdversarial:
    """The E13 resource-exhaustion workloads."""

    def test_fragmented_intervals_are_disjoint(self):
        from repro.workloads.generators import fragmented_interval_database

        db = fragmented_interval_database(5)
        assert count_components(db["S"]) == 5
        assert db["S"].contains_point([Fraction(1, 2)])
        assert not db["S"].contains_point([1])  # open endpoints

    def test_deep_negation_semantics(self):
        from repro.core.evaluator import evaluate
        from repro.workloads.generators import (
            deep_negation_formula,
            fragmented_interval_database,
        )

        db = fragmented_interval_database(3)
        even = evaluate(deep_negation_formula(2), db)
        odd = evaluate(deep_negation_formula(3), db)
        # double negation is the identity, triple is one complement
        assert even.contains_point([Fraction(1, 2)])
        assert not odd.contains_point([Fraction(1, 2)])
        assert odd.contains_point([2])

    def test_alternating_quantifier_formula_shape(self):
        from repro.core.evaluator import evaluate
        from repro.workloads.generators import alternating_quantifier_formula

        out = evaluate(alternating_quantifier_formula(3), path_graph(5))
        assert out.schema == ("v0",)
        with pytest.raises(ValueError):
            alternating_quantifier_formula(0)

    def test_slow_tc_workload_round_count(self):
        from repro.datalog.engine import evaluate_program
        from repro.workloads.generators import slow_tc_workload

        program, db = slow_tc_workload(6)
        result = evaluate_program(program, db)
        assert result.reached_fixpoint
        assert result.rounds >= 5  # converges only after ~length rounds
        assert result["tc"].contains_point([0, 5])
