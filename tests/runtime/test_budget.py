"""Unit tests for the Budget value object and the error hierarchy."""

import pytest

from repro.errors import EvaluationError, ReproError
from repro.runtime.budget import (
    UNLIMITED,
    AtomLimitExceeded,
    Budget,
    BudgetExceeded,
    DeadlineExceeded,
    DepthLimitExceeded,
    EvaluationCancelled,
    RoundLimitExceeded,
    TupleLimitExceeded,
)


class TestBudget:
    def test_default_is_unlimited(self):
        assert Budget().is_unlimited()
        assert UNLIMITED.is_unlimited()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"deadline_seconds": 1.0},
            {"max_tuples": 10},
            {"max_atoms_per_relation": 100},
            {"max_rounds": 5},
            {"max_depth": 3},
        ],
    )
    def test_any_limit_is_not_unlimited(self, kwargs):
        assert not Budget(**kwargs).is_unlimited()

    def test_frozen(self):
        with pytest.raises(Exception):
            Budget().max_tuples = 1

    def test_value_semantics(self):
        assert Budget(max_rounds=3) == Budget(max_rounds=3)
        assert Budget(max_rounds=3) != Budget(max_rounds=4)


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "kind",
        [
            DeadlineExceeded,
            TupleLimitExceeded,
            AtomLimitExceeded,
            RoundLimitExceeded,
            DepthLimitExceeded,
            EvaluationCancelled,
        ],
    )
    def test_under_budget_and_evaluation_and_repro(self, kind):
        assert issubclass(kind, BudgetExceeded)
        assert issubclass(kind, EvaluationError)
        assert issubclass(kind, ReproError)

    def test_atom_limit_is_a_tuple_limit(self):
        # representation blowup is one degradation family
        assert issubclass(AtomLimitExceeded, TupleLimitExceeded)

    def test_diagnostics_payload(self):
        error = TupleLimitExceeded(
            "too many", site="relation.join", limit=10, rounds=2, tuples=11,
            elapsed=0.5,
        )
        diag = error.diagnostics()
        assert diag == {
            "error": "TupleLimitExceeded",
            "site": "relation.join",
            "limit": 10,
            "rounds": 2,
            "tuples": 11,
            "elapsed": 0.5,
        }
        assert "too many" in str(error)
