"""Unit tests for EvaluationGuard: checkpoints, clock, activation."""

import pytest

from repro.core.atoms import lt
from repro.core.relation import Relation
from repro.core.theory import DENSE_ORDER
from repro.runtime.budget import (
    AtomLimitExceeded,
    Budget,
    DeadlineExceeded,
    DepthLimitExceeded,
    EvaluationCancelled,
    RoundLimitExceeded,
    TupleLimitExceeded,
)
from repro.runtime.guard import EvaluationGuard, active_guard


class FakeClock:
    """A manually advanced monotonic clock for deterministic deadlines."""

    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


class TestDeadline:
    def test_tick_before_deadline_passes(self, clock):
        guard = EvaluationGuard(Budget(deadline_seconds=1.0), clock=clock)
        clock.advance(0.5)
        guard.tick("site")  # no raise

    def test_tick_after_deadline_raises(self, clock):
        guard = EvaluationGuard(Budget(deadline_seconds=1.0), clock=clock)
        clock.advance(1.5)
        with pytest.raises(DeadlineExceeded) as info:
            guard.tick("relation.complement")
        assert info.value.site == "relation.complement"
        assert info.value.elapsed == pytest.approx(1.5)

    def test_remaining_seconds(self, clock):
        guard = EvaluationGuard(Budget(deadline_seconds=2.0), clock=clock)
        clock.advance(0.5)
        assert guard.remaining_seconds() == pytest.approx(1.5)
        assert EvaluationGuard(clock=clock).remaining_seconds() is None

    def test_no_deadline_never_trips(self, clock):
        guard = EvaluationGuard(clock=clock)
        clock.advance(1e9)
        guard.tick()


class TestTupleBudget:
    def test_cumulative_charge(self):
        guard = EvaluationGuard(Budget(max_tuples=5))
        guard.on_tuples(3, "relation.join")
        with pytest.raises(TupleLimitExceeded) as info:
            guard.on_tuples(3, "relation.join")
        assert info.value.tuples == 6
        assert info.value.limit == 5

    def test_atom_cap_per_relation(self):
        guard = EvaluationGuard(Budget(max_atoms_per_relation=1))
        fat = Relation.from_atoms(
            ("x",), [[lt(0, "x"), lt("x", 1)]], DENSE_ORDER
        )
        with pytest.raises(AtomLimitExceeded):
            guard.check_atoms(fat, "relation.complement")

    def test_charge_relation_counts_tuples_and_atoms(self):
        guard = EvaluationGuard(Budget(max_tuples=100, max_atoms_per_relation=100))
        r = Relation.from_atoms(("x",), [[lt(0, "x")]], DENSE_ORDER)
        guard.charge_relation(r, "relation.join")
        assert guard.tuples_materialized == 1


class TestRoundsAndDepth:
    def test_round_limit_trips_before_the_over_budget_round(self):
        guard = EvaluationGuard(Budget(max_rounds=2))
        guard.on_round("datalog.round")
        guard.on_round("datalog.round")
        with pytest.raises(RoundLimitExceeded) as info:
            guard.on_round("datalog.round")
        # the failed round did no work: diagnostics report 2 completed
        assert info.value.rounds == 2
        assert guard.rounds_completed == 2

    def test_depth_limit(self):
        guard = EvaluationGuard(Budget(max_depth=2))
        guard.enter_depth("evaluator.eval")
        guard.enter_depth("evaluator.eval")
        with pytest.raises(DepthLimitExceeded):
            guard.enter_depth("evaluator.eval")
        guard.exit_depth()
        guard.exit_depth()

    def test_max_depth_seen_tracks_high_water(self):
        guard = EvaluationGuard()
        guard.enter_depth()
        guard.enter_depth()
        guard.exit_depth()
        guard.exit_depth()
        assert guard.max_depth_seen == 2
        assert guard.depth == 0


class TestCancellation:
    def test_cancel_trips_next_tick(self):
        guard = EvaluationGuard()
        guard.tick()
        guard.cancel()
        with pytest.raises(EvaluationCancelled):
            guard.tick("evaluator.eval")


class TestActivation:
    def test_context_manager_sets_ambient_guard(self):
        guard = EvaluationGuard()
        assert active_guard() is None
        with guard:
            assert active_guard() is guard
        assert active_guard() is None

    def test_nesting_restores_outer(self):
        outer, inner = EvaluationGuard(), EvaluationGuard()
        with outer:
            with inner:
                assert active_guard() is inner
            assert active_guard() is outer

    def test_reentrant_activation(self):
        guard = EvaluationGuard()
        with guard:
            with guard:
                assert active_guard() is guard
            assert active_guard() is guard


class TestStats:
    def test_counters_and_snapshot(self):
        guard = EvaluationGuard()
        guard.note("relation.join")
        guard.note("relation.join")
        guard.note("qe", 5)
        guard.on_tuples(3)
        guard.on_round("datalog.round")
        snapshot = guard.stats()
        assert snapshot["sites"]["relation.join"] == 2
        assert snapshot["sites"]["qe"] == 5
        assert snapshot["tuples_materialized"] == 3
        assert snapshot["rounds_completed"] == 1
        assert snapshot["ticks"] >= 1
