"""CLI resource flags: exit codes and partial-result output."""

import pytest

from repro.cli import EXIT_BUDGET, main
from repro.encoding.standard import encode_database
from repro.workloads.generators import path_graph

TC_PROGRAM = """\
tc(x, y) :- E(x, y).
tc(x, z) :- tc(x, y), E(y, z).
"""


@pytest.fixture
def paths(tmp_path):
    db_path = tmp_path / "g.cdb"
    db_path.write_text(encode_database(path_graph(6)))
    program_path = tmp_path / "tc.dl"
    program_path.write_text(TC_PROGRAM)
    return str(db_path), str(program_path)


class TestDatalogFlags:
    def test_unbudgeted_run_succeeds(self, paths, capsys):
        db, program = paths
        assert main(["datalog", db, program, "--show", "tc"]) == 0
        assert "fixpoint after" in capsys.readouterr().out

    def test_max_rounds_exits_with_budget_code(self, paths, capsys):
        db, program = paths
        code = main(["datalog", db, program, "--max-rounds", "2"])
        assert code == EXIT_BUDGET
        err = capsys.readouterr().err
        assert "budget exceeded" in err
        assert "RoundLimitExceeded" in err

    def test_partial_prints_cut_and_exits_zero(self, paths, capsys):
        db, program = paths
        code = main(
            ["datalog", db, program, "--max-rounds", "2", "--on-budget", "partial"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "cut off after 2 round(s)" in out

    def test_timeout_flag_wires_a_deadline(self, paths, capsys):
        db, program = paths
        # generous deadline: must still converge normally
        assert main(["datalog", db, program, "--timeout", "60"]) == 0


class TestQueryFlags:
    def test_max_depth_exits_with_budget_code(self, paths, capsys):
        db, _ = paths
        code = main(
            ["query", db, "not not not (exists y (E(x, y)))", "--max-depth", "2"]
        )
        assert code == EXIT_BUDGET
        assert "DepthLimitExceeded" in capsys.readouterr().err

    def test_max_tuples_exits_with_budget_code(self, paths, capsys):
        db, _ = paths
        code = main(["query", db, "not E(x, y)", "--max-tuples", "1"])
        assert code == EXIT_BUDGET
        assert "TupleLimitExceeded" in capsys.readouterr().err

    def test_unbudgeted_query_succeeds(self, paths, capsys):
        db, _ = paths
        assert main(["query", db, "exists y (E(x, y))"]) == 0

    def test_budget_errors_are_distinct_from_generic_errors(self, paths):
        db, _ = paths
        generic = main(["query", db, "exists y (NoSuchRel(x, y))"])
        assert generic == 1
        assert generic != EXIT_BUDGET
