"""Graceful degradation: retries and partial fallbacks under policy."""

import pytest

from repro.datalog.engine import FixpointResult
from repro.datalog.seminaive import evaluate_seminaive
from repro.runtime.budget import Budget, RoundLimitExceeded
from repro.runtime.degrade import DegradePolicy, run_with_policy
from repro.runtime.faults import FaultRegistry, TransientEvaluationError
from repro.workloads.generators import slow_tc_workload


class TestTransientRetry:
    def test_single_transient_failure_is_retried(self):
        program, db = slow_tc_workload(4)
        with FaultRegistry() as reg:
            reg.inject("datalog.round", times=1)
            result = run_with_policy(program, db)
        assert result.reached_fixpoint
        # first attempt died on round 1, second ran clean
        assert reg.hits["datalog.round"] > result.rounds

    def test_retries_exhausted_reraises(self):
        program, db = slow_tc_workload(4)
        with FaultRegistry() as reg:
            reg.inject("datalog.round", times=5)
            with pytest.raises(TransientEvaluationError):
                run_with_policy(
                    program, db, policy=DegradePolicy(retry_transient=2)
                )

    def test_zero_retries_fails_fast(self):
        program, db = slow_tc_workload(4)
        with FaultRegistry() as reg:
            reg.inject("datalog.round", times=1)
            with pytest.raises(TransientEvaluationError):
                run_with_policy(
                    program, db, policy=DegradePolicy(retry_transient=0)
                )


class TestPartialFallback:
    def test_round_budget_falls_back_to_partial(self):
        program, db = slow_tc_workload(8)
        result = run_with_policy(program, db, budget=Budget(max_rounds=3))
        assert isinstance(result, FixpointResult)
        assert not result.reached_fixpoint
        assert result.cut is not None
        assert result["tc"].contains_point([0, 1])

    def test_policy_can_forbid_partial(self):
        program, db = slow_tc_workload(8)
        with pytest.raises(RoundLimitExceeded):
            run_with_policy(
                program,
                db,
                budget=Budget(max_rounds=3),
                policy=DegradePolicy(partial_on_budget=False),
            )

    def test_explicit_fallback_round_cap(self):
        program, db = slow_tc_workload(8)
        result = run_with_policy(
            program,
            db,
            budget=Budget(max_rounds=3),
            policy=DegradePolicy(fallback_max_rounds=2),
        )
        assert not result.reached_fixpoint
        assert result.rounds == 2

    def test_engine_parameter_swaps_in_seminaive(self):
        program, db = slow_tc_workload(8)
        result = run_with_policy(
            program, db, budget=Budget(max_rounds=3), engine=evaluate_seminaive
        )
        assert not result.reached_fixpoint
        assert result.cut is not None


class TestSimplificationRetry:
    def test_tuple_blowup_retries_with_simplification(self):
        """A tuple-limit trip on an unsimplified run is retried once
        with per-round simplification forced on (the fault fires only
        on the first attempt, so the retry runs clean)."""
        program, db = slow_tc_workload(6)
        with FaultRegistry() as reg:
            reg.inject("datalog.round", charge_tuples=10_000, times=1)
            result = run_with_policy(
                program,
                db,
                budget=Budget(max_tuples=5_000),
                simplify_each_round=False,
            )
        assert result.reached_fixpoint
        baseline = run_with_policy(program, db)
        assert frozenset(result["tc"].tuples) == frozenset(baseline["tc"].tuples)

    def test_simplification_retry_can_be_disabled(self):
        from repro.runtime.budget import TupleLimitExceeded

        program, db = slow_tc_workload(6)
        with FaultRegistry() as reg:
            reg.inject("datalog.round", charge_tuples=10_000, times=2)
            with pytest.raises(TupleLimitExceeded):
                run_with_policy(
                    program,
                    db,
                    budget=Budget(max_tuples=5_000),
                    simplify_each_round=False,
                    policy=DegradePolicy(
                        retry_with_simplification=False, partial_on_budget=False
                    ),
                )
