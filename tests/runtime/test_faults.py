"""Deterministic fault injection: schedules, seeds, guard interplay."""

import pytest

from repro.core.evaluator import evaluate
from repro.core.formula import Not, rel
from repro.datalog.engine import evaluate_program
from repro.runtime.budget import Budget, EvaluationCancelled, TupleLimitExceeded
from repro.runtime.faults import (
    KNOWN_SITES,
    FaultRegistry,
    TransientEvaluationError,
    fault_point,
)
from repro.runtime.guard import EvaluationGuard
from repro.workloads.generators import (
    fragmented_interval_database,
    slow_tc_workload,
)


class TestFaultPoint:
    def test_noop_without_registry(self):
        fault_point("evaluator.eval")  # must not raise

    def test_unknown_site_hits_are_counted_but_harmless(self):
        with FaultRegistry() as reg:
            fault_point("no.such.site")
        assert reg.hits["no.such.site"] == 1


class TestSchedules:
    def test_default_fault_is_transient(self):
        with FaultRegistry() as reg:
            reg.inject("s")
            with pytest.raises(TransientEvaluationError):
                fault_point("s")

    def test_after_skips_first_hits(self):
        with FaultRegistry() as reg:
            reg.inject("s", after=2)
            fault_point("s")
            fault_point("s")
            with pytest.raises(TransientEvaluationError):
                fault_point("s")

    def test_times_bounds_firings(self):
        with FaultRegistry() as reg:
            reg.inject("s", times=2)
            for _ in range(2):
                with pytest.raises(TransientEvaluationError):
                    fault_point("s")
            fault_point("s")  # exhausted: no raise

    def test_custom_error_class_and_instance(self):
        class Boom(RuntimeError):
            pass

        with FaultRegistry() as reg:
            reg.inject("a", error=Boom).inject("b", error=Boom("kaboom"))
            with pytest.raises(Boom):
                fault_point("a")
            with pytest.raises(Boom, match="kaboom"):
                fault_point("b")

    def test_seeded_probability_is_reproducible(self):
        def schedule(seed):
            fired = []
            with FaultRegistry(seed=seed) as reg:
                reg.inject("s", probability=0.5, times=100)
                for i in range(20):
                    try:
                        fault_point("s")
                        fired.append(False)
                    except TransientEvaluationError:
                        fired.append(True)
            return fired

        assert schedule(7) == schedule(7)
        assert True in schedule(7) and False in schedule(7)
        assert schedule(7) != schedule(8)

    def test_log_records_firing_order(self):
        with FaultRegistry() as reg:
            reg.inject("s", after=1)
            fault_point("s")
            with pytest.raises(TransientEvaluationError):
                fault_point("s")
        assert reg.log == [("s", 2, "raise:TransientEvaluationError")]


class TestGuardInterplay:
    def test_charge_tuples_pressures_the_budget(self):
        guard = EvaluationGuard(Budget(max_tuples=5))
        with guard, FaultRegistry() as reg:
            reg.inject("s", charge_tuples=10)
            with pytest.raises(TupleLimitExceeded):
                fault_point("s")

    def test_on_fire_hook_can_cancel(self):
        guard = EvaluationGuard()
        with guard, FaultRegistry() as reg:
            reg.inject("s", on_fire=guard.cancel)
            fault_point("s")
            with pytest.raises(EvaluationCancelled):
                guard.tick()


class TestEngineSites:
    def test_known_sites_cover_the_engines(self):
        for site in (
            "evaluator.eval",
            "relation.complement",
            "datalog.round",
            "ccalc.fixpoint.round",
        ):
            assert site in KNOWN_SITES

    def test_evaluator_hits_eval_site(self):
        db = fragmented_interval_database(2)
        with FaultRegistry() as reg:
            evaluate(rel("S", "x"), db)
        assert reg.hits["evaluator.eval"] >= 1

    def test_complement_site_fires_on_negation(self):
        db = fragmented_interval_database(2)
        with FaultRegistry() as reg:
            reg.inject("relation.complement")
            with pytest.raises(TransientEvaluationError):
                evaluate(Not(rel("S", "x")), db)

    def test_datalog_round_site_fires_mid_fixpoint(self):
        program, db = slow_tc_workload(5)
        with FaultRegistry() as reg:
            reg.inject("datalog.round", after=2)
            with pytest.raises(TransientEvaluationError):
                evaluate_program(program, db)
        assert reg.hits["datalog.round"] == 3
