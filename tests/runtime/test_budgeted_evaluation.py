"""Acceptance tests: budgets threaded through every evaluation path.

The adversarial inputs come from :mod:`repro.workloads.generators`:
stacked complements over fragmented intervals (representation blowup)
and single-step transitive closure over long paths (round blowup).
Deadlines are driven both deterministically (injected clock advanced by
a fault hook) and against the real wall clock (one test, generous
margins).
"""

import time

import pytest

from repro.cobjects.calculus import CAnd, CExists, CRelation, COr
from repro.cobjects.fixpoint import FixpointQuery, PartialRelation, evaluate_fixpoint
from repro.cobjects.while_loop import WhileQuery, evaluate_while
from repro.core.evaluator import evaluate
from repro.core.formula import Not, rel
from repro.core.terms import as_term
from repro.datalog.engine import evaluate_program
from repro.datalog.seminaive import evaluate_seminaive
from repro.datalog.stratified import evaluate_stratified
from repro.runtime.budget import (
    Budget,
    DeadlineExceeded,
    DepthLimitExceeded,
    EvaluationCancelled,
    RoundLimitExceeded,
    TupleLimitExceeded,
)
from repro.runtime.faults import FaultRegistry
from repro.runtime.guard import EvaluationGuard
from repro.workloads.generators import (
    deep_negation_formula,
    fragmented_interval_database,
    slow_tc_workload,
)


def R(name, *args):
    return CRelation(name, tuple(as_term(a) for a in args))


def tc_step():
    return COr(
        (
            R("E", "x", "y"),
            CExists(("z",), CAnd((R("TC", "x", "z"), R("E", "z", "y")))),
        )
    )


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestDeadlines:
    def test_deterministic_deadline_mid_evaluation(self):
        """A fault hook advances the injected clock past the deadline
        mid-formula; the very next tick aborts the evaluation."""
        clock = FakeClock()
        guard = EvaluationGuard(Budget(deadline_seconds=5.0), clock=clock)
        db = fragmented_interval_database(4)
        with FaultRegistry() as reg:
            reg.inject("relation.complement", on_fire=lambda: clock.advance(10.0))
            with pytest.raises(DeadlineExceeded) as info:
                evaluate(deep_negation_formula(2), db, guard=guard)
        assert info.value.elapsed > 5.0
        assert info.value.limit == 5.0

    def test_wall_clock_deadline_on_adversarial_negation(self):
        """The canonical acceptance case: a deep-negation formula that
        needs ~2s unguarded aborts well within a 0.2s deadline."""
        db = fragmented_interval_database(30)
        guard = EvaluationGuard(Budget(deadline_seconds=0.2))
        started = time.monotonic()
        with pytest.raises(DeadlineExceeded):
            evaluate(deep_negation_formula(6), db, guard=guard)
        # aborted promptly: nowhere near the unguarded ~2s runtime
        assert time.monotonic() - started < 1.5

    def test_datalog_deadline_via_budget(self):
        clock = FakeClock()
        program, db = slow_tc_workload(8)
        guard = EvaluationGuard(Budget(deadline_seconds=3.0), clock=clock)
        with FaultRegistry() as reg:
            reg.inject(
                "datalog.round", after=2, on_fire=lambda: clock.advance(10.0)
            )
            with pytest.raises(DeadlineExceeded):
                evaluate_program(program, db, guard=guard)


class TestTupleLimits:
    def test_complement_trips_tuple_budget(self):
        db = fragmented_interval_database(30)
        guard = EvaluationGuard(Budget(max_tuples=25))
        with pytest.raises(TupleLimitExceeded) as info:
            evaluate(Not(rel("S", "x")), db, guard=guard)
        assert info.value.site.startswith("relation.")
        assert info.value.tuples > 25

    def test_within_budget_is_untouched(self):
        db = fragmented_interval_database(5)
        guard = EvaluationGuard(Budget(max_tuples=10_000))
        out = evaluate(Not(rel("S", "x")), db, guard=guard)
        assert out.contains_point([2])
        assert not out.contains_point([0.5])


class TestDepthLimit:
    def test_deep_formula_trips(self):
        db = fragmented_interval_database(2)
        guard = EvaluationGuard(Budget(max_depth=3))
        with pytest.raises(DepthLimitExceeded):
            evaluate(deep_negation_formula(10), db, guard=guard)

    def test_shallow_formula_passes(self):
        db = fragmented_interval_database(2)
        guard = EvaluationGuard(Budget(max_depth=10))
        evaluate(deep_negation_formula(2), db, guard=guard)


class TestCancellation:
    def test_cancel_mid_fixpoint(self):
        program, db = slow_tc_workload(8)
        guard = EvaluationGuard()
        with FaultRegistry() as reg:
            reg.inject("datalog.round", after=3, on_fire=guard.cancel)
            with pytest.raises(EvaluationCancelled):
                evaluate_program(program, db, guard=guard)


class TestPartialResults:
    """on_budget="partial" returns the last completed round, tagged."""

    def test_datalog_partial_is_tagged_and_sound(self):
        program, db = slow_tc_workload(8)
        result = evaluate_program(
            program, db, budget=Budget(max_rounds=3), on_budget="partial"
        )
        assert not result.reached_fixpoint
        assert result.rounds == 3
        assert "round" in result.cut
        # sound under-approximation: everything derived is true...
        assert result["tc"].contains_point([0, 1])
        # ...but the far reaches of the closure were cut
        assert not result["tc"].contains_point([0, 7])
        full = evaluate_program(program, db)
        assert full["tc"].contains_point([0, 7])

    def test_seminaive_partial(self):
        program, db = slow_tc_workload(8)
        result = evaluate_seminaive(
            program, db, budget=Budget(max_rounds=2), on_budget="partial"
        )
        assert not result.reached_fixpoint
        assert result.cut is not None

    def test_stratified_partial(self):
        program, db = slow_tc_workload(8)
        result = evaluate_stratified(
            program, db, budget=Budget(max_rounds=2), on_budget="partial"
        )
        assert not result.reached_fixpoint
        assert result.cut is not None

    def test_converged_results_are_untagged(self):
        program, db = slow_tc_workload(4)
        result = evaluate_program(program, db, budget=Budget(max_rounds=100))
        assert result.reached_fixpoint
        assert result.cut is None

    def test_ccalc_fixpoint_partial_relation(self):
        from repro.workloads.generators import path_graph

        db = path_graph(7)
        query = FixpointQuery("TC", ("x", "y"), tc_step())
        out = evaluate_fixpoint(
            query, db, budget=Budget(max_rounds=2), on_budget="partial"
        )
        assert isinstance(out, PartialRelation)
        assert not out.reached_fixpoint
        assert out.rounds == 2
        assert "round" in out.cut
        # behaves as an ordinary relation
        assert out.contains_point([0, 1])
        assert not out.contains_point([0, 6])

    def test_ccalc_fixpoint_raises_by_default(self):
        from repro.workloads.generators import path_graph

        db = path_graph(7)
        query = FixpointQuery("TC", ("x", "y"), tc_step())
        with pytest.raises(RoundLimitExceeded):
            evaluate_fixpoint(query, db, budget=Budget(max_rounds=2))

    def test_ccalc_while_partial_relation(self):
        from repro.workloads.generators import path_graph

        db = path_graph(7)
        query = WhileQuery("TC", ("x", "y"), tc_step())
        out = evaluate_while(query, db, max_rounds=2, on_budget="partial")
        assert isinstance(out, PartialRelation)
        assert not out.reached_fixpoint
        assert out.rounds == 2

    def test_invalid_on_budget_rejected(self):
        program, db = slow_tc_workload(3)
        with pytest.raises(ValueError):
            evaluate_program(program, db, on_budget="explode")


class TestGuardReuse:
    def test_one_guard_accumulates_across_calls(self):
        """One guard governs a whole request: budgets span evaluations."""
        db = fragmented_interval_database(10)
        guard = EvaluationGuard(Budget(max_tuples=200))
        evaluate(Not(rel("S", "x")), db, guard=guard)
        spent = guard.tuples_materialized
        assert spent > 0
        with pytest.raises(TupleLimitExceeded):
            for _ in range(10):
                evaluate(Not(rel("S", "x")), db, guard=guard)

    def test_stats_report_where_work_went(self):
        db = fragmented_interval_database(5)
        guard = EvaluationGuard()
        evaluate(Not(rel("S", "x")), db, guard=guard)
        stats = guard.stats()
        assert stats["sites"]["relation.complement"] >= 1
        assert stats["tuples_materialized"] > 0
