"""Tests for the classical finite-relation inflationary engine."""

from fractions import Fraction

import pytest

from repro.core.atoms import lt
from repro.datalog.ast import Program, cons, negated, pred, rule
from repro.datalog.finite import FiniteInstance, evaluate_finite
from repro.errors import DatalogError


@pytest.fixture
def chain():
    return FiniteInstance({"E": [(1, 2), (2, 3), (3, 4)]})


class TestFiniteInstance:
    def test_arity_inferred(self, chain):
        assert chain.arity("E") == 2

    def test_mixed_arity_rejected(self):
        with pytest.raises(DatalogError):
            FiniteInstance({"R": [(1,), (1, 2)]})

    def test_empty_needs_arity(self):
        with pytest.raises(DatalogError):
            FiniteInstance().add_relation("R", [])
        inst = FiniteInstance()
        inst.add_relation("R", [], arity=2)
        assert inst.arity("R") == 2

    def test_active_domain(self, chain):
        assert chain.active_domain() == {Fraction(i) for i in (1, 2, 3, 4)}

    def test_copy_independent(self, chain):
        clone = chain.copy()
        clone["E"].add((9, 9))
        assert (Fraction(9), Fraction(9)) not in chain["E"]


class TestEvaluation:
    def test_transitive_closure(self, chain):
        program = Program(
            [
                rule("tc", ["x", "y"], pred("E", "x", "y")),
                rule("tc", ["x", "z"], pred("tc", "x", "y"), pred("E", "y", "z")),
            ],
            edb={"E": 2},
        )
        result = evaluate_finite(program, chain)
        pairs = {(int(a), int(b)) for a, b in result["tc"]}
        assert pairs == {(1, 2), (1, 3), (1, 4), (2, 3), (2, 4), (3, 4)}

    def test_constraint_filter(self, chain):
        program = Program(
            [rule("down", ["x", "y"], pred("E", "x", "y"), cons(lt(2, "x")))],
            edb={"E": 2},
        )
        result = evaluate_finite(program, chain)
        assert {(int(a), int(b)) for a, b in result["down"]} == {(3, 4)}

    def test_constant_argument(self, chain):
        program = Program(
            [rule("from2", ["y"], pred("E", 2, "y"))], edb={"E": 2}
        )
        result = evaluate_finite(program, chain)
        assert {int(a) for (a,) in result["from2"]} == {3}

    def test_negation(self, chain):
        program = Program(
            [
                rule("v", ["x"], pred("E", "x", "y")),
                rule("v", ["y"], pred("E", "x", "y")),
                rule("stage1", []),
                rule("stage2", [], pred("stage1")),
                rule("sink", ["x"], pred("v", "x"), negated("hasout", "x"), pred("stage2")),
                rule("hasout", ["x"], pred("E", "x", "y")),
            ],
            edb={"E": 2},
        )
        result = evaluate_finite(program, chain)
        assert {int(a) for (a,) in result["sink"]} == {4}

    def test_zero_ary_predicates(self, chain):
        program = Program(
            [rule("nonempty", [], pred("E", "x", "y"))], edb={"E": 2}
        )
        result = evaluate_finite(program, chain)
        assert result["nonempty"] == {()}

    def test_max_rounds(self, chain):
        program = Program(
            [
                rule("tc", ["x", "y"], pred("E", "x", "y")),
                rule("tc", ["x", "z"], pred("tc", "x", "y"), pred("E", "y", "z")),
            ],
            edb={"E": 2},
        )
        from repro.runtime.budget import RoundLimitExceeded

        with pytest.raises(RoundLimitExceeded):
            evaluate_finite(program, chain, max_rounds=1)
        result = evaluate_finite(program, chain, max_rounds=1, on_budget="partial")
        assert not result.reached_fixpoint


class TestSafety:
    def test_unbound_head_variable_rejected(self):
        program = Program([rule("H", ["x"], negated("R", "x"))], edb={"R": 1})
        with pytest.raises(DatalogError):
            evaluate_finite(program, FiniteInstance({"R": [(1,)]}))

    def test_constraint_only_variable_rejected(self):
        program = Program(
            [rule("H", ["x"], pred("R", "y"), cons(lt("x", "y")))], edb={"R": 1}
        )
        with pytest.raises(DatalogError):
            evaluate_finite(program, FiniteInstance({"R": [(1,)]}))

    def test_missing_edb_detected(self):
        program = Program([rule("H", ["x"], pred("R", "x"))], edb={"R": 1})
        with pytest.raises(DatalogError):
            evaluate_finite(program, FiniteInstance())
