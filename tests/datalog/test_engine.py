"""Tests for inflationary Datalog(not) over constraint relations."""

from fractions import Fraction

import pytest

from repro.core.atoms import le, lt
from repro.core.database import Database
from repro.core.relation import Relation
from repro.core.theory import DENSE_ORDER
from repro.datalog.ast import Program, cons, negated, pred, rule
from repro.datalog.engine import evaluate_program
from repro.errors import DatalogError
from repro.queries.library import interval_overlap_tc_program, transitive_closure_program
from repro.workloads.generators import interval_pairs_relation, path_graph


class TestTransitiveClosure:
    def test_path(self):
        db = path_graph(5)
        result = evaluate_program(transitive_closure_program(), db)
        tc = result["tc"]
        assert tc.contains_point([0, 4])
        assert not tc.contains_point([4, 0])
        assert not tc.contains_point([0, 0])

    def test_rounds_grow_with_diameter(self):
        slim = evaluate_program(transitive_closure_program(), path_graph(3))
        wide = evaluate_program(transitive_closure_program(), path_graph(7))
        assert wide.rounds > slim.rounds

    def test_max_rounds_raises_by_default(self):
        from repro.runtime.budget import RoundLimitExceeded

        with pytest.raises(RoundLimitExceeded):
            evaluate_program(
                transitive_closure_program(), path_graph(6), max_rounds=1
            )

    def test_max_rounds_partial(self):
        result = evaluate_program(
            transitive_closure_program(),
            path_graph(6),
            max_rounds=1,
            on_budget="partial",
        )
        assert not result.reached_fixpoint
        assert result.cut is not None
        assert result["tc"].contains_point([0, 1])
        assert not result["tc"].contains_point([0, 3])


class TestConstraintRules:
    def test_dense_fill_between(self):
        """fill(x) :- S(a), S(b), a < x < b -- an infinite derived set."""
        db = Database()
        db["S"] = Relation.from_points(("x",), [(0,), (10,)])
        program = Program(
            [
                rule(
                    "fill",
                    ["x"],
                    pred("S", "a"),
                    pred("S", "b"),
                    cons(lt("a", "x")),
                    cons(lt("x", "b")),
                )
            ],
            edb={"S": 1},
        )
        result = evaluate_program(program, db)
        assert result["fill"].contains_point([5])
        assert result["fill"].contains_point([Fraction(1, 3)])
        assert not result["fill"].contains_point([0])
        assert not result["fill"].contains_point([11])

    def test_interval_overlap_reachability(self):
        db = Database()
        db["I"] = Relation.from_points(
            ("lo", "hi"), [(0, 2), (1, 3), (5, 6)]
        )
        result = evaluate_program(interval_overlap_tc_program(), db)
        linked = result["linked"]
        assert linked.contains_point([0, 2, 1, 3])
        assert not linked.contains_point([0, 2, 5, 6])

    def test_unbounded_head_variable(self):
        """A head variable absent from the body ranges over all of Q."""
        db = Database()
        db["S"] = Relation.from_points(("x",), [(1,)])
        program = Program(
            [rule("pairs", ["x", "anything"], pred("S", "x"))], edb={"S": 1}
        )
        result = evaluate_program(program, db)
        assert result["pairs"].contains_point([1, 999])
        assert not result["pairs"].contains_point([2, 0])


class TestNegation:
    def test_inflationary_staging(self):
        """Negation of an EDB-complete IDB is sound from round 2 on."""
        db = Database()
        db["S"] = Relation.from_points(("x",), [(0,), (1,), (2,)])
        program = Program(
            [
                rule("stage1", []),
                rule("stage2", [], pred("stage1")),
                rule(
                    "smaller",
                    ["x"],
                    pred("S", "x"),
                    pred("S", "y"),
                    cons(lt("y", "x")),
                ),
                rule(
                    "minimum",
                    ["x"],
                    pred("S", "x"),
                    negated("smaller", "x"),
                    pred("stage2"),
                ),
            ],
            edb={"S": 1},
        )
        result = evaluate_program(program, db)
        minimum = result["minimum"]
        assert minimum.contains_point([0])
        assert not minimum.contains_point([1])
        assert not minimum.contains_point([2])

    def test_negation_of_edb(self):
        db = Database()
        db["S"] = Relation.from_atoms(
            ("x",), [[le(0, "x"), le("x", 1)]], DENSE_ORDER
        )
        program = Program(
            [rule("outside", ["x"], negated("S", "x"))], edb={"S": 1}
        )
        result = evaluate_program(program, db)
        assert result["outside"].contains_point([2])
        assert not result["outside"].contains_point([Fraction(1, 2)])


class TestValidation:
    def test_missing_edb(self):
        program = Program([rule("H", ["x"], pred("R", "x"))], edb={"R": 1})
        with pytest.raises(DatalogError):
            evaluate_program(program, Database())

    def test_edb_arity_mismatch(self):
        db = Database()
        db["R"] = Relation.universe(("x", "y"))
        program = Program([rule("H", ["x"], pred("R", "x"))], edb={"R": 1})
        with pytest.raises(DatalogError):
            evaluate_program(program, db)

    def test_idb_name_clash(self):
        db = Database()
        db["H"] = Relation.universe(("x",))
        db["R"] = Relation.universe(("x",))
        program = Program([rule("H", ["x"], pred("R", "x"))], edb={"R": 1})
        with pytest.raises(DatalogError):
            evaluate_program(program, db)


class TestClosedForm:
    def test_no_new_constants(self):
        """Fixpoint outputs stay within the input's constants."""
        db = interval_pairs_relation(7, count=5)
        result = evaluate_program(interval_overlap_tc_program(), db)
        assert result["linked"].constants() <= db.constants()
