"""Property tests: the constraint Datalog engine vs networkx.

Transitive closure and reachability on random graphs, computed by the
closed-form inflationary engine, must agree with a classical graph
library tuple-for-tuple.
"""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.relation import Relation
from repro.datalog.engine import evaluate_program
from repro.datalog.finite import FiniteInstance, evaluate_finite
from repro.queries.library import reachability_program, transitive_closure_program
from repro.workloads.generators import random_finite_graph, rng_of


@st.composite
def small_digraphs(draw, max_nodes=5):
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    edges = set()
    for a in range(n):
        for b in range(n):
            if a != b and draw(st.booleans()):
                edges.add((a, b))
    return n, frozenset(edges)


def nx_closure(n, edges):
    """Pairs (a, b) joined by a path of length >= 1 (cycles reach themselves)."""
    graph = nx.DiGraph()
    graph.add_nodes_from(range(n))
    graph.add_edges_from(edges)
    closure = set()
    for a in range(n):
        reachable = set()
        for w in graph.successors(a):
            reachable.add(w)
            reachable |= set(nx.descendants(graph, w))
        for b in reachable:
            closure.add((a, b))
    return closure


class TestAgainstNetworkx:
    @settings(max_examples=25, deadline=None)
    @given(small_digraphs())
    def test_transitive_closure(self, graph):
        n, edges = graph
        db = {"E": Relation.from_points(("x", "y"), sorted(edges))
              if edges else Relation.empty(("x", "y"))}
        from repro.core.database import Database

        result = evaluate_program(transitive_closure_program(), Database(db))
        expected = nx_closure(n, edges)
        for a in range(n):
            for b in range(n):
                assert result["tc"].contains_point([a, b]) == ((a, b) in expected)

    @settings(max_examples=25, deadline=None)
    @given(small_digraphs(), st.integers(min_value=0, max_value=4))
    def test_reachability(self, graph, source):
        n, edges = graph
        source = source % n
        from repro.core.database import Database

        db = Database()
        db["E"] = (
            Relation.from_points(("x", "y"), sorted(edges))
            if edges
            else Relation.empty(("x", "y"))
        )
        db["Src"] = Relation.from_points(("x",), [(source,)])
        result = evaluate_program(reachability_program(), db)
        g = nx.DiGraph()
        g.add_nodes_from(range(n))
        g.add_edges_from(edges)
        reachable = {source} | set(nx.descendants(g, source))
        for v in range(n):
            assert result["reach"].contains_point([v]) == (v in reachable)

    @settings(max_examples=20, deadline=None)
    @given(small_digraphs())
    def test_finite_engine_agrees_with_constraint_engine(self, graph):
        n, edges = graph
        if not edges:
            return
        from repro.core.database import Database

        program = transitive_closure_program()
        constraint_db = Database()
        constraint_db["E"] = Relation.from_points(("x", "y"), sorted(edges))
        via_constraints = evaluate_program(program, constraint_db)
        via_finite = evaluate_finite(program, FiniteInstance({"E": sorted(edges)}))
        finite_pairs = {(int(a), int(b)) for a, b in via_finite["tc"]}
        for a in range(n):
            for b in range(n):
                assert via_constraints["tc"].contains_point([a, b]) == (
                    (a, b) in finite_pairs
                )
