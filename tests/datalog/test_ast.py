"""Unit tests for Datalog program syntax and static checks."""

import pytest

from repro.core.atoms import lt
from repro.core.terms import Const, Var
from repro.datalog.ast import (
    ConstraintLiteral,
    PredicateLiteral,
    Program,
    Rule,
    cons,
    negated,
    pred,
    rule,
)
from repro.errors import DatalogError


class TestLiterals:
    def test_pred_coercion(self):
        literal = pred("R", "x", 3)
        assert literal.args == (Var("x"), Const(3))
        assert not literal.negated

    def test_negated(self):
        literal = negated("R", "x")
        assert literal.negated
        assert str(literal) == "not R(x)"

    def test_cons_rejects_booleans(self):
        with pytest.raises(DatalogError):
            cons(lt(1, 2))

    def test_variables(self):
        assert pred("R", "x", 3, "y").variables() == {Var("x"), Var("y")}
        assert cons(lt("x", 5)).variables() == {Var("x")}


class TestRule:
    def test_head_must_be_variables(self):
        with pytest.raises(DatalogError):
            Rule("H", (Const(1),), ())

    def test_head_repetition_rejected(self):
        with pytest.raises(DatalogError):
            rule("H", ["x", "x"], pred("R", "x"))

    def test_str(self):
        r = rule("H", ["x"], pred("R", "x", "y"), cons(lt("y", 0)))
        assert str(r) == "H(x) :- R(x, y), y < 0."

    def test_fact_str(self):
        assert str(rule("H", ["x"])) == "H(x)."

    def test_body_variables(self):
        r = rule("H", ["x"], pred("R", "x", "y"), negated("S", "z"))
        assert r.body_variables() == {Var("x"), Var("y"), Var("z")}


class TestProgram:
    def test_idb_inferred(self):
        p = Program([rule("H", ["x"], pred("R", "x"))], edb={"R": 1})
        assert p.idb == {"H": 1}
        assert p.edb == {"R": 1}

    def test_arity_conflict_in_heads(self):
        with pytest.raises(DatalogError):
            Program(
                [
                    rule("H", ["x"], pred("R", "x")),
                    rule("H", ["x", "y"], pred("R", "x")),
                ],
                edb={"R": 1},
            )

    def test_edb_idb_overlap_rejected(self):
        with pytest.raises(DatalogError):
            Program([rule("R", ["x"], pred("R", "x"))], edb={"R": 1})

    def test_undeclared_predicate_rejected(self):
        with pytest.raises(DatalogError):
            Program([rule("H", ["x"], pred("Mystery", "x"))])

    def test_body_arity_checked(self):
        with pytest.raises(DatalogError):
            Program([rule("H", ["x"], pred("R", "x", "y"))], edb={"R": 1})

    def test_predicates(self):
        p = Program([rule("H", ["x"], pred("R", "x"))], edb={"R": 1})
        assert p.predicates() == {"H", "R"}
