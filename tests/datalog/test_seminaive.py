"""Tests for semi-naive evaluation (equivalence with the naive engine)."""

import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.atoms import lt
from repro.core.database import Database
from repro.core.relation import Relation
from repro.datalog.ast import Program, cons, negated, pred, rule
from repro.datalog.engine import evaluate_program
from repro.datalog.seminaive import evaluate_seminaive
from repro.queries.library import (
    interval_overlap_tc_program,
    reachability_program,
    transitive_closure_program,
)
from repro.workloads.generators import (
    interval_pairs_relation,
    path_graph,
    point_set,
    random_finite_graph,
)


def same_idb(program, naive, seminaive):
    for name in program.idb:
        if not naive[name].equivalent(seminaive[name]):
            return False
    return True


class TestEquivalence:
    @pytest.mark.parametrize("n", [2, 4, 6])
    def test_transitive_closure(self, n):
        db = path_graph(n)
        program = transitive_closure_program()
        naive = evaluate_program(program, db)
        fast = evaluate_seminaive(program, db)
        assert fast.reached_fixpoint
        assert same_idb(program, naive, fast)

    @pytest.mark.parametrize("seed", range(4))
    def test_random_graphs(self, seed):
        db = random_finite_graph(seed, vertex_count=5, edge_probability=0.4)
        program = transitive_closure_program()
        naive = evaluate_program(program, db)
        fast = evaluate_seminaive(program, db)
        assert same_idb(program, naive, fast)

    def test_reachability(self):
        db = path_graph(5)
        db["Src"] = Relation.from_points(("x",), [(0,)])
        program = reachability_program()
        naive = evaluate_program(program, db)
        fast = evaluate_seminaive(program, db)
        assert same_idb(program, naive, fast)

    def test_constraint_recursion(self):
        db = interval_pairs_relation(13, count=4)
        program = interval_overlap_tc_program()
        naive = evaluate_program(program, db)
        fast = evaluate_seminaive(program, db)
        assert same_idb(program, naive, fast)

    def test_negation_falls_back_correctly(self):
        """Rules negating IDB predicates evaluate fully each round --
        semantics must match the naive engine exactly, staging included."""
        db = point_set(3)
        program = Program(
            [
                rule("stage1", []),
                rule("stage2", [], pred("stage1")),
                rule(
                    "smaller",
                    ["x"],
                    pred("S", "x"),
                    pred("S", "y"),
                    cons(lt("y", "x")),
                ),
                rule(
                    "minimum",
                    ["x"],
                    pred("S", "x"),
                    negated("smaller", "x"),
                    pred("stage2"),
                ),
            ],
            edb={"S": 1},
        )
        naive = evaluate_program(program, db)
        fast = evaluate_seminaive(program, db)
        assert same_idb(program, naive, fast)
        assert fast["minimum"].contains_point([0])
        assert not fast["minimum"].contains_point([1])


class TestPerformance:
    def test_seminaive_does_less_work_on_long_paths(self):
        """On a long path, semi-naive must not be slower (and is
        usually faster: deltas shrink the join fan-in)."""
        db = path_graph(10)
        program = transitive_closure_program()
        t0 = time.perf_counter()
        evaluate_program(program, db)
        naive_time = time.perf_counter() - t0
        t0 = time.perf_counter()
        evaluate_seminaive(program, db)
        fast_time = time.perf_counter() - t0
        assert fast_time < naive_time * 1.5  # generous: no regression


class TestGuards:
    def test_missing_edb(self):
        program = transitive_closure_program()
        from repro.errors import DatalogError

        with pytest.raises(DatalogError):
            evaluate_seminaive(program, Database())

    def test_max_rounds(self):
        from repro.runtime.budget import RoundLimitExceeded

        db = path_graph(6)
        with pytest.raises(RoundLimitExceeded):
            evaluate_seminaive(transitive_closure_program(), db, max_rounds=1)
        result = evaluate_seminaive(
            transitive_closure_program(), db, max_rounds=1, on_budget="partial"
        )
        assert not result.reached_fixpoint
        assert result.cut is not None
