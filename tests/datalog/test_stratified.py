"""Tests for stratified Datalog(not)."""

import pytest

from repro.core.atoms import lt
from repro.core.database import Database
from repro.core.relation import Relation
from repro.datalog.ast import Program, cons, negated, pred, rule
from repro.datalog.engine import evaluate_program
from repro.datalog.stratified import evaluate_stratified, is_stratifiable, stratify
from repro.errors import DatalogError
from repro.workloads.generators import path_graph, point_set


def tc_program():
    return Program(
        [
            rule("tc", ["x", "y"], pred("E", "x", "y")),
            rule("tc", ["x", "z"], pred("tc", "x", "y"), pred("E", "y", "z")),
        ],
        edb={"E": 2},
    )


def min_program():
    """minimum needs negation of an IDB: the stratified showcase."""
    return Program(
        [
            rule("smaller", ["x"], pred("S", "x"), pred("S", "y"), cons(lt("y", "x"))),
            rule("minimum", ["x"], pred("S", "x"), negated("smaller", "x")),
        ],
        edb={"S": 1},
    )


class TestStratify:
    def test_positive_program_single_stratum(self):
        assert stratify(tc_program()) == [["tc"]]

    def test_negation_splits_strata(self):
        assert stratify(min_program()) == [["smaller"], ["minimum"]]

    def test_unstratifiable_detected(self):
        program = Program(
            [
                rule("win", ["x"], pred("move", "x", "y"), negated("win", "y")),
            ],
            edb={"move": 2},
        )
        assert not is_stratifiable(program)
        with pytest.raises(DatalogError):
            stratify(program)

    def test_negation_of_edb_is_free(self):
        program = Program(
            [rule("out", ["x"], pred("V", "x"), negated("S", "x"))],
            edb={"V": 1, "S": 1},
        )
        assert stratify(program) == [["out"]]


class TestEvaluation:
    def test_agrees_with_inflationary_on_positive_programs(self):
        db = path_graph(5)
        stratified = evaluate_stratified(tc_program(), db)
        inflationary = evaluate_program(tc_program(), db)
        assert stratified["tc"].equivalent(inflationary["tc"])

    def test_negation_needs_no_staging(self):
        """The guard-free minimum program is *correct* under stratified
        semantics (under inflationary semantics it would misfire in
        round 1 while ``smaller`` is still empty)."""
        db = point_set(3)
        result = evaluate_stratified(min_program(), db)
        assert result.reached_fixpoint
        assert result["minimum"].contains_point([0])
        assert not result["minimum"].contains_point([1])
        # contrast: the same program evaluated inflationarily over-derives
        sloppy = evaluate_program(min_program(), db)
        assert sloppy["minimum"].contains_point([1])  # the round-1 artifact

    def test_three_strata(self):
        program = Program(
            [
                rule("a", ["x"], pred("S", "x")),
                rule("b", ["x"], pred("S", "x"), negated("a", "x")),
                rule("c", ["x"], pred("S", "x"), negated("b", "x")),
            ],
            edb={"S": 1},
        )
        db = point_set(2)
        result = evaluate_stratified(program, db)
        assert result["a"].contains_point([0])
        assert result["b"].is_empty()
        assert result["c"].contains_point([0])

    def test_max_rounds(self):
        from repro.runtime.budget import RoundLimitExceeded

        db = path_graph(6)
        with pytest.raises(RoundLimitExceeded):
            evaluate_stratified(tc_program(), db, max_rounds=1)
        result = evaluate_stratified(
            tc_program(), db, max_rounds=1, on_budget="partial"
        )
        assert not result.reached_fixpoint
        assert result.cut is not None

    def test_validation_errors(self):
        db = Database()
        with pytest.raises(DatalogError):
            evaluate_stratified(tc_program(), db)  # missing EDB
        db2 = path_graph(2)
        db2["tc"] = Relation.universe(("x", "y"))
        with pytest.raises(DatalogError):
            evaluate_stratified(tc_program(), db2)  # IDB clash
