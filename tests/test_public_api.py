"""The public API surface stays importable and coherent."""

import importlib
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.core",
    "repro.linear",
    "repro.datalog",
    "repro.encoding",
    "repro.genericity",
    "repro.cobjects",
    "repro.queries",
    "repro.workloads",
    "repro.lang",
    "repro.runtime",
    "repro.perf",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_all_exports_resolve(name):
    module = importlib.import_module(name)
    for symbol in getattr(module, "__all__", []):
        assert hasattr(module, symbol), f"{name}.__all__ lists missing {symbol!r}"


@pytest.mark.parametrize("name", PACKAGES)
def test_all_is_sorted_sets(name):
    module = importlib.import_module(name)
    exported = getattr(module, "__all__", [])
    assert len(set(exported)) == len(exported), f"duplicates in {name}.__all__"


def test_every_module_has_a_docstring():
    import repro as root

    for info in pkgutil.walk_packages(root.__path__, prefix="repro."):
        module = importlib.import_module(info.name)
        assert module.__doc__, f"{info.name} lacks a module docstring"


def test_version():
    assert repro.__version__


def test_error_hierarchy():
    from repro import errors

    for name in (
        "SchemaError",
        "TheoryError",
        "EvaluationError",
        "ParseError",
        "DatalogError",
        "TypeCheckError",
        "EncodingError",
    ):
        kind = getattr(errors, name)
        assert issubclass(kind, errors.ReproError)


def test_cli_module_runs_help():
    from repro.cli import main

    with pytest.raises(SystemExit):
        main(["--help"])
