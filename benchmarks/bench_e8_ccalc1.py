"""E8 -- Theorem 5.2: PTIME <= C-CALC_1 <= PSPACE.

Paper artifact: one level of set nesting already captures at least
PTIME (fixpoint simulation with one level of sets [AB87]) and stays in
PSPACE.

What this regenerates: the cost profile of C-CALC_1 under the
active-domain semantics -- the parity query (PTIME, non-FO) evaluated by
enumerating set values over the input's cells -- against the Datalog(not)
pipeline computing the same query in polynomial time.  Expected shape:
C-CALC_1 cost grows like 2^(cells) (the PSPACE-ish enumeration),
Datalog stays polynomial: Datalog wins beyond tiny inputs, confirming
the inclusion PTIME <= C-CALC_1 is about *expressiveness*, not speed.
"""

import pytest

from repro.cobjects.calculus import evaluate_ccalc_boolean
from repro.encoding.ptime import capture_boolean, cardinality_parity_program
from repro.queries.library import parity_ccalc
from repro.workloads.generators import point_set

SIZES = [1, 2, 3]


@pytest.mark.parametrize("n", SIZES)
def test_parity_via_ccalc1(benchmark, n):
    """Active-domain evaluation: 2^(2n+1) candidate sets."""
    db = point_set(n)
    formula = parity_ccalc("S")
    verdict = benchmark(lambda: evaluate_ccalc_boolean(formula, db))
    assert verdict == (n % 2 == 1)


@pytest.mark.parametrize("n", SIZES)
def test_parity_via_datalog_capture(benchmark, n):
    """The same query through the PTIME pipeline."""
    db = point_set(n)
    program = cardinality_parity_program("S")
    verdict = benchmark(lambda: capture_boolean(program, db, "result_odd"))
    assert verdict == (n % 2 == 1)


def test_report_crossover(capsys):
    """The language-vs-cost story: both compute parity; the C-CALC_1
    active-domain blowup is visible immediately."""
    import time

    rows = []
    for n in SIZES:
        db = point_set(n)
        t0 = time.perf_counter()
        evaluate_ccalc_boolean(parity_ccalc("S"), db)
        ccalc = time.perf_counter() - t0
        t0 = time.perf_counter()
        capture_boolean(cardinality_parity_program("S"), db, "result_odd")
        datalog = time.perf_counter() - t0
        rows.append((n, ccalc, datalog))
    with capsys.disabled():
        print("\n[E8] parity: C-CALC_1 vs Datalog(not) capture:")
        print("  |S|   C-CALC_1 (s)   Datalog (s)   ratio")
        for n, c, d in rows:
            print(f"  {n:>3}   {c:>12.4f}   {d:>11.4f}   {c / d:>5.1f}x")
    # the exponential-vs-polynomial gap must widen
    ratios = [c / d for _, c, d in rows]
    assert ratios[-1] > ratios[0]
