#!/usr/bin/env python3
"""Regenerate every EXPERIMENTS.md table in one run.

Benchmarks (pytest-benchmark) measure *times*; this script collects the
*verdicts and counts* that the paper's theorems predict -- the
paper-vs-measured content of EXPERIMENTS.md.  Run:

    python benchmarks/collect_results.py

Every run also appends one provenance-stamped record of quick workload
timings to ``benchmarks/BENCH_HISTORY.jsonl`` (``repro.bench-history/1``),
the append-only history that ``repro bench-watch`` compares against.
``--history-only`` skips the tables and records just the history entry;
``--history PATH`` redirects the file.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import time
from fractions import Fraction

from repro.cobjects.active_domain import ActiveDomain
from repro.cobjects.calculus import evaluate_ccalc_boolean
from repro.cobjects.fixpoint import FixpointQuery, evaluate_fixpoint
from repro.cobjects.calculus import CAnd, CExists, COr, CRelation
from repro.cobjects.types import Q, SetType
from repro.core.atoms import lt
from repro.core.database import Database
from repro.core.evaluator import evaluate, evaluate_boolean
from repro.core.formula import constraint, exists, rel
from repro.core.relation import Relation
from repro.core.terms import as_term
from repro.datalog.engine import evaluate_program
from repro.encoding.ptime import (
    capture_boolean,
    cardinality_parity_program,
    graph_connectivity_program,
)
from repro.encoding.standard import encoding_size
from repro.genericity.automorphisms import moving
from repro.genericity.checks import check_boolean_generic, check_generic
from repro.genericity.ef_games import linear_order, min_distinguishing_rank
from repro.genericity.formula_search import search_sentence
from repro.linear.region import count_components, is_connected
from repro.queries.library import (
    graph_connectivity_procedural,
    parity_ccalc,
    parity_procedural,
    transitive_closure_program,
)
from repro.workloads.generators import (
    interval_chain,
    path_graph,
    point_set,
    random_finite_graph,
    random_interval_database,
)


def timed(fn):
    t0 = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - t0


def header(text: str) -> None:
    print()
    print(f"## {text}")
    print()


def e2_fo_scaling() -> None:
    header("E2 -- closed-form FO evaluation: data-complexity scaling")
    f = exists("y", rel("S", "x") & rel("S", "y") & constraint(lt("x", "y")))
    print("| intervals | encoding bytes | eval time (s) |")
    print("|---|---|---|")
    for n in (2, 4, 8, 16, 32):
        db = random_interval_database(23, count=n)
        _, seconds = timed(lambda: evaluate(f, db))
        print(f"| {n} | {encoding_size(db)} | {seconds:.4f} |")


def e4_ef_table() -> None:
    header("E4 -- parity lower bound: EF distinguishing ranks")
    print("| n vs n+1 | min distinguishing rank | 2^(r-1) - 1 <= n |")
    print("|---|---|---|")
    for n in (1, 2, 3, 5, 7, 10):
        rank = min_distinguishing_rank(linear_order(n), linear_order(n + 1), 5)
        ok = "yes" if rank is not None and 2 ** (rank - 1) - 1 <= n else "-"
        print(f"| {n} vs {n+1} | {rank if rank is not None else '> 5'} | {ok} |")


def e4_search_table() -> None:
    header("E4 -- exhaustive sentence search (complete certificates)")
    family = [linear_order(k) for k in range(1, 5)]
    target = [k % 2 == 1 for k in range(1, 5)]
    print("| rank | variables | queries enumerated | parity sentence found |")
    print("|---|---|---|---|")
    for rank in (0, 1):
        result = search_sentence(family, target, variables=2, rank=rank)
        print(f"| {rank} | 2 | {result.queries_explored} | {result.found} |")
    pair = [linear_order(1), linear_order(2)]
    found = search_sentence(pair, [True, False], variables=2, rank=2)
    print(f"| 2 | 2 | {found.queries_explored} | size 1 vs 2 separated: {found.found} |")


def e4_hanf_table() -> None:
    header("E4 -- Hanf locality certificates (connectivity)")
    import sys

    sys.path.insert(0, "benchmarks")
    from bench_e4_inexpressibility import graph_structure

    from repro.genericity.locality import hanf_indistinguishable
    from repro.workloads.generators import cycle_graph, disjoint_cycles

    print("| instance pair | rank | Hanf certificate |")
    print("|---|---|---|")
    for n in (4, 5, 6):
        one = graph_structure(cycle_graph(2 * n))
        two = graph_structure(disjoint_cycles(n))
        certified = hanf_indistinguishable(one, two, 1)
        print(f"| {2*n}-cycle vs two {n}-cycles | 1 | {certified} |")


def e12_ablations() -> None:
    header("E12 -- engine ablations")
    from repro.core.planner import compile_formula, execute, optimize
    from repro.datalog.seminaive import evaluate_seminaive

    db = path_graph(8)
    program = transitive_closure_program()
    _, naive_time = timed(lambda: evaluate_program(program, db))
    _, semi_time = timed(lambda: evaluate_seminaive(program, db))
    qdb = random_interval_database(71, count=10)
    f = exists(
        "y",
        rel("S", "x") & rel("S", "y") & constraint(lt("x", "y"))
        & constraint(lt("y", -20)),
    )
    _, direct_time = timed(lambda: evaluate(f, qdb))
    plan = optimize(compile_formula(f), qdb)
    _, plan_time = timed(lambda: execute(plan, qdb))
    print("| ablation | baseline (s) | variant (s) | speedup |")
    print("|---|---|---|---|")
    print(
        f"| Datalog naive vs semi-naive | {naive_time:.3f} | {semi_time:.3f} "
        f"| {naive_time / semi_time:.1f}x |"
    )
    print(
        f"| direct eval vs optimized plan | {direct_time:.4f} | {plan_time:.4f} "
        f"| {direct_time / plan_time:.1f}x |"
    )


def e5_region_table() -> None:
    header("E5 -- region connectivity (procedural; not FO+)")
    print("| region | components (measured) | expected |")
    print("|---|---|---|")
    rows = [
        ("4 overlapping intervals", interval_chain(4, overlap=True)["S"], 1),
        ("4 separated intervals", interval_chain(4, overlap=False)["S"], 4),
    ]
    from repro.workloads.generators import checkerboard_region, staircase_region

    rows.append(("3x3 checkerboard (corner-glued)", checkerboard_region(3)["R"], 1))
    rows.append(("5-step staircase with gap", staircase_region(5, gap=True)["R"], 2))
    for name, region, expected in rows:
        got = count_components(region)
        print(f"| {name} | {got} | {expected} |")


def e6_e7_datalog_tables() -> None:
    header("E6 -- Datalog(not) evaluation is PTIME (scaling + rounds)")
    print("| path length | fixpoint rounds | tc tuples | time (s) |")
    print("|---|---|---|---|")
    for n in (2, 4, 8, 12):
        db = path_graph(n)
        result, seconds = timed(
            lambda: evaluate_program(transitive_closure_program(), db)
        )
        print(f"| {n} | {result.rounds} | {len(result['tc'])} | {seconds:.4f} |")

    header("E7 -- PTIME capture pipeline (Theorem 4.4, hard half)")
    print("| query | instance | reference | captured | agree |")
    print("|---|---|---|---|---|")
    for n in (2, 3, 4, 5):
        db = point_set(n)
        ref = parity_procedural(db)
        cap = capture_boolean(cardinality_parity_program("S"), db, "result_odd")
        print(f"| parity | {n} points | {ref} | {cap} | {ref == cap} |")
    for seed in range(3):
        db = random_finite_graph(seed, vertex_count=4, edge_probability=0.4)
        ref = graph_connectivity_procedural(db)
        cap = capture_boolean(graph_connectivity_program(), db, "connected")
        print(f"| connectivity | seed {seed} | {ref} | {cap} | {ref == cap} |")


def e8_crossover() -> None:
    header("E8 -- parity: C-CALC_1 vs the PTIME pipeline")
    print("| points | C-CALC_1 (s) | Datalog capture (s) | verdicts agree |")
    print("|---|---|---|---|")
    for n in (1, 2, 3):
        db = point_set(n)
        c_verdict, c_time = timed(lambda: evaluate_ccalc_boolean(parity_ccalc("S"), db))
        d_verdict, d_time = timed(
            lambda: capture_boolean(cardinality_parity_program("S"), db, "result_odd")
        )
        print(f"| {n} | {c_time:.4f} | {d_time:.4f} | {c_verdict == d_verdict} |")


def e9_tower() -> None:
    header("E9 -- hyper-exponential active domains (Theorems 5.3-5.5)")
    print("| constants | cells | |adom| h=0 | h=1 | h=2 |")
    print("|---|---|---|---|---|")
    for m in (0, 1, 2, 3):
        ad = ActiveDomain(point_set(m))
        h0 = ad.domain_size(Q)
        h1 = ad.domain_size(SetType(Q))
        h2 = ad.domain_size(SetType(SetType(Q)))
        h2_text = str(h2) if h2 < 10**9 else f"2^{h1}"
        print(f"| {m} | {ad.decomposition.cell_count} | {h0} | {h1} | {h2_text} |")


def e10_fixpoint() -> None:
    header("E10 -- C-CALC_0 + fixpoint == Datalog(not) on transitive closure")

    def R(name, *args):
        return CRelation(name, tuple(as_term(a) for a in args))

    step = COr(
        (
            R("E", "x", "y"),
            CExists(("z",), CAnd((R("TC", "x", "z"), R("E", "z", "y")))),
        )
    )
    print("| path length | identical pointsets | fixpoint time (s) | datalog time (s) |")
    print("|---|---|---|---|")
    for n in (3, 5, 7):
        db = path_graph(n)
        via_fix, t_fix = timed(
            lambda: evaluate_fixpoint(FixpointQuery("TC", ("x", "y"), step), db)
        )
        via_dl, t_dl = timed(
            lambda: evaluate_program(transitive_closure_program(), db)["tc"]
        )
        same = via_fix.equivalent(via_dl.rename({"a0": "x", "a1": "y"}))
        print(f"| {n} | {same} | {t_fix:.4f} | {t_dl:.4f} |")


def e11_genericity() -> None:
    header("E11 -- genericity (Definition 3.1)")

    def fo_query(database):
        f = exists("y", rel("S", "x") & rel("S", "y") & constraint(lt("x", "y")))
        return evaluate(f, database)

    def midpoints(database):
        values = sorted(t.sample_point()["x"] for t in database["S"].tuples)
        pts = {(a + b) / 2 for a in values for b in values}
        return Relation.from_points(("z",), [(p,) for p in pts])

    db = Database()
    db["S"] = Relation.from_points(("x",), [(0,), (4,)])
    phi = moving({0: Fraction(0), 2: Fraction(10), 4: Fraction(12)})
    rows = [
        ("FO self-join", check_generic(fo_query, point_set(3), count=8).generic, "query"),
        (
            "parity (boolean)",
            check_boolean_generic(lambda d: parity_procedural(d, "S"), point_set(3), count=8).generic,
            "query",
        ),
        ("FO+ midpoints", check_generic(midpoints, db, automorphisms=[phi]).generic, "NOT a query"),
    ]
    print("| mapping | passes automorphism checks | paper |")
    print("|---|---|---|")
    for name, got, paper in rows:
        print(f"| {name} | {got} | {paper} |")


def e14_profiles() -> None:
    """Run representative workloads under a tracer and fold the
    per-phase breakdowns into ``BENCH_PROFILES.json`` next to this
    script, so benchmark entries carry phase costs, not just
    wall-clock."""
    header("E14 -- per-phase evaluation profiles (repro.obs)")
    from repro.datalog.seminaive import evaluate_seminaive
    from repro.obs import Tracer, phase_breakdown

    f = exists("y", rel("S", "x") & rel("S", "y") & constraint(lt("x", "y")))
    workloads = {
        "fo-self-join": lambda: evaluate(f, random_interval_database(23, count=16)),
        "datalog-naive-tc": lambda: evaluate_program(
            transitive_closure_program(), path_graph(8)
        ),
        "datalog-seminaive-tc": lambda: evaluate_seminaive(
            transitive_closure_program(), path_graph(8)
        ),
    }
    entries = {}
    print("| workload | total (s) | joins | projects | complements | qe vars | rounds |")
    print("|---|---|---|---|---|---|---|")
    for name, thunk in workloads.items():
        tracer = Tracer()
        with tracer:
            thunk()
        breakdown = phase_breakdown(tracer)
        entries[name] = breakdown
        ops = {row["operator"]: row["calls"] for row in breakdown["operators"]}
        rounds = sum(breakdown["fixpoint"]["rounds"].values())
        print(
            f"| {name} | {breakdown['total_seconds']:.4f} "
            f"| {ops.get('join', 0)} | {ops.get('project', 0)} "
            f"| {ops.get('complement', 0)} "
            f"| {breakdown['qe']['eliminated_vars']} | {rounds} |"
        )
    out_path = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                            "BENCH_PROFILES.json")
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump({"schema": "repro.bench-profiles/1", "profiles": entries},
                  handle, indent=2, sort_keys=True)
        handle.write("\n")
    print()
    print(f"(machine-readable breakdowns written to {out_path})")


def e15_kernel_cache() -> None:
    """Measure the kernel-cache payoff and the ``--no-cache`` overhead,
    and fold the ratios into ``BENCH_KERNEL.json`` next to this script
    so the CI gate and EXPERIMENTS.md read the same numbers."""
    header("E15 -- kernel memo cache and interning payoff (repro.perf)")
    from repro.datalog.seminaive import evaluate_seminaive
    from repro.perf import kernel_cache_disabled, kernel_stats, reset_kernel_cache
    from repro.queries.library import transitive_closure_program as tc_program
    from repro.workloads.generators import slow_tc_workload

    def best(thunk, repeat=5):
        out = float("inf")
        for _ in range(repeat):
            _, seconds = timed(thunk)
            out = min(out, seconds)
        return out

    program, db = slow_tc_workload(6)
    tc = transitive_closure_program()
    chain = path_graph(10)
    workloads = {
        "datalog-naive-tc": lambda: evaluate_program(program, db),
        "datalog-naive-path": lambda: evaluate_program(tc, chain),
        "datalog-seminaive-path": lambda: evaluate_seminaive(tc, chain),
    }
    entries = {}
    print("| workload | cached (s) | no-cache (s) | speedup | hit rate |")
    print("|---|---|---|---|---|")
    for name, thunk in workloads.items():
        reset_kernel_cache()
        thunk()  # steady state: the memo cache is warm in a long run
        warm = best(thunk)
        stats = kernel_stats()
        looked_up = stats["cache.hits"] + stats["cache.misses"]
        hit_rate = stats["cache.hits"] / looked_up if looked_up else 0.0
        with kernel_cache_disabled():
            cold = best(thunk)
        entries[name] = {
            "cached_seconds": warm,
            "disabled_seconds": cold,
            "speedup": cold / warm,
            "hit_rate": hit_rate,
        }
        print(
            f"| {name} | {warm:.4f} | {cold:.4f} "
            f"| {cold / warm:.2f}x | {hit_rate:.1%} |"
        )
    out_path = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                            "BENCH_KERNEL.json")
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump({"schema": "repro.bench-kernel/1", "workloads": entries},
                  handle, indent=2, sort_keys=True)
        handle.write("\n")
    print()
    print(f"(machine-readable ratios written to {out_path})")


def e17_parallel() -> None:
    """Measure the sharded-backend speedup and the off-switch overhead,
    and fold the numbers into ``BENCH_PARALLEL.json`` next to this
    script so the CI gate and EXPERIMENTS.md read the same numbers.

    Speedup depends on the machine: the JSON records the core count
    alongside the ratios, and single-core runs still record the
    overhead envelope (the correctness story lives in the differential
    suite, not here).
    """
    header("E17 -- sharded parallel evaluation (repro.parallel)")
    import sys

    sys.path.insert(0, "benchmarks")
    from bench_e17_parallel import join_heavy_relation, tc_fixpoint, two_hop

    import repro.core.relation as relation_module
    from repro.parallel import ExecutionContext

    def best(thunk, repeat=3):
        out = float("inf")
        for _ in range(repeat):
            _, seconds = timed(thunk)
            out = min(out, seconds)
        return out

    cores = os.cpu_count() or 1
    r = join_heavy_relation()
    entries = {"cores": cores, "workloads": {}}
    print("| workload | serial (s) | 4 workers (s) | speedup |")
    print("|---|---|---|---|")
    workloads = {
        "two_hop_join": (lambda: two_hop(r), "with"),
        "tc_seminaive": (tc_fixpoint, "kwarg"),
    }
    ctx = ExecutionContext(workers=4, pool="process", min_tuples=8)
    try:
        for name, (thunk, style) in workloads.items():
            serial = best(thunk)
            if style == "with":
                with ctx:
                    thunk()  # warm the pool once
                    parallel = best(thunk)
            else:
                thunk(context=ctx)
                parallel = best(lambda: thunk(context=ctx))
            entries["workloads"][name] = {
                "serial_seconds": serial,
                "parallel_seconds": parallel,
                "speedup": serial / parallel,
            }
            print(
                f"| {name} | {serial:.4f} | {parallel:.4f} "
                f"| {serial / parallel:.2f}x |"
            )
    finally:
        ctx.close()

    hook = relation_module.active_execution_context
    hot = lambda: [two_hop(r) for _ in range(3)]
    with_hook = best(hot, repeat=5)
    relation_module.active_execution_context = lambda: None
    try:
        without_hook = best(hot, repeat=5)
    finally:
        relation_module.active_execution_context = hook
    overhead = with_hook / without_hook - 1.0
    entries["off_overhead"] = overhead
    print()
    print(f"off-switch overhead: {overhead:+.2%} (target < 3%)")

    out_path = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                            "BENCH_PARALLEL.json")
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump({"schema": "repro.bench-parallel/1", **entries},
                  handle, indent=2, sort_keys=True)
        handle.write("\n")
    print()
    print(f"(machine-readable ratios written to {out_path})")


def e18_resilience() -> None:
    """Measure the resilient dispatch loop's zero-fault overhead and
    its recovery latency under a seeded 10% transient-fault rate, and
    fold the numbers into ``BENCH_RESILIENCE.json`` next to this
    script so the CI gate and EXPERIMENTS.md read the same numbers.
    """
    header("E18 -- resilient shard dispatch (repro.parallel.resilience)")
    import sys

    sys.path.insert(0, "benchmarks")
    from concurrent.futures import ThreadPoolExecutor

    from bench_e18_resilience import (
        EXPECTED,
        FAULT_RATE,
        PAYLOADS,
        WORKERS,
        _chaos_registry,
        _resilient_ctx,
        shard_work,
    )

    def best(thunk, repeat=5):
        out = float("inf")
        for _ in range(repeat):
            _, seconds = timed(thunk)
            out = min(out, seconds)
        return out

    pool = ThreadPoolExecutor(max_workers=WORKERS)
    try:
        baseline = best(lambda: list(pool.map(shard_work, PAYLOADS)))
    finally:
        pool.shutdown()
    ctx = _resilient_ctx()
    try:
        ctx.run_shards(shard_work, PAYLOADS)  # warm the pool
        resilient = best(lambda: ctx.run_shards(shard_work, PAYLOADS))
    finally:
        ctx.close()
    overhead = resilient / baseline - 1.0

    ctx = _resilient_ctx()
    try:
        with _chaos_registry():
            _, chaos_seconds = timed(
                lambda: ctx.run_shards(shard_work, PAYLOADS)
            )
        recovered = ctx.retries + ctx.quarantined
        with _chaos_registry():
            assert ctx.run_shards(shard_work, PAYLOADS) == EXPECTED
    finally:
        ctx.close()
    per_recovery = (chaos_seconds - resilient) / recovered if recovered else 0.0

    print("| measurement | value |")
    print("|---|---|")
    print(f"| bare executor.map (s) | {baseline:.4f} |")
    print(f"| resilient dispatch (s) | {resilient:.4f} |")
    print(f"| zero-fault overhead | {overhead:+.2%} (target < 3%) |")
    print(f"| {FAULT_RATE:.0%}-fault batch (s) | {chaos_seconds:.4f} |")
    print(f"| recoveries absorbed | {recovered} |")
    print(f"| latency per recovery (s) | {per_recovery:.4f} |")

    out_path = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                            "BENCH_RESILIENCE.json")
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(
            {
                "schema": "repro.bench-resilience/1",
                "cores": os.cpu_count() or 1,
                "workers": WORKERS,
                "shards": len(PAYLOADS),
                "baseline_map_seconds": baseline,
                "resilient_seconds": resilient,
                "zero_fault_overhead": overhead,
                "fault_rate": FAULT_RATE,
                "chaos_seconds": chaos_seconds,
                "recoveries": recovered,
                "per_recovery_seconds": per_recovery,
            },
            handle, indent=2, sort_keys=True,
        )
        handle.write("\n")
    print()
    print(f"(machine-readable numbers written to {out_path})")


def e19_stitching() -> None:
    """Measure worker-telemetry capture + stitching overhead on the
    traced E17 two-hop workload, and the cost of the capture off-switch
    on the bare resilient dispatch loop, writing the numbers to
    ``BENCH_STITCHING.json`` so the CI gate and EXPERIMENTS.md agree.
    """
    header("E19 -- cross-process trace stitching (repro.obs.stitch)")
    import sys

    sys.path.insert(0, "benchmarks")
    from bench_e18_resilience import PAYLOADS, shard_work
    from bench_e19_stitching import (
        WORKERS,
        _best,
        _ctx,
        _traced_two_hop,
        join_heavy_relation,
    )
    from repro.obs import Tracer

    r = join_heavy_relation()

    ctx = _ctx(capture=False)
    try:
        _traced_two_hop(ctx, r)  # warm pool + kernel caches
        unstitched = _best(lambda: _traced_two_hop(ctx, r), repeat=5)
    finally:
        ctx.close()
    ctx = _ctx(capture=True)
    try:
        tracer = _traced_two_hop(ctx, r)
        stitched = _best(lambda: _traced_two_hop(ctx, r), repeat=5)
    finally:
        ctx.close()
    overhead = stitched / unstitched - 1.0
    worker_spans = sum(
        1 for s in tracer.spans if s.name.startswith("worker.")
    )

    ctx = _ctx()
    try:
        ctx.run_shards(shard_work, PAYLOADS)  # warm the pool
        untraced = _best(lambda: ctx.run_shards(shard_work, PAYLOADS),
                         repeat=5)
    finally:
        ctx.close()
    with Tracer():
        ctx = _ctx(capture=False)
        try:
            ctx.run_shards(shard_work, PAYLOADS)  # warm
            disabled = _best(lambda: ctx.run_shards(shard_work, PAYLOADS),
                             repeat=5)
        finally:
            ctx.close()
    off_overhead = disabled / untraced - 1.0

    print("| measurement | value |")
    print("|---|---|")
    print(f"| traced two-hop, capture off (s) | {unstitched:.4f} |")
    print(f"| traced two-hop, capture on (s) | {stitched:.4f} |")
    print(f"| stitching overhead | {overhead:+.2%} (target < 3%) |")
    print(f"| untraced dispatch (s) | {untraced:.4f} |")
    print(f"| off-switch dispatch (s) | {disabled:.4f} |")
    print(f"| off-switch overhead | {off_overhead:+.2%} (target < 1%) |")
    print(f"| stitched worker spans | {worker_spans} |")

    out_path = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                            "BENCH_STITCHING.json")
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(
            {
                "schema": "repro.bench-stitching/1",
                "cores": os.cpu_count() or 1,
                "workers": WORKERS,
                "unstitched_seconds": unstitched,
                "stitched_seconds": stitched,
                "stitching_overhead": overhead,
                "untraced_seconds": untraced,
                "off_switch_seconds": disabled,
                "off_switch_overhead": off_overhead,
                "stitched_worker_spans": worker_spans,
            },
            handle, indent=2, sort_keys=True,
        )
        handle.write("\n")
    print()
    print(f"(machine-readable numbers written to {out_path})")


def e20_planner() -> None:
    """Calibrate a cost model from an in-bench profile run, time the
    three backends (serial / always-parallel / cost-planned) per
    workload, and fold the numbers -- plus the E12-style direct-vs-plan
    ablation -- into ``BENCH_PLANNER.json`` next to this script so the
    CI gate and EXPERIMENTS.md read the same numbers."""
    header("E20 -- cost-based query planner (repro.core.physical)")
    import sys

    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    from bench_e20_planner import (
        _best,
        _context,
        _edge_db,
        _workloads,
        calibrated_model,
        two_hop_formula,
    )
    from repro.core.physical import QueryPlanner

    cores = os.cpu_count() or 1
    db = _edge_db()
    model = calibrated_model()
    entries = {"cores": cores, "records_fitted": model.records_used,
               "workloads": {}}
    print("| workload | serial (s) | always-parallel (s) | planned (s) | vs best |")
    print("|---|---|---|---|---|")
    ctx = _context()
    try:
        planner = QueryPlanner(mode="cost", model=model, context=ctx)
        with ctx:
            evaluate(two_hop_formula(), db)  # warm the pool once
        for label, serial_t, parallel_t, planned_t in _workloads(db, planner, ctx):
            planned_t()  # warm the logical-plan cache
            serial = _best(serial_t)
            parallel = _best(parallel_t)
            planned = _best(planned_t)
            best = min(serial, parallel)
            entries["workloads"][label] = {
                "serial_seconds": serial,
                "always_parallel_seconds": parallel,
                "planned_seconds": planned,
                "planned_vs_best": planned / best,
            }
            print(
                f"| {label} | {serial:.4f} | {parallel:.4f} | {planned:.4f} "
                f"| {planned / best - 1.0:+.1%} |"
            )
    finally:
        ctx.close()

    # the E12 ablation, re-run against the rule-engine planner: direct
    # evaluation vs the optimized plan on the interval self-join
    from repro.core.planner import compile_formula, execute, optimize

    qdb = random_interval_database(71, count=10)
    f = exists(
        "y",
        rel("S", "x") & rel("S", "y") & constraint(lt("x", "y"))
        & constraint(lt("y", -20)),
    )
    _, direct_time = timed(lambda: evaluate(f, qdb))
    plan = optimize(compile_formula(f), qdb)
    _, plan_time = timed(lambda: execute(plan, qdb))
    entries["ablation"] = {
        "direct_seconds": direct_time,
        "optimized_plan_seconds": plan_time,
        "speedup": direct_time / plan_time,
    }
    print()
    print(
        f"direct eval vs rule-engine plan (E12 ablation): "
        f"{direct_time:.4f}s vs {plan_time:.4f}s "
        f"({direct_time / plan_time:.1f}x)"
    )

    out_path = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                            "BENCH_PLANNER.json")
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump({"schema": "repro.bench-planner/1", **entries},
                  handle, indent=2, sort_keys=True)
        handle.write("\n")
    print()
    print(f"(machine-readable numbers written to {out_path})")


DEFAULT_HISTORY = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "BENCH_HISTORY.jsonl"
)


def _parallel_two_hop() -> None:
    """Quick sharded two-hop join for the history record (thread pool:
    cheap to spin up, and the shard/merge cost is what is watched)."""
    from repro.parallel import ExecutionContext

    r = Relation.from_points(("x", "y"), [(i, (i * 7 + 3) % 60) for i in range(60)])
    ctx = ExecutionContext(workers=2, pool="thread", min_tuples=2)
    try:
        with ctx:
            r.join(r.rename({"x": "y", "y": "z"})).project(("x", "z"))
    finally:
        ctx.close()


def _resilient_recovery() -> None:
    """Quick resilient-dispatch batch under a seeded 10% fault rate for
    the history record: watches the retry/backoff loop's cost, not the
    kernels (which the other workloads already cover)."""
    import sys

    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    from bench_e18_resilience import PAYLOADS, _chaos_registry, _resilient_ctx, shard_work

    ctx = _resilient_ctx()
    try:
        with _chaos_registry():
            ctx.run_shards(shard_work, PAYLOADS)
    finally:
        ctx.close()


def _stitching_overhead_pct() -> float:
    """Capture-on vs capture-off traced two-hop, as a percentage.

    The true overhead sits in the noise floor around zero, and
    ``compare_latest`` flags ``latest > threshold * median`` — ratios
    of near-zero numbers are meaningless — so the recorded value is
    floored at 5.0.  A healthy run always records the floor; the watch
    only trips when stitching genuinely blows past it (CI threshold
    3.0x -> trips above 15%, still far under the E19 hard gate).
    """
    import sys

    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    from bench_e19_stitching import _best, _ctx, _traced_two_hop, join_heavy_relation

    r = join_heavy_relation()
    seconds = {}
    for capture in (False, True):
        ctx = _ctx(capture=capture)
        try:
            _traced_two_hop(ctx, r)  # warm the pool
            seconds[capture] = _best(lambda: _traced_two_hop(ctx, r))
        finally:
            ctx.close()
    return max(5.0, 100.0 * (seconds[True] / seconds[False] - 1.0))


def _planner_vs_best_backend_pct() -> float:
    """Cost-planned two-hop vs the best fixed backend, as a percentage.

    On the quick history workload the best fixed backend is plain serial
    evaluation, and a warm planner (logical-plan cache hit) should match
    it to within scheduler noise.  As with ``stitching_overhead_pct``
    the true value sits in the noise floor around zero, so the recorded
    number is floored at 5.0; the 3.0x CI watch threshold then trips
    only above 15%, well under the E20 hard gate of planned <= 1.05x
    best on the full benchmark workloads.
    """
    import sys

    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    from bench_e20_planner import _best, _edge_db, two_hop_formula
    from repro.core.physical import QueryPlanner

    db = _edge_db()
    f = two_hop_formula()
    planner = QueryPlanner(mode="cost")
    planner.run(f, db, db.theory)  # warm the logical-plan cache
    serial = _best(lambda: evaluate(f, db), repeat=3)
    planned = _best(lambda: planner.run(f, db, db.theory), repeat=3)
    return max(5.0, 100.0 * (planned / serial - 1.0))


def e21_analysis() -> None:
    """Time the trace-analysis pipeline on the synthetic 5,000-span
    document and the ``--memory`` backends on the E21 workloads,
    writing ``BENCH_ANALYSIS.json`` so the CI gate and EXPERIMENTS.md
    read the same numbers."""
    header("E21 -- trace analysis toolkit (repro.obs.analyze/flame/diff)")
    import sys

    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    from bench_e21_analysis import (
        SPAN_COUNT,
        _best,
        _e14_workloads,
        _traced,
        synthetic_trace,
    )
    from repro.obs import (
        analyze_trace,
        diff_traces,
        speedscope_document,
        validate_speedscope,
    )

    before = synthetic_trace()
    after = synthetic_trace()
    analyze_s = _best(lambda: analyze_trace(after), repeat=3)
    flame_s = _best(
        lambda: validate_speedscope(speedscope_document(after)), repeat=3
    )
    diff_s = _best(lambda: diff_traces(before, after), repeat=3)
    pipeline_s = analyze_s + flame_s + diff_s

    print("| measurement | value |")
    print("|---|---|")
    print(f"| spans analyzed | {SPAN_COUNT} |")
    print(f"| analyze (s) | {analyze_s:.4f} |")
    print(f"| flame export (s) | {flame_s:.4f} |")
    print(f"| trace diff (s) | {diff_s:.4f} |")
    print(f"| full pipeline (s) | {pipeline_s:.4f} (target < 1.0) |")

    memory = {}
    for name, thunk in _e14_workloads().items():
        base = _best(_traced(thunk), repeat=3)
        rss = _best(_traced(thunk, "rss"), repeat=3)
        traced = _best(_traced(thunk, "tracemalloc"), repeat=3)
        memory[name] = {
            "traced_seconds": base,
            "rss_seconds": rss,
            "rss_overhead": rss / base - 1.0,
            "tracemalloc_seconds": traced,
            "tracemalloc_overhead": traced / base - 1.0,
        }
        print(
            f"| --memory rss overhead, {name} | "
            f"{memory[name]['rss_overhead']:+.2%} (target < 5%) |"
        )
        print(
            f"| --memory tracemalloc overhead, {name} | "
            f"{memory[name]['tracemalloc_overhead']:+.2%} (reported, not gated) |"
        )

    out_path = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                            "BENCH_ANALYSIS.json")
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(
            {
                "schema": "repro.bench-analysis/1",
                "cores": os.cpu_count() or 1,
                "spans": SPAN_COUNT,
                "analyze_seconds": analyze_s,
                "flame_seconds": flame_s,
                "diff_seconds": diff_s,
                "pipeline_seconds": pipeline_s,
                "memory": memory,
            },
            handle, indent=2, sort_keys=True,
        )
        handle.write("\n")
    print()
    print(f"(machine-readable numbers written to {out_path})")


def e22_columnar() -> None:
    """Measure the columnar bounds-matrix kernel payoff -- batch
    satisfiability vs the per-conjunction object kernel, end-to-end TC
    under both backends -- and fold the ratios into
    ``BENCH_VECKERNEL.json`` next to this script so the CI gate and
    EXPERIMENTS.md read the same numbers."""
    header("E22 -- columnar bounds-matrix kernel (repro.perf.columnar)")
    import sys

    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    from bench_e22_columnar import BLOCK_SIZES, _best, conjunction_block
    from repro.core.ordergraph import OrderGraph
    from repro.perf import (
        batch_satisfiable,
        kernel_backend_context,
        reset_kernel_cache,
    )
    from repro.queries.library import transitive_closure_program as tc_program
    from repro.workloads.generators import slow_tc_workload

    batch = {}
    print("| measurement | object (s) | columnar (s) | speedup |")
    print("|---|---|---|---|")
    for size in BLOCK_SIZES:
        block = conjunction_block(size)
        per_conj = _best(
            lambda: [OrderGraph(c).is_satisfiable() for c in block]
        )
        batched = _best(lambda: batch_satisfiable(block))
        batch[str(size)] = {
            "object_seconds": per_conj,
            "columnar_seconds": batched,
            "speedup": per_conj / batched,
        }
        print(
            f"| batch-sat block={size} | {per_conj:.4f} | {batched:.4f} "
            f"| {per_conj / batched:.2f}x |"
        )

    program, db = slow_tc_workload(6)
    tc = tc_program()
    chain = path_graph(10)
    e2e = {}
    for name, thunk in {
        "datalog-naive-tc": lambda: evaluate_program(program, db),
        "datalog-naive-path": lambda: evaluate_program(tc, chain),
    }.items():
        seconds = {}
        for backend in ("object", "columnar"):
            with kernel_backend_context(backend):
                def cold():
                    reset_kernel_cache()
                    thunk()
                seconds[backend] = _best(cold, repeat=3)
        e2e[name] = {
            "object_seconds": seconds["object"],
            "columnar_seconds": seconds["columnar"],
            "speedup": seconds["object"] / seconds["columnar"],
        }
        print(
            f"| {name} | {seconds['object']:.4f} "
            f"| {seconds['columnar']:.4f} "
            f"| {e2e[name]['speedup']:.2f}x |"
        )
    reset_kernel_cache()

    out_path = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                            "BENCH_VECKERNEL.json")
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(
            {
                "schema": "repro.bench-veckernel/1",
                "batch_satisfiable": batch,
                "end_to_end": e2e,
            },
            handle, indent=2, sort_keys=True,
        )
        handle.write("\n")
    print()
    print(f"(machine-readable ratios written to {out_path})")


def _columnar_tc_seconds() -> float:
    """The quick naive-TC fixpoint under the columnar backend, cold
    caches, for the history record -- the end-to-end claim E22 makes
    that ``repro bench-watch`` keeps honest."""
    from repro.perf import kernel_backend_context, reset_kernel_cache

    program = transitive_closure_program()
    db = path_graph(8)
    with kernel_backend_context("columnar"):
        def cold():
            reset_kernel_cache()
            evaluate_program(program, db)

        cold()  # first-touch: imports and interning pool
        best = float("inf")
        for _ in range(3):
            _, seconds = timed(cold)
            best = min(best, seconds)
    reset_kernel_cache()
    return best


def _trace_analysis_seconds() -> float:
    """The 5k-span analyze+flame+diff pipeline for the history record —
    the interactivity claim ``repro bench-watch`` keeps honest."""
    import sys

    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    from bench_e21_analysis import _best, synthetic_trace
    from repro.obs import analyze_trace, diff_traces, speedscope_document

    before = synthetic_trace()
    after = synthetic_trace()

    def pipeline():
        analyze_trace(after)
        speedscope_document(after)
        diff_traces(before, after)

    return _best(pipeline, repeat=3)


def bench_history(history_path: str) -> None:
    """Append one provenance-stamped timing record to the bench history.

    The workloads mirror the quick E14 profile set (small enough to run
    on every CI push); timings are best-of-3 to damp scheduler noise.
    ``repro bench-watch`` compares the appended record against the
    median of the trailing window and fails CI on a regression.
    """
    header("bench history -- quick workload timings (repro.bench-history/1)")
    from repro.datalog.seminaive import evaluate_seminaive
    from repro.obs import append_history
    from repro.perf import reset_kernel_cache

    f = exists("y", rel("S", "x") & rel("S", "y") & constraint(lt("x", "y")))
    workloads = {
        "fo_self_join_seconds": lambda: evaluate(
            f, random_interval_database(23, count=16)
        ),
        "datalog_naive_tc_seconds": lambda: evaluate_program(
            transitive_closure_program(), path_graph(8)
        ),
        "datalog_seminaive_tc_seconds": lambda: evaluate_seminaive(
            transitive_closure_program(), path_graph(8)
        ),
        "parallel_two_hop_seconds": _parallel_two_hop,
        "parallel_recovery_seconds": _resilient_recovery,
    }
    metrics = {}
    print("| workload | best-of-3 (s) |")
    print("|---|---|")
    for name, thunk in workloads.items():
        reset_kernel_cache()
        thunk()  # warm-up: steady-state caches, not first-touch cost
        best = float("inf")
        for _ in range(3):
            _, seconds = timed(thunk)
            best = min(best, seconds)
        metrics[name] = best
        print(f"| {name} | {best:.4f} |")
    reset_kernel_cache()
    metrics["stitching_overhead_pct"] = _stitching_overhead_pct()
    print(
        f"| stitching_overhead_pct | "
        f"{metrics['stitching_overhead_pct']:.1f} (floored at 5.0) |"
    )
    metrics["planner_vs_best_backend_pct"] = _planner_vs_best_backend_pct()
    print(
        f"| planner_vs_best_backend_pct | "
        f"{metrics['planner_vs_best_backend_pct']:.1f} (floored at 5.0) |"
    )
    metrics["trace_analysis_seconds"] = _trace_analysis_seconds()
    print(
        f"| trace_analysis_seconds | "
        f"{metrics['trace_analysis_seconds']:.4f} |"
    )
    metrics["columnar_tc_seconds"] = _columnar_tc_seconds()
    print(
        f"| columnar_tc_seconds | "
        f"{metrics['columnar_tc_seconds']:.4f} |"
    )
    record = append_history(history_path, metrics)
    print()
    print(
        f"(appended record for commit "
        f"{record['provenance'].get('git', 'unknown')} to {history_path})"
    )


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(
        description="regenerate EXPERIMENTS.md tables and append bench history"
    )
    parser.add_argument(
        "--history",
        default=DEFAULT_HISTORY,
        help="bench-history JSONL path (default: benchmarks/BENCH_HISTORY.jsonl)",
    )
    parser.add_argument(
        "--history-only",
        action="store_true",
        help="skip the experiment tables; append just the history record",
    )
    args = parser.parse_args(argv)
    if args.history_only:
        bench_history(args.history)
        return
    print("# Collected experimental results (regenerated)")
    e2_fo_scaling()
    e4_ef_table()
    e4_search_table()
    e4_hanf_table()
    e5_region_table()
    e6_e7_datalog_tables()
    e8_crossover()
    e9_tower()
    e10_fixpoint()
    e11_genericity()
    e12_ablations()
    e14_profiles()
    e15_kernel_cache()
    e17_parallel()
    e18_resilience()
    e19_stitching()
    e20_planner()
    e21_analysis()
    e22_columnar()
    bench_history(args.history)
    print()


if __name__ == "__main__":
    main()
