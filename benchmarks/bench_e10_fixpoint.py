"""E10 -- Theorem 5.6: C-CALC_i + fixpoint = H_i-TIME.

Paper artifact: the fixpoint/while extensions pin each level of the
hierarchy to its deterministic-time class; at the bottom,
``C-CALC_0 + fixpoint`` captures PTIME-style recursion (transitive
closure) without any set nesting.

What this regenerates: the inflationary C-CALC fixpoint operator --
transitive closure in C-CALC_0 + fixpoint (a query FO cannot express,
computed without set variables) and a dense-order spreading recursion;
scaling in rounds and wall-clock.  Expected shape: polynomial scaling
matching the Datalog engine on the same queries (both realize the
H_0 = PTIME level).
"""

import pytest

from repro.cobjects.calculus import CAnd, CConstraint, CExists, COr, CRelation
from repro.cobjects.fixpoint import FixpointQuery, evaluate_fixpoint
from repro.core.terms import as_term
from repro.datalog.engine import evaluate_program
from repro.queries.library import transitive_closure_program
from repro.workloads.generators import path_graph

SIZES = [2, 4, 6]


def R(name, *args):
    return CRelation(name, tuple(as_term(a) for a in args))


def tc_query() -> FixpointQuery:
    step = COr(
        (
            R("E", "x", "y"),
            CExists(("z",), CAnd((R("TC", "x", "z"), R("E", "z", "y")))),
        )
    )
    return FixpointQuery("TC", ("x", "y"), step)


@pytest.mark.parametrize("n", SIZES)
def test_ccalc0_fixpoint_tc(benchmark, n):
    db = path_graph(n)
    out = benchmark(lambda: evaluate_fixpoint(tc_query(), db))
    assert out.contains_point([0, n - 1])


@pytest.mark.parametrize("n", SIZES)
def test_datalog_same_level(benchmark, n):
    """The H_0 twin: Datalog(not) computing the same closure."""
    db = path_graph(n)
    program = transitive_closure_program()
    result = benchmark(lambda: evaluate_program(program, db))
    assert result["tc"].contains_point([0, n - 1])


def test_report_equivalence(capsys):
    """C-CALC_0 + fixpoint and Datalog(not) agree tuple-for-tuple."""
    rows = []
    for n in (3, 5):
        db = path_graph(n)
        via_ccalc = evaluate_fixpoint(tc_query(), db)
        via_datalog = evaluate_program(transitive_closure_program(), db)["tc"]
        renamed = via_datalog.rename({"a0": "x", "a1": "y"})
        rows.append((n, via_ccalc.equivalent(renamed)))
    with capsys.disabled():
        print("\n[E10] C-CALC_0+fixpoint == Datalog(not) on transitive closure:")
        for n, same in rows:
            print(f"  path of {n}: identical pointsets = {same}")
    assert all(same for _, same in rows)
