"""E20 -- cost-based planner: never worse than the best fixed backend.

The planner's pitch is that per-operator dispatch decisions beat both
blanket policies: always-serial leaves speedup on the table on big
inputs, always-parallel pays process-pool dispatch on every operator
(the 1-core regression BENCH_PARALLEL documented).  This benchmark
calibrates a cost model from an in-bench profile run, then times three
backends on each workload:

* **serial** -- the plain evaluator, no context;
* **always-parallel** -- the legacy ``--parallel`` behavior: a global
  :class:`ExecutionContext` activation, every join/project/absorb
  sharded regardless of size;
* **cost-planned** -- ``QueryPlanner(mode="cost")`` with the fitted
  model and the same context granted as a capability.

Gates (EXPERIMENTS.md E20): cost-planned within 5% of the best fixed
backend on every workload (best-of-5 timings, the logical-plan cache
warm -- the steady state Datalog actually runs in; hard CI gate at
25% for shared-runner noise, as in E13-E19), and on a single-core box
faster than always-parallel, which is the regression the planner
exists to fix.  Equivalence with the serial
reference is asserted here too, but the exhaustive matrix lives in
``tests/parallel/test_planned_differential.py``.
"""

import os
import time

import pytest

from repro.core.costmodel import fit_cost_model
from repro.core.database import Database
from repro.core.evaluator import evaluate
from repro.core.formula import Not, constraint, exists, rel
from repro.core.atoms import lt
from repro.core.physical import QueryPlanner
from repro.core.relation import Relation
from repro.datalog.engine import evaluate_program
from repro.obs import Tracer, profile_document
from repro.parallel import ExecutionContext
from repro.queries.library import transitive_closure_program
from repro.workloads.generators import path_graph

CORES = os.cpu_count() or 1

#: cost-planned must stay within this factor of the best fixed backend
TOLERANCE = 1.05

#: hard CI gate -- headroom over TOLERANCE for shared-runner noise, the
#: same slack every overhead gate since E13 carries
HARD_GATE = 1.25


def _edge_db(n=80):
    edges = [(i, (i * 7 + 3) % n) for i in range(n)]
    return Database({
        "E": Relation.from_points(("x", "y"), edges),
        "S": Relation.from_points(("x",), [(i,) for i in range(12)]),
    })


def two_hop_formula():
    return exists("y", rel("E", "x", "y") & rel("E", "y", "z"))


def filtered_join_formula():
    return (
        rel("E", "x", "y") & rel("E", "y", "z")
        & constraint(lt("x", 40)) & constraint(lt("z", 40))
    )


def negation_formula():
    # complement over one variable: 2-D complements grow a DNF product
    # per input tuple and would dominate the whole benchmark
    return Not(rel("S", "x")) & constraint(lt(0, "x")) & constraint(lt("x", 8))


def _best(thunk, repeat=5):
    out = float("inf")
    for _ in range(repeat):
        t0 = time.perf_counter()
        thunk()
        out = min(out, time.perf_counter() - t0)
    return out


def _context():
    """The legacy always-parallel shape: every sizable op shards."""
    return ExecutionContext(workers=min(4, max(2, CORES)), pool="process",
                            min_tuples=8)


def calibrated_model():
    """Fit a cost model from this machine's own ledger records: the
    serial workloads price the operators, one parallel run prices the
    dispatch overhead."""
    db = _edge_db()
    documents = []
    tracer = Tracer()
    with tracer:
        with tracer.span("calibrate.serial"):
            evaluate(two_hop_formula(), db)
            evaluate(negation_formula(), db)
            evaluate_program(transitive_closure_program(), path_graph(8))
    documents.append(profile_document(tracer))
    ctx = _context()
    try:
        tracer = Tracer()
        with tracer, ctx:
            with tracer.span("calibrate.parallel"):
                evaluate(two_hop_formula(), db)
    finally:
        ctx.close()
    documents.append(profile_document(tracer))
    return fit_cost_model(documents, source="bench-e20")


def _workloads(db, planner, ctx):
    """(label, serial, always_parallel, cost_planned) thunk rows."""
    program = transitive_closure_program()
    chain = path_graph(8)
    rows = []
    for label, formula in (
        ("two_hop", two_hop_formula()),
        ("filtered_join", filtered_join_formula()),
        ("negation", negation_formula()),
    ):
        rows.append((
            label,
            lambda f=formula: evaluate(f, db),
            lambda f=formula: evaluate(f, db, context=ctx),
            lambda f=formula: planner.run(f, db, db.theory),
        ))
    rows.append((
        "datalog_tc",
        lambda: evaluate_program(program, chain),
        lambda: evaluate_program(program, chain, context=ctx),
        lambda: evaluate_program(program, chain, planner=planner),
    ))
    return rows


# ----------------------------------------------------------- benchmark trio


@pytest.mark.parametrize("mode", ["serial", "always_parallel", "cost_planned"])
def test_two_hop_backends(benchmark, mode):
    db = _edge_db()
    f = two_hop_formula()
    if mode == "serial":
        benchmark(lambda: evaluate(f, db))
    elif mode == "always_parallel":
        ctx = _context()
        try:
            with ctx:
                evaluate(f, db)  # warm the pool
            benchmark(lambda: evaluate(f, db, context=ctx))
        finally:
            ctx.close()
    else:
        planner = QueryPlanner(mode="cost", model=calibrated_model())
        planner.run(f, db, db.theory)  # warm the logical-plan cache
        benchmark(lambda: planner.run(f, db, db.theory))


# ------------------------------------------------------------------- report


def test_report_planner(capsys):
    """Time all three backends per workload and enforce the E20 gates."""
    db = _edge_db()
    model = calibrated_model()
    ctx = _context()
    lines = ["", f"E20: cost-based planner ({CORES} cores, "
             f"model fitted from {model.records_used} records)"]
    failures = []
    try:
        planner = QueryPlanner(mode="cost", model=model, context=ctx)
        with ctx:
            evaluate(two_hop_formula(), db)  # warm the pool once
        for label, serial_t, parallel_t, planned_t in _workloads(db, planner, ctx):
            planned_t()  # warm the logical-plan cache
            serial = _best(serial_t)
            parallel = _best(parallel_t)
            planned = _best(planned_t)
            best = min(serial, parallel)
            lines.append(
                f"  {label:<16} serial {serial:8.4f}s  "
                f"always-parallel {parallel:8.4f}s  "
                f"planned {planned:8.4f}s  "
                f"(vs best {planned / best - 1.0:+.1%})"
            )
            if planned > best * TOLERANCE:
                lines.append(
                    f"    ^ above the {TOLERANCE:.2f}x target "
                    f"(hard gate {HARD_GATE:.2f}x)"
                )
            if planned > best * HARD_GATE:
                failures.append(
                    f"{label}: planned {planned:.4f}s > "
                    f"{HARD_GATE:.2f}x best fixed backend {best:.4f}s"
                )
            if CORES == 1 and planned >= parallel * TOLERANCE:
                failures.append(
                    f"{label}: planned {planned:.4f}s not faster than "
                    f"always-parallel {parallel:.4f}s on a 1-core box"
                )
    finally:
        ctx.close()
    with capsys.disabled():
        print("\n".join(lines))
    assert not failures, "; ".join(failures)


def test_planned_agrees():
    """Planned results match the serial reference on every workload.

    The database is deliberately small: ``Relation.equivalent`` cell-
    decomposes over every constant in either operand, which is minutes
    of work at the timing workloads' 80-edge size (and measures the
    checker, not the planner).  The exhaustive equivalence matrix lives
    in tests/parallel/test_planned_differential.py.
    """
    db = _edge_db(12)
    model = calibrated_model()
    ctx = ExecutionContext(workers=2, pool="thread", min_tuples=2)
    try:
        planner = QueryPlanner(mode="cost", model=model, context=ctx)
        for f in (two_hop_formula(), filtered_join_formula(), negation_formula()):
            assert planner.run(f, db, db.theory).equivalent(evaluate(f, db))
        program = transitive_closure_program()
        chain = path_graph(8)
        serial = evaluate_program(program, chain)
        planned = evaluate_program(program, chain, planner=planner)
        assert serial.rounds == planned.rounds
        assert serial["tc"].equivalent(planned["tc"])
    finally:
        ctx.close()
