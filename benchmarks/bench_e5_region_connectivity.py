"""E5 -- Theorem 4.3: region connectivity is not linear.

Paper artifact: "the region connectivity query ... is not definable
with linear constraints"; it reduces graph connectivity (itself not
FO+, Theorem 4.2) to a topological question about regions.

What this regenerates:

* the reduction: a finite graph drawn as a region (disc per vertex,
  strip per edge) whose topological connectivity equals the graph's --
  run against both the procedural graph checker and the gluing-graph
  region algorithm;
* scaling of the exact region-connectivity decision procedure
  (quadratic in cells x satisfiability cost);
* agreement of the region algorithm with the interval normal form in
  1-D.

Expected shape: graph-vs-region verdicts always agree; region checking
is polynomial but clearly heavier than 1-D interval counting.
"""

import pytest

from repro.core.boxes import Box, BoxSet
from repro.core.database import Database
from repro.core.intervals import IntervalSet
from repro.linear.region import count_components, is_connected
from repro.queries.library import graph_connectivity_procedural
from repro.workloads.generators import (
    checkerboard_region,
    interval_chain,
    random_finite_graph,
    staircase_region,
)


def graph_as_region(db) -> BoxSet:
    """The reduction: vertices as unit squares on the diagonal, edges as
    thin connecting strips (via the row/column of the two endpoints)."""
    boxes = []
    vertices = [int(t.sample_point()["x"]) for t in db["V"].tuples]
    for v in vertices:
        boxes.append(Box.closed((3 * v, 3 * v + 1), (3 * v, 3 * v + 1)))
    for t in db["E"].tuples:
        p = t.sample_point()
        a, b = sorted((int(p["x"]), int(p["y"])))
        # an L-shaped corridor from square a to square b
        boxes.append(Box.closed((3 * a, 3 * b + 1), (3 * a, 3 * a + 1)))
        boxes.append(Box.closed((3 * b, 3 * b + 1), (3 * a, 3 * b + 1)))
    return BoxSet(boxes, 2)


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_reduction_preserves_connectivity(benchmark, seed):
    """Graph connectivity == connectivity of its drawn region."""
    db = random_finite_graph(seed, vertex_count=4, edge_probability=0.5)
    region = graph_as_region(db).to_relation(("x", "y"))
    verdict = benchmark(lambda: is_connected(region))
    assert verdict == graph_connectivity_procedural(db)


@pytest.mark.parametrize("n", [2, 4, 6, 8])
def test_region_connectivity_scaling(benchmark, n):
    """Gluing-graph cost on an n-step staircase region."""
    region = staircase_region(n)["R"]
    result = benchmark(lambda: count_components(region))
    assert result == 1


@pytest.mark.parametrize("n", [2, 3, 4])
def test_checkerboard_connectivity(benchmark, n):
    """Corner-touching squares: the adversarial case for gluing tests."""
    region = checkerboard_region(n)["R"]
    assert benchmark(lambda: is_connected(region))


@pytest.mark.parametrize("n", [4, 8, 16])
def test_one_dimensional_contrast(benchmark, n):
    """1-D components via the gluing algorithm vs the interval form."""
    relation = interval_chain(n, overlap=False)["S"]
    components = benchmark(lambda: count_components(relation))
    assert components == n
    assert len(IntervalSet.from_relation(relation)) == n


def test_report_reduction_table(capsys):
    """Paper-vs-measured: the reduction verdicts on seeded graphs."""
    rows = []
    for seed in range(5):
        db = random_finite_graph(seed, vertex_count=4, edge_probability=0.4)
        graph_side = graph_connectivity_procedural(db)
        region_side = is_connected(graph_as_region(db).to_relation(("x", "y")))
        rows.append((seed, graph_side, region_side))
    with capsys.disabled():
        print("\n[E5] graph -> region reduction (Theorem 4.3):")
        print("  seed  graph-connected  region-connected")
        for seed, g, r in rows:
            print(f"  {seed:>4}  {str(g):>15}  {str(r):>16}")
    assert all(g == r for _, g, r in rows)
