"""E2 -- Section 3: closed-form FO evaluation ([KKR90]).

Paper artifact: "the relational calculus over finitely representable
relations ... admits a declarative semantics and an efficient bottom-up
evaluation in closed form"; FO has AC0 data complexity.

What this regenerates: evaluation time of fixed FO queries as the
*data* grows (data complexity!).  Expected shape: low-degree polynomial
growth for each fixed query; the quantifier *alternation* of the query
(combined complexity) costs more than data size.
"""

import pytest

from repro.core.evaluator import evaluate, evaluate_boolean
from repro.core.formula import Not, constraint, exists, forall, rel
from repro.core.atoms import lt
from repro.encoding.standard import encoding_size
from repro.queries.library import bounded_query, contains_open_interval_query
from repro.workloads.generators import random_interval_database

SIZES = [2, 4, 8, 16]


def _db(n):
    return random_interval_database(23, count=n)


@pytest.mark.parametrize("n", SIZES)
def test_projection_query(benchmark, n):
    """exists y (S(x) and S(y) and x < y): one quantifier, self-join."""
    db = _db(n)
    f = exists("y", rel("S", "x") & rel("S", "y") & constraint(lt("x", "y")))
    out = benchmark(lambda: evaluate(f, db))
    assert out.arity == 1


@pytest.mark.parametrize("n", SIZES)
def test_boolean_bounded_query(benchmark, n):
    """The FO boundedness sentence (two quantifier blocks)."""
    db = _db(n)
    f = bounded_query("S")
    result = benchmark(lambda: evaluate_boolean(f, db))
    assert isinstance(result, bool)


@pytest.mark.parametrize("n", [2, 4, 8])
def test_interior_query(benchmark, n):
    """The open-interval-containment sentence (forall inside exists)."""
    db = _db(n)
    f = contains_open_interval_query("S")
    benchmark(lambda: evaluate_boolean(f, db))


@pytest.mark.parametrize("n", SIZES)
def test_negation_query(benchmark, n):
    """not S(x): complementation against data size."""
    db = _db(n)
    f = Not(rel("S", "x"))
    benchmark(lambda: evaluate(f, db))


def test_report_input_sizes(capsys):
    """Standard-encoding sizes of the benchmark series (the x-axis)."""
    rows = [(n, encoding_size(_db(n))) for n in SIZES]
    with capsys.disabled():
        print("\n[E2] standard-encoding input sizes:")
        for n, size in rows:
            print(f"  intervals={n:>3}  encoding={size:>6} bytes")
    assert all(b > 0 for _, b in rows)
