"""E22 -- columnar bounds-matrix kernel payoff.

The columnar backend (:mod:`repro.perf.columnar`) must pay for itself
the same way the memo cache did in E15: the batch satisfiability
kernel (one SCC pass per conjunction instead of a cubic Floyd-Warshall
closure) should beat the per-conjunction object kernel by a wide
margin on the block shapes the engine actually produces, and the
object backend must not pay for machinery it never uses -- the
disabled path in front of every kernel construction is a single
attribute read on the selector.

Targets (EXPERIMENTS.md E22): >= 2x batch-satisfiability speedup on
blocks of 64+ conjunctions; columnar end-to-end TC no slower than the
object backend; < 3% overhead on the object path versus an inline
kernel.  ``test_report_columnar`` prints the measured ratios directly
(plain ``pytest benchmarks/bench_e22_columnar.py -s``) with lenient
hard gates sized for timing noise.
"""

import random
import time

import pytest

from repro.core.atoms import le, lt
from repro.core.ordergraph import OrderGraph
from repro.core.theory import DENSE_ORDER
from repro.datalog.engine import evaluate_program
from repro.perf import (
    batch_satisfiable,
    kernel_backend_context,
    reset_kernel_cache,
)
from repro.queries.library import transitive_closure_program
from repro.workloads.generators import path_graph, slow_tc_workload

#: block sizes the gate runs at -- 64 is the smallest block the join /
#: absorb fast paths commonly see on the TC workloads; 256 is the
#: widened-join worst case
BLOCK_SIZES = (64, 128, 256)


def conjunction_block(count, *, chain=9, seed=22):
    """``count`` TC-shaped conjunctions over a shared variable chain.

    Each conjunction is an 8-10 term order chain (the shape of a
    widened join candidate: one variable per schema column, a couple
    of constant bounds) with per-conjunction constants, and roughly a
    third are unsatisfiable -- the mix ``Relation.join`` feeds the
    kernel when most candidate pairs contradict on the shared column.
    """
    rng = random.Random(seed)
    names = [f"x{i}" for i in range(chain)]
    block = []
    for i in range(count):
        atoms = []
        for a, b in zip(names, names[1:]):
            atoms.append(lt(a, b) if rng.random() < 0.7 else le(a, b))
        lo = rng.randrange(0, 5)
        atoms.append(le(lo, names[0]))
        if i % 3 == 0:
            # contradicts the strict chain: upper bound below the lower
            atoms.append(le(names[-1], lo - 1))
        else:
            atoms.append(le(names[-1], lo + rng.randrange(20, 40)))
        block.append(atoms)
    return block


# ----------------------------------------------------------- benchmark pairs


@pytest.mark.parametrize("mode", ["object", "columnar"])
def test_batch_satisfiability(benchmark, mode):
    block = conjunction_block(128)
    if mode == "columnar":
        benchmark(lambda: batch_satisfiable(block))
    else:
        benchmark(lambda: [OrderGraph(c).is_satisfiable() for c in block])


@pytest.mark.parametrize("backend", ["object", "columnar"])
def test_tc_fixpoint(benchmark, backend):
    program, db = slow_tc_workload(6)
    with kernel_backend_context(backend):
        reset_kernel_cache()

        def run():
            reset_kernel_cache()
            evaluate_program(program, db)

        benchmark(run)


# ------------------------------------------------------------------- report


def _best(thunk, repeat=5):
    out = float("inf")
    for _ in range(repeat):
        t0 = time.perf_counter()
        thunk()
        out = min(out, time.perf_counter() - t0)
    return out


def _inline_kernel(conjunction):
    """The pre-selector kernel, verbatim (seed canonicalize path)."""
    graph = OrderGraph(conjunction)
    if not graph.is_satisfiable():
        return None
    return graph.canonical_atoms()


def test_report_columnar(capsys):
    """Print batch/end-to-end/overhead ratios; fail on gross regressions.

    Single-shot timings are noisy, so the hard gates are lenient
    (>= 2x on the batch kernel where the printed target is the same,
    end-to-end TC merely never-slower with 25% headroom, < 10% on the
    object-path micro overhead against the 3% target); the honest
    numbers come from the benchmark pairs above via pytest-benchmark.
    """
    lines = ["", "E22: columnar kernel payoff (best of 5)"]

    # batch satisfiability: SCC pass vs per-conjunction closure
    batch_speedups = {}
    for size in BLOCK_SIZES:
        block = conjunction_block(size)
        per_conj = _best(lambda: [OrderGraph(c).is_satisfiable() for c in block])
        batched = _best(lambda: batch_satisfiable(block))
        batch_speedups[size] = per_conj / batched
        lines.append(
            f"  batch-sat block={size:<4d} {per_conj / batched:6.2f}x"
            "  (target >= 2x)"
        )

    # end-to-end: the TC fixpoint under each backend, cold caches both
    program, db = slow_tc_workload(6)
    tc = transitive_closure_program()
    chain = path_graph(10)
    e2e = {}
    for name, thunk in {
        "datalog-naive-tc": lambda: evaluate_program(program, db),
        "datalog-naive-path": lambda: evaluate_program(tc, chain),
    }.items():
        seconds = {}
        for backend in ("object", "columnar"):
            with kernel_backend_context(backend):
                def cold():
                    reset_kernel_cache()
                    thunk()
                seconds[backend] = _best(cold, repeat=3)
        e2e[name] = seconds["object"] / seconds["columnar"]
        lines.append(
            f"  {name:22s} {e2e[name]:6.2f}x  (target: never slower)"
        )

    # object-path overhead: theory dispatch (selector read + memo
    # plumbing, cache off) vs the inline seed kernel
    conjs = [[lt("x", "y"), le("y", i), le(i - 7, "x")] for i in range(40)]

    def run_inline():
        for c in conjs:
            _inline_kernel(c)

    def run_object_path():
        for c in conjs:
            DENSE_ORDER.canonicalize_if_satisfiable(c)

    def batched_t(thunk):
        return _best(lambda: [thunk() for _ in range(20)], repeat=40)

    from repro.perf import kernel_cache_disabled

    with kernel_backend_context("object"), kernel_cache_disabled():
        inline_time = batched_t(run_inline)
        object_time = batched_t(run_object_path)
    overhead = object_time / inline_time - 1.0
    lines.append(
        f"  object-path overhead   {overhead:+6.2%}  (target < 3%)"
    )
    with capsys.disabled():
        print("\n".join(lines))

    for size, ratio in batch_speedups.items():
        assert ratio >= 2.0, (
            f"batch kernel payoff regressed: {ratio:.2f}x on block={size}"
        )
    for name, ratio in e2e.items():
        assert ratio >= 0.8, (
            f"columnar end-to-end slower than object: {ratio:.2f}x on {name}"
        )
    assert overhead < 0.10, (
        f"object path is no longer cheap: {overhead:.1%}"
    )


def test_batch_verdicts_agree():
    """The SCC batch verdicts match the per-conjunction closure."""
    for size in BLOCK_SIZES:
        block = conjunction_block(size)
        assert batch_satisfiable(block) == [
            OrderGraph(c).is_satisfiable() for c in block
        ]


def test_modes_agree():
    """Same fixpoint, tuple for tuple, under both kernel backends."""
    program, db = slow_tc_workload(5)
    results = {}
    for backend in ("object", "columnar"):
        with kernel_backend_context(backend):
            reset_kernel_cache()
            results[backend] = evaluate_program(program, db)
    for name in results["object"].database.names():
        assert (
            results["object"][name].tuples == results["columnar"][name].tuples
        )
