"""E3 -- Theorem 4.1: FO+ data complexity over integer inputs.

Paper artifact: "FO+ has uniform AC0 data complexity over inputs
defined with integers" (and NC in general) -- in particular polynomial,
for every fixed FO+ query.

What this regenerates: evaluation time of fixed FO+ (linear) queries
over growing integer-endpoint instances, and the Fourier-Motzkin
elimination cost per quantifier.  Expected shape: polynomial growth in
data size for fixed queries; FM cost grows with the number of *bounds
on the eliminated variable* (quadratic blowup per elimination) --
query, not data, complexity.
"""

from fractions import Fraction

import pytest

from repro.core.database import Database
from repro.core.evaluator import evaluate, evaluate_boolean
from repro.core.formula import constraint, exists, forall, rel
from repro.core.relation import Relation
from repro.linear.latoms import lin_eq, lin_le, lin_lt
from repro.linear.theory import LINEAR
from repro.workloads.generators import rng_of

SIZES = [2, 4, 8, 16]


def _integer_db(n, seed=31):
    """n random integer segments as a unary linear relation."""
    rng = rng_of(seed)
    tuples = []
    for _ in range(n):
        lo = rng.randint(-40, 36)
        hi = lo + rng.randint(1, 4)
        tuples.append([lin_le(lo, "x"), lin_le("x", hi)])
    db = Database(theory=LINEAR)
    db["S"] = Relation.from_atoms(("x",), tuples, LINEAR)
    return db


@pytest.mark.parametrize("n", SIZES)
def test_midpoint_query_scaling(benchmark, n):
    """The FO+ midpoint query {z | exists x,y: S(x), S(y), x+y=2z}."""
    db = _integer_db(n)
    f = exists(
        ["mx", "my"],
        rel("S", "mx") & rel("S", "my") & constraint(lin_eq({"mx": 1, "my": 1}, {"z": 2})),
    )
    out = benchmark(lambda: evaluate(f, db, theory=LINEAR))
    assert out.arity == 1


@pytest.mark.parametrize("n", SIZES)
def test_scaled_membership(benchmark, n):
    """{x | 2x in S}: addition-only definable."""
    db = _integer_db(n)
    f = exists("s", rel("S", "s") & constraint(lin_eq({"s": 1}, {"x": 2})))
    benchmark(lambda: evaluate(f, db, theory=LINEAR))


@pytest.mark.parametrize("n", [2, 4, 8])
def test_boolean_sum_bound(benchmark, n):
    """forall x,y (S(x) and S(y) -> x + y <= 100): a linear sentence."""
    db = _integer_db(n)
    f = forall(
        ["x", "y"],
        (rel("S", "x") & rel("S", "y")).implies(
            constraint(lin_le({"x": 1, "y": 1}, 100))
        ),
    )
    benchmark(lambda: evaluate_boolean(f, db, theory=LINEAR))


@pytest.mark.parametrize("bounds", [2, 4, 8, 16])
def test_fourier_motzkin_elimination(benchmark, bounds):
    """Raw FM cost: eliminating a variable with many two-sided bounds.

    The quadratic lower x upper pairing is the engine's combined-
    complexity hot spot (contrast with the data-complexity series
    above).
    """
    from repro.core.terms import Var

    atoms = []
    for i in range(bounds):
        atoms.append(lin_le({"x": 1, "y": -(i + 1)}, i))      # x - (i+1)y <= i
        atoms.append(lin_le({"x": -1, "z": i + 1}, 2 * i))    # -x + (i+1)z <= 2i
    benchmark(lambda: LINEAR.project_out(atoms, Var("x")))
