"""E17 -- sharded parallel evaluation: speedup and off-switch overhead.

The parallel backend (:mod:`repro.parallel`) must pay for itself in
both directions: with an :class:`ExecutionContext` active, fanning
join pairing / quantifier elimination / absorption out over a process
pool should beat the serial pass on join-heavy and fixpoint workloads;
with no context active, the hooks it added to ``Relation.join`` /
``project`` / ``_absorb`` are a single context-variable read and must
be free in the noise.

Targets (EXPERIMENTS.md E17): >= 1.5x speedup with 4 process workers
on >= 4 cores; < 3% overhead with the backend off.  Speedup is a
property of the *machine* -- with fewer cores the gate relaxes (the
differential suite, not this file, carries correctness), and on a
single core only the overhead gate is enforced.  Hard gates here are
sized for timing noise, as in E13-E16; the honest numbers come from
``python benchmarks/collect_results.py`` (BENCH_PARALLEL.json).
"""

import os
import time

import pytest

from repro.core.relation import Relation
from repro.datalog.seminaive import evaluate_seminaive
from repro.parallel import ExecutionContext
from repro.queries.library import transitive_closure_program
from repro.workloads.generators import path_graph

CORES = os.cpu_count() or 1


def join_heavy_relation(n=160):
    """A scrambled functional graph: n classical tuples, dense joins."""
    return Relation.from_points(("x", "y"), [(i, (i * 7 + 3) % n) for i in range(n)])


def two_hop(r):
    return r.join(r.rename({"x": "y", "y": "z"})).project(("x", "z"))


def tc_fixpoint(context=None, n=10):
    return evaluate_seminaive(
        transitive_closure_program(), path_graph(n), context=context
    )


def _best(thunk, repeat=3):
    out = float("inf")
    for _ in range(repeat):
        t0 = time.perf_counter()
        thunk()
        out = min(out, time.perf_counter() - t0)
    return out


# ----------------------------------------------------------- benchmark pairs


@pytest.mark.parametrize("mode", ["serial", "parallel"])
def test_two_hop_join(benchmark, mode):
    r = join_heavy_relation()
    if mode == "serial":
        benchmark(lambda: two_hop(r))
    else:
        ctx = ExecutionContext(workers=min(4, CORES) or 1, pool="process",
                               min_tuples=8)
        try:
            with ctx:
                benchmark(lambda: two_hop(r))
        finally:
            ctx.close()


@pytest.mark.parametrize("mode", ["serial", "parallel"])
def test_tc_fixpoint(benchmark, mode):
    if mode == "serial":
        benchmark(tc_fixpoint)
    else:
        ctx = ExecutionContext(workers=min(4, CORES) or 1, pool="process",
                               min_tuples=8)
        try:
            benchmark(lambda: tc_fixpoint(context=ctx))
        finally:
            ctx.close()


# ------------------------------------------------------------------- report


def test_report_parallel(capsys):
    """Print speedup and off-switch overhead; gate by core count.

    The 1.5x target needs real cores; CI pins a >= 2-core runner for
    the relaxed gate and the 4-core gate fires only where the hardware
    can deliver it.  The overhead gate always fires: compares the
    merged hook path (context-variable read, no context active) with
    the hooks short-circuited, which bounds what the backend costs
    everyone who never turns it on.
    """
    r = join_heavy_relation()
    serial = _best(lambda: two_hop(r))
    ctx = ExecutionContext(workers=4, pool="process", min_tuples=8)
    try:
        with ctx:
            two_hop(r)  # warm the pool: worker spawn is one-time cost
            parallel = _best(lambda: two_hop(r))
    finally:
        ctx.close()
    speedup = serial / parallel

    # off-switch overhead: the real hook (contextvar read returning
    # None) vs the hook short-circuited entirely
    import repro.core.relation as relation_module

    hook = relation_module.active_execution_context
    hot = lambda: [two_hop(r) for _ in range(3)]
    with_hook = _best(hot, repeat=5)
    relation_module.active_execution_context = lambda: None
    try:
        without_hook = _best(hot, repeat=5)
    finally:
        relation_module.active_execution_context = hook
    overhead = with_hook / without_hook - 1.0

    lines = [
        "",
        f"E17: parallel backend ({CORES} cores)",
        f"  two-hop serial         {serial:8.4f} s",
        f"  two-hop 4 workers      {parallel:8.4f} s  ({speedup:.2f}x)",
        f"  off-switch overhead    {overhead:+7.2%}  (target < 3%)",
    ]
    with capsys.disabled():
        print("\n".join(lines))

    assert overhead < 0.10, f"parallel hooks are no longer cheap: {overhead:.1%}"
    if CORES >= 4:
        assert speedup >= 1.5, f"parallel speedup regressed: {speedup:.2f}x"
    elif CORES >= 2:
        assert speedup >= 1.1, f"parallel speedup regressed: {speedup:.2f}x"
    # single core: correctness is covered by the differential suite;
    # a speedup gate would only measure scheduler noise


def test_modes_agree():
    """Same two-hop result and same fixpoint, serial vs parallel."""
    r = join_heavy_relation(60)
    serial = two_hop(r)
    ctx = ExecutionContext(workers=2, pool="thread", min_tuples=2)
    try:
        with ctx:
            parallel = two_hop(r)
        serial_fix = tc_fixpoint()
        parallel_fix = tc_fixpoint(context=ctx)
    finally:
        ctx.close()
    assert serial.equivalent(parallel)
    assert serial_fix.rounds == parallel_fix.rounds
    assert serial_fix["tc"].equivalent(parallel_fix["tc"])
