"""E1 -- Section 2 examples: representation and canonical forms.

Paper artifact: the definitions and examples of Section 2 (generalized
tuples/relations; the rectangle encoding "four constants along with a
flag indicating the shape").

What this regenerates: cost of the fundamental representation
operations -- building generalized relations, canonicalizing to the
interval normal form, the box fast path vs the generic engine -- as the
representation grows.  Expected shape: all low-degree polynomial in the
number of constraint tuples, with the box/interval fast paths clearly
cheaper than generic complementation.
"""

import pytest

from repro.core.boxes import BoxSet
from repro.core.intervals import IntervalSet
from repro.workloads.generators import random_box_database, random_interval_set

SIZES = [4, 8, 16, 32]


@pytest.mark.parametrize("n", SIZES)
def test_build_interval_relation(benchmark, n):
    """Build + canonicalize a random unary relation of n intervals."""
    intervals = random_interval_set(7, count=n)

    def run():
        return intervals.to_relation("x")

    relation = benchmark(run)
    assert relation.arity == 1


@pytest.mark.parametrize("n", SIZES)
def test_interval_normal_form(benchmark, n):
    """Relation -> canonical IntervalSet (the paper's efficient encoding)."""
    relation = random_interval_set(11, count=n).to_relation("x")
    result = benchmark(lambda: IntervalSet.from_relation(relation))
    assert isinstance(result, IntervalSet)


@pytest.mark.parametrize("n", SIZES)
def test_interval_set_union(benchmark, n):
    """Canonical-form union: near-linear merge."""
    a = random_interval_set(3, count=n)
    b = random_interval_set(5, count=n)
    benchmark(lambda: a.union(b))


@pytest.mark.parametrize("n", [2, 4, 8])
def test_box_complement_fast_path(benchmark, n):
    """Complement via box splitting (the Section 2 encoding at work)."""
    boxes = BoxSet.from_relation(random_box_database(13, count=n)["R"])
    benchmark(boxes.complement)


@pytest.mark.parametrize("n", [1, 2, 3])
def test_generic_complement(benchmark, n):
    """Generic DNF complementation -- exponential in tuple count.

    Contrast with the box fast path above: the paper's point that
    shaped encodings matter.
    """
    relation = random_box_database(17, count=n)["R"]
    benchmark(relation.complement)
