"""E16 -- telemetry-pipeline overhead on the E12 micro-suite.

PR 4 widens the observability layer: every fixpoint round now emits a
structured log record (``repro.log/1``), every closed span is mirrored
into the always-on flight-recorder ring, and attached sinks receive
both.  The zero-cost contract of E14 must survive all of that:

* **disabled** (the shipped default): no tracer active, so the new
  ``tracer.log(...)`` calls sit behind the same ``if sp is not None:``
  guard as the E14 metrics -- the only cost is the existing single
  ContextVar read, and the flight recorder sees nothing;
* **traced**: a live tracer with *no* sinks -- records flow into the
  bounded flight ring only;
* **traced+ring**: a live tracer with an explicit
  :class:`~repro.obs.sink.RingBufferSink` attached;
* **traced+jsonl**: a live tracer streaming JSONL to ``os.devnull``,
  the honest upper bound of the pipeline.

Target (EXPERIMENTS.md E16): disabled-path overhead < 2% against the
monkeypatched no-op baseline.  Sinks are opt-in, so the traced modes
are reported, not gated.  ``test_report_overhead`` prints the measured
ratios directly (``pytest benchmarks/bench_e16_telemetry_overhead.py -s``)
and is the CI gate (lenient 1.5x hard limit -- single-shot timings are
noisy; the honest numbers come from the pytest-benchmark pairs).
"""

import os
import time

import pytest

from repro.core.evaluator import evaluate
from repro.datalog.engine import evaluate_program
from repro.obs import JsonlSink, RingBufferSink, Tracer
from repro.workloads.generators import (
    deep_negation_formula,
    fragmented_interval_database,
    slow_tc_workload,
)

MODES = ("disabled", "traced", "traced+ring", "traced+jsonl")


def _run(thunk, mode, devnull=None):
    if mode == "disabled":
        return thunk()
    tracer = Tracer()
    if mode == "traced+ring":
        tracer.add_sink(RingBufferSink(capacity=256))
    elif mode == "traced+jsonl":
        tracer.add_sink(JsonlSink(devnull if devnull is not None else os.devnull))
    try:
        with tracer:
            return thunk()
    finally:
        for sink in tracer.sinks:
            sink.close()


# ----------------------------------------------------------- benchmark pairs


@pytest.mark.parametrize("mode", MODES)
def test_datalog_fixpoint_telemetry(benchmark, mode):
    program, db = slow_tc_workload(6)
    benchmark(lambda: _run(lambda: evaluate_program(program, db), mode))


@pytest.mark.parametrize("mode", MODES)
def test_fo_negation_telemetry(benchmark, mode):
    db = fragmented_interval_database(8)
    formula = deep_negation_formula(2)
    benchmark(lambda: _run(lambda: evaluate(formula, db), mode))


# ------------------------------------------------------------------- report


def _best(thunk, repeat=5):
    out = float("inf")
    for _ in range(repeat):
        t0 = time.perf_counter()
        thunk()
        out = min(out, time.perf_counter() - t0)
    return out


def test_report_overhead(capsys, monkeypatch):
    """Print telemetry overhead ratios; fail only on gross regressions.

    The *baseline* column monkeypatches every instrumented module's
    ``active_tracer`` reference to ``lambda: None`` (as in E14), the
    nearest thing to engines with no telemetry compiled in.  The gated
    claim is the **disabled** column: log emission, span mirroring, and
    the flight ring must all hide behind the pre-existing ContextVar
    read when nobody is looking.
    """
    import repro.core.evaluator as m_eval
    import repro.core.qe as m_qe
    import repro.core.relation as m_rel
    import repro.datalog.engine as m_engine
    import repro.encoding.cells as m_cells
    import repro.runtime.guard as m_guard

    db = fragmented_interval_database(8)
    formula = deep_negation_formula(2)
    program, pdb = slow_tc_workload(6)

    workloads = {
        "fo-negation": lambda: evaluate(formula, db),
        "datalog-tc": lambda: evaluate_program(program, pdb),
    }

    def mode_run(thunk, mode):
        return lambda: _run(thunk, mode)

    timings = {
        mode: {name: _best(mode_run(thunk, mode)) for name, thunk in workloads.items()}
        for mode in MODES
    }

    for module in (m_rel, m_eval, m_qe, m_engine, m_cells, m_guard):
        monkeypatch.setattr(module, "active_tracer", lambda: None)
    baseline = {name: _best(thunk) for name, thunk in workloads.items()}

    with capsys.disabled():
        print("\nE16: telemetry overhead vs monkeypatched no-op baseline (best of 5)")
        print(f"  {'workload':12s}" + "".join(f" {mode:>13s}" for mode in MODES))
        worst = 0.0
        for name in workloads:
            row = f"  {name:12s}"
            for mode in MODES:
                ratio = timings[mode][name] / baseline[name]
                if mode == "disabled":
                    worst = max(worst, ratio)
                row += f" {ratio:12.3f}x"
            print(row)
        print(f"  worst disabled {worst:6.3f}x  (target < 1.02)")
    assert worst < 1.5, f"disabled-path telemetry overhead regressed: {worst:.2f}x"
