"""E13 -- budget-guard overhead on the E12 micro-suite.

The resource runtime (:mod:`repro.runtime`) must be cheap enough to
leave on everywhere: its checkpoints are a context-variable read plus a
counter bump, and a clock read only where a deadline is armed.  This
module measures the guarded/unguarded ratio on the same primitive
operations E12 times -- complement, join, quantifier elimination, and a
Datalog fixpoint -- with a full budget armed (deadline + tuple + round
+ depth caps, all far above what the workload uses, so enforcement
never fires and only checkpoint cost remains).

Target (EXPERIMENTS.md E13): < 5% overhead on the micro-suite.  The
``test_report_overhead`` function prints the measured ratios directly
(plain ``pytest benchmarks/bench_e13_budget_overhead.py -s``).
"""

import time

import pytest

from repro.core.evaluator import evaluate
from repro.core.formula import Not, rel
from repro.datalog.engine import evaluate_program
from repro.runtime.budget import Budget
from repro.runtime.guard import EvaluationGuard
from repro.workloads.generators import (
    deep_negation_formula,
    fragmented_interval_database,
    random_interval_set,
    slow_tc_workload,
)

#: every limit armed, none anywhere near the workloads below
ROOMY = Budget(
    deadline_seconds=3600.0,
    max_tuples=10**9,
    max_atoms_per_relation=10**9,
    max_rounds=10**6,
    max_depth=10**6,
)


def _guard():
    return EvaluationGuard(ROOMY)


# ----------------------------------------------------------- benchmark pairs


@pytest.mark.parametrize("guarded", [False, True], ids=["bare", "guarded"])
def test_complement_overhead(benchmark, guarded):
    relation = random_interval_set(21, count=4).to_relation("x")
    if guarded:
        def run():
            with _guard():
                return relation.complement()
    else:
        def run():
            return relation.complement()
    benchmark(run)


@pytest.mark.parametrize("guarded", [False, True], ids=["bare", "guarded"])
def test_join_overhead(benchmark, guarded):
    a = random_interval_set(3, count=8).to_relation("x")
    b = random_interval_set(9, count=8).to_relation("x")
    if guarded:
        def run():
            with _guard():
                return a.join(b)
    else:
        def run():
            return a.join(b)
    benchmark(run)


@pytest.mark.parametrize("guarded", [False, True], ids=["bare", "guarded"])
def test_fo_negation_overhead(benchmark, guarded):
    db = fragmented_interval_database(8)
    formula = deep_negation_formula(2)
    guard = _guard() if guarded else None
    benchmark(lambda: evaluate(formula, db, guard=guard))


@pytest.mark.parametrize("guarded", [False, True], ids=["bare", "guarded"])
def test_datalog_fixpoint_overhead(benchmark, guarded):
    program, db = slow_tc_workload(6)
    budget = ROOMY if guarded else None
    benchmark(lambda: evaluate_program(program, db, budget=budget))


# ------------------------------------------------------------------- report


def _ratio(workload, repeat=5):
    """Best-of-``repeat`` guarded/unguarded ratio for one thunk pair."""
    bare, guarded = workload

    def best(thunk):
        out = float("inf")
        for _ in range(repeat):
            t0 = time.perf_counter()
            thunk()
            out = min(out, time.perf_counter() - t0)
        return out

    return best(guarded) / best(bare)


def test_report_overhead(capsys):
    """Print guarded/unguarded ratios; fail only on gross regressions.

    Single-shot timings are noisy, so the hard gate here is lenient
    (50%); the honest numbers come from the benchmark pairs above via
    pytest-benchmark.  EXPERIMENTS.md records the < 5% target.
    """
    relation = random_interval_set(21, count=4).to_relation("x")
    a = random_interval_set(3, count=8).to_relation("x")
    b = random_interval_set(9, count=8).to_relation("x")
    db = fragmented_interval_database(8)
    formula = deep_negation_formula(2)
    program, pdb = slow_tc_workload(6)

    def complement_guarded():
        with _guard():
            relation.complement()

    def join_guarded():
        with _guard():
            a.join(b)

    workloads = {
        "complement": (relation.complement, complement_guarded),
        "join": (lambda: a.join(b), join_guarded),
        "fo-negation": (
            lambda: evaluate(formula, db),
            lambda: evaluate(formula, db, guard=_guard()),
        ),
        "datalog-tc": (
            lambda: evaluate_program(program, pdb),
            lambda: evaluate_program(program, pdb, budget=ROOMY),
        ),
    }
    with capsys.disabled():
        print("\nE13: guard overhead (guarded / unguarded, best of 5)")
        worst = 0.0
        for name, pair in workloads.items():
            ratio = _ratio(pair)
            worst = max(worst, ratio)
            print(f"  {name:12s} {ratio:6.3f}x")
        print(f"  worst        {worst:6.3f}x  (target < 1.05)")
    assert worst < 1.5, f"guard overhead regressed grossly: {worst:.2f}x"
