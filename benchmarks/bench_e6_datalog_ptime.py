"""E6 -- Theorem 4.4 (easy half): Datalog(not) evaluation is PTIME.

Paper artifact: "The inclusion of inflationary Datalog(not) in PTIME
has been shown in [KKR90]."

What this regenerates: wall-clock growth of inflationary fixpoint
evaluation over dense-order constraint databases as the data grows --
transitive closure over paths, reachability, and the interval-overlap
closure (a genuinely constraint-flavored recursion).  Expected shape:
polynomial in input size (with fixpoint round counts reported: linear
in the diameter).
"""

import pytest

from repro.core.relation import Relation
from repro.datalog.engine import evaluate_program
from repro.queries.library import (
    interval_overlap_tc_program,
    reachability_program,
    transitive_closure_program,
)
from repro.workloads.generators import interval_pairs_relation, path_graph

SIZES = [2, 4, 8]


@pytest.mark.parametrize("n", SIZES)
def test_transitive_closure_scaling(benchmark, n):
    db = path_graph(n)
    program = transitive_closure_program()
    result = benchmark(lambda: evaluate_program(program, db))
    assert result.reached_fixpoint


@pytest.mark.parametrize("n", SIZES)
def test_reachability_scaling(benchmark, n):
    db = path_graph(n)
    db["Src"] = Relation.from_points(("x",), [(0,)])
    program = reachability_program()
    result = benchmark(lambda: evaluate_program(program, db))
    assert result["reach"].contains_point([n - 1])


@pytest.mark.parametrize("n", [2, 3, 4])
def test_interval_overlap_closure(benchmark, n):
    """Constraint-heavy recursion: overlap closure of interval pairs."""
    db = interval_pairs_relation(41, count=n)
    program = interval_overlap_tc_program()
    result = benchmark(lambda: evaluate_program(program, db))
    assert result.reached_fixpoint


def test_report_round_counts(capsys):
    """Fixpoint rounds grow linearly with the path diameter."""
    rows = []
    for n in (2, 4, 8, 12):
        result = evaluate_program(transitive_closure_program(), path_graph(n))
        rows.append((n, result.rounds, len(result["tc"])))
    with capsys.disabled():
        print("\n[E6] inflationary fixpoint rounds (transitive closure):")
        print("  path length   rounds   tuples in tc")
        for n, rounds, tuples in rows:
            print(f"  {n:>11}   {rounds:>6}   {tuples:>12}")
    assert [r for _, r, _ in rows] == sorted(r for _, r, _ in rows)
