"""E4 -- Theorem 4.2: parity and graph connectivity are not FO+.

Paper artifact: "The graph connectivity and parity queries are not
linear (not in FO+)" (via the AC0 bounds of [FSS84]).

What this regenerates (the lower-bound *evidence*, since the theorem
is an impossibility):

* the EF table: minimal distinguishing quantifier rank of linear orders
  of sizes n vs n+1 -- grows like log2(n), so every fixed-rank sentence
  is eventually fooled while parity keeps alternating;
* connectivity analogue: one 2n-cycle vs two n-cycles become
  EF-equivalent as n grows;
* the exhaustive-search certificates: complete enumeration of the
  rank-<=r definable sentences on small families finds none computing
  parity.

Expected shape: distinguishing rank == floor(log2) + 1 thresholds
(exactly 2^r - 1); search explores thousands of queries and finds no
parity sentence.
"""

import pytest

from repro.genericity.ef_games import (
    FiniteStructure,
    duplicator_wins,
    linear_order,
    min_distinguishing_rank,
)
from repro.genericity.formula_search import search_sentence
from repro.workloads.generators import cycle_graph, disjoint_cycles


def graph_structure(db):
    """A finite graph database as an EF structure (undirected edges)."""
    vertices = [
        int(t.sample_point()["x"]) for t in db["V"].tuples
    ]
    edges = set()
    for t in db["E"].tuples:
        p = t.sample_point()
        a, b = int(p["x"]), int(p["y"])
        edges.add((a, b))
        edges.add((b, a))
    return FiniteStructure.make(sorted(vertices), {"E": edges})


@pytest.mark.parametrize("n", [1, 2, 3, 5])
def test_parity_ef_rank(benchmark, n):
    """Minimal rank distinguishing orders of sizes n and n+1.

    (n = 7 appears in the report table only: the rank-4 game on 8
    elements is too heavy for repeated benchmark rounds.)"""
    a, b = linear_order(n), linear_order(n + 1)
    rank = benchmark(lambda: min_distinguishing_rank(a, b, 3))
    # exact small-case thresholds (sizes >= 2^r - 1 are r-equivalent)
    expected = {1: 2, 2: 2, 3: 3, 5: 3}
    assert rank == expected[n]


@pytest.mark.parametrize("n", [2, 3, 4])
def test_connectivity_ef_game(benchmark, n):
    """One 2n-cycle vs two n-cycles: duplicator survives low ranks."""
    one = graph_structure(cycle_graph(2 * n))
    two = graph_structure(disjoint_cycles(n))
    result = benchmark(lambda: duplicator_wins(one, two, 2))
    if n >= 4:
        assert result  # rank-2 sentences cannot tell them apart


@pytest.mark.parametrize("rank", [0, 1])
def test_parity_search_certificate(benchmark, rank):
    """Exhaustive rank-r search over sizes 1..4: no parity sentence."""
    family = [linear_order(k) for k in range(1, 5)]
    target = [k % 2 == 1 for k in range(1, 5)]
    result = benchmark(
        lambda: search_sentence(family, target, variables=2, rank=rank)
    )
    assert not result.found


def test_search_positive_control(benchmark):
    """Control: 'at least 2 elements' IS found at rank 2 (pair family:
    the three-structure family is exact too, but too heavy to benchmark
    repeatedly)."""
    family = [linear_order(1), linear_order(2)]
    result = benchmark(
        lambda: search_sentence(family, [False, True], variables=2, rank=2)
    )
    assert result.found


def test_report_ef_table(capsys):
    """The headline table: n vs minimal distinguishing rank."""
    rows = []
    for n in (1, 2, 3, 5, 7):
        rank = min_distinguishing_rank(linear_order(n), linear_order(n + 1), 4)
        rows.append((n, rank))
    with capsys.disabled():
        print("\n[E4] parity lower bound (EF games):")
        print("  n vs n+1   min distinguishing rank")
        for n, rank in rows:
            print(f"  {n:>2} vs {n+1:<3}  {rank if rank is not None else '> 5'}")
    ranks = [r for _, r in rows if r is not None]
    assert ranks == sorted(ranks)  # monotone growth: no fixed rank suffices


@pytest.mark.parametrize("n", [4, 6])
def test_hanf_connectivity_certificate(benchmark, n):
    """Hanf locality: a 2n-cycle vs two n-cycles are locally identical
    at rank 1 -- the third, independent lower-bound instrument."""
    from repro.genericity.locality import hanf_indistinguishable

    one = graph_structure(cycle_graph(2 * n))
    two = graph_structure(disjoint_cycles(n))
    certified = benchmark(lambda: hanf_indistinguishable(one, two, 1))
    assert certified
