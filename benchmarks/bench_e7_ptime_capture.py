"""E7 -- Theorem 4.4 (hard half): PTIME is included in Datalog(not).

Paper artifact: the capture proof encodes "rational constants ...
into consecutive integers by respecting their order" and simulates any
PTIME query over the relational representation ([Var82, Imm86] over
the ordered finite structure), decoding the result in closed form.

What this regenerates: the full pipeline -- order-encode, run the
finite inflationary program, decode -- on concrete PTIME-complete-
flavored queries (cardinality parity, graph connectivity), with

* correctness against procedural references (in the tests),
* scaling of each pipeline stage,
* automorphism-invariance spot checks (Definition 3.1): the pipeline
  only sees order types.

Expected shape: every stage polynomial; encoding cost dominated by the
signature computation (cells x tuples); verdicts match references.
"""

from fractions import Fraction

import pytest

from repro.encoding.order_encoding import encode_instance
from repro.encoding.ptime import (
    capture_boolean,
    cardinality_parity_program,
    graph_connectivity_program,
)
from repro.datalog.finite import evaluate_finite
from repro.genericity.automorphisms import random_automorphism
from repro.queries.library import graph_connectivity_procedural, parity_procedural
from repro.workloads.generators import path_graph, point_set, random_finite_graph, rng_of

SIZES = [2, 4, 8]


@pytest.mark.parametrize("n", SIZES)
def test_encoding_stage(benchmark, n):
    """Order-encoding a point set: signature + auxiliary relations."""
    db = point_set(n)
    encoded = benchmark(lambda: encode_instance(db))
    assert len(encoded.instance["S"]) == n


@pytest.mark.parametrize("n", SIZES)
def test_parity_pipeline(benchmark, n):
    db = point_set(n)
    program = cardinality_parity_program("S")
    verdict = benchmark(lambda: capture_boolean(program, db, "result_odd"))
    assert verdict == (n % 2 == 1)
    assert verdict == parity_procedural(db)


@pytest.mark.parametrize("n", [3, 4, 5])
def test_connectivity_pipeline(benchmark, n):
    db = path_graph(n)
    program = graph_connectivity_program()
    verdict = benchmark(lambda: capture_boolean(program, db, "connected"))
    assert verdict


@pytest.mark.parametrize("n", SIZES)
def test_finite_evaluation_stage(benchmark, n):
    """The finite inflationary engine alone, on a pre-encoded instance."""
    db = point_set(n)
    encoded = encode_instance(db)
    program = cardinality_parity_program("S")
    result = benchmark(lambda: evaluate_finite(program, encoded.instance))
    assert result.reached_fixpoint


def test_report_capture_table(capsys):
    """Paper-vs-measured: capture verdicts == references, plus the
    invariance of the verdict under random automorphisms."""
    rows = []
    rng = rng_of(97)
    for seed in range(4):
        db = random_finite_graph(seed, vertex_count=4, edge_probability=0.4)
        reference = graph_connectivity_procedural(db)
        captured = capture_boolean(graph_connectivity_program(), db, "connected")
        phi = random_automorphism(rng, db.constants())
        moved = capture_boolean(
            graph_connectivity_program(), phi.apply_to_database(db), "connected"
        )
        rows.append((seed, reference, captured, moved))
    with capsys.disabled():
        print("\n[E7] PTIME capture pipeline (Theorem 4.4):")
        print("  seed  reference  captured  captured-after-automorphism")
        for seed, ref, cap, moved in rows:
            print(f"  {seed:>4}  {str(ref):>9}  {str(cap):>8}  {str(moved):>27}")
    assert all(ref == cap == moved for _, ref, cap, moved in rows)
