"""E19 -- cross-process trace stitching: capture overhead and off-switch.

Worker-side telemetry capture (:mod:`repro.obs.stitch`) must be cheap
when a tracer asks for it and free when it does not:

* **stitching overhead** — the E17 two-hop workload under a tracer
  with capture on (in-worker tracers, envelope pickling, parent-side
  grafting) versus the same traced run with ``capture=False``.
  Target (EXPERIMENTS.md E19): < 3%.  The hard gate is sized for CI
  timing noise, as in E13-E18; the honest numbers come from
  ``python benchmarks/collect_results.py`` (BENCH_STITCHING.json).
* **off-switch overhead** — the resilient dispatch loop with the
  capture plumbing present but no tracer active (the PR-default
  untraced path) versus the same loop under an active tracer with
  ``capture=False``.  Both dispatch bare kernels; the difference is
  the capture decision itself.  Target: < 1%.

Behavioral gates ride along: a captured run must stitch a worker span
for *every* dispatched shard and the merged document must validate.
"""

import os
import time

import pytest

from repro.obs import Tracer, trace_document, validate_trace
from repro.parallel import ExecutionContext

import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from bench_e17_parallel import join_heavy_relation, two_hop  # noqa: E402
from bench_e18_resilience import PAYLOADS, shard_work  # noqa: E402

CORES = os.cpu_count() or 1
WORKERS = 2


def _best(thunk, repeat=3):
    out = float("inf")
    for _ in range(repeat):
        t0 = time.perf_counter()
        thunk()
        out = min(out, time.perf_counter() - t0)
    return out


def _ctx(capture=True):
    return ExecutionContext(workers=WORKERS, pool="thread", capture=capture)


def _traced_two_hop(ctx, r):
    tracer = Tracer()
    with tracer, ctx:
        with tracer.span("bench"):
            two_hop(r)
    return tracer


# ----------------------------------------------------------- benchmark pairs


@pytest.mark.parametrize("mode", ["unstitched", "stitched"])
def test_traced_two_hop(benchmark, mode):
    r = join_heavy_relation()
    ctx = _ctx(capture=(mode == "stitched"))
    try:
        with ctx:
            _traced_two_hop(ctx, r)  # warm the pool
        benchmark(lambda: _traced_two_hop(ctx, r))
    finally:
        ctx.close()


# ------------------------------------------------------------------- report


def test_report_stitching(capsys):
    """Print capture overhead and off-switch overhead, gate both.

    The < 3% / < 1% numbers are the *targets*; the hard gates leave
    headroom for shared-runner scheduling noise, as in E13-E18.
    """
    r = join_heavy_relation()

    # capture overhead: traced run, capture on vs off, same pool kind
    off_ctx = _ctx(capture=False)
    try:
        _traced_two_hop(off_ctx, r)  # warm pool + kernel caches
        unstitched = _best(lambda: _traced_two_hop(off_ctx, r))
    finally:
        off_ctx.close()
    on_ctx = _ctx(capture=True)
    try:
        tracer = _traced_two_hop(on_ctx, r)  # warm + behavioral sample
        stitched = _best(lambda: _traced_two_hop(on_ctx, r))
    finally:
        on_ctx.close()
    overhead = stitched / unstitched - 1.0

    # behavioral: every dispatched shard stitched a worker span, and
    # the merged document is a single valid repro.trace/1
    workers = [s for s in tracer.spans if s.name.startswith("worker.")]
    shards = {(s.name, s.attrs.get("shard")) for s in workers}
    assert len(workers) >= 2 * 2  # join + project, 2 shards each
    assert all(s.attrs.get("attempt") == 1 for s in workers)
    validate_trace(trace_document(tracer))
    assert (
        tracer.metrics.counter("parallel.stitched_shards") == len(workers)
    )

    # off-switch: bare-kernel dispatch, no tracer vs tracer+capture=False
    plain_ctx = _ctx()
    try:
        plain_ctx.run_shards(shard_work, PAYLOADS)  # warm the pool
        untraced = _best(lambda: plain_ctx.run_shards(shard_work, PAYLOADS),
                         repeat=5)
        disabled_tracer = Tracer()
        with disabled_tracer:
            switch_ctx = _ctx(capture=False)
            try:
                switch_ctx.run_shards(shard_work, PAYLOADS)  # warm
                disabled = _best(
                    lambda: switch_ctx.run_shards(shard_work, PAYLOADS),
                    repeat=5,
                )
            finally:
                switch_ctx.close()
        assert not [
            s for s in disabled_tracer.spans if s.name.startswith("worker.")
        ]
    finally:
        plain_ctx.close()
    off_overhead = disabled / untraced - 1.0

    lines = [
        "",
        f"E19: trace stitching ({CORES} cores, {WORKERS} workers)",
        f"  traced, capture off    {unstitched:8.4f} s",
        f"  traced, capture on     {stitched:8.4f} s  "
        f"({overhead:+.2%} overhead, target < 3%)",
        f"  untraced dispatch      {untraced:8.4f} s",
        f"  off-switch dispatch    {disabled:8.4f} s  "
        f"({off_overhead:+.2%} overhead, target < 1%)",
        f"  stitched worker spans  {len(workers)} over {len(shards)} shard(s)",
    ]
    with capsys.disabled():
        print("\n".join(lines))

    assert overhead < 0.25, (
        f"capture + stitching is no longer near-free: {overhead:.1%}"
    )
    assert off_overhead < 0.10, (
        f"the capture off-switch itself costs: {off_overhead:.1%}"
    )


def test_stitching_is_deterministic_per_shard():
    """Every repeat of a captured run stitches the same shard set (the
    shard → span mapping is structural, not timing-dependent)."""
    r = join_heavy_relation()
    seen = []
    for _ in range(2):
        ctx = _ctx(capture=True)
        try:
            tracer = _traced_two_hop(ctx, r)
        finally:
            ctx.close()
        seen.append(sorted(
            (s.name, s.attrs.get("shard"))
            for s in tracer.spans
            if s.name.startswith("worker.")
        ))
    assert seen[0] == seen[1]
    assert seen[0]
