"""E21 -- trace-analysis throughput and memory-attribution overhead.

Two claims from the observability toolkit, measured:

* **Analysis is interactive.**  Critical-path extraction, hotspot
  aggregation, flame export, and trace diffing are all single-pass
  (plus one sort) over the span list: on a synthetic 5,000-span
  document shaped like a real stitched fixpoint trace, the full
  ``analyze + flame + diff`` pipeline must finish in under one second
  (EXPERIMENTS.md E21).

* **``--memory`` is gated cheap, honestly.**  The default ``rss``
  backend (``ru_maxrss`` growth + ``sys.getallocatedblocks()`` deltas)
  adds < 5% to a traced E14-style workload, and results are
  byte-identical with the profiler armed.  The ``tracemalloc`` backend
  is *reported, not gated* -- exact allocation tracing costs what
  tracemalloc costs (~3x on allocation-heavy runs), which is why it is
  opt-in.  With ``--memory`` off there is nothing to gate: the span
  close path pays one ``is None`` test, and the trace carries no
  memory attrs at all (asserted, not timed).

Run directly: ``pytest benchmarks/bench_e21_analysis.py -s``.
"""

import time

import pytest

from repro.core.evaluator import evaluate
from repro.datalog.engine import evaluate_program
from repro.obs import (
    MemoryProfiler,
    Tracer,
    analyze_trace,
    diff_traces,
    speedscope_document,
    validate_speedscope,
)
from repro.workloads.generators import (
    deep_negation_formula,
    fragmented_interval_database,
    slow_tc_workload,
)

#: E21 gate: full analysis pipeline on this many spans in under a second
SPAN_COUNT = 5000
ANALYSIS_BUDGET_SECONDS = 1.0


def synthetic_trace(n_spans: int = SPAN_COUNT) -> dict:
    """A trace document shaped like a stitched fixpoint run: rounds
    under a root, operators under rounds, worker shards (with pid/
    shard/attempt attrs) under every fourth operator."""
    spans = [
        {"id": 1, "parent": None, "name": "datalog.seminaive",
         "start": 0.0, "end": float(n_spans), "attrs": {}}
    ]
    next_id = 2
    cursor = 0.0
    names = ("relation.join", "relation.project", "qe.eliminate",
             "relation.complement")
    while len(spans) < n_spans:
        round_id = next_id
        next_id += 1
        round_start = cursor
        round_span = {"id": round_id, "parent": 1,
                      "name": "datalog.seminaive.round",
                      "start": round_start, "end": round_start,
                      "attrs": {"round": round_id}}
        spans.append(round_span)
        for k in range(8):
            if len(spans) >= n_spans:
                break
            op_id = next_id
            next_id += 1
            spans.append({"id": op_id, "parent": round_id,
                          "name": names[k % len(names)],
                          "start": cursor, "end": cursor + 1.0,
                          "attrs": {}})
            if k % 4 == 0 and len(spans) < n_spans:
                spans.append({"id": next_id, "parent": op_id,
                              "name": "worker.join_shard",
                              "start": cursor + 0.1, "end": cursor + 0.9,
                              "attrs": {"pid": 1234, "shard": k // 4,
                                        "attempt": 1}})
                next_id += 1
            cursor += 1.0
        round_span["end"] = cursor
    spans[0]["end"] = cursor
    return {"spans": spans, "metrics": {"counters": {"qe.calls": n_spans}}}


def _best(thunk, repeat=5):
    out = float("inf")
    for _ in range(repeat):
        t0 = time.perf_counter()
        thunk()
        out = min(out, time.perf_counter() - t0)
    return out


# ------------------------------------------------------ analysis throughput


def test_analyze_5k_spans(benchmark):
    document = synthetic_trace()
    benchmark(lambda: analyze_trace(document))


def test_flame_5k_spans(benchmark):
    document = synthetic_trace()
    benchmark(lambda: speedscope_document(document))


def test_diff_5k_spans(benchmark):
    before = synthetic_trace()
    after = synthetic_trace()
    benchmark(lambda: diff_traces(before, after))


def test_gate_full_pipeline_under_one_second():
    """The E21 hard gate: analyze + validate-flame + diff on a
    5,000-span trace completes within the one-second budget."""
    before = synthetic_trace()
    after = synthetic_trace()

    def pipeline():
        analysis = analyze_trace(after)
        assert analysis["spans"] == SPAN_COUNT
        validate_speedscope(speedscope_document(after))
        diff_traces(before, after)

    seconds = _best(pipeline, repeat=3)
    assert seconds < ANALYSIS_BUDGET_SECONDS, (
        f"5k-span analysis pipeline took {seconds:.3f}s "
        f"(budget {ANALYSIS_BUDGET_SECONDS}s)"
    )


def test_analysis_reconciles_at_scale():
    """The exact-decomposition invariant holds on the big trace too."""
    analysis = analyze_trace(synthetic_trace())
    path_total = sum(s["seconds"] for s in analysis["critical_path"])
    assert path_total == pytest.approx(analysis["total_seconds"], rel=0.01)


# ------------------------------------------------- memory-capture overhead


def _e14_workloads():
    """The E14 generators at sizes where operators carry real tuples.

    The rss backend's cost is a *fixed* ~1.3µs per relation-algebra
    call (two ``getrusage`` + two ``getallocatedblocks``), so its
    percentage overhead is purely a function of how much work each
    operator call does: the E14 micro sizes (db=8, tc=6) are dominated
    by per-call dispatch and measure ~6-17%, while these sizes measure
    the documented < 5%.  Both statements are true; the gate holds for
    workloads whose operators process non-trivial relations, which is
    exactly when anyone reaches for ``--memory``.
    """
    db = fragmented_interval_database(16)
    formula = deep_negation_formula(2)
    program, pdb = slow_tc_workload(10)
    return {
        "fo-negation": lambda: evaluate(formula, db),
        "datalog-tc": lambda: evaluate_program(program, pdb),
    }


def _traced(thunk, backend=None):
    def go():
        tracer = Tracer()
        if backend is not None:
            tracer.memory = MemoryProfiler(backend)
        with tracer:
            return thunk()
    return go


@pytest.mark.parametrize("backend", (None, "rss", "tracemalloc"))
def test_memory_overhead_fo(benchmark, backend):
    workloads = _e14_workloads()
    benchmark(_traced(workloads["fo-negation"], backend))


def test_results_byte_identical_under_memory_capture():
    """The gate's precondition: arming the profiler never changes what
    the engine computes (attrs change, results don't)."""
    db = fragmented_interval_database(8)
    formula = deep_negation_formula(2)
    plain = evaluate(formula, db)
    tracer = Tracer()
    tracer.memory = MemoryProfiler("rss")
    with tracer:
        traced = evaluate(formula, db)
    assert traced.tuples == plain.tuples
    assert any("mem_alloc_blocks" in s.attrs for s in tracer.spans)


def test_memory_off_attaches_nothing():
    """--memory off is free by construction: no profiler object, no
    memory attrs anywhere in the trace."""
    db = fragmented_interval_database(8)
    tracer = Tracer()
    with tracer:
        evaluate(deep_negation_formula(2), db)
    assert all("mem_alloc_blocks" not in s.attrs for s in tracer.spans)


def test_report_memory_overhead(capsys):
    """Print traced-baseline vs rss vs tracemalloc ratios; gate rss.

    Single-shot timings are noisy, so the in-bench hard gate is
    lenient (25% on the rss backend across the workload set);
    EXPERIMENTS.md records the honest < 5% target measured by the
    pytest-benchmark pairs above.  tracemalloc is reported only.
    """
    workloads = _e14_workloads()
    rows = []
    for name, thunk in workloads.items():
        base = _best(_traced(thunk))
        rss = _best(_traced(thunk, "rss"))
        traced = _best(_traced(thunk, "tracemalloc"))
        rows.append((name, base, rss, traced))

    with capsys.disabled():
        print("\nE21: per-span memory attribution overhead (best of 5)")
        print(f"{'workload':<14} {'traced':>10} {'rss':>10} {'+%':>7} "
              f"{'tracemalloc':>12} {'+%':>8}")
        for name, base, rss, traced in rows:
            print(
                f"{name:<14} {base * 1000:9.2f}ms {rss * 1000:9.2f}ms "
                f"{100 * (rss / base - 1):+6.1f}% {traced * 1000:11.2f}ms "
                f"{100 * (traced / base - 1):+7.1f}%"
            )

    worst = max(rss / base for _, base, rss, _ in rows)
    assert worst < 1.25, (
        f"rss memory backend overhead {100 * (worst - 1):.1f}% "
        "exceeds even the lenient in-bench bound"
    )
