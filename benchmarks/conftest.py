"""Shared benchmark configuration.

Each ``bench_e*.py`` module regenerates one experiment of
EXPERIMENTS.md (mapped to the paper in DESIGN.md Section 5).  Run::

    pytest benchmarks/ --benchmark-only

pytest-benchmark prints the per-parameter timing tables; the series
*shapes* (polynomial vs exponential growth, who wins, crossovers) are
the reproduction targets, not absolute times.
"""

import pytest
