"""E15 -- kernel memo cache and interning pool payoff.

The fast path (:mod:`repro.perf`) must pay for itself twice over: the
memoized kernel (``frozenset(atoms)`` -> order graph / canonical form /
satisfiability) should make fixpoint workloads measurably faster, and
the ``--no-cache`` escape hatch must cost nearly nothing -- every
kernel method's disabled branch is a single attribute read in front of
the original straight-line code.

Targets (EXPERIMENTS.md E15): >= 1.5x cached speedup on the Datalog
transitive-closure workloads; < 2% overhead on the disabled path
versus an inline kernel.  ``test_report_kernel_cache`` prints the
measured ratios directly (plain
``pytest benchmarks/bench_e15_kernel_cache.py -s``) with lenient hard
gates sized for timing noise.
"""

import time

import pytest

from repro.core.atoms import le, lt
from repro.core.ordergraph import OrderGraph
from repro.core.theory import DENSE_ORDER
from repro.datalog.engine import evaluate_program
from repro.datalog.seminaive import evaluate_seminaive
from repro.perf import kernel_cache_disabled, reset_kernel_cache
from repro.queries.library import transitive_closure_program
from repro.workloads.generators import path_graph, slow_tc_workload


def _tc_thunks():
    program, db = slow_tc_workload(6)
    tc = transitive_closure_program()
    chain = path_graph(10)
    return {
        "datalog-naive-tc": lambda: evaluate_program(program, db),
        "datalog-naive-path": lambda: evaluate_program(tc, chain),
        "datalog-seminaive-path": lambda: evaluate_seminaive(tc, chain),
    }


# ----------------------------------------------------------- benchmark pairs


@pytest.mark.parametrize("cached", [False, True], ids=["no-cache", "cached"])
def test_tc_fixpoint(benchmark, cached):
    program, db = slow_tc_workload(6)
    if cached:
        reset_kernel_cache()
        benchmark(lambda: evaluate_program(program, db))
    else:
        def run():
            with kernel_cache_disabled():
                evaluate_program(program, db)
        benchmark(run)


@pytest.mark.parametrize("cached", [False, True], ids=["no-cache", "cached"])
def test_seminaive_fixpoint(benchmark, cached):
    program = transitive_closure_program()
    db = path_graph(10)
    if cached:
        reset_kernel_cache()
        benchmark(lambda: evaluate_seminaive(program, db))
    else:
        def run():
            with kernel_cache_disabled():
                evaluate_seminaive(program, db)
        benchmark(run)


# ------------------------------------------------------------------- report


def _best(thunk, repeat=5):
    out = float("inf")
    for _ in range(repeat):
        t0 = time.perf_counter()
        thunk()
        out = min(out, time.perf_counter() - t0)
    return out


def _inline_kernel(conjunction):
    """The pre-cache kernel, verbatim (seed canonicalize_if_satisfiable)."""
    graph = OrderGraph(conjunction)
    if not graph.is_satisfiable():
        return None
    return graph.canonical_atoms()


def test_report_kernel_cache(capsys):
    """Print cached/disabled ratios; fail only on gross regressions.

    Single-shot timings are noisy, so the hard gates here are lenient
    (>= 1.5x on the naive TC speedup, < 10% on the disabled micro
    path); the honest numbers come from the benchmark pairs above via
    pytest-benchmark.  EXPERIMENTS.md records the 1.5x / 2% targets.
    """
    lines = ["", "E15: kernel cache payoff (disabled / cached, best of 5)"]
    speedups = {}
    for name, thunk in _tc_thunks().items():
        reset_kernel_cache()
        thunk()  # warm the memo cache once; steady state is what ships
        warm = _best(thunk)
        with kernel_cache_disabled():
            cold = _best(thunk)
        speedups[name] = cold / warm
        lines.append(f"  {name:22s} {cold / warm:6.3f}x")

    conjs = [[lt("x", "y"), le("y", i), le(i - 7, "x")] for i in range(40)]

    def run_inline():
        for c in conjs:
            _inline_kernel(c)

    def run_disabled_path():
        for c in conjs:
            DENSE_ORDER.canonicalize_if_satisfiable(c)

    def batched(thunk):
        return _best(lambda: [thunk() for _ in range(20)], repeat=40)

    with kernel_cache_disabled():
        inline_time = batched(run_inline)
        disabled_time = batched(run_disabled_path)
    overhead = disabled_time / inline_time - 1.0
    lines.append(
        f"  no-cache overhead      {overhead:+6.2%}  (target < 2%)"
    )
    lines.append(
        f"  worst tc speedup       "
        f"{min(speedups.values()):6.3f}x  (target >= 1.5x)"
    )
    with capsys.disabled():
        print("\n".join(lines))

    worst = speedups["datalog-naive-tc"]
    assert worst >= 1.5, f"kernel cache payoff regressed: {worst:.2f}x on TC"
    assert overhead < 0.10, f"disabled path is no longer cheap: {overhead:.1%}"


def test_modes_agree():
    """Same fixpoint, tuple for tuple, with and without the fast path."""
    program, db = slow_tc_workload(5)
    reset_kernel_cache()
    cached = evaluate_program(program, db)
    with kernel_cache_disabled():
        plain = evaluate_program(program, db)
    for name in cached.database.names():
        assert cached[name].tuples == plain[name].tuples
