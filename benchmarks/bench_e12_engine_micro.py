"""E12 -- engine micro-costs: QE, joins, negation blowup.

Not a paper table: the ablation series DESIGN.md calls for.  These
micro-benchmarks isolate the engine's primitive costs so the experiment
series E2-E10 can be interpreted:

* quantifier elimination per variable (bound-pair composition);
* natural join fan-out (tuples x tuples satisfiability checks);
* complement blowup in the number of representation tuples -- the one
  genuinely exponential primitive (and why `difference` prunes early);
* canonicalization (OrderGraph closure) per conjunction size.
"""

import pytest

from repro.core.atoms import le, lt
from repro.core.gtuple import GTuple
from repro.core.ordergraph import OrderGraph
from repro.core.relation import Relation
from repro.core.theory import DENSE_ORDER
from repro.workloads.generators import random_interval_set


@pytest.mark.parametrize("chain", [2, 4, 8, 16])
def test_quantifier_elimination_chain(benchmark, chain):
    """Eliminate the middle of an inequality chain of given length."""
    schema = tuple(f"v{i}" for i in range(chain))
    atoms = [lt(f"v{i}", f"v{i+1}") for i in range(chain - 1)]
    t = GTuple.make(DENSE_ORDER, schema, atoms)

    def run():
        current = t
        for i in range(1, chain - 1):
            [current] = current.project_out_all(f"v{i}")
        return current

    result = benchmark(run)
    assert result.schema == ("v0", f"v{chain-1}")


@pytest.mark.parametrize("n", [2, 4, 8])
def test_join_fanout(benchmark, n):
    """Join of two n-tuple unary relations on a shared column."""
    a = random_interval_set(3, count=n).to_relation("x")
    b = random_interval_set(9, count=n).to_relation("x")
    benchmark(lambda: a.join(b))


@pytest.mark.parametrize("n", [1, 2, 3, 4])
def test_complement_blowup(benchmark, n):
    """Complement cost vs number of representation tuples."""
    relation = random_interval_set(21, count=n).to_relation("x")
    benchmark(relation.complement)


@pytest.mark.parametrize("atoms", [4, 8, 16])
def test_ordergraph_closure(benchmark, atoms):
    """Satisfiability + canonical form of one conjunction."""
    conjunction = [lt(f"w{i}", f"w{i+1}") for i in range(atoms)]
    conjunction += [le(0, "w0"), le(f"w{atoms}", 100)]

    def run():
        g = OrderGraph(conjunction)
        return g.canonical_atoms()

    result = benchmark(run)
    assert result


@pytest.mark.parametrize("n", [2, 4, 8])
def test_equivalence_check(benchmark, n):
    """Relation equivalence: two containments via complement."""
    a = random_interval_set(33, count=n).to_relation("x")
    b = a.simplify()
    assert benchmark(lambda: a.equivalent(b))


@pytest.mark.parametrize("engine", ["naive", "seminaive"])
def test_datalog_engine_ablation(benchmark, engine):
    """Naive vs semi-naive fixpoint evaluation (ablation): deltas cut
    the join fan-in roughly in half on path transitive closure."""
    from repro.datalog.engine import evaluate_program
    from repro.datalog.seminaive import evaluate_seminaive
    from repro.queries.library import transitive_closure_program
    from repro.workloads.generators import path_graph

    db = path_graph(8)
    program = transitive_closure_program()
    run = evaluate_program if engine == "naive" else evaluate_seminaive
    result = benchmark(lambda: run(program, db))
    assert result.reached_fixpoint


@pytest.mark.parametrize("mode", ["direct", "plan", "optimized-plan"])
def test_query_processing_ablation(benchmark, mode):
    """Evaluator vs naive plan vs optimized plan on a selective join.

    Selection pushdown should never lose and typically wins when the
    filter is selective.
    """
    from repro.core.atoms import lt as LT
    from repro.core.evaluator import evaluate
    from repro.core.formula import constraint, exists, rel
    from repro.core.planner import compile_formula, execute, optimize
    from repro.workloads.generators import random_interval_database

    db = random_interval_database(71, count=10)
    f = exists(
        "y",
        rel("S", "x") & rel("S", "y") & constraint(LT("x", "y"))
        & constraint(LT("y", -20)),
    )
    if mode == "direct":
        run = lambda: evaluate(f, db)
    elif mode == "plan":
        plan = compile_formula(f)
        run = lambda: execute(plan, db)
    else:
        plan = optimize(compile_formula(f), db)
        run = lambda: execute(plan, db)
    result = benchmark(run)
    assert result.arity == 1
