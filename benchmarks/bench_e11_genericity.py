"""E11 -- Definition 3.1: queries are closed under automorphisms of Q.

Paper artifact: the definition of a dense-order query (closure under
automorphisms of (Q, <=)) and Section 4's observation that FO and
Datalog(not) define queries while FO+ mappings in general do not.

What this regenerates: batched genericity checks --

* FO and Datalog(not) outputs commute with seeded random automorphisms
  (always pass);
* the FO+ midpoint mapping is refuted (a concrete witness map);
* cost of the check itself (apply map + evaluate + equivalence).

Expected shape: 100% pass rate for FO/Datalog series, refutation for
the midpoint mapping, check cost dominated by relation equivalence.
"""

import pytest

from repro.core.atoms import lt
from repro.core.evaluator import evaluate
from repro.core.formula import constraint, exists, rel
from repro.core.relation import Relation
from repro.datalog.engine import evaluate_program
from repro.genericity.checks import check_boolean_generic, check_generic
from repro.queries.library import parity_procedural, transitive_closure_program
from repro.workloads.generators import path_graph, point_set, random_interval_database

SIZES = [2, 4, 8]


def fo_query(database):
    f = exists("y", rel("S", "x") & rel("S", "y") & constraint(lt("x", "y")))
    return evaluate(f, database)


def datalog_query(database):
    return evaluate_program(transitive_closure_program(), database)["tc"]


@pytest.mark.parametrize("n", SIZES)
def test_fo_genericity_check(benchmark, n):
    db = random_interval_database(59, count=n)
    report = benchmark(lambda: check_generic(fo_query, db, count=4, seed=n))
    assert report.generic


@pytest.mark.parametrize("n", [3, 5])
def test_datalog_genericity_check(benchmark, n):
    db = path_graph(n)
    report = benchmark(lambda: check_generic(datalog_query, db, count=3, seed=n))
    assert report.generic


@pytest.mark.parametrize("n", [2, 4])
def test_boolean_genericity_check(benchmark, n):
    db = point_set(n)
    report = benchmark(
        lambda: check_boolean_generic(lambda d: parity_procedural(d, "S"), db, count=4)
    )
    assert report.generic


def test_report_genericity_table(capsys):
    """Paper-vs-measured: which mappings are queries (Definition 3.1)."""
    from fractions import Fraction

    from repro.core.database import Database
    from repro.genericity.automorphisms import moving

    db = Database()
    db["S"] = Relation.from_points(("x",), [(0,), (4,)])

    def midpoints(database):
        values = sorted(t.sample_point()["x"] for t in database["S"].tuples)
        points = {(a + b) / 2 for a in values for b in values}
        return Relation.from_points(("z",), [(p,) for p in points])

    phi = moving({0: Fraction(0), 2: Fraction(10), 4: Fraction(12)})
    rows = [
        ("FO self-join (dense order)", check_generic(fo_query, point_set(3), count=6).generic, True),
        ("Datalog(not) transitive closure", check_generic(datalog_query, path_graph(4), count=4).generic, True),
        ("parity (boolean)", check_boolean_generic(lambda d: parity_procedural(d, "S"), point_set(3), count=6).generic, True),
        ("FO+ midpoint mapping", check_generic(midpoints, db, automorphisms=[phi]).generic, False),
    ]
    with capsys.disabled():
        print("\n[E11] genericity (Definition 3.1):")
        print("  mapping                              generic   paper says")
        for name, got, expected in rows:
            verdict = "query" if expected else "NOT a query"
            print(f"  {name:<36} {str(got):>7}   {verdict}")
    assert all(got == expected for _, got, expected in rows)
