"""E9 -- Theorems 5.3-5.5: the hyper-exponential C-CALC hierarchy.

Paper artifact: ``H_i-TIME <= C-CALC_{i+1} <= H_i-SPACE`` and the
hierarchy does not collapse: each level of set nesting buys (and
costs) one more exponential; C-CALC as a whole is exactly the
hyper-exponential queries (Corollary 5.5).

What this regenerates: the *measured* active-domain cardinalities per
set-height (the resource the theorems count), enumeration cost at
heights 0-2, and the blowup table |adom| as a function of (constants,
set-height).  Expected shape: |adom(height i+1)| = 2^|adom(height i)|
exactly -- the tower function, measured rather than asymptotic.
"""

import pytest

from repro.cobjects.active_domain import ActiveDomain
from repro.cobjects.types import Q, SetType, TupleType
from repro.workloads.generators import point_set


def tower(base, height):
    value = base
    for _ in range(height):
        value = 2 ** value
    return value


@pytest.mark.parametrize("m", [1, 2, 3])
def test_enumerate_height_one(benchmark, m):
    """Materializing adom({Q}): all unions of cells."""
    ad = ActiveDomain(point_set(m))
    objects = benchmark(lambda: list(ad.enumerate(SetType(Q))))
    assert len(objects) == 2 ** (2 * m + 1)


def test_enumerate_binary_sets(benchmark):
    """adom({[Q, Q]}) for one constant: 2^13 region objects.

    (Two constants would already mean 2^31 objects -- the blowup is the
    measurement; only m = 1 is materializable, larger m are counted via
    ``domain_size`` below.)"""
    ad = ActiveDomain(point_set(1))
    count = ad.decomposition.type_count(2)
    objects = benchmark(
        lambda: sum(1 for _ in ad.enumerate(SetType(TupleType((Q, Q)))))
    )
    assert objects == 2 ** count


@pytest.mark.parametrize("m", [2, 3])
def test_binary_set_domain_size_counted(benchmark, m):
    """Cardinality without materialization for the infeasible sizes."""
    ad = ActiveDomain(point_set(m))
    size = benchmark(lambda: ad.domain_size(SetType(TupleType((Q, Q)))))
    assert size == 2 ** ad.decomposition.type_count(2)


def test_enumerate_height_two(benchmark):
    """adom({{Q}}) on the constant-free input: powerset of powerset."""
    ad = ActiveDomain(point_set(0))
    objects = benchmark(lambda: list(ad.enumerate(SetType(SetType(Q)))))
    assert len(objects) == 4


def test_report_tower_table(capsys):
    """The non-collapsing hierarchy, measured: exact |adom| per height."""
    rows = []
    for m in (0, 1, 2):
        ad = ActiveDomain(point_set(m))
        cells = ad.domain_size(Q)
        sizes = [
            ad.domain_size(Q),
            ad.domain_size(SetType(Q)),
            ad.domain_size(SetType(SetType(Q))),
        ]
        rows.append((m, cells, sizes))
    with capsys.disabled():
        print("\n[E9] active-domain sizes by set-height (the H_i tower):")
        print("  constants  cells  height0  height1  height2")
        for m, cells, sizes in rows:
            h2 = sizes[2]
            h2_text = str(h2) if h2 < 10 ** 12 else f"2**{sizes[1]}"
            print(
                f"  {m:>9}  {cells:>5}  {sizes[0]:>7}  {sizes[1]:>7}  {h2_text:>9}"
            )
    for m, cells, sizes in rows:
        assert sizes[1] == 2 ** sizes[0]
        assert sizes[2] == 2 ** sizes[1]
