"""E14 -- tracing overhead on the E12 micro-suite.

The observability layer (:mod:`repro.obs`) must cost nothing when
nobody is looking: every instrumented site pays exactly one
context-variable read (``active_tracer()``) before bailing out.  This
module measures that claim two ways on the same primitive operations
E12 and E13 time -- complement, join, an FO query with negation, and a
Datalog fixpoint:

* **disabled**: instrumented code with no tracer active, against a
  baseline where each module's ``active_tracer`` reference is
  monkeypatched to ``lambda: None`` (the closest approximation of
  uninstrumented code without keeping two copies of the engines);
* **enabled**: the same workloads inside ``with Tracer():``, to record
  the honest price of actually collecting spans and metrics.

Target (EXPERIMENTS.md E14): disabled-path overhead < 5% on the
micro-suite.  The enabled path is reported, not gated -- tracing is
opt-in, so its cost only has to be small enough to leave on during
development (~tens of percent is fine).  ``test_report_overhead``
prints the measured ratios directly
(plain ``pytest benchmarks/bench_e14_trace_overhead.py -s``).
"""

import time

import pytest

from repro.core.evaluator import evaluate
from repro.datalog.engine import evaluate_program
from repro.obs import Tracer
from repro.workloads.generators import (
    deep_negation_formula,
    fragmented_interval_database,
    random_interval_set,
    slow_tc_workload,
)

MODES = ("disabled", "enabled")


def _run(thunk, mode):
    if mode == "enabled":
        with Tracer():
            return thunk()
    return thunk()


# ----------------------------------------------------------- benchmark pairs


@pytest.mark.parametrize("mode", MODES)
def test_complement_overhead(benchmark, mode):
    relation = random_interval_set(21, count=4).to_relation("x")
    benchmark(lambda: _run(relation.complement, mode))


@pytest.mark.parametrize("mode", MODES)
def test_join_overhead(benchmark, mode):
    a = random_interval_set(3, count=8).to_relation("x")
    b = random_interval_set(9, count=8).to_relation("x")
    benchmark(lambda: _run(lambda: a.join(b), mode))


@pytest.mark.parametrize("mode", MODES)
def test_fo_negation_overhead(benchmark, mode):
    db = fragmented_interval_database(8)
    formula = deep_negation_formula(2)
    benchmark(lambda: _run(lambda: evaluate(formula, db), mode))


@pytest.mark.parametrize("mode", MODES)
def test_datalog_fixpoint_overhead(benchmark, mode):
    program, db = slow_tc_workload(6)
    benchmark(lambda: _run(lambda: evaluate_program(program, db), mode))


# ------------------------------------------------------------------- report


def _best(thunk, repeat=5):
    out = float("inf")
    for _ in range(repeat):
        t0 = time.perf_counter()
        thunk()
        out = min(out, time.perf_counter() - t0)
    return out


def test_report_overhead(capsys, monkeypatch):
    """Print tracing overhead ratios; fail only on gross regressions.

    The *baseline* column monkeypatches every instrumented module's
    ``active_tracer`` reference to a plain ``lambda: None``, removing
    even the ContextVar read -- the nearest thing to uninstrumented
    engines.  ``disabled`` is the shipped fast path (real ContextVar
    read, no tracer); ``enabled`` runs inside a live tracer.

    Single-shot timings are noisy, so the hard gate is lenient (50% on
    the disabled path); the honest numbers come from the benchmark
    pairs above via pytest-benchmark.  EXPERIMENTS.md records the < 5%
    target.
    """
    import repro.core.evaluator as m_eval
    import repro.core.qe as m_qe
    import repro.core.relation as m_rel
    import repro.datalog.engine as m_engine
    import repro.encoding.cells as m_cells
    import repro.runtime.guard as m_guard

    relation = random_interval_set(21, count=4).to_relation("x")
    a = random_interval_set(3, count=8).to_relation("x")
    b = random_interval_set(9, count=8).to_relation("x")
    db = fragmented_interval_database(8)
    formula = deep_negation_formula(2)
    program, pdb = slow_tc_workload(6)

    workloads = {
        "complement": relation.complement,
        "join": lambda: a.join(b),
        "fo-negation": lambda: evaluate(formula, db),
        "datalog-tc": lambda: evaluate_program(program, pdb),
    }

    disabled = {name: _best(thunk) for name, thunk in workloads.items()}

    def enabled_run(thunk):
        def go():
            with Tracer():
                thunk()
        return go

    enabled = {name: _best(enabled_run(thunk)) for name, thunk in workloads.items()}

    for module in (m_rel, m_eval, m_qe, m_engine, m_cells, m_guard):
        monkeypatch.setattr(module, "active_tracer", lambda: None)
    baseline = {name: _best(thunk) for name, thunk in workloads.items()}

    with capsys.disabled():
        print("\nE14: tracing overhead vs monkeypatched no-op baseline (best of 5)")
        print(f"  {'workload':12s} {'disabled':>9s} {'enabled':>9s}")
        worst = 0.0
        for name in workloads:
            off = disabled[name] / baseline[name]
            on = enabled[name] / baseline[name]
            worst = max(worst, off)
            print(f"  {name:12s} {off:8.3f}x {on:8.3f}x")
        print(f"  worst disabled {worst:6.3f}x  (target < 1.05)")
    assert worst < 1.5, f"disabled-path tracing overhead regressed: {worst:.2f}x"
