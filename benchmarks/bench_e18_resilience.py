"""E18 -- resilient dispatch: zero-fault overhead and recovery latency.

The fault-tolerant dispatch loop (:mod:`repro.parallel.resilience`)
must be free when nothing fails and cheap when something does:

* **zero-fault overhead** — the resilient loop (per-shard deadline
  arithmetic, attempt accounting, the chaos-spec gate) versus a bare
  ``executor.map`` over the same payloads on an identical pool.
  Target (EXPERIMENTS.md E18): < 3% on shard-sized work.  The hard
  gate here is sized for CI timing noise, as in E13-E17; the honest
  numbers come from ``python benchmarks/collect_results.py``
  (BENCH_RESILIENCE.json).
* **recovery latency** — the same batch under a seeded 10%
  transient-fault rate at the shard site: every failure is retried
  with backoff and the batch still completes with correct results.
  Reported as added seconds per recovery action, which bounds what a
  flaky worker fleet costs a query.
"""

import os
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.parallel import ExecutionContext, ResiliencePolicy
from repro.runtime.faults import FaultRegistry, TransientEvaluationError

CORES = os.cpu_count() or 1
WORKERS = 2
SHARDS = 16
#: the fault site run_shard derives for the kernel below
SITE = "worker.shard_work"
#: the 10% transient-fault rate of the recovery measurement
FAULT_RATE = 0.10


def shard_work(payload):
    """A shard-sized unit of pure compute (~a small join shard)."""
    start, n = payload
    acc = 0
    for i in range(start, start + n):
        acc = (acc * 31 + i * i) % 1_000_003
    return acc

PAYLOADS = [(i * 1000, 20_000) for i in range(SHARDS)]
EXPECTED = [shard_work(p) for p in PAYLOADS]


def _best(thunk, repeat=3):
    out = float("inf")
    for _ in range(repeat):
        t0 = time.perf_counter()
        thunk()
        out = min(out, time.perf_counter() - t0)
    return out


def _resilient_ctx():
    return ExecutionContext(
        workers=WORKERS, pool="thread",
        resilience=ResiliencePolicy(backoff_base=0.001, max_retries=8),
    )


def _chaos_registry(seed=1234):
    """Seeded 10% transient-fault rate at the shard site, parent-side
    budget spent so quarantine (if ever reached) always rescues."""
    registry = FaultRegistry(seed=seed)
    registry.inject(
        SITE, error=TransientEvaluationError("chaos"),
        probability=FAULT_RATE, times=10_000,
    )
    return registry


# ----------------------------------------------------------- benchmark pairs


@pytest.mark.parametrize("mode", ["baseline_map", "resilient"])
def test_dispatch(benchmark, mode):
    if mode == "baseline_map":
        pool = ThreadPoolExecutor(max_workers=WORKERS)
        try:
            benchmark(lambda: list(pool.map(shard_work, PAYLOADS)))
        finally:
            pool.shutdown()
    else:
        ctx = _resilient_ctx()
        try:
            benchmark(lambda: ctx.run_shards(shard_work, PAYLOADS))
        finally:
            ctx.close()


# ------------------------------------------------------------------- report


def test_report_resilience(capsys):
    """Print zero-fault overhead and 10%-fault recovery latency.

    The < 3% overhead number is the *target*; the hard gate leaves
    headroom for shared-runner scheduling noise.  The recovery gate is
    behavioral first (correct results, failures actually injected and
    absorbed) with a generous latency ceiling on top.
    """
    # zero-fault: resilient loop vs bare executor.map, same pool kind
    pool = ThreadPoolExecutor(max_workers=WORKERS)
    try:
        baseline = _best(lambda: list(pool.map(shard_work, PAYLOADS)), repeat=5)
    finally:
        pool.shutdown()
    ctx = _resilient_ctx()
    try:
        ctx.run_shards(shard_work, PAYLOADS)  # warm the pool
        resilient = _best(lambda: ctx.run_shards(shard_work, PAYLOADS), repeat=5)
        assert ctx.retries == 0 and ctx.quarantined == 0
    finally:
        ctx.close()
    overhead = resilient / baseline - 1.0

    # recovery: the same batch under a seeded 10% transient-fault rate
    ctx = _resilient_ctx()
    recovered = 0
    try:
        with _chaos_registry():
            t0 = time.perf_counter()
            out = ctx.run_shards(shard_work, PAYLOADS)
            chaos_seconds = time.perf_counter() - t0
        recovered = ctx.retries + ctx.quarantined
        assert out == EXPECTED, "recovery changed a shard result"
    finally:
        ctx.close()
    per_recovery = (
        (chaos_seconds - resilient) / recovered if recovered else 0.0
    )

    lines = [
        "",
        f"E18: resilient dispatch ({CORES} cores, {WORKERS} workers, "
        f"{SHARDS} shards)",
        f"  bare executor.map      {baseline:8.4f} s",
        f"  resilient dispatch     {resilient:8.4f} s  "
        f"({overhead:+.2%} overhead, target < 3%)",
        f"  10% fault rate         {chaos_seconds:8.4f} s  "
        f"({recovered} recoveries, {per_recovery * 1000:.1f} ms each)",
    ]
    with capsys.disabled():
        print("\n".join(lines))

    assert overhead < 0.25, (
        f"resilient dispatch is no longer near-free: {overhead:.1%}"
    )
    assert recovered > 0, "the 10% fault schedule never fired"
    assert per_recovery < 0.5, (
        f"recovery latency blew up: {per_recovery:.3f} s per recovery"
    )


def test_recovery_is_deterministic():
    """A fixed chaos seed produces the same recovery count and the
    same (correct) results on repeated runs (one worker: concurrent
    hits on the shared schedule would make the *order* timing-
    dependent, and this test pins the exact count)."""
    counts = []
    for _ in range(2):
        ctx = ExecutionContext(
            workers=1, pool="thread",
            resilience=ResiliencePolicy(backoff_base=0.001, max_retries=8),
        )
        try:
            with _chaos_registry(seed=77):
                assert ctx.run_shards(shard_work, PAYLOADS) == EXPECTED
            counts.append(ctx.retries + ctx.quarantined)
        finally:
            ctx.close()
    assert counts[0] == counts[1] > 0
