#!/usr/bin/env python3
"""Quickstart: dense-order constraint databases in five minutes.

Walks the core workflow of the library, following Section 2-3 of
Grumbach & Su (PODS 1995):

1. build *generalized relations* -- finite representations of infinite
   pointsets -- from constraints;
2. query them with first-order logic (FO) and get closed-form answers;
3. verify the closure property: outputs are again generalized relations;
4. peek at the canonical interval normal form and quantifier
   elimination.

Run:  python examples/quickstart.py
"""

from fractions import Fraction

from repro.core import (
    Database,
    GTuple,
    IntervalSet,
    Relation,
    constraint,
    eliminate_quantifiers,
    evaluate,
    evaluate_boolean,
    exists,
    forall,
    ge,
    le,
    lt,
    rel,
)
from repro.core.theory import DENSE_ORDER


def main() -> None:
    print("=" * 64)
    print("1. Generalized tuples and relations  (paper, Section 2)")
    print("=" * 64)

    # The paper's running example: the triangle  x <= y and x >= 0 and y <= 10.
    triangle = GTuple.make(
        DENSE_ORDER, ("x", "y"), [le("x", "y"), ge("x", 0), le("y", 10)]
    )
    print(f"generalized tuple: {triangle}")
    print(f"contains (1, 5)?   {triangle.contains_point([1, 5])}")
    print(f"contains (5, 1)?   {triangle.contains_point([5, 1])}")

    # A generalized relation is a finite set of generalized tuples.
    T = Relation(DENSE_ORDER, ("x", "y"), [triangle])
    db = Database({"T": T})

    print()
    print("=" * 64)
    print("2. FO queries, evaluated bottom-up in closed form  (Section 3)")
    print("=" * 64)

    # The x-axis shadow of the triangle: exists y. T(x, y)
    shadow = evaluate(exists("y", rel("T", "x", "y")), db)
    print("exists y. T(x, y)  -> ", shadow.pretty())
    print("as canonical intervals:", IntervalSet.from_relation(shadow))

    # Constraint queries mix relations with order constraints freely.
    slice_ = evaluate(
        rel("T", "x", "y") & constraint(lt("y", 3)), db
    )
    print("\nT intersected with y < 3:")
    print(slice_.pretty())

    print()
    print("=" * 64)
    print("3. Sentences: the axioms of dense order, checked by the engine")
    print("=" * 64)

    density = forall(
        ["a", "b"],
        constraint(lt("a", "b")).implies(
            exists("m", constraint(lt("a", "m")) & constraint(lt("m", "b")))
        ),
    )
    no_endpoints = forall("a", exists("b", constraint(lt("b", "a"))))
    has_successor = exists(
        ["a", "b"],
        constraint(lt("a", "b"))
        & forall("m", ~(constraint(lt("a", "m")) & constraint(lt("m", "b")))),
    )
    print(f"density holds:            {evaluate_boolean(density)}")
    print(f"no endpoints holds:       {evaluate_boolean(no_endpoints)}")
    print(f"discrete successor holds: {evaluate_boolean(has_successor)}  (false: Q is dense!)")

    print()
    print("=" * 64)
    print("4. Quantifier elimination  (the engine of closed-form answers)")
    print("=" * 64)

    f = exists("y", constraint(lt("x", "y")) & constraint(lt("y", "z")))
    print(f"input:  {f}")
    print(f"output: {eliminate_quantifiers(f)}   (density of Q at work)")

    print()
    print("=" * 64)
    print("5. Set algebra stays finitely representable")
    print("=" * 64)

    complement = shadow.complement()
    print("complement of the shadow:", IntervalSet.from_relation(complement))
    round_trip = complement.complement()
    print("double complement equals original:", round_trip.equivalent(shadow))


if __name__ == "__main__":
    main()
