#!/usr/bin/env python3
"""Inexpressibility, demonstrated: Theorems 4.2 and 4.3 in action.

The paper proves that parity and connectivity are beyond first-order
(even with addition).  This example makes the lower bounds *tangible*:

1. EF games: exact computation of the minimal quantifier rank that
   separates linear orders of sizes n and n+1 -- it grows like log n,
   so no fixed FO sentence computes parity;
2. exhaustive search: a machine check that NO sentence of rank <= 2
   distinguishes orders of sizes 3 and 4;
3. the same queries ARE computable one level up: inflationary
   Datalog(not) (Theorem 4.4) and C-CALC_1 (Theorem 5.2) compute
   parity; the gluing-graph algorithm decides region connectivity
   (Theorem 4.3's query);
4. genericity: the FO+ midpoint mapping fails Definition 3.1.

Run:  python examples/inexpressibility_demo.py
"""

from fractions import Fraction

from repro.cobjects import evaluate_ccalc_boolean
from repro.core import Database, Relation
from repro.encoding import capture_boolean, cardinality_parity_program
from repro.genericity import (
    check_generic,
    linear_order,
    min_distinguishing_rank,
    moving,
    search_sentence,
)
from repro.linear.region import count_components
from repro.queries.library import parity_ccalc
from repro.workloads.generators import interval_chain, point_set


def main() -> None:
    print("=" * 68)
    print("1. EF games: the rank needed to tell n from n+1 grows with n")
    print("=" * 68)
    print(f"{'n':>4} {'n+1':>4} {'min distinguishing quantifier rank':>36}")
    for n in (1, 2, 3, 5, 7):
        rank = min_distinguishing_rank(linear_order(n), linear_order(n + 1), 4)
        print(f"{n:>4} {n+1:>4} {rank if rank is not None else '> 4':>36}", flush=True)
    print("-> any FO sentence has a fixed rank r, fooled for n >= 2^r - 1:")
    print("   parity is not first-order definable (cf. Theorem 4.2).")

    print()
    print("=" * 68)
    print("2. Exhaustive search: no rank-2 sentence separates sizes 3 and 4")
    print("=" * 68)
    family = [linear_order(3), linear_order(4)]
    result = search_sentence(family, [True, False], variables=2, rank=1)
    print(
        f"rank 1, 2 variables: found={result.found} "
        f"({result.queries_explored} definable queries enumerated)"
    )
    print("   (complete enumeration -- a machine-checked certificate)")

    print()
    print("=" * 68)
    print("3. One level up, parity IS computable (Theorems 4.4 and 5.2)")
    print("=" * 68)
    for n in (2, 3):
        db = point_set(n)
        via_datalog = capture_boolean(
            cardinality_parity_program("S"), db, "result_odd"
        )
        via_ccalc = evaluate_ccalc_boolean(parity_ccalc("S"), db)
        print(
            f"|S| = {n}: Datalog(not) capture pipeline says odd={via_datalog}, "
            f"C-CALC_1 says odd={via_ccalc}"
        )

    print()
    print("=" * 68)
    print("4. Region connectivity: not linear (Thm 4.3), yet decidable")
    print("=" * 68)
    blob = interval_chain(4, overlap=True)["S"]
    dust = interval_chain(4, overlap=False)["S"]
    print(f"4 overlapping intervals: {count_components(blob)} component(s)")
    print(f"4 separated intervals:   {count_components(dust)} component(s)")

    print()
    print("=" * 68)
    print("5. Genericity (Definition 3.1): FO+ midpoints are not a query")
    print("=" * 68)
    db = Database()
    db["S"] = Relation.from_points(("x",), [(0,), (4,)])

    def midpoints(database):
        values = sorted(t.sample_point()["x"] for t in database["S"].tuples)
        points = {(a + b) / 2 for a in values for b in values}
        return Relation.from_points(("z",), [(p,) for p in points])

    phi = moving({0: Fraction(0), 2: Fraction(10), 4: Fraction(12)})
    report = check_generic(midpoints, db, automorphisms=[phi])
    print(f"midpoint mapping generic: {report.generic}")
    print(f"refuting automorphism:    {report.witness}")
    print("   phi moves midpoint(0,4)=2 to 10, but midpoint(0,12)=6: the")
    print("   FO+ mapping does not commute with automorphisms of (Q, <=).")


if __name__ == "__main__":
    main()
