#!/usr/bin/env python3
"""Complex objects: rainfall over regions (paper Section 5).

"In practical examples, there are properties naturally associated to
POINTSETS and not to individual points (e.g., rainfall, population,
etc. in geographical databases)" -- the paper's motivation for complex
constraint objects.  This example treats regions as first-class
c-objects:

* rainfall zones are :class:`RegionObject` values (finitely
  representable pointsets with *semantic* equality);
* C-CALC formulas quantify over sets under the active-domain semantics
  ("quantifying over cells");
* a C-CALC_1 sentence computes a parity query no FO formula can
  (Theorem 5.2), and the active-domain sizes show the set-height
  blowup behind Theorems 5.3-5.5.

Run:  python examples/complex_objects_rainfall.py
"""

from fractions import Fraction

from repro.cobjects import (
    ActiveDomain,
    Comprehension,
    Member,
    Q,
    SetConst,
    SetEq,
    SetType,
    evaluate_ccalc_boolean,
    region,
    set_height,
    type_set_height,
)
from repro.cobjects.calculus import CAnd, CConstraint, CRelation, ExistsSet, SetVar
from repro.core import Database, Interval, IntervalSet, Relation, le, lt
from repro.core.terms import as_term
from repro.core.theory import DENSE_ORDER
from repro.queries.library import parity_ccalc


def zone(*segments) -> Relation:
    return IntervalSet([Interval.closed(a, b) for a, b in segments]).to_relation("x")


def main() -> None:
    # A 1-D "transect" of land with rainfall zones (km positions).
    wet = region(zone((0, 3), (7, 9)))
    dry = region(zone((3, 7)))
    print("== regions as first-class objects ==")
    print(f"wet zone:  {wet}")
    print(f"dry zone:  {dry}")

    # Semantic equality: two different representations, one pointset.
    wet_again = region(zone((0, 3), (7, 9)).union(zone((1, 2))))
    print(f"redundant representation equals wet zone: {wet == wet_again}")

    db = Database()
    db["settlement"] = Relation.from_points(("x",), [(1,), (5,), (8,)])

    print("\n== C-CALC: mixing point data with set terms ==")
    # Every settlement inside the wet zone?  (ground membership)
    x = as_term("x")
    all_wet = evaluate_ccalc_boolean(
        # forall x (settlement(x) -> x in WET)  via not exists counterexample
        ~ExistssettlementOutside(wet),
        db,
        extra_constants=wet.relation.constants(),
    )
    print(f"all settlements in the wet zone: {all_wet}")

    # The comprehension {x | settlement(x) and x < 6} equals a constant set?
    west = Comprehension(
        ("x",), CAnd((CRelation("settlement", (x,)), CConstraint(lt("x", 6))))
    )
    expected = SetConst(region(Relation.from_points(("x",), [(1,), (5,)])))
    same = evaluate_ccalc_boolean(SetEq(west, expected), db)
    print(f"western settlements comprehension matches: {same}")

    print("\n== the active-domain semantics (quantifying over cells) ==")
    adom = ActiveDomain(db)
    print(f"constants: {sorted(db.constants())}")
    print(f"|adom(Q)|      = {adom.domain_size(Q)}   (cells)")
    print(f"|adom({{Q}})|    = {adom.domain_size(SetType(Q))}   (unions of cells)")
    print(
        f"|adom({{{{Q}}}})|  = 2**{adom.domain_size(SetType(Q))}"
        "  (hyper-exponential: the Theorem 5.3-5.5 axis)"
    )

    print("\n== a C-CALC_1 query beyond FO (Theorem 5.2) ==")
    parity = parity_ccalc("settlement")
    print(f"set-height of the parity query: {set_height(parity)}")
    odd = evaluate_ccalc_boolean(parity, db)
    print(f"odd number of settlements: {odd}  (3 settlements)")

    db["settlement"] = Relation.from_points(("x",), [(1,), (5,)])
    even = evaluate_ccalc_boolean(parity, db)
    print(f"after removing one:        {even}  (2 settlements)")


def ExistssettlementOutside(zone_object):
    """exists x (settlement(x) and not (x in ZONE))."""
    from repro.cobjects.calculus import CExists, CNot

    x = as_term("x")
    return CExists(
        ("x",),
        CAnd(
            (
                CRelation("settlement", (x,)),
                CNot(Member((x,), SetConst(zone_object))),
            )
        ),
    )


if __name__ == "__main__":
    main()
