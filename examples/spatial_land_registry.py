#!/usr/bin/env python3
"""Spatial example: a land registry of rectangular parcels.

The paper motivates constraint databases with spatial data: infinite
pointsets (regions) stored as finite constraint representations.  This
example manages a toy land registry:

* parcels are unions of boxes (the paper's Section 2 rectangle
  encoding: "four constants along with a flag indicating the shape");
* FO queries answer containment, overlap and shadow questions in
  closed form;
* FO *topological* operators compute boundaries (Section 3 relates
  queries to the order topology);
* region connectivity -- provably **not** expressible in FO+
  (Theorem 4.3) -- is answered by the exact gluing-graph algorithm.

Run:  python examples/spatial_land_registry.py
"""

from fractions import Fraction

from repro.core import Box, BoxSet, Database, evaluate, evaluate_boolean, exists, forall, rel
from repro.linear.region import connected_components, count_components, is_connected
from repro.queries.topology import boundary, interior


def build_registry() -> Database:
    """Three parcels: an L-shape, a separate square, and a park."""
    db = Database()
    l_shape = BoxSet(
        [
            Box.closed((0, 4), (0, 2)),   # horizontal bar
            Box.closed((0, 2), (2, 6)),   # vertical bar, shares the edge y = 2
        ]
    )
    db["parcel_l"] = l_shape.to_relation(("x", "y"))
    db["parcel_far"] = BoxSet([Box.closed((10, 12), (10, 12))]).to_relation(("x", "y"))
    db["park"] = BoxSet(
        [Box.closed((1, 3), (1, 3)), Box.closed((11, 13), (9, 11))]
    ).to_relation(("x", "y"))
    return db


def main() -> None:
    db = build_registry()

    print("== the registry ==")
    for name in db.names():
        print(f"  {name}: {len(db[name])} box(es)")

    print("\n== FO queries in closed form ==")
    # Which x-coordinates does the L-shaped parcel cover?
    shadow = evaluate(exists("y", rel("parcel_l", "x", "y")), db)
    print("x-shadow of parcel_l:", shadow.pretty())

    # Does the park overlap the L-shaped parcel?
    overlap = evaluate_boolean(
        exists(["x", "y"], rel("parcel_l", "x", "y") & rel("park", "x", "y")), db
    )
    print(f"park overlaps parcel_l: {overlap}")

    # Is the far parcel entirely inside the park?  (containment as FO)
    contained = evaluate_boolean(
        forall(["x", "y"], rel("parcel_far", "x", "y").implies(rel("park", "x", "y"))),
        db,
    )
    print(f"parcel_far inside park: {contained}")

    # The overlap region itself, as a constraint relation:
    common = evaluate(rel("parcel_l", "x", "y") & rel("park", "x", "y"), db)
    print("overlap region:", common.pretty())

    print("\n== topology (FO-definable, Section 3) ==")
    edge = boundary(db, "parcel_far")
    print(f"boundary of parcel_far: {len(edge)} constraint tuple(s)")
    print(f"  contains corner (10, 10)? {edge.contains_point([10, 10])}")
    print(f"  contains center (11, 11)? {edge.contains_point([11, 11])}")
    inner = interior(db, "parcel_far")
    print(f"interior contains center?  {inner.contains_point([11, 11])}")

    print("\n== connectivity (NOT FO+ definable -- Theorem 4.3) ==")
    for name in db.names():
        r = db[name]
        print(
            f"  {name}: connected={is_connected(r)} "
            f"components={count_components(r)}"
        )

    # Merge everything: is the whole registry one connected region?
    merged = db["parcel_l"].union(db["park"]).union(db["parcel_far"])
    print(f"\nall parcels merged: {count_components(merged)} component(s)")
    for i, component in enumerate(connected_components(merged)):
        xs = evaluate(
            exists("y", rel("c", "x", "y")), Database({"c": component})
        )
        print(f"  component {i}: x-range {xs.pretty()}")


if __name__ == "__main__":
    main()
