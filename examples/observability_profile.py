#!/usr/bin/env python3
"""Observability: trace, profile, and explain an evaluation.

Closed-form evaluation hides a lot of work -- quantifier eliminations,
complements that explode then re-simplify, fixpoint rounds whose deltas
shrink toward zero.  The observability layer (:mod:`repro.obs`) makes
that work visible without touching any engine code path when disabled:

1. run a transitive-closure program under a :class:`Tracer` and an
   :class:`EvaluationGuard`, collecting spans + metrics + guard stats;
2. print the EXPLAIN-style per-phase cost tree (what the ``explain``
   CLI subcommand shows);
3. export the structured JSON trace (schema ``repro.trace/1``) for
   downstream tooling.

Set ``TRACE_OUT=/path/to/trace.json`` to choose the export path.

Run:  python examples/observability_profile.py
"""

import os
import tempfile

from repro.core.database import Database
from repro.core.relation import Relation
from repro.datalog.seminaive import evaluate_seminaive
from repro.lang import parse_program
from repro.obs import Tracer, render_profile, write_trace
from repro.runtime.guard import EvaluationGuard

PROGRAM = """
tc(x, y) :- edge(x, y).
tc(x, z) :- tc(x, y), edge(y, z).
"""


def build_database() -> Database:
    """A 6-node path graph: fixpoint needs several shrinking rounds."""
    db = Database()
    db["edge"] = Relation.from_points(
        ("x", "y"), [(i, i + 1) for i in range(6)]
    )
    return db


def main() -> None:
    db = build_database()
    program = parse_program(PROGRAM)

    tracer = Tracer()
    guard = EvaluationGuard()
    with tracer:
        result = evaluate_seminaive(program, db, guard=guard)

    print(f"fixpoint after {result.rounds} round(s), "
          f"{len(result['tc'])} tc tuple(s)")
    print()
    print(render_profile(tracer, guard))

    out = os.environ.get("TRACE_OUT")
    if not out:
        out = os.path.join(tempfile.gettempdir(), "repro_trace.json")
    document = write_trace(out, tracer, guard)
    print()
    print(f"trace written to {out}: {len(document['spans'])} span(s), "
          f"{len(document['metrics']['counters'])} counter(s)")


if __name__ == "__main__":
    main()
