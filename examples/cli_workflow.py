#!/usr/bin/env python3
"""End-to-end CLI workflow: files, queries, and Datalog from the shell.

Shows the library as a *tool*, not just an API: build a database, save
it in the paper's standard encoding (Section 3), then drive everything
through ``python -m repro.cli``:

1. ``info``     -- inspect a database file;
2. ``query``    -- run textual FO queries (closed-form answers);
3. ``datalog``  -- run a textual Datalog(not) program to fixpoint;
4. ``reencode`` -- normalize a file (idempotent canonical dump).

Run:  python examples/cli_workflow.py
"""

import subprocess
import sys
import tempfile
from pathlib import Path

from repro.core import Database, Interval, IntervalSet, Relation
from repro.encoding.standard import encode_database


def build_database() -> Database:
    """City districts (1-D transect) and a road adjacency graph."""
    db = Database()
    db["district"] = IntervalSet(
        [Interval.closed(0, 3), Interval.closed(5, 9), Interval.point(12)]
    ).to_relation("x")
    db["road"] = Relation.from_points(
        ("x", "y"), [(1, 2), (2, 3), (3, 4), (6, 7)]
    )
    return db


PROGRAM = """\
% symmetric reachability over the road graph
link(x, y) :- road(x, y).
link(x, y) :- road(y, x).
reach(x, y) :- link(x, y).
reach(x, z) :- reach(x, y), link(y, z).
"""

QUERIES = [
    ("covered x-range", "exists y (district(x) and x = x)"),
    ("is 7 inside a district", "district(7)"),
    ("districts reach past 10", "exists x (district(x) and x > 10)"),
    ("gap points between districts",
     "not district(x) and exists a, b (district(a) and district(b) and a < x and x < b)"),
]


def run_cli(*args: str) -> str:
    result = subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        capture_output=True,
        text=True,
        check=False,
    )
    if result.returncode != 0:
        raise RuntimeError(result.stderr)
    return result.stdout


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        db_path = Path(tmp) / "city.cdb"
        db_path.write_text(encode_database(build_database()), encoding="utf-8")
        program_path = Path(tmp) / "reach.dl"
        program_path.write_text(PROGRAM, encoding="utf-8")

        print("== repro info ==")
        print(run_cli("info", str(db_path)))

        for label, query in QUERIES:
            print(f"== repro query: {label} ==")
            print(f"$ repro query city.cdb '{query}'")
            print(run_cli("query", str(db_path), query))

        print("== repro datalog: road reachability ==")
        print(run_cli("datalog", str(db_path), str(program_path), "--show", "reach", "--raw"))

        print("== repro reencode (canonical dump, idempotent) ==")
        first = run_cli("reencode", str(db_path))
        db_path.write_text(first, encoding="utf-8")
        second = run_cli("reencode", str(db_path))
        print(first)
        print(f"idempotent: {first == second}")


if __name__ == "__main__":
    main()
