#!/usr/bin/env python3
"""Temporal example: project staffing over dense time.

Constraint databases shine for *temporal* data: validity periods are
intervals over dense time, stored finitely, queried logically.  This
example tracks who staffed which project over time:

* assignments are 1-D dense-order constraints over a time column;
* FO answers instant and interval queries (who was on P1 mid-2023?
  when was anyone on P2?);
* Allen-style interval relations (overlaps, during, meets) are plain
  FO formulas;
* inflationary Datalog(not) (Theorem 4.4's PTIME language) computes the
  *collaboration closure*: who is transitively connected to whom by
  overlapping project stints.

Times are rational "years"; 2023.5 is Fraction(20235, 10).

Run:  python examples/temporal_intervals.py
"""

from fractions import Fraction

from repro.core import (
    Database,
    GTuple,
    IntervalSet,
    Relation,
    constraint,
    evaluate,
    evaluate_boolean,
    exists,
    le,
    lt,
    rel,
)
from repro.core.theory import DENSE_ORDER
from repro.datalog import Program, cons, evaluate_program, pred, rule


def stint(person: float, project: float, start, end) -> GTuple:
    """A staffing row: person and project are ids, time ranges in [start, end)."""
    return GTuple.make(
        DENSE_ORDER,
        ("person", "project", "t"),
        [
            # equality constraints encode the classical columns
            le(person, "person"), le("person", person),
            le(project, "project"), le("project", project),
            le(Fraction(start), "t"), lt("t", Fraction(end)),
        ],
    )


def build() -> Database:
    db = Database()
    rows = [
        # person, project, start, end   (dense time; half-open stints)
        (1, 100, 2020, 2022),
        (1, 101, 2022, 2024),
        (2, 100, 2021, 2023),
        (3, 101, 2023, 2025),
        (4, 102, 2020, 2021),  # never overlaps anyone on 100/101
    ]
    db["staff"] = Relation(
        DENSE_ORDER, ("person", "project", "t"), [stint(*r) for r in rows]
    )
    return db


def main() -> None:
    db = build()

    print("== instant queries ==")
    # Who was staffed on project 100 at time 2021.5?
    at = evaluate(
        rel("staff", "person", "project", "t")
        & constraint(le("project", 100))
        & constraint(le(100, "project"))
        & constraint(le("t", Fraction(20215, 10)))
        & constraint(le(Fraction(20215, 10), "t")),
        db,
    ).project(("person",))
    people = sorted(t.sample_point()["person"] for t in at.tuples)
    print(f"on project 100 at 2021.5: persons {people}")

    print("\n== validity periods (canonical interval form) ==")
    # When was person 1 staffed on anything?
    when = evaluate(
        exists(["project"], rel("staff", "p", "project", "t") & constraint(le("p", 1)) & constraint(le(1, "p"))),
        db,
    ).project(("t",))
    print(f"person 1 active during: {IntervalSet.from_relation(when)}")

    print("\n== Allen-style relations as FO ==")
    # Did persons 1 and 2 ever overlap on the same project?
    together = evaluate_boolean(
        exists(
            ["a", "b", "project", "t"],
            rel("staff", "a", "project", "t")
            & rel("staff", "b", "project", "t")
            & constraint(le("a", 1)) & constraint(le(1, "a"))
            & constraint(le("b", 2)) & constraint(le(2, "b")),
        ),
        db,
    )
    print(f"persons 1 and 2 overlapped on a project: {together}")

    print("\n== collaboration closure with Datalog(not)  (Theorem 4.4) ==")
    # worked_with(a, b): simultaneous stint on one project
    # connected: its transitive closure -- the PTIME query FO cannot do.
    program = Program(
        [
            rule(
                "worked_with",
                ["a", "b"],
                pred("staff", "a", "j", "t"),
                pred("staff", "b", "j", "t"),
                cons(lt("a", "b")),
            ),
            rule("connected", ["a", "b"], pred("worked_with", "a", "b")),
            rule("connected", ["a", "b"], pred("worked_with", "b", "a")),
            rule(
                "connected",
                ["a", "c"],
                pred("connected", "a", "b"),
                pred("connected", "b", "c"),
            ),
        ],
        edb={"staff": 3},
    )
    result = evaluate_program(program, db)
    connected = result["connected"]
    print(f"fixpoint reached in {result.rounds} round(s)")
    for a, b in [(1, 2), (2, 3), (1, 4)]:
        print(f"  connected({a}, {b})? {connected.contains_point([a, b])}")
    print("(2 and 3 connect only through person 1's consecutive stints)")


if __name__ == "__main__":
    main()
