"""Columnar bounds-matrix constraint kernel (the vectorized fast path).

The object kernel (:class:`~repro.core.ordergraph.OrderGraph`) walks
per-atom Python object graphs: dict-of-dicts adjacency, per-term hash
lookups, one graph per conjunction.  This module re-encodes one
conjunction's order constraints as a *dense bounds matrix*: one row and
column per variable-or-constant slot, entries drawn from::

    0  unconstrained        (no derived relation row -> col)
    1  weak                 (row <= col derivable, row < col not)
    2  strict               (row <  col derivable)

backed by a flat ``bytearray`` (pure python; an optional numpy
acceleration path is gated behind ``REPRO_COLUMNAR_NUMPY=1`` because
DESIGN.md restricts numpy to workloads and benchmarks).  The closure is
the same Floyd–Warshall pass the object kernel runs, over the max
semiring on ``{0, 1, 2}`` -- a path is strict iff any edge on it is --
so every verdict (satisfiability, entailment, strongest derived
relation, canonical atom set, witness) is **identical by construction**,
not merely equivalent; the differential harness in
``tests/perf/test_columnar_equivalence.py`` and the oracle's
kernel-backend axis pin that byte for byte.

On top of the matrix sit the batch kernels -- :func:`batch_satisfiable`
(an SCC check: a conjunction is unsatisfiable iff some strongly
connected component contains a strict edge or two distinct constants,
which skips the cubic closure entirely), :func:`batch_implies`, and
:func:`batch_canonical` -- plus the blocked ``Relation`` fast paths
(:func:`merge_block`, :func:`tuple_matrix`) that check many candidate
tuples per closure instead of issuing one theory call each.

Backend selection mirrors the kernel cache's one-attribute-read
discipline: :class:`~repro.core.theory.DenseOrderTheory` consults the
process-wide :class:`KernelSelector` (seeded from ``REPRO_KERNEL``,
runtime-switchable via :func:`configure_kernel` / the ``--kernel`` CLI
flag) with a single attribute read per kernel construction, so the
disabled path costs one branch.  :func:`configure_kernel` also writes
``REPRO_KERNEL`` back into ``os.environ`` so spawned pool workers
inherit the selection even without fork semantics.

Shard payloads get cheap pickling: a bounds matrix serializes as its
term slots plus a flat int array (the pre-closure edge matrix), and
:func:`pack_gtuple` / :func:`unpack_gtuple` give
:class:`~repro.core.gtuple.GTuple` the same treatment -- a canonical
atom set round-trips through ``(slots, matrix bytes)`` instead of a
graph of atom/term objects, losslessly, because canonical sets carry at
most one atom per term pair.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from fractions import Fraction
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.perf.cache import kernel_cache

__all__ = [
    "BoundsMatrix",
    "KernelSelector",
    "batch_canonical",
    "batch_implies",
    "batch_satisfiable",
    "columnar_enabled",
    "configure_kernel",
    "kernel_backend",
    "kernel_backend_context",
    "kernel_selector",
    "merge_block",
    "pack_gtuple",
    "tuple_matrix",
    "unpack_gtuple",
]

#: matrix entries (also the packed-pickle wire values)
_NONE, _WEAK, _STRICT = 0, 1, 2

#: below this many slots the pure-python closure beats the numpy
#: round-trip even when the acceleration path is enabled
_NUMPY_MIN_NODES = 16

_BACKENDS = ("object", "columnar")


# ------------------------------------------------------------------- selector


class KernelSelector:
    """The process-wide kernel-backend switch.

    One mutable attribute, read once per kernel construction -- the
    same disabled-path discipline as ``KernelCache.enabled``.  The
    singleton (:func:`kernel_selector`) is never replaced, only
    mutated, so modules may bind it at import time.
    """

    __slots__ = ("columnar",)

    def __init__(self, columnar: bool = False) -> None:
        self.columnar = columnar


_SELECTOR = KernelSelector(os.environ.get("REPRO_KERNEL", "object") == "columnar")


def kernel_selector() -> KernelSelector:
    """The process-wide selector singleton (bind it, read ``.columnar``)."""
    return _SELECTOR


def kernel_backend() -> str:
    """The active backend name: ``"object"`` or ``"columnar"``."""
    return "columnar" if _SELECTOR.columnar else "object"


def columnar_enabled() -> bool:
    return _SELECTOR.columnar


def configure_kernel(backend: str) -> str:
    """Select the kernel backend process-wide; returns the previous one.

    Also exports the choice through ``REPRO_KERNEL`` so worker
    processes spawned later (which re-read the environment at import)
    agree with the parent even on non-fork start methods.  Cached
    :class:`~repro.perf.cache.KernelEntry` objects built under the
    previous backend stay valid -- both kernels answer identically --
    so no invalidation happens here; tests wanting counter-exact runs
    reset the cache themselves.
    """
    if backend not in _BACKENDS:
        raise ValueError(f"unknown kernel backend {backend!r}; expected one of {_BACKENDS}")
    previous = kernel_backend()
    _SELECTOR.columnar = backend == "columnar"
    os.environ["REPRO_KERNEL"] = backend
    return previous


@contextmanager
def kernel_backend_context(backend: str) -> Iterator[None]:
    """Run a block under ``backend``, restoring the previous selection."""
    previous = configure_kernel(backend)
    try:
        yield
    finally:
        configure_kernel(previous)


# ----------------------------------------------------------------- numpy gate

_NUMPY_SENTINEL = object()
_NUMPY_MOD: object = _NUMPY_SENTINEL


def _numpy():
    """The numpy module when the acceleration path is armed, else None.

    Opt-in (``REPRO_COLUMNAR_NUMPY=1``) and import-gated: the engine
    core stays pure python per DESIGN.md, and a container without
    numpy silently keeps the bytearray closure.
    """
    global _NUMPY_MOD
    if os.environ.get("REPRO_COLUMNAR_NUMPY") != "1":
        return None
    if _NUMPY_MOD is _NUMPY_SENTINEL:
        try:
            import numpy  # noqa: F401  (optional, never a hard dependency)

            _NUMPY_MOD = numpy
        except ImportError:  # pragma: no cover - numpy is present in CI images
            _NUMPY_MOD = None
    return _NUMPY_MOD


def _numpy_closure(edges: bytearray, n: int, np) -> bytearray:
    """Floyd–Warshall over (reach, strict) boolean planes in numpy."""
    a = np.frombuffer(bytes(edges), dtype=np.uint8).reshape(n, n)
    reach = a > _NONE
    strict = a == _STRICT
    for k in range(n):
        col_r = reach[:, k].copy()
        row_r = reach[k].copy()
        col_s = strict[:, k].copy()
        row_s = strict[k].copy()
        reach |= col_r[:, None] & row_r
        strict |= (col_s[:, None] & row_r) | (col_r[:, None] & row_s)
    out = np.where(strict, _STRICT, np.where(reach, _WEAK, _NONE)).astype(np.uint8)
    return bytearray(out.tobytes())


# -------------------------------------------------------------- bounds matrix


class BoundsMatrix:
    """One conjunction of NE-free dense-order atoms as a bounds matrix.

    Drop-in for :class:`~repro.core.ordergraph.OrderGraph` behind
    :class:`~repro.core.theory.DenseOrderTheory` (and inside
    :class:`~repro.perf.cache.KernelEntry`): same constructor shape,
    same query surface, same verdicts, same canonical atom sets, same
    witnesses.  Unlike the object graph it is built once from a whole
    conjunction (no incremental ``add``), which is the only way the
    theory ever uses a kernel.
    """

    __slots__ = ("_terms", "_index", "_n", "_edges", "_matrix", "_sat", "_consts")

    def __init__(self, atoms: Iterable = ()) -> None:
        index: Dict = {}
        terms: List = []
        triples: List[Tuple[int, int, int]] = []
        for a in atoms:
            op = a.op
            if op is Op.NE:
                raise TheoryError("BoundsMatrix handles NE-free conjunctions only")
            if op in (Op.GE, Op.GT):  # pragma: no cover - atoms normalize these away
                raise TheoryError("atoms must be normalized before reaching BoundsMatrix")
            i = index.get(a.left)
            if i is None:
                i = index[a.left] = len(terms)
                terms.append(a.left)
            j = index.get(a.right)
            if j is None:
                j = index[a.right] = len(terms)
                terms.append(a.right)
            if op is Op.LT:
                triples.append((i, j, _STRICT))
            elif op is Op.LE:
                triples.append((i, j, _WEAK))
            else:  # EQ: weak edges both ways
                triples.append((i, j, _WEAK))
                triples.append((j, i, _WEAK))
        n = len(terms)
        edges = bytearray(n * n)
        for i, j, w in triples:
            k = i * n + j
            if edges[k] < w:
                edges[k] = w
        self._terms = terms
        self._index = index
        self._n = n
        self._edges = edges
        self._matrix: Optional[bytearray] = None
        self._sat: Optional[bool] = None
        self._consts: Optional[List[Tuple[int, Fraction]]] = None

    # ------------------------------------------------------------- inspection

    @property
    def nodes(self) -> FrozenSet:
        return frozenset(self._terms)

    def edge_bytes(self) -> bytes:
        """The pre-closure edge matrix as a flat int array (row-major)."""
        return bytes(self._edges)

    def __reduce__(self):
        # the cheap shard-payload form: term slots + flat int array
        # (the closure, verdict, and const index are all derived state)
        return (_restore_matrix, (tuple(self._terms), bytes(self._edges)))

    def __repr__(self) -> str:
        return f"<BoundsMatrix {self._n} slot(s)>"

    # ---------------------------------------------------------------- closure

    def _const_slots(self) -> List[Tuple[int, Fraction]]:
        if self._consts is None:
            self._consts = sorted(
                ((i, t.value) for i, t in enumerate(self._terms) if isinstance(t, Const)),
                key=lambda pair: pair[1],
            )
        return self._consts

    def _closure(self) -> bytearray:
        if self._matrix is not None:
            return self._matrix
        n = self._n
        m = bytearray(self._edges)
        # materialize the numeric order of the constants present
        consts = self._const_slots()
        for (lo, _), (hi, _) in zip(consts, consts[1:]):
            m[lo * n + hi] = _STRICT
        np = _numpy() if n >= _NUMPY_MIN_NODES else None
        if np is not None:
            m = _numpy_closure(m, n, np)
        else:
            rng = range(n)
            for k in rng:
                kn = k * n
                for i in rng:
                    w_ik = m[i * n + k]
                    if not w_ik:
                        continue
                    row = i * n
                    for j in rng:
                        w_kj = m[kn + j]
                        if not w_kj:
                            continue
                        w = w_ik if w_ik > w_kj else w_kj
                        if m[row + j] < w:
                            m[row + j] = w
        self._matrix = m
        return m

    # ---------------------------------------------------------------- queries

    def is_satisfiable(self) -> bool:
        """True iff the conjunction has a rational solution (memoized)."""
        if self._sat is None:
            self._sat = self._satisfiable()
        return self._sat

    def _satisfiable(self) -> bool:
        m = self._closure()
        n = self._n
        for i in range(n):
            if m[i * n + i] == _STRICT:  # strict cycle
                return False
        # two distinct constants forced equal
        consts = self._const_slots()
        for a in range(len(consts)):
            i = consts[a][0]
            row = i * n
            for b in range(a + 1, len(consts)):
                j = consts[b][0]
                if m[row + j] and m[j * n + i]:
                    return False
        return True

    def relation_between(self, a, b) -> Optional["Op"]:
        """Strongest derived relation ``a op b``; None if unconstrained."""
        if a == b:
            return Op.EQ
        if isinstance(a, Const) and isinstance(b, Const):
            return Op.LT if a.value < b.value else (Op.EQ if a.value == b.value else Op.GT)
        m = self._closure()
        n = self._n
        index = self._index
        ia = index.get(a)
        ib = index.get(b)
        fwd = bwd = _NONE
        if ia is not None and ib is not None:
            fwd = m[ia * n + ib]
            bwd = m[ib * n + ia]
        if fwd and bwd:
            return Op.EQ  # (unsat if either is strict; caller checks satisfiability)
        if fwd == _STRICT:
            return Op.LT
        if fwd == _WEAK:
            return Op.LE
        if bwd == _STRICT:
            return Op.GT
        if bwd == _WEAK:
            return Op.GE
        # fall back to numeric reasoning when one side is a constant the
        # matrix has never seen (e.g. {x = -1} entails x <= 0)
        if isinstance(b, Const) and ib is None and ia is not None:
            return self._relation_to_fresh_constant(ia, b)
        if isinstance(a, Const) and ia is None and ib is not None:
            rel = self._relation_to_fresh_constant(ib, a)
            return rel.flipped if rel is not None else None
        return None

    def _relation_to_fresh_constant(self, node: int, c) -> Optional["Op"]:
        """Strongest relation ``node op c`` for a constant not in the matrix."""
        m = self._closure()
        n = self._n
        value = c.value
        at_most_c = False
        at_least_c = False
        for oi, oval in self._const_slots():
            fwd = m[node * n + oi]
            if fwd:  # node </<= other
                if oval < value or (oval == value and fwd == _STRICT):
                    return Op.LT
                if oval == value:
                    at_most_c = True
            bwd = m[oi * n + node]
            if bwd:  # other </<= node
                if oval > value or (oval == value and bwd == _STRICT):
                    return Op.GT
                if oval == value:
                    at_least_c = True
        if at_most_c and at_least_c:
            return Op.EQ
        if at_most_c:
            return Op.LE
        if at_least_c:
            return Op.GE
        return None

    def implies(self, candidate) -> bool:
        """Entailment: does the (satisfiable) conjunction imply ``candidate``?

        An unsatisfiable conjunction implies everything.
        """
        if isinstance(candidate, bool):
            return candidate or not self.is_satisfiable()
        if not self.is_satisfiable():
            return True
        rel = self.relation_between(candidate.left, candidate.right)
        if candidate.op is Op.NE:
            return rel in (Op.LT, Op.GT)
        if rel is None:
            return False
        if candidate.op is Op.EQ:
            return rel is Op.EQ
        if candidate.op is Op.LT:
            return rel is Op.LT
        if candidate.op is Op.LE:
            return rel in (Op.LT, Op.LE, Op.EQ)
        raise TheoryError(f"non-normalized candidate atom {candidate}")

    def implies_all(self, atoms: Iterable) -> bool:
        """One closure, many entailment checks (the blocked-absorb core)."""
        for a in atoms:
            if not self.implies(a):
                return False
        return True

    # ------------------------------------------------------------ equivalence

    def equality_classes(self) -> List[FrozenSet]:
        """Partition of the slots' terms into classes forced equal."""
        m = self._closure()
        n = self._n
        terms = self._terms
        order = sorted(range(n), key=lambda i: term_key(terms[i]))
        assigned = [False] * n
        classes: List[FrozenSet] = []
        for i in order:
            if assigned[i]:
                continue
            assigned[i] = True
            members = {terms[i]}
            row = i * n
            for j in range(n):
                if assigned[j]:
                    continue
                if m[row + j] and m[j * n + i]:
                    assigned[j] = True
                    members.add(terms[j])
            classes.append(frozenset(members))
        return classes

    def _representatives(self) -> Dict:
        """Map each term to its class representative (a constant if any)."""
        rep: Dict = {}
        for cls in self.equality_classes():
            consts = sorted((t for t in cls if isinstance(t, Const)), key=term_key)
            members = sorted(cls, key=term_key)
            chosen = consts[0] if consts else members[0]
            for member in cls:
                rep[member] = chosen
        return rep

    def canonical_atoms(self) -> FrozenSet:
        """The object kernel's canonical atom set, byte for byte.

        Same construction as ``OrderGraph.canonical_atoms``: one
        representative per equality class (preferring constants),
        ``member = rep`` equalities, then the transitive reduction of
        the order on the representatives with constant-to-constant
        edges dropped.  Raises :class:`TheoryError` when unsatisfiable.
        """
        if not self.is_satisfiable():
            raise TheoryError("canonical form of an unsatisfiable conjunction")
        rep = self._representatives()
        out: set = set()
        for member, chosen in rep.items():
            if member != chosen:
                made = eq(member, chosen)
                if not isinstance(made, bool):
                    out.add(made)
        m = self._closure()
        n = self._n
        index = self._index
        reps = sorted({r for r in rep.values()}, key=term_key)
        edges: Dict[Tuple, bool] = {}
        for i, u in enumerate(reps):
            for v in reps[i + 1 :]:
                rel = self.relation_between(u, v)
                if rel in (Op.LT, Op.LE):
                    edges[(u, v)] = rel is Op.LT
                elif rel in (Op.GT, Op.GE):
                    edges[(v, u)] = rel is Op.GT

        def reachable(a, b) -> Optional[bool]:
            if isinstance(a, Const) and isinstance(b, Const):
                if a.value < b.value:
                    return True
                return None
            entry = m[index[a] * n + index[b]]
            return None if entry == _NONE else entry == _STRICT

        for (u, v), strict in edges.items():
            if isinstance(u, Const) and isinstance(v, Const):
                continue  # numeric order is implicit
            redundant = False
            for w in reps:
                if w == u or w == v:
                    continue
                first = reachable(u, w)
                second = reachable(w, v)
                if first is None or second is None:
                    continue
                path_strict = bool(first) or bool(second)
                if path_strict or not strict:
                    redundant = True
                    break
            if not redundant:
                made = lt(u, v) if strict else le(u, v)
                if not isinstance(made, bool):
                    out.add(made)
        return frozenset(out)

    # ------------------------------------------------------------------ solve

    def solve(self) -> Optional[Dict]:
        """An explicit rational witness; None when unsatisfiable.

        Same witness the object kernel produces: representatives are
        placed in ``term_key`` order inside their feasible intervals.
        """
        if not self.is_satisfiable():
            return None
        rep = self._representatives()
        m = self._closure()
        n = self._n
        index = self._index
        reps = sorted(set(rep.values()), key=term_key)
        values: Dict = {}
        pending = []
        for r in reps:
            if isinstance(r, Const):
                values[r] = r.value
            else:
                pending.append(r)
        consts = [self._terms[i] for i, _ in self._const_slots()]

        def entry(u, v) -> int:
            return m[index[u] * n + index[v]]

        def const_bounds(node) -> Tuple[Optional[Fraction], Optional[Fraction]]:
            lo: Optional[Fraction] = None
            hi: Optional[Fraction] = None
            for c in consts:
                if rep[c] == node:
                    continue
                if entry(node, c):  # node <= / < c
                    hi = c.value if hi is None else min(hi, c.value)
                if entry(c, node):  # c <= / < node
                    lo = c.value if lo is None else max(lo, c.value)
            return lo, hi

        def preds(node) -> List:
            result = []
            for other in pending:
                if other == node:
                    continue
                if entry(other, node):
                    result.append(other)
            return result

        remaining = list(pending)
        ordered: List = []
        placed: set = set()
        while remaining:
            progressed = False
            for node in list(remaining):
                if all(p in placed for p in preds(node)):
                    ordered.append(node)
                    placed.add(node)
                    remaining.remove(node)
                    progressed = True
            if not progressed:  # pragma: no cover - impossible once satisfiable
                raise TheoryError("cyclic order among distinct classes")

        for node in ordered:
            lo, hi = const_bounds(node)
            for p in preds(node):
                pv = values[p]
                lo = pv if lo is None else max(lo, pv)
            if lo is None and hi is None:
                values[node] = Fraction(0)
            elif lo is None:
                values[node] = hi - 1
            elif hi is None:
                values[node] = lo + 1
            else:
                if not lo < hi:  # pragma: no cover - guarded by satisfiability
                    raise TheoryError("no interior point available for witness")
                values[node] = (lo + hi) / 2

        witness: Dict = {}
        for node in self._terms:
            if isinstance(node, Var):
                chosen = rep[node]
                witness[node] = values[chosen] if isinstance(chosen, Var) else chosen.value
        return witness


def _restore_matrix(terms: tuple, edges: bytes) -> BoundsMatrix:
    """Rebuild a pickled matrix from its slots + flat int array."""
    m = BoundsMatrix.__new__(BoundsMatrix)
    m._terms = list(terms)
    m._index = {t: i for i, t in enumerate(terms)}
    m._n = len(terms)
    m._edges = bytearray(edges)
    m._matrix = None
    m._sat = None
    m._consts = None
    return m


# -------------------------------------------------------------- batch kernels


def batch_satisfiable(conjunctions: Sequence[Iterable]) -> List[bool]:
    """Satisfiability verdicts for a block of conjunctions.

    Skips the cubic closure: over dense order, a conjunction is
    unsatisfiable iff its constraint graph (with the implicit strict
    chain between consecutive constants materialized) has a strongly
    connected component containing a strict edge -- a strict cycle --
    or two distinct constants -- forced equal.  One Tarjan pass per
    conjunction, linear in atoms, with verdicts identical to
    ``OrderGraph.is_satisfiable`` / ``BoundsMatrix.is_satisfiable``.
    """
    return [_scc_satisfiable(c) for c in conjunctions]


def _scc_satisfiable(atoms: Iterable) -> bool:
    index: Dict = {}
    adj: List[List[int]] = []
    edges: List[Tuple[int, int, bool]] = []
    const_slots: List[Tuple[int, Fraction]] = []

    def slot(t) -> int:
        s = index.get(t)
        if s is None:
            s = index[t] = len(adj)
            adj.append([])
            if isinstance(t, Const):
                const_slots.append((s, t.value))
        return s

    for a in atoms:
        op = a.op
        if op is Op.NE:
            raise TheoryError("BoundsMatrix handles NE-free conjunctions only")
        if op in (Op.GE, Op.GT):  # pragma: no cover - atoms normalize these away
            raise TheoryError("atoms must be normalized before reaching BoundsMatrix")
        i, j = slot(a.left), slot(a.right)
        adj[i].append(j)
        edges.append((i, j, op is Op.LT))
        if op is Op.EQ:
            adj[j].append(i)
            edges.append((j, i, False))
    const_slots.sort(key=lambda pair: pair[1])
    for (lo, _), (hi, _) in zip(const_slots, const_slots[1:]):
        adj[lo].append(hi)
        edges.append((lo, hi, True))
    comp = _scc_ids(adj)
    for u, v, strict in edges:
        if strict and comp[u] == comp[v]:
            return False
    seen_comp: set = set()
    for s, _ in const_slots:
        c = comp[s]
        if c in seen_comp:  # two distinct constants in one class
            return False
        seen_comp.add(c)
    return True


def _scc_ids(adj: List[List[int]]) -> List[int]:
    """Tarjan strongly-connected components, iterative (no recursion)."""
    n = len(adj)
    order = [-1] * n
    low = [0] * n
    comp = [-1] * n
    on_stack = [False] * n
    stack: List[int] = []
    counter = 0
    ncomp = 0
    for root in range(n):
        if order[root] != -1:
            continue
        work: List[List[int]] = [[root, 0]]
        while work:
            frame = work[-1]
            v, pi = frame
            if pi == 0:
                order[v] = low[v] = counter
                counter += 1
                stack.append(v)
                on_stack[v] = True
            descended = False
            neighbours = adj[v]
            while pi < len(neighbours):
                w = neighbours[pi]
                pi += 1
                if order[w] == -1:
                    frame[1] = pi
                    work.append([w, 0])
                    descended = True
                    break
                if on_stack[w] and order[w] < low[v]:
                    low[v] = order[w]
            if descended:
                continue
            work.pop()
            if work:
                u = work[-1][0]
                if low[v] < low[u]:
                    low[u] = low[v]
            if low[v] == order[v]:
                while True:
                    w = stack.pop()
                    on_stack[w] = False
                    comp[w] = ncomp
                    if w == v:
                        break
                ncomp += 1
    return comp


def batch_implies(conjunctions: Sequence[Iterable], candidates: Sequence[Iterable]) -> List[bool]:
    """``conjunctions[i] implies all of candidates[i]``, per index.

    One matrix closure per conjunction, shared across that entry's
    candidate atoms -- the shape of the blocked absorption pass.
    """
    if len(conjunctions) != len(candidates):
        raise ValueError("batch_implies needs one candidate block per conjunction")
    out: List[bool] = []
    for conjunction, block in zip(conjunctions, candidates):
        out.append(BoundsMatrix(conjunction).implies_all(block))
    return out


def batch_canonical(conjunctions: Sequence[Iterable]) -> List[Optional[FrozenSet]]:
    """Fused satisfiability + canonical form for a block of conjunctions.

    ``None`` marks an unsatisfiable entry.  Each conjunction gets its
    own term universe (sharing slots across a block would add constant
    nodes that change transitive-reduction witnesses, breaking the
    byte-identity contract with the object kernel).
    """
    out: List[Optional[FrozenSet]] = []
    for conjunction in conjunctions:
        m = BoundsMatrix(conjunction)
        out.append(m.canonical_atoms() if m.is_satisfiable() else None)
    return out


# ------------------------------------------------------- blocked Relation ops

_GTUPLE = None


def _gtuple():
    global _GTUPLE
    if _GTUPLE is None:
        from repro.core.gtuple import GTuple

        _GTUPLE = GTuple
    return _GTUPLE


def merge_block(theory, wide_a, wide_b: Sequence, matches: Iterable[int], schema) -> List:
    """Merge one left tuple against a block of right-side candidates.

    The blocked join inner loop: same conjunction keys, same kernel
    cache traffic (one ``canonicalize_if_satisfiable`` per candidate
    pair), same interning, same outputs in the same order as the
    per-pair ``GTuple.merge`` path -- minus the per-pair schema
    re-validation that ``GTuple.make`` performs, which is redundant
    here because both sides already range over ``schema``.
    """
    gtuple = _gtuple()
    base = wide_a.atoms
    canonicalize = theory.canonicalize_if_satisfiable
    out: List = []
    for bi in matches:
        canonical = canonicalize(base | wide_b[bi].atoms)
        if canonical is not None:
            out.append(gtuple._canonical(theory, schema, canonical))
    return out


def tuple_matrix(t) -> Optional[BoundsMatrix]:
    """The bounds matrix behind a tuple's lazy entailer, or None.

    Builds the entailer exactly the way ``GTuple.entails`` would (same
    cache lookup, same laziness), then unwraps the kernel it is bound
    to.  Returns None when the entailer is not matrix-backed -- e.g. a
    tuple whose entailer predates a backend switch -- in which case the
    caller falls back to the per-atom path, which is always correct.
    """
    entailer = t._entailer
    if entailer is None:
        entailer = t.theory.make_entailer(t.atoms)
        t._entailer = entailer
    owner = getattr(entailer, "__self__", None)
    return owner if isinstance(owner, BoundsMatrix) else None


# ----------------------------------------------------------- packed gtuples


def pack_gtuple(schema, atoms) -> Optional[Tuple[tuple, bytes]]:
    """A canonical atom set as ``(slots, flat edge-matrix bytes)``.

    Slots are schema positions (int) for variables and
    ``(numerator, denominator)`` pairs for constants, in first-touch
    order.  Returns None when the set is not packable -- a non-schema
    variable, a non-order operator, or two atoms over one term pair
    (impossible for canonical sets, whose decode is therefore
    unambiguous: mutual weak edges are an equality, a single edge is a
    strict or weak bound).
    """
    positions = {name: i for i, name in enumerate(schema)}
    index: Dict = {}
    slots: List = []
    triples: List[Tuple[int, int, int, bool]] = []
    for a in atoms:
        op = getattr(a, "op", None)
        if op is Op.LT:
            w, symmetric = _STRICT, False
        elif op is Op.LE:
            w, symmetric = _WEAK, False
        elif op is Op.EQ:
            w, symmetric = _WEAK, True
        else:
            return None
        for t in (a.left, a.right):
            if t in index:
                continue
            if isinstance(t, Var):
                p = positions.get(t.name)
                if p is None:
                    return None
                index[t] = len(slots)
                slots.append(p)
            elif isinstance(t, Const):
                v = t.value
                index[t] = len(slots)
                slots.append((v.numerator, v.denominator))
            else:
                return None
        triples.append((index[a.left], index[a.right], w, symmetric))
    n = len(slots)
    matrix = bytearray(n * n)
    pairs: set = set()
    for i, j, w, symmetric in triples:
        key = (i, j) if i < j else (j, i)
        if key in pairs:
            return None  # two atoms over one pair: decode would be ambiguous
        pairs.add(key)
        matrix[i * n + j] = w
        if symmetric:
            matrix[j * n + i] = w
    return tuple(slots), bytes(matrix)


def unpack_gtuple(schema, slots: Sequence, matrix: bytes) -> FrozenSet:
    """Invert :func:`pack_gtuple` (exact: same atoms, same normal forms)."""
    terms = [
        Var(schema[s]) if isinstance(s, int) else Const(Fraction(s[0], s[1]))
        for s in slots
    ]
    n = len(terms)
    out: set = set()
    for i in range(n):
        ti = terms[i]
        row = i * n
        for j in range(i + 1, n):
            fwd = matrix[row + j]
            bwd = matrix[j * n + i]
            if not fwd and not bwd:
                continue
            tj = terms[j]
            if fwd and bwd:
                made = eq(ti, tj)
            elif fwd:
                made = lt(ti, tj) if fwd == _STRICT else le(ti, tj)
            else:
                made = lt(tj, ti) if bwd == _STRICT else le(tj, ti)
            if not isinstance(made, bool):  # pragma: no cover - defensive
                out.add(made)
    return frozenset(out)


# Core imports live at the *bottom*: importing ``repro.core.atoms``
# executes ``repro.core.__init__``, whose import chain re-enters this
# module through ``repro.core.theory`` (`from repro.perf.columnar
# import ...`).  Every public name above is already bound by the time
# that re-entry happens; the names below are only referenced from
# inside function bodies, at call time.
from repro.core.atoms import Op, eq, le, lt  # noqa: E402
from repro.core.terms import Const, Var, term_key  # noqa: E402
from repro.errors import TheoryError  # noqa: E402
