"""Bounded memo cache for the dense-order constraint kernel.

One :class:`KernelCache` maps a *conjunction key* -- the ``frozenset``
of its atoms -- to a :class:`KernelEntry` holding everything the
kernel ever derives from that conjunction: the entailment graph
(:class:`~repro.core.ordergraph.OrderGraph`), the satisfiability
verdict, and (computed lazily) the canonical atom set.
:class:`~repro.core.theory.DenseOrderTheory` consults the process-wide
cache from :meth:`is_satisfiable`, :meth:`canonicalize`,
:meth:`canonicalize_if_satisfiable`, :meth:`entails`,
:meth:`make_entailer`, and :meth:`solve`.

Design notes:

* **Keys are syntactic.**  Two logically equivalent but syntactically
  different conjunctions occupy two entries; correctness never depends
  on the key capturing equivalence, only on atoms being immutable
  value objects (they are: frozen dataclasses with cached hashes).
* **Invalidation-free.**  Nothing a cached entry holds can go stale --
  atoms never mutate and the graph is only queried, never extended --
  so eviction is purely a memory-bound concern (LRU, ``capacity``
  entries).
* **The disabled path is one attribute read.**  When ``enabled`` is
  False the theory methods fall through to the direct kernel before
  any key is built, so ``--no-cache`` runs pay a single branch per
  call (gated < 2% by E15).

The cache is process-global (like the ambient tracer/guard slots it
sits beside) and is *not* thread-safe beyond the atomicity of the
underlying dict operations; the engines are single-threaded.
"""

from __future__ import annotations

import contextlib
from collections import OrderedDict
from typing import Dict, FrozenSet, Iterator, Optional

__all__ = [
    "DEFAULT_CAPACITY",
    "KernelCache",
    "KernelEntry",
    "configure_kernel_cache",
    "kernel_cache",
    "kernel_cache_disabled",
    "kernel_counters",
    "kernel_stats",
    "reset_kernel_cache",
]

#: default bound on memo entries; a few thousand conjunctions cover the
#: working set of even the adversarial fixpoint workloads, and entries
#: are small (one closure graph + one frozenset)
DEFAULT_CAPACITY = 16384

#: sentinel distinguishing "canonical form not computed yet" from
#: "computed: unsatisfiable" (which is stored as None)
_UNSET = object()


class KernelEntry:
    """Everything derived from one conjunction of dense-order atoms.

    The graph is built eagerly (it answers satisfiability, entailment,
    and witnesses); the canonical atom set is computed on first demand
    because entailer-only consumers never need it.
    """

    __slots__ = ("graph", "_canonical")

    def __init__(self, graph) -> None:
        self.graph = graph
        self._canonical = _UNSET

    def canonical(self) -> Optional[FrozenSet]:
        """Canonical atom set, or None when unsatisfiable (memoized)."""
        if self._canonical is _UNSET:
            if self.graph.is_satisfiable():
                self._canonical = self.graph.canonical_atoms()
            else:
                self._canonical = None
        return self._canonical


class KernelCache:
    """A bounded LRU memo of :class:`KernelEntry` objects."""

    __slots__ = ("capacity", "enabled", "hits", "misses", "evictions", "entries")

    def __init__(self, capacity: int = DEFAULT_CAPACITY, enabled: bool = True) -> None:
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.enabled = enabled
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.entries: "OrderedDict[FrozenSet, KernelEntry]" = OrderedDict()

    def lookup(self, key: FrozenSet) -> Optional[KernelEntry]:
        """The entry for ``key``, refreshed to most-recently-used."""
        entry = self.entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        self.entries.move_to_end(key)
        return entry

    def store(self, key: FrozenSet, entry: KernelEntry) -> None:
        self.entries[key] = entry
        if len(self.entries) > self.capacity:
            self.entries.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        """Drop all entries (counters are kept: they are monotone)."""
        self.entries.clear()

    def __len__(self) -> int:
        return len(self.entries)

    def __repr__(self) -> str:
        state = "on" if self.enabled else "off"
        return (
            f"<KernelCache {state} {len(self.entries)}/{self.capacity} "
            f"hits={self.hits} misses={self.misses} evictions={self.evictions}>"
        )


#: the process-wide cache the dense-order theory consults
_CACHE = KernelCache()


def kernel_cache() -> KernelCache:
    """The process-wide kernel memo cache."""
    return _CACHE


def configure_kernel_cache(
    *, capacity: Optional[int] = None, enabled: Optional[bool] = None
) -> KernelCache:
    """Adjust the process-wide cache; shrinking evicts oldest entries."""
    if capacity is not None:
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        _CACHE.capacity = capacity
        while len(_CACHE.entries) > capacity:
            _CACHE.entries.popitem(last=False)
            _CACHE.evictions += 1
    if enabled is not None:
        _CACHE.enabled = enabled
    return _CACHE


def reset_kernel_cache() -> None:
    """Drop all cached entries and interned tuples, reset all counters.

    (Test isolation hook; production code never needs it because the
    cache is invalidation-free.)
    """
    from repro.perf.interning import intern_pool

    _CACHE.entries.clear()
    _CACHE.hits = _CACHE.misses = _CACHE.evictions = 0
    pool = intern_pool()
    pool.clear()
    pool.reused = pool.interned = 0


@contextlib.contextmanager
def kernel_cache_disabled() -> Iterator[None]:
    """Route every kernel call through the uncached path (``--no-cache``).

    Disables both the memo cache and the interning pool, restoring
    their previous states on exit.  Existing entries are kept -- they
    cannot go stale -- so re-enabling resumes where the cache left off.
    """
    from repro.perf.interning import intern_pool

    pool = intern_pool()
    was_cache, was_pool = _CACHE.enabled, pool.enabled
    _CACHE.enabled = False
    pool.enabled = False
    try:
        yield
    finally:
        _CACHE.enabled = was_cache
        pool.enabled = was_pool


def kernel_counters() -> Dict[str, int]:
    """The monotone kernel counters (cache + interning), for metrics.

    Only ever-increasing quantities belong here: the ambient
    :class:`~repro.obs.trace.Tracer` snapshots these on activation and
    merges the per-run *delta* into its metrics registry under the
    ``kernel.`` prefix.
    """
    from repro.perf.interning import intern_pool

    pool = intern_pool()
    return {
        "cache.hits": _CACHE.hits,
        "cache.misses": _CACHE.misses,
        "cache.evictions": _CACHE.evictions,
        "intern.reused": pool.reused,
        "intern.interned": pool.interned,
    }


def kernel_stats() -> Dict[str, object]:
    """Point-in-time kernel statistics (counters plus sizes/state)."""
    from repro.perf.interning import intern_pool

    pool = intern_pool()
    out: Dict[str, object] = dict(kernel_counters())
    out["cache.entries"] = len(_CACHE)
    out["cache.capacity"] = _CACHE.capacity
    out["cache.enabled"] = _CACHE.enabled
    out["intern.live"] = len(pool)
    out["intern.enabled"] = pool.enabled
    return out
