"""Weak interning pool for generalized tuples.

:meth:`repro.core.gtuple.GTuple.make` canonicalizes every conjunction,
so structurally equal tuples already *compare* equal -- but each call
used to allocate a fresh object, which meant repeated hashing of the
same atom sets in the engines' dedup dictionaries and one private
entailer per copy.  The pool makes the canonical instance unique:
construction sites look up ``(theory, schema, atoms)`` first and reuse
the existing object, so

* ``==`` short-circuits on identity for the overwhelmingly common
  "same tuple again" case (see ``GTuple.__eq__``);
* the lazily built per-tuple entailer is computed once per *distinct*
  tuple instead of once per copy;
* set/dict membership tests in the fixpoint engines hit identity
  before falling back to structural comparison.

Lifetime: values are held weakly (:class:`weakref.WeakValueDictionary`),
so the pool never extends a tuple's life -- when the last engine-side
reference drops, the entry disappears with it.  There is nothing to
invalidate: tuples are immutable and the key *is* the identity.
"""

from __future__ import annotations

import weakref
from typing import Optional

__all__ = ["InternPool", "intern_pool"]


class InternPool:
    """A weak pool of canonical :class:`~repro.core.gtuple.GTuple` objects."""

    __slots__ = ("enabled", "reused", "interned", "_pool")

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.reused = 0  #: lookups satisfied by an existing instance
        self.interned = 0  #: fresh instances entered into the pool
        self._pool: "weakref.WeakValueDictionary" = weakref.WeakValueDictionary()

    def get(self, key) -> Optional[object]:
        found = self._pool.get(key)
        if found is not None:
            self.reused += 1
        return found

    def add(self, key, value) -> None:
        self._pool[key] = value
        self.interned += 1

    def clear(self) -> None:
        self._pool.clear()

    def __len__(self) -> int:
        return len(self._pool)

    def __repr__(self) -> str:
        state = "on" if self.enabled else "off"
        return (
            f"<InternPool {state} {len(self._pool)} live, "
            f"reused={self.reused} interned={self.interned}>"
        )


#: the process-wide pool GTuple construction sites consult
_POOL = InternPool()


def intern_pool() -> InternPool:
    """The process-wide generalized-tuple interning pool."""
    return _POOL
