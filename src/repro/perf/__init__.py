"""Kernel fast path: interning, memoized canonicalization, columnar kernel.

Every algebra operation bottoms out in
:meth:`repro.core.gtuple.GTuple.make`, which runs the quantifier-
elimination kernel (an :class:`~repro.core.ordergraph.OrderGraph`
closure) on each candidate conjunction.  Joins, complements,
projections, and every Datalog fixpoint round therefore pay the full
kernel cost repeatedly on conjunctions they have already seen -- the
per-round work Grohe & Schwandtner identify as the dominant cost of
Datalog over linear orders.  This package removes the repeated work
without touching any semantics:

* :mod:`repro.perf.cache` -- a bounded, LRU-keyed memo
  (``frozenset(atoms)`` -> entailment kernel + canonical form +
  satisfiability verdict) consulted by
  :class:`~repro.core.theory.DenseOrderTheory`;
* :mod:`repro.perf.interning` -- a weak interning pool making
  structurally equal :class:`~repro.core.gtuple.GTuple` instances the
  *same object*, so equality short-circuits on identity and the
  per-tuple entailer is shared;
* :mod:`repro.perf.columnar` -- the columnar bounds-matrix kernel
  (``REPRO_KERNEL=columnar`` / ``--kernel``): one dense matrix per
  conjunction instead of per-atom object graphs, batch
  satisfiability/implication/canonicalization kernels, blocked
  ``Relation`` join/absorb fast paths, and flat-int-array pickling for
  shard payloads.

All layers are invalidation-free: atoms, canonical atom sets, and
generalized tuples are immutable, so a cached verdict never goes
stale.  ``--no-cache`` on the CLI (or :func:`kernel_cache_disabled`)
routes every call through the original uncached kernel; cached and
uncached evaluation are property-tested to produce ``equivalent()``
relations (``tests/perf``), and E15
(``benchmarks/bench_e15_kernel_cache.py``) gates the speedup and the
disabled-path overhead.  The columnar backend is pinned byte-identical
to the object kernel by ``tests/perf/test_columnar_equivalence.py``
and the differential oracle's kernel-backend axis, with E22
(``benchmarks/bench_e22_columnar.py``) gating the batch speedup and
the disabled-path overhead.
"""

from repro.perf.cache import (
    KernelCache,
    configure_kernel_cache,
    kernel_cache,
    kernel_cache_disabled,
    kernel_counters,
    kernel_stats,
    reset_kernel_cache,
)
from repro.perf.interning import InternPool, intern_pool
from repro.perf.columnar import (
    BoundsMatrix,
    KernelSelector,
    batch_canonical,
    batch_implies,
    batch_satisfiable,
    columnar_enabled,
    configure_kernel,
    kernel_backend,
    kernel_backend_context,
    kernel_selector,
    merge_block,
    pack_gtuple,
    tuple_matrix,
    unpack_gtuple,
)

__all__ = [
    "BoundsMatrix",
    "InternPool",
    "KernelCache",
    "KernelSelector",
    "batch_canonical",
    "batch_implies",
    "batch_satisfiable",
    "columnar_enabled",
    "configure_kernel",
    "configure_kernel_cache",
    "intern_pool",
    "kernel_backend",
    "kernel_backend_context",
    "kernel_cache",
    "kernel_cache_disabled",
    "kernel_counters",
    "kernel_selector",
    "kernel_stats",
    "merge_block",
    "pack_gtuple",
    "reset_kernel_cache",
    "tuple_matrix",
    "unpack_gtuple",
]
