"""Kernel fast path: interning and memoized canonicalization.

Every algebra operation bottoms out in
:meth:`repro.core.gtuple.GTuple.make`, which runs the quantifier-
elimination kernel (an :class:`~repro.core.ordergraph.OrderGraph`
closure) on each candidate conjunction.  Joins, complements,
projections, and every Datalog fixpoint round therefore pay the full
kernel cost repeatedly on conjunctions they have already seen -- the
per-round work Grohe & Schwandtner identify as the dominant cost of
Datalog over linear orders.  This package removes the repeated work
without touching any semantics:

* :mod:`repro.perf.cache` -- a bounded, LRU-keyed memo
  (``frozenset(atoms)`` -> entailment graph + canonical form +
  satisfiability verdict) consulted by
  :class:`~repro.core.theory.DenseOrderTheory`;
* :mod:`repro.perf.interning` -- a weak interning pool making
  structurally equal :class:`~repro.core.gtuple.GTuple` instances the
  *same object*, so equality short-circuits on identity and the
  per-tuple entailer is shared.

Both layers are invalidation-free: atoms, canonical atom sets, and
generalized tuples are immutable, so a cached verdict never goes
stale.  ``--no-cache`` on the CLI (or :func:`kernel_cache_disabled`)
routes every call through the original uncached kernel; cached and
uncached evaluation are property-tested to produce ``equivalent()``
relations (``tests/perf``), and E15
(``benchmarks/bench_e15_kernel_cache.py``) gates the speedup and the
disabled-path overhead.
"""

from repro.perf.cache import (
    KernelCache,
    configure_kernel_cache,
    kernel_cache,
    kernel_cache_disabled,
    kernel_counters,
    kernel_stats,
    reset_kernel_cache,
)
from repro.perf.interning import InternPool, intern_pool

__all__ = [
    "InternPool",
    "KernelCache",
    "configure_kernel_cache",
    "intern_pool",
    "kernel_cache",
    "kernel_cache_disabled",
    "kernel_counters",
    "kernel_stats",
    "reset_kernel_cache",
]
