"""Hanf locality: neighborhood-type certificates for FO bounds.

The third lower-bound instrument (besides EF games and exhaustive
search), and the classical route to "connectivity is not FO" -- the
Theorem 4.2 ingredient the paper inherits from finite model theory.

Hanf locality of first-order logic (Hanf; Fagin-Stockmeyer-Vardi;
Hella-Libkin-Nurmonen): if there is a bijection ``f`` between the
universes of ``A`` and ``B`` preserving the isomorphism type of the
radius-``r`` Gaifman neighborhood, with ``r = (3^d - 1) / 2``, then
``A`` and ``B`` agree on all FO sentences of quantifier rank ``d``.
Equal *censuses* (multisets of neighborhood types) supply such a
bijection, so:

* :func:`neighborhood_census` computes the exact census (isomorphism
  classes decided by backtracking search on the small ball structures);
* :func:`hanf_indistinguishable` returns a sound certificate: ``True``
  means provably ``A ===_d B``; ``False`` means *no certificate*, not
  distinguishability.

The showcase: a single 2n-cycle and two disjoint n-cycles are
vertex-wise indistinguishable locally (every vertex sees a path), so
connectivity cannot be FO -- checked against the exact EF solver in
``tests/genericity/test_locality.py``.
"""

from __future__ import annotations

import itertools
from collections import Counter
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.errors import EncodingError
from repro.genericity.ef_games import FiniteStructure

__all__ = [
    "gaifman_adjacency",
    "ball",
    "rooted_isomorphic",
    "neighborhood_census",
    "hanf_radius",
    "hanf_indistinguishable",
]


def gaifman_adjacency(structure: FiniteStructure) -> Dict[int, Set[int]]:
    """The Gaifman graph: elements co-occurring in some tuple are adjacent."""
    adjacency: Dict[int, Set[int]] = {v: set() for v in structure.universe}
    for _, rows in structure.relations:
        for row in rows:
            for a in row:
                for b in row:
                    if a != b:
                        adjacency[a].add(b)
    return adjacency


def ball(
    structure: FiniteStructure,
    center: int,
    radius: int,
    adjacency: Optional[Dict[int, Set[int]]] = None,
) -> Tuple[FrozenSet[int], Dict[int, int]]:
    """Elements within Gaifman distance ``radius`` of ``center``.

    Returns (elements, distance map).
    """
    adjacency = adjacency if adjacency is not None else gaifman_adjacency(structure)
    distance = {center: 0}
    frontier = [center]
    for step in range(1, radius + 1):
        next_frontier = []
        for node in frontier:
            for neighbour in adjacency[node]:
                if neighbour not in distance:
                    distance[neighbour] = step
                    next_frontier.append(neighbour)
        frontier = next_frontier
    return frozenset(distance), distance


@dataclass(frozen=True)
class _Rooted:
    """A ball as a rooted induced substructure."""

    elements: Tuple[int, ...]
    root: int
    distances: Tuple[int, ...]
    relations: Tuple[Tuple[str, FrozenSet[Tuple[int, ...]]], ...]


def _induced(structure: FiniteStructure, elements: FrozenSet[int], root: int,
             distance: Dict[int, int]) -> _Rooted:
    ordered = tuple(sorted(elements))
    kept = []
    for name, rows in structure.relations:
        inside = frozenset(row for row in rows if all(v in elements for v in row))
        kept.append((name, inside))
    return _Rooted(
        ordered,
        root,
        tuple(distance[v] for v in ordered),
        tuple(kept),
    )


def rooted_isomorphic(a: _Rooted, b: _Rooted) -> bool:
    """Exact isomorphism of rooted balls (roots map to roots).

    Backtracking over distance-respecting bijections; exact, intended
    for the small neighborhoods of locality arguments.
    """
    if len(a.elements) != len(b.elements):
        return False
    dist_a = dict(zip(a.elements, a.distances))
    dist_b = dict(zip(b.elements, b.distances))
    if sorted(a.distances) != sorted(b.distances):
        return False
    rel_a = dict(a.relations)
    rel_b = dict(b.relations)
    if set(rel_a) != set(rel_b):
        return False
    if any(len(rel_a[n]) != len(rel_b[n]) for n in rel_a):
        return False

    candidates: Dict[int, List[int]] = {}
    for x in a.elements:
        candidates[x] = [y for y in b.elements if dist_b[y] == dist_a[x]]

    order = sorted(a.elements, key=lambda x: len(candidates[x]))
    # root must map to root
    if a.root in candidates:
        candidates[a.root] = [b.root] if dist_b.get(b.root) == dist_a[a.root] else []

    mapping: Dict[int, int] = {}
    used: Set[int] = set()

    def consistent(x: int, y: int) -> bool:
        # check all relation rows fully determined by the new pair
        for name, rows in rel_a.items():
            other = rel_b[name]
            for row in rows:
                if x in row and all(v in mapping or v == x for v in row):
                    image = tuple(y if v == x else mapping[v] for v in row)
                    if image not in other:
                        return False
            for row in other:
                if y in row and all(v in used or v == y for v in row):
                    inverse = {w: v for v, w in mapping.items()}
                    inverse[y] = x
                    preimage = tuple(inverse[v] for v in row)
                    if preimage not in rows:
                        return False
        return True

    def search(index: int) -> bool:
        if index == len(order):
            return True
        x = order[index]
        for y in candidates[x]:
            if y in used:
                continue
            if not consistent(x, y):
                continue
            mapping[x] = y
            used.add(y)
            if search(index + 1):
                return True
            del mapping[x]
            used.discard(y)
        return False

    return search(0)


def neighborhood_census(
    structure: FiniteStructure, radius: int
) -> List[Tuple[_Rooted, int]]:
    """The census: one representative per r-neighborhood type + count."""
    adjacency = gaifman_adjacency(structure)
    types: List[Tuple[_Rooted, int]] = []
    for v in structure.universe:
        elements, distance = ball(structure, v, radius, adjacency)
        rooted = _induced(structure, elements, v, distance)
        for i, (representative, count) in enumerate(types):
            if rooted_isomorphic(rooted, representative):
                types[i] = (representative, count + 1)
                break
        else:
            types.append((rooted, 1))
    return types


def hanf_radius(rank: int) -> int:
    """The locality radius for quantifier rank ``rank``: (3^d - 1) / 2."""
    return (3 ** rank - 1) // 2


def hanf_indistinguishable(
    a: FiniteStructure, b: FiniteStructure, rank: int
) -> bool:
    """A sound ``A ===_rank B`` certificate via Hanf locality.

    ``True``: the radius-``(3^d-1)/2`` neighborhood censuses of the two
    structures match exactly, so a type-preserving bijection exists and
    the duplicator wins the ``rank``-round EF game.  ``False`` only
    means no certificate from this method (the structures may still be
    equivalent).
    """
    if len(a.universe) != len(b.universe):
        return False
    radius = hanf_radius(rank)
    census_a = neighborhood_census(a, radius)
    census_b = list(neighborhood_census(b, radius))
    if len(census_a) != len(census_b):
        return False
    for rooted_a, count_a in census_a:
        for i, (rooted_b, count_b) in enumerate(census_b):
            if count_a == count_b and rooted_isomorphic(rooted_a, rooted_b):
                census_b.pop(i)
                break
        else:
            return False
    return not census_b
