"""Exhaustive FO-definability search on finite instance families.

A second, independent inexpressibility tool besides the EF games: for a
*fixed finite family* of finite structures and a fixed variable supply,
the set of queries definable by FO formulas of quantifier rank <= r is
itself finite and computable --

* a query is represented by a pair (semantics, free variables): the
  satisfying assignments of every structure packed into one integer
  bitmask (each structure owns a contiguous bit range, one bit per
  assignment over the full variable supply), plus the set of variables
  the formula actually mentions free.  Tracking free sets syntactically
  matters: a formula can have assignment-independent truth without
  being a sentence (e.g. ``exists y (x < y or y < x)`` on orders of
  size >= 2), and closing it costs extra quantifier rank;
* rank 0 starts from the atomic queries and closes under the boolean
  operations (semantics intersect/complement, free sets union);
  rank r+1 adds existential/universal projections (semantics projected
  on one coordinate, free set minus that variable) and closes again;
* dedup is by the (semantics, free set) pair -- every later construction
  depends only on that pair, so the enumeration is *complete*: it finds
  every rank-<=r definable query over the family using the given
  variable supply.

``search_sentence`` then answers: is there any FO sentence (free set
empty) of rank <= r whose truth pattern over the family matches a
target (e.g. parity of the structure size)?  A negative answer is a
machine-checked inexpressibility certificate *for that rank, variable
budget and family* -- exactly the shape of evidence experiment E4
tabulates next to the EF-game bounds for Theorem 4.2.  (Exact but
expensive: keep families to pairs of small structures and ranks <= 2.)
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

from repro.errors import EncodingError
from repro.genericity.ef_games import FiniteStructure

__all__ = ["enumerate_queries", "search_sentence", "SearchResult"]

#: a definable query: packed assignment bitmask + free-variable bitmask
Query = Tuple[int, int]


class _Family:
    """Precomputed assignment tables; semantics are single big-int masks."""

    def __init__(self, family: Sequence[FiniteStructure], variables: int) -> None:
        if not family:
            raise EncodingError("empty structure family")
        vocab = family[0].vocabulary()
        for s in family:
            if s.vocabulary() != vocab:
                raise EncodingError("family must share one vocabulary")
        self.family = list(family)
        self.variables = variables
        self.assignments: List[List[Tuple[int, ...]]] = [
            list(itertools.product(s.universe, repeat=variables)) for s in family
        ]
        self.offsets: List[int] = []
        total = 0
        for a in self.assignments:
            self.offsets.append(total)
            total += len(a)
        self.total_bits = total
        self.full = (1 << total) - 1
        self.block_masks = [
            ((1 << len(a)) - 1) << off
            for a, off in zip(self.assignments, self.offsets)
        ]
        # witness bit lists: for (structure k, variable v, assignment i),
        # the global bit positions of the assignments rewriting coordinate v
        self.groups: List[List[List[List[int]]]] = []
        for k, s in enumerate(self.family):
            off = self.offsets[k]
            index = {a: off + i for i, a in enumerate(self.assignments[k])}
            per_var: List[List[List[int]]] = []
            for v in range(variables):
                rows: List[List[int]] = []
                for a in self.assignments[k]:
                    rows.append(
                        [index[a[:v] + (w,) + a[v + 1 :]] for w in s.universe]
                    )
                per_var.append(rows)
            self.groups.append(per_var)

    # ----------------------------------------------------------------- atoms

    def atomic(self) -> Set[Query]:
        out: Set[Query] = set()
        v = self.variables
        for i in range(v):
            for j in range(i + 1, v):
                mask = self._mask(lambda a, i=i, j=j: a[i] == a[j])
                out.add((mask, (1 << i) | (1 << j)))
        arities: Dict[str, int] = {}
        for name in self.family[0].vocabulary():
            for s in self.family:
                rows = s.relation(name)
                if rows:
                    arities[name] = len(next(iter(rows)))
                    break
        for name, arity in arities.items():
            for combo in itertools.product(range(v), repeat=arity):
                mask = 0
                for k, s in enumerate(self.family):
                    rows = s.relation(name)
                    off = self.offsets[k]
                    for i, a in enumerate(self.assignments[k]):
                        if tuple(a[c] for c in combo) in rows:
                            mask |= 1 << (off + i)
                free = 0
                for c in combo:
                    free |= 1 << c
                out.add((mask, free))
        return out

    def _mask(self, predicate) -> int:
        mask = 0
        for k in range(len(self.family)):
            off = self.offsets[k]
            for i, a in enumerate(self.assignments[k]):
                if predicate(a):
                    mask |= 1 << (off + i)
        return mask

    # ------------------------------------------------------------ operations

    def project(self, item: Query) -> List[Query]:
        """Existential and universal projections over each *free* variable."""
        semantics, free = item
        out: List[Query] = []
        for v in range(self.variables):
            if not free >> v & 1:
                continue  # vacuous quantification adds nothing new
            exists_mask = 0
            forall_mask = 0
            for k in range(len(self.family)):
                off = self.offsets[k]
                for i, witnesses in enumerate(self.groups[k][v]):
                    any_hit = False
                    all_hit = True
                    for w in witnesses:
                        if semantics >> w & 1:
                            any_hit = True
                        else:
                            all_hit = False
                    if any_hit:
                        exists_mask |= 1 << (off + i)
                    if all_hit:
                        forall_mask |= 1 << (off + i)
            new_free = free & ~(1 << v)
            out.append((exists_mask, new_free))
            out.append((forall_mask, new_free))
        return out

    def truth_vector(self, semantics: int) -> Tuple[bool, ...]:
        return tuple(bool(semantics & m) for m in self.block_masks)


def _boolean_closure(queries: Set[Query], full: int, limit: int) -> Set[Query]:
    """Close under complement and conjunction (hence all boolean ops)."""
    closed: Set[Query] = set(queries)
    closed.add((full, 0))
    closed.add((0, 0))
    frontier = list(closed)
    while frontier:
        if len(closed) > limit:
            raise EncodingError(
                f"definable-query space exceeded the limit ({limit}); "
                "shrink the family, rank, or variable budget"
            )
        semantics, free = frontier.pop()
        negation = (full & ~semantics, free)
        if negation not in closed:
            closed.add(negation)
            frontier.append(negation)
        for other_semantics, other_free in list(closed):
            meet = (semantics & other_semantics, free | other_free)
            if meet not in closed:
                closed.add(meet)
                frontier.append(meet)
    return closed


def enumerate_queries(
    family: Sequence[FiniteStructure],
    variables: int,
    rank: int,
    limit: int = 2_000_000,
) -> Set[Query]:
    """All (semantics, free-set) pairs definable with the rank/variables.

    Complete for formulas whose variables (free and bound) come from a
    supply of ``variables`` names and whose quantifier rank is <= rank.
    """
    ctx = _Family(family, variables)
    current = _boolean_closure(ctx.atomic(), ctx.full, limit)
    for _ in range(rank):
        projected: Set[Query] = set()
        for item in current:
            projected.update(ctx.project(item))
        current = _boolean_closure(current | projected, ctx.full, limit)
    return current


@dataclass
class SearchResult:
    """Outcome of a sentence search."""

    found: bool
    rank: int
    variables: int
    queries_explored: int

    def __bool__(self) -> bool:
        return self.found


def search_sentence(
    family: Sequence[FiniteStructure],
    target: Sequence[bool],
    variables: int,
    rank: int,
    limit: int = 2_000_000,
) -> SearchResult:
    """Is some rank-<=r sentence's truth pattern equal to ``target``?

    Sentences are the enumerated queries whose free-variable set is
    empty.  Both directions are exact for the given rank, variable
    budget and family: ``found=True`` exhibits a sentence, and
    ``found=False`` certifies none exists.
    """
    if len(target) != len(family):
        raise EncodingError("target length must match the family")
    ctx = _Family(family, variables)
    queries = enumerate_queries(family, variables, rank, limit)
    goal = tuple(target)
    for semantics, free in queries:
        if free == 0 and ctx.truth_vector(semantics) == goal:
            return SearchResult(True, rank, variables, len(queries))
    return SearchResult(False, rank, variables, len(queries))
