"""Ehrenfeucht-Fraisse games: the engine behind Theorem 4.2's evidence.

Theorem 4.2 (via [FSS84]) states that parity and graph connectivity are
not FO+ definable.  The reproduction validates the *consequence* with
exact EF-game computations: if the duplicator wins the r-round game on
``A`` and ``B``, no FO sentence of quantifier rank ``r`` distinguishes
them; so a query separating families that are r-equivalent for every r
is not first-order.

The solver decides duplicator wins on arbitrary *finite* relational
structures (exact, memoized).  Helpers build the structures the
experiments need:

* plain finite linear orders (``linear_order``): the classical result
  -- orders of size ``>= 2**r - 1`` are r-round equivalent -- is the
  engine of the parity argument (parity alternates between ``n`` and
  ``n + 1`` while EF-equivalence classes stabilize);
* *cell words* of unary dense-order databases (``cell_structure``): the
  finite structure whose elements are the canonical cells with the
  order and a membership color, abstracting a 1-D infinite instance.
"""

from __future__ import annotations

import itertools

from dataclasses import dataclass, field
from fractions import Fraction
from functools import lru_cache
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.intervals import IntervalSet
from repro.core.relation import Relation
from repro.encoding.cells import CellDecomposition
from repro.errors import EncodingError

__all__ = [
    "FiniteStructure",
    "linear_order",
    "cell_structure",
    "duplicator_wins",
    "min_distinguishing_rank",
]


@dataclass(frozen=True)
class FiniteStructure:
    """A finite relational structure (universe of ints, named relations)."""

    universe: Tuple[int, ...]
    relations: Tuple[Tuple[str, FrozenSet[Tuple[int, ...]]], ...]

    @classmethod
    def make(cls, universe: Iterable[int], relations: Dict[str, Iterable[Sequence[int]]]) -> "FiniteStructure":
        frozen = tuple(
            (name, frozenset(tuple(row) for row in rows))
            for name, rows in sorted(relations.items())
        )
        return cls(tuple(universe), frozen)

    def relation(self, name: str) -> FrozenSet[Tuple[int, ...]]:
        for n, rows in self.relations:
            if n == name:
                return rows
        raise EncodingError(f"no relation {name!r} in structure")

    def vocabulary(self) -> Tuple[str, ...]:
        return tuple(n for n, _ in self.relations)


def linear_order(n: int) -> FiniteStructure:
    """The finite linear order with ``n`` elements (relation ``<``)."""
    universe = range(n)
    less = [(i, j) for i in universe for j in universe if i < j]
    return FiniteStructure.make(universe, {"<": less})


def cell_structure(relation: Relation, decomposition: Optional[CellDecomposition] = None) -> FiniteStructure:
    """The cell word of a unary dense-order relation.

    Elements are the cell indices of the canonical decomposition by the
    relation's constants; ``<`` is the cell order, ``in`` marks cells
    inside the relation, ``point`` marks the constant cells.  Two unary
    instances with isomorphic cell words are indistinguishable by any
    generic query, so EF equivalence of cell words is the right finite
    abstraction of the infinite 1-D instances.
    """
    if relation.arity != 1:
        raise EncodingError("cell_structure requires a unary relation")
    d = decomposition or CellDecomposition(relation.constants())
    n = d.cell_count
    inside = [
        (i,) for i in range(n) if relation.contains_point([d.cell_sample(i)])
    ]
    points = [(i,) for i in range(n) if d.is_point_cell(i)]
    less = [(i, j) for i in range(n) for j in range(n) if i < j]
    return FiniteStructure.make(range(n), {"<": less, "in": inside, "point": points})


def _partial_isomorphism(
    a: FiniteStructure,
    b: FiniteStructure,
    pairs: Tuple[Tuple[int, int], ...],
) -> bool:
    """Is the pebble assignment a partial isomorphism?"""
    left = [p[0] for p in pairs]
    right = [p[1] for p in pairs]
    for i in range(len(pairs)):
        for j in range(len(pairs)):
            if (left[i] == left[j]) != (right[i] == right[j]):
                return False
    vocab_a = dict(a.relations)
    vocab_b = dict(b.relations)
    if set(vocab_a) != set(vocab_b):
        raise EncodingError("EF game requires a shared vocabulary")
    for name, rows_a in vocab_a.items():
        rows_b = vocab_b[name]
        if rows_a or rows_b:
            arity = len(next(iter(rows_a or rows_b)))
        else:
            continue
        for combo in itertools.product(range(len(pairs)), repeat=arity):
            ta = tuple(left[i] for i in combo)
            tb = tuple(right[i] for i in combo)
            if (ta in rows_a) != (tb in rows_b):
                return False
    return True


def duplicator_wins(
    a: FiniteStructure,
    b: FiniteStructure,
    rounds: int,
    _pairs: Tuple[Tuple[int, int], ...] = (),
    _memo: Optional[Dict] = None,
) -> bool:
    """Does the duplicator win the ``rounds``-round EF game on (a, b)?

    Exact decision; equivalent to ``a`` and ``b`` agreeing on all FO
    sentences of quantifier rank <= rounds over the shared vocabulary.
    """
    if _memo is None:
        _memo = {}
    key = (frozenset(_pairs), rounds)
    cached = _memo.get(key)
    if cached is not None:
        return cached
    if not _partial_isomorphism(a, b, _pairs):
        _memo[key] = False
        return False
    if rounds == 0:
        _memo[key] = True
        return True
    # spoiler plays in a: duplicator must answer in b (and symmetrically)
    def answerable(spoiler_in_a: bool) -> bool:
        source = a.universe if spoiler_in_a else b.universe
        target = b.universe if spoiler_in_a else a.universe
        for move in source:
            found = False
            for reply in target:
                pair = (move, reply) if spoiler_in_a else (reply, move)
                if duplicator_wins(a, b, rounds - 1, _pairs + (pair,), _memo):
                    found = True
                    break
            if not found:
                return False
        return True

    result = answerable(True) and answerable(False)
    _memo[key] = result
    return result


def min_distinguishing_rank(
    a: FiniteStructure, b: FiniteStructure, max_rank: int
) -> Optional[int]:
    """The least r <= max_rank with a spoiler win, or None.

    ``None`` certifies that no FO sentence of rank <= max_rank
    distinguishes the two structures.
    """
    for r in range(max_rank + 1):
        if not duplicator_wins(a, b, r):
            return r
    return None
