"""Topological vs. order-generic queries (paper Section 3).

After Definition 3.1 the paper observes: "our definition of a query
corresponds naturally to a topological concept.  Consider the usual
topology on the set Q of rationals."  The homeomorphisms of Q are the
monotone bijections -- *increasing* (the automorphisms of ``(Q, <=)``)
and *decreasing* (reflections).  This gives two invariance classes:

* **generic** queries: closed under increasing bijections
  (Definition 3.1's queries);
* **topological** queries: closed under all homeomorphisms, i.e. also
  under order reversal.

Every topological query is generic; the converse fails -- ``"S has a
point below 0"`` is generic-with-constants-free... no: consider
``"some element of S is smaller than every other element"`` (has a
minimum): generic, but its *reflection* asks for a maximum, so the
query IS reflection-invariant only if min/max-existence coincide --
they do not for half-open intervals.  :func:`classify` tests a boolean
mapping against both families and reports where it sits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.core.database import Database
from repro.genericity.automorphisms import PiecewiseLinearMap, reflection
from repro.genericity.checks import BooleanQuery, default_automorphisms

__all__ = ["InvarianceReport", "classify"]


@dataclass
class InvarianceReport:
    """Where a boolean mapping sits in the §3 invariance landscape."""

    generic: bool  #: closed under (sampled) increasing bijections
    topological: bool  #: additionally closed under order reversal
    generic_witness: Optional[PiecewiseLinearMap] = None
    reflection_witness: Optional[PiecewiseLinearMap] = None

    @property
    def kind(self) -> str:
        if self.topological:
            return "topological query"
        if self.generic:
            return "generic (order-sensitive) query"
        return "not a query"


def classify(
    query: BooleanQuery,
    database: Database,
    count: int = 6,
    seed: int = 0,
    extra_maps: Sequence[PiecewiseLinearMap] = (),
) -> InvarianceReport:
    """Test a boolean mapping for genericity and topological invariance.

    Refutations are definitive (a witness map is attached); passes are
    property-testing evidence over the seeded family.
    """
    base = query(database)
    generic = True
    generic_witness: Optional[PiecewiseLinearMap] = None
    increasing = list(default_automorphisms(database, count, seed)) + [
        m for m in extra_maps if m.increasing
    ]
    for phi in increasing:
        if query(phi.apply_to_database(database)) != base:
            generic = False
            generic_witness = phi
            break

    topological = generic
    reflection_witness: Optional[PiecewiseLinearMap] = None
    if generic:
        decreasing = [reflection()] + [m for m in extra_maps if not m.increasing]
        for phi in decreasing:
            if query(phi.apply_to_database(database)) != base:
                topological = False
                reflection_witness = phi
                break

    return InvarianceReport(generic, topological, generic_witness, reflection_witness)
