"""Queries, genericity, and inexpressibility tools (Sections 3-4).

* :mod:`repro.genericity.automorphisms` -- piecewise-linear
  automorphisms of Q and their action on databases (Definition 3.1);
* :mod:`repro.genericity.checks` -- genericity testing of candidate
  queries over seeded automorphism families;
* :mod:`repro.genericity.ef_games` -- exact Ehrenfeucht-Fraisse games
  on finite structures (the parity/connectivity evidence of Thm 4.2);
* :mod:`repro.genericity.formula_search` -- complete enumeration of the
  rank-bounded FO-definable queries over a finite instance family
  (machine-checked inexpressibility certificates).
"""

from repro.genericity.automorphisms import (
    PiecewiseLinearMap,
    identity,
    moving,
    random_automorphism,
    reflection,
    scaling,
    translation,
)
from repro.genericity.checks import (
    GenericityReport,
    check_boolean_generic,
    check_generic,
    default_automorphisms,
)
from repro.genericity.ef_games import (
    FiniteStructure,
    cell_structure,
    duplicator_wins,
    linear_order,
    min_distinguishing_rank,
)
from repro.genericity.formula_search import (
    SearchResult,
    enumerate_queries,
    search_sentence,
)
from repro.genericity.locality import (
    gaifman_adjacency,
    hanf_indistinguishable,
    hanf_radius,
    neighborhood_census,
)
from repro.genericity.topological import InvarianceReport, classify

__all__ = [
    "PiecewiseLinearMap",
    "identity",
    "moving",
    "random_automorphism",
    "reflection",
    "scaling",
    "translation",
    "GenericityReport",
    "check_boolean_generic",
    "check_generic",
    "default_automorphisms",
    "FiniteStructure",
    "cell_structure",
    "duplicator_wins",
    "linear_order",
    "min_distinguishing_rank",
    "SearchResult",
    "enumerate_queries",
    "search_sentence",
    "gaifman_adjacency",
    "hanf_indistinguishable",
    "hanf_radius",
    "neighborhood_census",
    "InvarianceReport",
    "classify",
]
