"""Order-automorphisms of Q and their action on databases (Section 3).

Definition 3.1 of the paper: a (boolean) query is a partial recursive
collection of finitely representable instances *closed under
automorphisms of Q*.  The automorphisms of ``(Q, <=)`` are the strictly
increasing bijections; this module implements the piecewise-linear ones
(with rational breakpoints), which suffice to move any finite constant
set anywhere order-compatibly -- and that is exactly what genericity
tests need.

The action on a dense-order relation is syntactic: an order atom
``x <= c`` maps to ``x <= phi(c)`` and variable-variable atoms are
fixed, because ``phi`` preserves order.  Order-*reversing* bijections
(``reflection`` composed with a piecewise-linear map) are also
provided: together with the increasing ones they generate the
homeomorphisms of Q, used by the "queries are topological" comparison
of Section 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.atoms import Atom, Op, atom
from repro.core.database import Database
from repro.core.gtuple import GTuple
from repro.core.relation import Relation
from repro.core.terms import Const, Term, Var, as_fraction
from repro.core.theory import DENSE_ORDER
from repro.errors import EncodingError, TheoryError

__all__ = ["PiecewiseLinearMap", "identity", "translation", "scaling", "reflection",
           "moving", "random_automorphism"]


@dataclass(frozen=True)
class PiecewiseLinearMap:
    """A piecewise-linear monotone bijection of Q.

    ``breakpoints`` is a tuple of ``(x, y)`` pairs with the ``x``
    strictly increasing and the ``y`` strictly monotone (increasing
    when ``increasing`` is True, else strictly decreasing).  Outside
    the breakpoint range the map continues with slopes ``left_slope``
    and ``right_slope`` (positive rationals; default 1); between
    consecutive breakpoints it interpolates linearly.  With no
    breakpoints it is ``x -> slope * x`` through the origin (or its
    reflection when decreasing).
    """

    breakpoints: Tuple[Tuple[Fraction, Fraction], ...] = ()
    increasing: bool = True
    left_slope: Fraction = Fraction(1)
    right_slope: Fraction = Fraction(1)

    def __post_init__(self) -> None:
        xs = [p[0] for p in self.breakpoints]
        ys = [p[1] for p in self.breakpoints]
        if sorted(xs) != xs or len(set(xs)) != len(xs):
            raise TheoryError("breakpoint x-coordinates must strictly increase")
        check = ys if self.increasing else [-v for v in ys]
        if sorted(check) != check or len(set(check)) != len(check):
            raise TheoryError("breakpoint images must be strictly monotone")
        if self.left_slope <= 0 or self.right_slope <= 0:
            raise TheoryError("boundary slopes must be positive")

    # ----------------------------------------------------------------- apply

    def __call__(self, value) -> Fraction:
        v = as_fraction(value)
        sign = Fraction(1) if self.increasing else Fraction(-1)
        points = self.breakpoints
        if not points:
            return sign * self.left_slope * v
        if v <= points[0][0]:
            return points[0][1] + sign * self.left_slope * (v - points[0][0])
        if v >= points[-1][0]:
            return points[-1][1] + sign * self.right_slope * (v - points[-1][0])
        for (x0, y0), (x1, y1) in zip(points, points[1:]):
            if x0 <= v <= x1:
                t = (v - x0) / (x1 - x0)
                return y0 + t * (y1 - y0)
        raise TheoryError("unreachable")  # pragma: no cover

    def inverse(self) -> "PiecewiseLinearMap":
        """The inverse bijection (also piecewise linear)."""
        flipped = [(y, x) for x, y in self.breakpoints]
        flipped.sort()
        left, right = (
            (self.left_slope, self.right_slope)
            if self.increasing
            else (self.right_slope, self.left_slope)
        )
        return PiecewiseLinearMap(
            tuple(flipped), self.increasing, 1 / left, 1 / right
        )

    def compose(self, inner: "PiecewiseLinearMap") -> "PiecewiseLinearMap":
        """``self after inner`` as a piecewise-linear map.

        Breakpoints: the inner map's breakpoints plus the preimages of
        the outer map's breakpoints under the inner map.
        """
        xs = {x for x, _ in inner.breakpoints}
        inner_inverse = inner.inverse()
        xs |= {inner_inverse(x) for x, _ in self.breakpoints}
        points = tuple(sorted((x, self(inner(x))) for x in xs))
        # boundary slope of the composition: outer slope at the image side
        inner_left, inner_right = inner.left_slope, inner.right_slope
        outer_left, outer_right = self.left_slope, self.right_slope
        if inner.increasing:
            left = inner_left * outer_left
            right = inner_right * outer_right
        else:
            left = inner_left * outer_right
            right = inner_right * outer_left
        return PiecewiseLinearMap(
            points, self.increasing == inner.increasing, left, right
        )

    # ---------------------------------------------------------------- action

    def apply_to_term(self, term: Term) -> Term:
        if isinstance(term, Const):
            return Const(self(term.value))
        return term

    def apply_to_atom(self, a: Atom):
        """The image constraint: order-reversing maps flip comparisons."""
        op = a.op
        if not self.increasing and op in (Op.LT, Op.LE):
            return atom(self.apply_to_term(a.right), op, self.apply_to_term(a.left))
        return atom(self.apply_to_term(a.left), op, self.apply_to_term(a.right))

    def apply_to_relation(self, relation: Relation) -> Relation:
        """The pointwise image ``{phi(p) : p in R}`` in closed form."""
        if relation.theory is not DENSE_ORDER:
            raise EncodingError(
                "automorphism action is defined on dense-order relations only "
                "(automorphisms of (Q, <=) do not preserve +)"
            )
        tuples = []
        for t in relation.tuples:
            atoms = [self.apply_to_atom(a) for a in t.atoms]
            made = GTuple.make(DENSE_ORDER, relation.schema, atoms)
            if made is not None:  # pragma: no branch - bijections preserve sat
                tuples.append(made)
        return Relation(DENSE_ORDER, relation.schema, tuples)

    def apply_to_database(self, database: Database) -> Database:
        out = Database(theory=database.theory)
        for name, relation in database.items():
            out[name] = self.apply_to_relation(relation)
        return out

    def __repr__(self) -> str:
        arrow = "increasing" if self.increasing else "decreasing"
        return f"<PiecewiseLinearMap {arrow} {list(self.breakpoints)}>"


def identity() -> PiecewiseLinearMap:
    """The identity automorphism."""
    return PiecewiseLinearMap()


def translation(offset) -> PiecewiseLinearMap:
    """``x -> x + offset``."""
    d = as_fraction(offset)
    return PiecewiseLinearMap(((Fraction(0), d),))


def scaling(factor) -> PiecewiseLinearMap:
    """``x -> factor * x`` for positive rational ``factor``."""
    f = as_fraction(factor)
    if f <= 0:
        raise TheoryError("scaling factor must be positive")
    return PiecewiseLinearMap(
        ((Fraction(0), Fraction(0)),), True, f, f
    )


def reflection() -> PiecewiseLinearMap:
    """``x -> -x``: a homeomorphism of Q that is *not* an automorphism."""
    return PiecewiseLinearMap((), increasing=False)


def moving(assignment: Dict[Fraction, Fraction]) -> PiecewiseLinearMap:
    """The automorphism interpolating a finite order-compatible map.

    ``assignment`` sends sources to images; both sides must be in the
    same strict order.
    """
    points = tuple(sorted((as_fraction(k), as_fraction(v)) for k, v in assignment.items()))
    return PiecewiseLinearMap(points)


def random_automorphism(rng, constants: Iterable[Fraction]) -> PiecewiseLinearMap:
    """A seeded random automorphism moving the given constants.

    ``rng`` is a :class:`random.Random`; images are random rationals
    preserving the source order (offsets in steps of 1/4 within +-8).
    """
    sources = sorted(set(as_fraction(c) for c in constants))
    if not sources:
        return identity()
    images: List[Fraction] = []
    cursor = Fraction(rng.randint(-32, 0), 4)
    for _ in sources:
        cursor += Fraction(rng.randint(1, 12), 4)
        images.append(cursor)
    return moving(dict(zip(sources, images)))
