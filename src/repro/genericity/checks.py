"""Genericity testing: is a mapping a *query* in the paper's sense?

Definition 3.1 requires closure under automorphisms of Q:
``Q(phi(D)) = phi(Q(D))`` for every automorphism ``phi``.  Testing all
automorphisms is impossible; testing a family of seeded random
piecewise-linear ones (which can realize every order type of the
finite constant set) is the practical falsification tool used by
experiment E11:

* FO and Datalog(not) mappings always pass (they are queries --
  Section 4);
* FO+ mappings may fail: addition is not automorphism-invariant, e.g.
  the *midpoint* query ``{z | exists x, y (S(x) and S(y) and
  x + y = 2z)}`` is refuted by any automorphism that moves midpoints.

The module also checks the weaker *topological* closure (invariance
under homeomorphisms, i.e. monotone plus antitone bijections) that
Section 3 relates to genericity.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Sequence

from repro.core.database import Database
from repro.core.relation import Relation
from repro.encoding.cells import relations_equivalent
from repro.genericity.automorphisms import (
    PiecewiseLinearMap,
    random_automorphism,
    reflection,
)

__all__ = ["GenericityReport", "check_generic", "check_boolean_generic",
           "default_automorphisms"]

#: a mapping from instances to relations (a candidate non-boolean query)
RelationQuery = Callable[[Database], Relation]
#: a mapping from instances to booleans (a candidate boolean query)
BooleanQuery = Callable[[Database], bool]


@dataclass
class GenericityReport:
    """Result of a genericity check."""

    generic: bool
    tested: int
    witness: Optional[PiecewiseLinearMap] = None  #: a violating map, if any

    def __bool__(self) -> bool:
        return self.generic


def default_automorphisms(
    database: Database, count: int = 8, seed: int = 0, include_reflection: bool = False
) -> List[PiecewiseLinearMap]:
    """A seeded family of automorphisms moving the instance's constants."""
    rng = random.Random(seed)
    maps = [random_automorphism(rng, database.constants()) for _ in range(count)]
    if include_reflection:
        maps.append(reflection())
    return maps


def check_generic(
    query: RelationQuery,
    database: Database,
    automorphisms: Optional[Sequence[PiecewiseLinearMap]] = None,
    count: int = 8,
    seed: int = 0,
) -> GenericityReport:
    """Test ``Q(phi(D)) == phi(Q(D))`` over a family of automorphisms.

    A failed check *refutes* genericity (with the witness map); a
    passed check is evidence only, as with any property-based test.
    """
    maps = (
        list(automorphisms)
        if automorphisms is not None
        else default_automorphisms(database, count, seed)
    )
    base = query(database)
    for phi in maps:
        moved_input = query(phi.apply_to_database(database))
        moved_output = phi.apply_to_relation(base)
        if not relations_equivalent(moved_input, moved_output):
            return GenericityReport(False, len(maps), phi)
    return GenericityReport(True, len(maps))


def check_boolean_generic(
    query: BooleanQuery,
    database: Database,
    automorphisms: Optional[Sequence[PiecewiseLinearMap]] = None,
    count: int = 8,
    seed: int = 0,
) -> GenericityReport:
    """Boolean version: ``Q(phi(D)) == Q(D)``."""
    maps = (
        list(automorphisms)
        if automorphisms is not None
        else default_automorphisms(database, count, seed)
    )
    base = query(database)
    for phi in maps:
        if query(phi.apply_to_database(database)) != base:
            return GenericityReport(False, len(maps), phi)
    return GenericityReport(True, len(maps))
