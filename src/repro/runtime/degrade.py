"""Graceful degradation policies for budgeted fixpoint evaluation.

:func:`run_with_policy` wraps a Datalog¬ engine call and turns budget
exhaustion into the best answer the budget allows, instead of an
exception, according to a :class:`DegradePolicy`:

1. **transient retry** — injected/infrastructural
   :class:`~repro.runtime.faults.TransientEvaluationError` failures are
   retried up to ``retry_transient`` times; a
   :class:`~repro.errors.ShardFailedError` from the parallel backend is
   retried the same way — by the time one propagates, the resilient
   dispatch loop has restarted or degraded the pool, so a whole-query
   retry runs on healthier infrastructure than the attempt that died;
2. **simplification retry** — when the *representation* blew the
   budget (tuple or atom limits) and the first attempt ran with
   per-round simplification off, retry once with simplification on
   (smaller representations, same denotation);
3. **partial fallback** — when the budget still cuts evaluation short,
   rerun truncated (``on_budget="partial"``) and return the partial
   :class:`~repro.datalog.engine.FixpointResult` with
   ``reached_fixpoint=False`` and ``cut`` describing what was cut —
   sound under inflationary semantics, where every derived fact is
   final.

The wrapper is engine-agnostic: pass ``engine=`` any callable with the
``evaluate_program`` signature (naive, semi-naive, stratified).

Every degradation decision (transient retry, simplification retry,
partial fallback) is emitted as a ``warning``-level structured log
event through the ambient tracer (:mod:`repro.obs.log`), so a
production run's retries are visible in the log stream and the
flight-recorder ring — and cost nothing when nobody is observing.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Optional

from repro.errors import ShardFailedError
from repro.obs.log import log_event
from repro.runtime.budget import Budget, BudgetExceeded, TupleLimitExceeded
from repro.runtime.faults import TransientEvaluationError

__all__ = ["DegradePolicy", "run_with_policy"]


@dataclass(frozen=True)
class DegradePolicy:
    """What to do when a budgeted evaluation fails.

    ``retry_transient``           retries for transient failures;
    ``retry_with_simplification`` retry representation blowups with
                                  per-round simplification forced on;
    ``partial_on_budget``         degrade to a truncated partial result
                                  instead of re-raising;
    ``fallback_max_rounds``       round cap for the partial rerun
                                  (default: the rounds the failed
                                  attempt completed, when > 0).
    """

    retry_transient: int = 1
    retry_with_simplification: bool = True
    partial_on_budget: bool = True
    fallback_max_rounds: Optional[int] = None


def run_with_policy(
    program,
    database,
    *,
    budget: Optional[Budget] = None,
    policy: DegradePolicy = DegradePolicy(),
    engine=None,
    max_rounds: Optional[int] = None,
    simplify_each_round: bool = True,
):
    """Evaluate ``program`` under ``budget``, degrading per ``policy``.

    Returns the engine's :class:`FixpointResult`; when degradation
    kicked in, ``reached_fixpoint`` is ``False`` and ``cut`` names what
    the budget cut.  Raises the original :class:`BudgetExceeded` when
    the policy forbids (or cannot produce) a partial answer.
    """
    if engine is None:
        from repro.datalog.engine import evaluate_program as engine

    # engines differ in knobs (semi-naive always simplifies); pass only
    # what the engine's signature accepts
    supports_simplify = "simplify_each_round" in inspect.signature(engine).parameters

    def attempt(simplify: bool, on_budget: str, rounds_cap: Optional[int]):
        kwargs = dict(max_rounds=rounds_cap, budget=budget, on_budget=on_budget)
        if supports_simplify:
            kwargs["simplify_each_round"] = simplify
        return engine(program, database, **kwargs)

    transient_left = policy.retry_transient
    simplify = simplify_each_round
    # nothing to turn on if already on (or the engine has no such knob)
    retried_simplified = simplify_each_round or not supports_simplify
    while True:
        try:
            return attempt(simplify, "raise", max_rounds)
        except (TransientEvaluationError, ShardFailedError) as error:
            if transient_left <= 0:
                raise
            transient_left -= 1
            log_event(
                "degrade.retry_transient", level="warning",
                error=type(error).__name__, retries_left=transient_left,
            )
        except BudgetExceeded as error:
            # representation blowup: simplification shrinks representations
            # without changing the denoted pointset — retry once with it on
            if (
                isinstance(error, TupleLimitExceeded)
                and policy.retry_with_simplification
                and not retried_simplified
            ):
                retried_simplified = True
                simplify = True
                log_event(
                    "degrade.retry_simplified", level="warning",
                    error=type(error).__name__, site=error.site,
                )
                continue
            fallback = policy.fallback_max_rounds
            if fallback is None and error.rounds > 0:
                fallback = error.rounds
            if not policy.partial_on_budget or not fallback:
                raise
            log_event(
                "degrade.partial_fallback", level="warning",
                error=type(error).__name__, site=error.site,
                fallback_max_rounds=fallback,
            )
            return attempt(simplify, "partial", fallback)
