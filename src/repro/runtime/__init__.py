"""Resource-governed evaluation runtime.

The engine's hot paths are intrinsically expensive in the worst case:
complement distributes negation over the DNF representation
(exponential), and the fixpoint engines iterate until convergence.
This package makes every evaluation *bounded, cancellable, and
observable*:

* :mod:`repro.runtime.budget` — the :class:`Budget` value object and
  the :class:`BudgetExceeded` error hierarchy with structured
  diagnostics;
* :mod:`repro.runtime.guard` — :class:`EvaluationGuard`, the cheap
  checkpoints the evaluator, relation algebra, and fixpoint engines
  consult, plus cooperative cancellation;
* :mod:`repro.runtime.degrade` — :func:`run_with_policy`, turning
  budget exhaustion into retries and tagged partial results;
* :mod:`repro.runtime.faults` — deterministic, seedable fault
  injection at named engine sites, for the robustness test suite.
"""

from repro.runtime.budget import (
    UNLIMITED,
    AtomLimitExceeded,
    Budget,
    BudgetExceeded,
    DeadlineExceeded,
    DepthLimitExceeded,
    EvaluationCancelled,
    RoundLimitExceeded,
    TupleLimitExceeded,
)
from repro.runtime.degrade import DegradePolicy, run_with_policy
from repro.runtime.faults import (
    KNOWN_SITES,
    FaultRegistry,
    TransientEvaluationError,
    fault_point,
)
from repro.runtime.guard import EvaluationGuard, active_guard

__all__ = [
    "Budget",
    "UNLIMITED",
    "BudgetExceeded",
    "DeadlineExceeded",
    "TupleLimitExceeded",
    "AtomLimitExceeded",
    "RoundLimitExceeded",
    "DepthLimitExceeded",
    "EvaluationCancelled",
    "EvaluationGuard",
    "active_guard",
    "DegradePolicy",
    "run_with_policy",
    "FaultRegistry",
    "TransientEvaluationError",
    "fault_point",
    "KNOWN_SITES",
]
