"""Resource budgets for evaluation, and the errors raised on exhaustion.

Quantifier elimination over dense order is intrinsically nonpolynomial
in the worst case (complement distributes negation over the DNF
representation), and the fixpoint engines iterate until convergence.
A production deployment therefore needs every evaluation to carry an
explicit :class:`Budget`: a wall-clock deadline plus caps on the
generalized tuples materialized, the constraint atoms per relation,
the fixpoint rounds, and the formula recursion depth.

Budgets are *declarative*; enforcement lives in
:class:`repro.runtime.guard.EvaluationGuard`, which the evaluator, the
relation algebra, and the fixpoint engines consult at cheap
checkpoints.  Exhaustion raises a :class:`BudgetExceeded` subclass
carrying structured diagnostics (the site that tripped, rounds
completed, tuples materialized so far, elapsed seconds), so callers —
and the CLI — can report exactly what was cut and decide whether to
degrade to a partial result instead (:mod:`repro.runtime.degrade`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import EvaluationError

__all__ = [
    "Budget",
    "UNLIMITED",
    "BudgetExceeded",
    "DeadlineExceeded",
    "TupleLimitExceeded",
    "AtomLimitExceeded",
    "RoundLimitExceeded",
    "DepthLimitExceeded",
    "EvaluationCancelled",
]


@dataclass(frozen=True)
class Budget:
    """Resource limits for one evaluation.  ``None`` means unlimited.

    ``deadline_seconds``
        wall-clock limit for the whole evaluation;
    ``max_tuples``
        cumulative cap on generalized tuples materialized by the
        guarded relation operations (join, complement, projection, ...);
    ``max_atoms_per_relation``
        cap on the constraint atoms of any single materialized relation
        (catches representation bloat that tuple counts miss);
    ``max_rounds``
        cap on fixpoint rounds (Datalog¬, C-CALC fixpoint and while);
    ``max_depth``
        cap on formula recursion depth in the closed-form evaluator.
    """

    deadline_seconds: Optional[float] = None
    max_tuples: Optional[int] = None
    max_atoms_per_relation: Optional[int] = None
    max_rounds: Optional[int] = None
    max_depth: Optional[int] = None

    def is_unlimited(self) -> bool:
        return all(
            limit is None
            for limit in (
                self.deadline_seconds,
                self.max_tuples,
                self.max_atoms_per_relation,
                self.max_rounds,
                self.max_depth,
            )
        )


#: the do-nothing budget (every limit off)
UNLIMITED = Budget()


class BudgetExceeded(EvaluationError):
    """An evaluation ran out of a budgeted resource.

    Structured diagnostics ride on attributes so that services (and the
    CLI) can log and route them without parsing the message:

    ``site``    the checkpoint that tripped (e.g. ``relation.complement``);
    ``limit``   the budgeted quantity that was exhausted;
    ``rounds``  fixpoint rounds completed when the budget tripped;
    ``tuples``  generalized tuples materialized so far;
    ``elapsed`` wall-clock seconds since the guard started.
    """

    def __init__(
        self,
        message: str,
        *,
        site: str = "",
        limit: Optional[float] = None,
        rounds: int = 0,
        tuples: int = 0,
        elapsed: float = 0.0,
    ) -> None:
        super().__init__(message)
        self.site = site
        self.limit = limit
        self.rounds = rounds
        self.tuples = tuples
        self.elapsed = elapsed

    def diagnostics(self) -> dict:
        """The structured payload as a plain dict (stable keys)."""
        return {
            "error": type(self).__name__,
            "site": self.site,
            "limit": self.limit,
            "rounds": self.rounds,
            "tuples": self.tuples,
            "elapsed": self.elapsed,
        }


class DeadlineExceeded(BudgetExceeded):
    """The wall-clock deadline passed before evaluation finished."""


class TupleLimitExceeded(BudgetExceeded):
    """More generalized tuples were materialized than the budget allows."""


class AtomLimitExceeded(TupleLimitExceeded):
    """A single materialized relation exceeded the atom cap."""


class RoundLimitExceeded(BudgetExceeded):
    """A fixpoint iteration did not converge within the round budget."""


class DepthLimitExceeded(BudgetExceeded):
    """Formula recursion nested deeper than the budget allows."""


class EvaluationCancelled(BudgetExceeded):
    """The evaluation was cancelled cooperatively via the guard."""
