"""Budget enforcement: cheap checkpoints threaded through evaluation.

An :class:`EvaluationGuard` turns a declarative
:class:`~repro.runtime.budget.Budget` into enforcement.  The guarded
code — the closed-form evaluator, the expensive relation-algebra
operations, and the fixpoint engines — calls back at checkpoints:

* :meth:`EvaluationGuard.tick` — deadline and cancellation check, one
  clock read; placed inside the loops that can run long;
* :meth:`EvaluationGuard.on_tuples` — charges materialized generalized
  tuples against the tuple budget;
* :meth:`EvaluationGuard.charge_relation` — charges one materialized
  relation (tuples plus the per-relation atom cap);
* :meth:`EvaluationGuard.on_round` — counts a fixpoint round against
  the round budget;
* :meth:`EvaluationGuard.enter_depth` / :meth:`exit_depth` — bracket
  formula recursion against the depth budget.

Per-site counters (``joins``, ``complements``, ``projections``,
``qe``, ``rounds``...) accumulate on every checkpoint, so a finished —
or aborted — evaluation can report where the work went
(:meth:`EvaluationGuard.stats`).

Guards reach the relation algebra through a :mod:`contextvars` slot:
:func:`evaluate` and the fixpoint engines *activate* their guard
(``with guard: ...``) and :func:`active_guard` hands it to
``Relation.complement`` / ``join`` / ``project`` without widening
every algebra signature.  When no guard is active the checkpoint cost
is a single context-variable read.

Cancellation is cooperative: :meth:`EvaluationGuard.cancel` may be
called from another thread (or a fault hook); the next ``tick`` raises
:class:`~repro.runtime.budget.EvaluationCancelled`.

Observability: when a guard deactivates (outermost ``__exit__``) while
a :class:`~repro.obs.trace.Tracer` is active, the per-site counters
and totals accumulated *during that activation* are merged into the
tracer's metrics under the ``guard.`` prefix — guard checkpoints and
trace metrics share one collection surface without a second code path
through the algebra.

Post-mortems: when the outermost ``__exit__`` sees an exception — a
budget error, an injected fault, anything — the per-site counters and
totals accumulated so far are captured into a ``repro.postmortem/1``
document by the process-wide flight recorder
(:mod:`repro.obs.flightrec`), so a budget abort keeps its partial
telemetry instead of losing it with the stack unwind.
"""

from __future__ import annotations

import time
from contextvars import ContextVar
from typing import Callable, Dict, Optional

from repro.obs.trace import active_tracer
from repro.runtime.budget import (
    UNLIMITED,
    AtomLimitExceeded,
    Budget,
    BudgetExceeded,
    DeadlineExceeded,
    DepthLimitExceeded,
    EvaluationCancelled,
    RoundLimitExceeded,
    TupleLimitExceeded,
)

__all__ = ["EvaluationGuard", "active_guard", "round_limit_error"]

_ACTIVE: ContextVar[Optional["EvaluationGuard"]] = ContextVar(
    "repro_active_guard", default=None
)


def active_guard() -> Optional["EvaluationGuard"]:
    """The innermost guard activated on this context, or ``None``."""
    return _ACTIVE.get()


def round_limit_error(
    site: str,
    limit: int,
    rounds: int,
    guard: Optional["EvaluationGuard"] = None,
) -> RoundLimitExceeded:
    """A :class:`RoundLimitExceeded` with diagnostics for an engine's
    local ``max_rounds`` cut (shared by every fixpoint engine, so
    non-convergence is reported identically everywhere)."""
    return RoundLimitExceeded(
        f"fixpoint did not converge within {limit} round(s) at {site}",
        site=site,
        limit=limit,
        rounds=rounds,
        tuples=guard.tuples_materialized if guard is not None else 0,
        elapsed=guard.elapsed() if guard is not None else 0.0,
    )


class EvaluationGuard:
    """Enforces one :class:`Budget` across an evaluation.

    ``clock`` is injectable (default ``time.monotonic``) so tests can
    drive deadlines deterministically.
    """

    __slots__ = (
        "budget",
        "clock",
        "started_at",
        "deadline_at",
        "counters",
        "tuples_materialized",
        "rounds_completed",
        "depth",
        "max_depth_seen",
        "ticks",
        "cancelled",
        "_tokens",
        "_obs_snapshot",
    )

    def __init__(
        self,
        budget: Optional[Budget] = None,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.budget = budget if budget is not None else UNLIMITED
        self.clock = clock
        self.started_at = clock()
        self.deadline_at: Optional[float] = (
            self.started_at + self.budget.deadline_seconds
            if self.budget.deadline_seconds is not None
            else None
        )
        self.counters: Dict[str, int] = {}
        self.tuples_materialized = 0
        self.rounds_completed = 0
        self.depth = 0
        self.max_depth_seen = 0
        self.ticks = 0
        self.cancelled = False
        self._tokens = []
        self._obs_snapshot: Optional[tuple] = None

    # ------------------------------------------------------------ activation

    def __enter__(self) -> "EvaluationGuard":
        self._tokens.append(_ACTIVE.set(self))
        if len(self._tokens) == 1:
            # delta snapshot: a reactivated guard must only merge what
            # this activation accumulated into the tracer metrics
            self._obs_snapshot = (
                dict(self.counters),
                self.ticks,
                self.tuples_materialized,
                self.rounds_completed,
            )
        return self

    def __exit__(self, exc_type=None, exc=None, tb=None) -> None:
        _ACTIVE.reset(self._tokens.pop())
        if not self._tokens:
            tracer = active_tracer()
            if tracer is not None:
                self._merge_into(tracer)
            if exc is not None:
                # the evaluation died inside this guard (budget error,
                # injected fault, or any uncaught exception): capture a
                # post-mortem so the abort is diagnosable after the fact
                from repro.obs.flightrec import flight_recorder

                flight_recorder().on_guard_exception(self, exc, tracer)

    def _merge_into(self, tracer) -> None:
        """Merge this activation's deltas into the tracer (``guard.*``)."""
        counters, ticks, tuples, rounds = self._obs_snapshot or ({}, 0, 0, 0)
        metrics = tracer.metrics
        for site, value in self.counters.items():
            delta = value - counters.get(site, 0)
            if delta:
                metrics.count(f"guard.{site}", delta)
        if self.ticks > ticks:
            metrics.count("guard.ticks", self.ticks - ticks)
        if self.tuples_materialized > tuples:
            metrics.count(
                "guard.tuples_materialized", self.tuples_materialized - tuples
            )
        if self.rounds_completed > rounds:
            metrics.count(
                "guard.rounds_completed", self.rounds_completed - rounds
            )

    # ------------------------------------------------------------- inspection

    def elapsed(self) -> float:
        """Wall-clock seconds since the guard was created."""
        return self.clock() - self.started_at

    def remaining_seconds(self) -> Optional[float]:
        """Seconds until the deadline (``None`` when no deadline is set)."""
        if self.deadline_at is None:
            return None
        return self.deadline_at - self.clock()

    def stats(self) -> dict:
        """A snapshot of the per-site counters and totals."""
        return {
            "elapsed": self.elapsed(),
            "ticks": self.ticks,
            "tuples_materialized": self.tuples_materialized,
            "rounds_completed": self.rounds_completed,
            "max_depth_seen": self.max_depth_seen,
            "cancelled": self.cancelled,
            "sites": dict(self.counters),
        }

    # ------------------------------------------------------------ checkpoints

    def _raise(self, cls, message: str, site: str, limit) -> None:
        raise cls(
            message,
            site=site,
            limit=limit,
            rounds=self.rounds_completed,
            tuples=self.tuples_materialized,
            elapsed=self.elapsed(),
        )

    def cancel(self) -> None:
        """Request cooperative cancellation (effective at the next tick)."""
        self.cancelled = True

    def tick(self, site: str = "") -> None:
        """Deadline + cancellation checkpoint; cheap enough for loops."""
        self.ticks += 1
        if self.cancelled:
            self._raise(
                EvaluationCancelled, f"evaluation cancelled at {site or 'tick'}",
                site, None,
            )
        if self.deadline_at is not None and self.clock() > self.deadline_at:
            self._raise(
                DeadlineExceeded,
                f"deadline of {self.budget.deadline_seconds}s exceeded "
                f"at {site or 'tick'}",
                site,
                self.budget.deadline_seconds,
            )

    def wait(self, seconds: float, site: str = "") -> None:
        """Sleep cooperatively: the budget keeps binding while waiting.

        Sleeps in short slices with a :meth:`tick` between them, so a
        deliberate wait — the parallel backend's retry backoff is the
        motivating caller — cannot outlive the deadline or ignore a
        :meth:`cancel` from another thread.  The slice clock is real
        wall time (not the injectable budget clock), so tests driving
        deadlines with a fake clock terminate via the tick, not the
        sleep.
        """
        end = time.monotonic() + seconds
        while True:
            self.tick(site or "wait")
            remaining = end - time.monotonic()
            if remaining <= 0:
                return
            time.sleep(min(remaining, 0.05))

    def note(self, site: str, n: int = 1) -> None:
        """Bump the per-site counter (no budget check)."""
        self.counters[site] = self.counters.get(site, 0) + n

    def on_tuples(self, n: int, site: str = "") -> None:
        """Charge ``n`` freshly materialized generalized tuples."""
        self.tuples_materialized += n
        limit = self.budget.max_tuples
        if limit is not None and self.tuples_materialized > limit:
            self._raise(
                TupleLimitExceeded,
                f"materialized {self.tuples_materialized} generalized tuples "
                f"(budget {limit}) at {site or 'on_tuples'}",
                site,
                limit,
            )

    def check_atoms(self, relation, site: str = "") -> None:
        """Enforce the per-relation atom cap on one materialized relation."""
        limit = self.budget.max_atoms_per_relation
        if limit is not None:
            atoms = sum(len(t.atoms) for t in relation.tuples)
            if atoms > limit:
                self._raise(
                    AtomLimitExceeded,
                    f"relation holds {atoms} constraint atoms "
                    f"(budget {limit} per relation) at {site or 'charge'}",
                    site,
                    limit,
                )

    def charge_relation(self, relation, site: str = "") -> None:
        """Charge one materialized relation: tuples plus the atom cap."""
        self.on_tuples(len(relation.tuples), site)
        self.check_atoms(relation, site)

    def on_round(self, site: str = "") -> int:
        """Start a fixpoint round, counting it against the round budget.

        Call at the top of each round: the round that would overrun the
        budget raises *before* doing its work, and the diagnostics
        report the rounds actually completed.
        """
        limit = self.budget.max_rounds
        if limit is not None and self.rounds_completed + 1 > limit:
            self._raise(
                RoundLimitExceeded,
                f"fixpoint did not converge within {limit} round(s) "
                f"at {site or 'on_round'}",
                site,
                limit,
            )
        self.rounds_completed += 1
        self.note("rounds")
        self.tick(site)
        return self.rounds_completed

    def enter_depth(self, site: str = "") -> None:
        """Push one level of formula recursion against the depth budget."""
        self.depth += 1
        if self.depth > self.max_depth_seen:
            self.max_depth_seen = self.depth
        limit = self.budget.max_depth
        if limit is not None and self.depth > limit:
            self._raise(
                DepthLimitExceeded,
                f"formula recursion deeper than {limit} at {site or 'enter'}",
                site,
                limit,
            )

    def exit_depth(self) -> None:
        self.depth -= 1
