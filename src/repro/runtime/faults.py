"""Deterministic, seedable fault injection for the evaluation runtime.

Robustness code that only runs when production breaks is untested code.
This module lets the test suite *schedule* failures at named sites in
the evaluator and the fixpoint engines, deterministically:

* the instrumented code calls :func:`fault_point` with a site name
  (``"evaluator.eval"``, ``"relation.complement"``,
  ``"datalog.round"``, ...) — a no-op unless a registry is active;
* a test activates a :class:`FaultRegistry` and arms faults with
  :meth:`FaultRegistry.inject`: raise a
  :class:`TransientEvaluationError` (or any exception), sleep, charge
  tuples against the active guard's budget, crash the hosting worker
  process (``crash=True``), or run an arbitrary hook (e.g.
  ``guard.cancel``);
* firing is deterministic by construction — ``after`` (skip the first
  k hits) and ``times`` (fire at most n times) — and *seedably* random
  via ``probability`` (one ``random.Random(seed)`` per registry, so a
  given seed always yields the same firing sequence).

The registry records every hit and fire (:attr:`FaultRegistry.log`),
so tests can assert not just outcomes but the exact failure schedule.

Cross-process chaos
-------------------
Armed faults can cross a process boundary: :meth:`export_spec`
serializes the picklable subset of the armed-fault table (everything
except ``on_fire`` hooks and guard charges, which only make sense in
the parent), and :meth:`FaultRegistry.from_spec` rehydrates it on the
receiving side.  The parallel backend ships the spec inside shard
payloads (:mod:`repro.parallel.worker`), so faults armed in a test
fire *inside worker processes* — including hard crashes
(``crash=True`` calls ``os._exit`` when the rehydrated registry runs
in a different process than the one that armed it; in the arming
process the same fault raises a retryable
:class:`WorkerCrashError` instead, so thread pools stay safe).
Because the rehydrated registry is seeded with the parent's seed, the
fire sequence for a given number of hits is identical whether the
faults fire in-process or inside a spawned worker.
"""

from __future__ import annotations

import itertools
import os
import random
import time
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple, Type, Union

from repro.errors import EvaluationError
from repro.runtime.guard import active_guard

__all__ = [
    "TransientEvaluationError",
    "WorkerCrashError",
    "FaultRegistry",
    "fault_point",
    "active_fault_registry",
    "KNOWN_SITES",
]

#: the named sites instrumented across the engines (kept in sync with
#: the ``fault_point`` calls; tests assert against this list)
KNOWN_SITES = (
    "evaluator.eval",
    "evaluator.not",
    "relation.complement",
    "relation.join",
    "relation.project",
    "datalog.round",
    "seminaive.round",
    "stratified.round",
    "ccalc.fixpoint.round",
    "ccalc.while.round",
    # shard-kernel entry points, fired inside pool workers (process or
    # thread) by repro.parallel.worker.run_shard, and in the parent by
    # the quarantine re-execution path
    "worker.join_shard",
    "worker.project_shard",
    "worker.absorb_shard",
)


class TransientEvaluationError(EvaluationError):
    """A retryable failure (injected or infrastructural, not logical)."""


class WorkerCrashError(TransientEvaluationError):
    """A ``crash=True`` fault fired in the process that armed it.

    In a spawned worker the same fault hard-kills the process
    (``os._exit``), which the parent observes as a broken pool; raising
    instead of exiting in the arming process keeps thread-pool runs —
    where "worker" and "parent" are the same process — survivable.
    """


_ACTIVE: ContextVar[Optional["FaultRegistry"]] = ContextVar(
    "repro_active_faults", default=None
)

#: creation indices for export keys (see :attr:`FaultRegistry._serial`)
_SERIALS = itertools.count(1)


def fault_point(site: str) -> None:
    """Checkpoint for fault injection; no-op without an active registry."""
    registry = _ACTIVE.get()
    if registry is not None:
        registry.fire(site)


def active_fault_registry() -> Optional["FaultRegistry"]:
    """The innermost registry activated on this context, or ``None``."""
    return _ACTIVE.get()


@dataclass
class _Fault:
    error: Optional[Union[Type[BaseException], BaseException]] = None
    delay: float = 0.0
    charge_tuples: int = 0
    on_fire: Optional[Callable[[], None]] = None
    after: int = 0
    times: int = 1
    probability: Optional[float] = None
    crash: bool = False
    fired: int = 0


class FaultRegistry:
    """Armed faults per site, consumed deterministically on activation."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._rng = random.Random(seed)
        self._faults: Dict[str, List[_Fault]] = {}
        self.hits: Dict[str, int] = {}
        #: (site, hit index, action) triples, in firing order
        self.log: List[Tuple[str, int, str]] = []
        #: pid of the process that armed this registry; a rehydrated
        #: copy in a worker keeps the parent's pid so crash faults know
        #: whether os._exit is survivable for the query
        self.owner_pid = os.getpid()
        #: bumped on every inject; part of the export key so workers
        #: re-rehydrate when the armed table changes
        self.epoch = 0
        #: process-unique creation index; ``id()`` would be reused
        #: after garbage collection, letting a fresh registry collide
        #: with a stale worker-side cache entry
        self._serial = next(_SERIALS)
        self._tokens: list = []

    # ------------------------------------------------------------ activation

    def __enter__(self) -> "FaultRegistry":
        self._tokens.append(_ACTIVE.set(self))
        return self

    def __exit__(self, *exc_info) -> None:
        _ACTIVE.reset(self._tokens.pop())

    # ---------------------------------------------------------------- arming

    def inject(
        self,
        site: str,
        *,
        error: Optional[Union[Type[BaseException], BaseException]] = None,
        delay: float = 0.0,
        charge_tuples: int = 0,
        on_fire: Optional[Callable[[], None]] = None,
        after: int = 0,
        times: int = 1,
        probability: Optional[float] = None,
        crash: bool = False,
    ) -> "FaultRegistry":
        """Arm a fault at ``site``.

        ``error`` — exception (class or instance) to raise; defaults to
        a :class:`TransientEvaluationError` when no other action is
        given.  ``delay`` — seconds to sleep first.  ``charge_tuples``
        — tuples to charge against the active guard (budget pressure).
        ``on_fire`` — arbitrary hook (e.g. ``guard.cancel``).
        ``crash`` — hard-kill the hosting process when fired inside a
        spawned worker (``os._exit``); raises a retryable
        :class:`WorkerCrashError` when fired in the arming process.
        ``after`` — skip the first ``after`` hits of the site.
        ``times`` — fire at most this many times.  ``probability`` —
        fire each eligible hit with this chance (seeded, so
        deterministic per registry seed).  Returns ``self`` (chains).
        """
        if (error is None and delay == 0.0 and charge_tuples == 0
                and on_fire is None and not crash):
            error = TransientEvaluationError(f"injected fault at {site}")
        self._faults.setdefault(site, []).append(
            _Fault(error, delay, charge_tuples, on_fire, after, times,
                   probability, crash)
        )
        self.epoch += 1
        return self

    # ------------------------------------------------------- cross-process

    def export_spec(self) -> dict:
        """The armed-fault table as one picklable document.

        ``on_fire`` hooks and ``charge_tuples`` faults are excluded:
        hooks are arbitrary closures, and the guard a charge would
        pressure lives in the parent — both are parent-side concerns by
        construction.  ``error`` values must themselves pickle (classes
        by reference, instances via their args) to cross a process
        boundary; the standard injected errors do.
        """
        faults = []
        for site, site_faults in sorted(self._faults.items()):
            for f in site_faults:
                if f.on_fire is not None or f.charge_tuples:
                    continue
                faults.append({
                    "site": site,
                    "error": f.error,
                    "delay": f.delay,
                    "after": f.after,
                    "times": f.times,
                    "probability": f.probability,
                    "crash": f.crash,
                })
        return {
            "key": (self.owner_pid, self._serial, self.epoch),
            "seed": self.seed,
            "owner_pid": self.owner_pid,
            "faults": faults,
        }

    @classmethod
    def from_spec(cls, spec: dict) -> "FaultRegistry":
        """Rehydrate an exported armed-fault table.

        The copy is seeded with the parent's seed, so for a given
        number of hits the fire sequence is identical to the parent's
        — the cross-process determinism the chaos tests pin.
        """
        registry = cls(seed=spec["seed"])
        registry.owner_pid = spec["owner_pid"]
        for f in spec["faults"]:
            registry.inject(
                f["site"],
                error=f["error"],
                delay=f["delay"],
                after=f["after"],
                times=f["times"],
                probability=f["probability"],
                crash=f["crash"],
            )
        return registry

    # ---------------------------------------------------------------- firing

    def fire(self, site: str) -> None:
        hit = self.hits.get(site, 0) + 1
        self.hits[site] = hit
        for fault in self._faults.get(site, ()):
            if fault.fired >= fault.times or hit <= fault.after:
                continue
            if fault.probability is not None and self._rng.random() >= fault.probability:
                continue
            fault.fired += 1
            if fault.delay:
                self.log.append((site, hit, f"delay:{fault.delay}"))
                time.sleep(fault.delay)
            if fault.charge_tuples:
                self.log.append((site, hit, f"charge:{fault.charge_tuples}"))
                guard = active_guard()
                if guard is not None:
                    guard.on_tuples(fault.charge_tuples, site=f"fault:{site}")
            if fault.on_fire is not None:
                self.log.append((site, hit, "hook"))
                fault.on_fire()
            if fault.crash:
                self.log.append((site, hit, "crash"))
                if os.getpid() != self.owner_pid:
                    # a true worker process: die the way production
                    # workers die — no exception, no cleanup, the
                    # parent sees a broken pool
                    os._exit(13)
                raise WorkerCrashError(f"simulated worker crash at {site}")
            if fault.error is not None:
                error = fault.error() if isinstance(fault.error, type) else fault.error
                self.log.append((site, hit, f"raise:{type(error).__name__}"))
                if os.getpid() == self.owner_pid:
                    # a tripping fault is a post-mortem trigger: record
                    # it in the flight ring (and dump, when a dir is
                    # configured) before the raise unwinds the
                    # evaluation.  Only in the arming process: the
                    # flight recorder is parent-side state — in a forked
                    # worker the capture would build a document against
                    # inherited copies of the parent's ring, tracer, and
                    # executor internals (and the allocation burst can
                    # GC inherited executor weakrefs whose callbacks
                    # take locks the fork may have copied *held*)
                    from repro.obs.flightrec import flight_recorder

                    flight_recorder().on_fault(site, error)
                raise error
