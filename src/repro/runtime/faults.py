"""Deterministic, seedable fault injection for the evaluation runtime.

Robustness code that only runs when production breaks is untested code.
This module lets the test suite *schedule* failures at named sites in
the evaluator and the fixpoint engines, deterministically:

* the instrumented code calls :func:`fault_point` with a site name
  (``"evaluator.eval"``, ``"relation.complement"``,
  ``"datalog.round"``, ...) — a no-op unless a registry is active;
* a test activates a :class:`FaultRegistry` and arms faults with
  :meth:`FaultRegistry.inject`: raise a
  :class:`TransientEvaluationError` (or any exception), sleep, charge
  tuples against the active guard's budget, or run an arbitrary hook
  (e.g. ``guard.cancel``);
* firing is deterministic by construction — ``after`` (skip the first
  k hits) and ``times`` (fire at most n times) — and *seedably* random
  via ``probability`` (one ``random.Random(seed)`` per registry, so a
  given seed always yields the same firing sequence).

The registry records every hit and fire (:attr:`FaultRegistry.log`),
so tests can assert not just outcomes but the exact failure schedule.
"""

from __future__ import annotations

import random
import time
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, Type, Union

from repro.errors import EvaluationError
from repro.runtime.guard import active_guard

__all__ = [
    "TransientEvaluationError",
    "FaultRegistry",
    "fault_point",
    "KNOWN_SITES",
]

#: the named sites instrumented across the engines (kept in sync with
#: the ``fault_point`` calls; tests assert against this list)
KNOWN_SITES = (
    "evaluator.eval",
    "evaluator.not",
    "relation.complement",
    "relation.join",
    "relation.project",
    "datalog.round",
    "seminaive.round",
    "stratified.round",
    "ccalc.fixpoint.round",
    "ccalc.while.round",
)


class TransientEvaluationError(EvaluationError):
    """A retryable failure (injected or infrastructural, not logical)."""


_ACTIVE: ContextVar[Optional["FaultRegistry"]] = ContextVar(
    "repro_active_faults", default=None
)


def fault_point(site: str) -> None:
    """Checkpoint for fault injection; no-op without an active registry."""
    registry = _ACTIVE.get()
    if registry is not None:
        registry.fire(site)


@dataclass
class _Fault:
    error: Optional[Union[Type[BaseException], BaseException]] = None
    delay: float = 0.0
    charge_tuples: int = 0
    on_fire: Optional[Callable[[], None]] = None
    after: int = 0
    times: int = 1
    probability: Optional[float] = None
    fired: int = 0


class FaultRegistry:
    """Armed faults per site, consumed deterministically on activation."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)
        self._faults: Dict[str, List[_Fault]] = {}
        self.hits: Dict[str, int] = {}
        #: (site, hit index, action) triples, in firing order
        self.log: List[Tuple[str, int, str]] = []
        self._tokens: list = []

    # ------------------------------------------------------------ activation

    def __enter__(self) -> "FaultRegistry":
        self._tokens.append(_ACTIVE.set(self))
        return self

    def __exit__(self, *exc_info) -> None:
        _ACTIVE.reset(self._tokens.pop())

    # ---------------------------------------------------------------- arming

    def inject(
        self,
        site: str,
        *,
        error: Optional[Union[Type[BaseException], BaseException]] = None,
        delay: float = 0.0,
        charge_tuples: int = 0,
        on_fire: Optional[Callable[[], None]] = None,
        after: int = 0,
        times: int = 1,
        probability: Optional[float] = None,
    ) -> "FaultRegistry":
        """Arm a fault at ``site``.

        ``error`` — exception (class or instance) to raise; defaults to
        a :class:`TransientEvaluationError` when no other action is
        given.  ``delay`` — seconds to sleep first.  ``charge_tuples``
        — tuples to charge against the active guard (budget pressure).
        ``on_fire`` — arbitrary hook (e.g. ``guard.cancel``).
        ``after`` — skip the first ``after`` hits of the site.
        ``times`` — fire at most this many times.  ``probability`` —
        fire each eligible hit with this chance (seeded, so
        deterministic per registry seed).  Returns ``self`` (chains).
        """
        if error is None and delay == 0.0 and charge_tuples == 0 and on_fire is None:
            error = TransientEvaluationError(f"injected fault at {site}")
        self._faults.setdefault(site, []).append(
            _Fault(error, delay, charge_tuples, on_fire, after, times, probability)
        )
        return self

    # ---------------------------------------------------------------- firing

    def fire(self, site: str) -> None:
        hit = self.hits.get(site, 0) + 1
        self.hits[site] = hit
        for fault in self._faults.get(site, ()):
            if fault.fired >= fault.times or hit <= fault.after:
                continue
            if fault.probability is not None and self._rng.random() >= fault.probability:
                continue
            fault.fired += 1
            if fault.delay:
                self.log.append((site, hit, f"delay:{fault.delay}"))
                time.sleep(fault.delay)
            if fault.charge_tuples:
                self.log.append((site, hit, f"charge:{fault.charge_tuples}"))
                guard = active_guard()
                if guard is not None:
                    guard.on_tuples(fault.charge_tuples, site=f"fault:{site}")
            if fault.on_fire is not None:
                self.log.append((site, hit, "hook"))
                fault.on_fire()
            if fault.error is not None:
                error = fault.error() if isinstance(fault.error, type) else fault.error
                self.log.append((site, hit, f"raise:{type(error).__name__}"))
                # a tripping fault is a post-mortem trigger: record it in
                # the flight ring (and dump, when a dir is configured)
                # before the raise unwinds the evaluation
                from repro.obs.flightrec import flight_recorder

                flight_recorder().on_fault(site, error)
                raise error
