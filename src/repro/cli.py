"""Command-line interface: query constraint databases from the shell.

::

    python -m repro.cli query   DB.cdb  "exists y (T(x, y) and y < 5)"
    python -m repro.cli datalog DB.cdb PROGRAM.dl --show tc
    python -m repro.cli explain DB.cdb PROGRAM.dl
    python -m repro.cli info    DB.cdb

``DB.cdb`` files use the standard encoding of Section 3
(:mod:`repro.encoding.standard`); programs use the Datalog surface
syntax of :mod:`repro.lang`.

Evaluation is resource-governed: ``--timeout``, ``--max-tuples``,
``--max-depth`` and (for Datalog) ``--max-rounds`` bound the run.  A
tripped budget exits with code ``3`` (distinct from ``1`` for ordinary
errors) and prints the structured diagnostics; ``--on-budget=partial``
makes ``datalog`` print the sound partial result instead, tagged with
what was cut.

Evaluation is also *observable*: ``--trace FILE`` writes a structured
JSON trace (schema ``repro.trace/1``), ``--profile`` prints the
per-phase cost tree after the result, ``--stats`` prints the guard's
per-site counters plus the kernel cache/interning statistics,
``-v``/``-vv`` print metric summaries on stderr, and the ``explain``
subcommand runs a query or program purely for its cost tree.

``--no-cache`` disables the kernel memo cache and the tuple intern
pool (:mod:`repro.perf`) for the run — the escape hatch for timing
comparisons and for ruling the cache out when debugging.
"""

from __future__ import annotations

import argparse
import contextlib
import os
import sys
from typing import List, Optional

from repro.core.database import Database
from repro.core.evaluator import evaluate
from repro.core.intervals import IntervalSet
from repro.core.relation import Relation
from repro.datalog.engine import evaluate_program
from repro.encoding.standard import decode_database, encode_database, encoding_size
from repro.errors import ReproError
from repro.lang import parse_formula, parse_program
from repro.obs import (
    Tracer,
    guard_stats_table,
    kernel_stats_table,
    render_metrics_summary,
    render_profile,
    write_trace,
)
from repro.perf import kernel_cache_disabled, kernel_stats
from repro.runtime.budget import Budget, BudgetExceeded
from repro.runtime.guard import EvaluationGuard

__all__ = ["main", "EXIT_ERROR", "EXIT_BUDGET"]

#: ordinary failure (parse error, schema error, missing file, ...)
EXIT_ERROR = 1
#: a resource budget tripped (deadline, tuples, rounds, depth)
EXIT_BUDGET = 3


def _load(path: str) -> Database:
    with open(path, encoding="utf-8") as handle:
        return decode_database(handle.read())


def _budget_of(args: argparse.Namespace) -> Optional[Budget]:
    """A Budget from the shared resource flags; None when all are off."""
    budget = Budget(
        deadline_seconds=getattr(args, "timeout", None),
        max_tuples=getattr(args, "max_tuples", None),
        max_rounds=getattr(args, "budget_rounds", None),
        max_depth=getattr(args, "max_depth", None),
    )
    return None if budget.is_unlimited() else budget


def _add_budget_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="wall-clock deadline for evaluation",
    )
    parser.add_argument(
        "--max-tuples", type=int, default=None, metavar="N",
        help="cap on generalized tuples materialized",
    )
    parser.add_argument(
        "--max-depth", type=int, default=None, metavar="N",
        help="cap on formula recursion depth",
    )


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace", default=None, metavar="FILE",
        help="write a structured JSON trace of the evaluation (repro.trace/1)",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="print the per-phase cost tree after the result",
    )
    parser.add_argument(
        "--stats", action="store_true",
        help="print the guard's per-site counter summary (stderr)",
    )
    parser.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="-v: metrics summary on stderr; -vv: also list every span",
    )


def _add_cache_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the kernel memo cache and tuple interning for this run",
    )


def _cache_context(args: argparse.Namespace):
    """The kernel-cache escape hatch as a context manager."""
    if getattr(args, "no_cache", False):
        return kernel_cache_disabled()
    return contextlib.nullcontext()


def _tracer_of(args: argparse.Namespace) -> Optional[Tracer]:
    """A Tracer when any observation surface was requested."""
    if getattr(args, "trace", None) or getattr(args, "profile", False) \
            or getattr(args, "verbose", 0):
        return Tracer()
    return None


def _guard_of(args: argparse.Namespace,
              budget: Optional[Budget]) -> Optional[EvaluationGuard]:
    """A guard when there is a budget to enforce or stats to report."""
    if budget is not None or getattr(args, "stats", False):
        return EvaluationGuard(budget)
    return None


def _report_observation(args: argparse.Namespace,
                        tracer: Optional[Tracer],
                        guard: Optional[EvaluationGuard]) -> None:
    """Emit the requested observation surfaces (also on a failed run, so
    a tripped budget still leaves a trace of where the work went)."""
    if guard is not None and args.stats:
        print(guard_stats_table(guard.stats()), file=sys.stderr)
    if args.stats:
        stats = kernel_stats()
        if getattr(args, "no_cache", False):
            # the run itself bypassed the kernel cache; report it that way
            # even though the process-wide cache is re-enabled by now
            stats["cache.enabled"] = False
            stats["intern.enabled"] = False
        print(kernel_stats_table(stats), file=sys.stderr)
    if tracer is None:
        return
    if args.verbose:
        print(render_metrics_summary(tracer.metrics), file=sys.stderr)
    if args.verbose >= 2:
        for record in tracer.spans:
            print(
                f"  span {record.name} {record.duration * 1000:.3f}ms "
                f"attrs={record.attrs}",
                file=sys.stderr,
            )
    if args.profile:
        print(render_profile(tracer, guard if args.stats else None))
    if args.trace:
        write_trace(args.trace, tracer, guard)


def _print_relation(relation, as_intervals: bool) -> None:
    if as_intervals and relation.arity == 1:
        print(IntervalSet.from_relation(relation))
    else:
        print(relation.pretty())


def _cmd_info(args: argparse.Namespace) -> int:
    db = _load(args.database)
    print(f"{args.database}: {len(db)} relation(s), {encoding_size(db)} bytes encoded")
    rows = []
    for name in db.names():
        relation = db[name]
        atoms = sum(len(t.atoms) for t in relation.tuples)
        encoded = encoding_size(Database({name: relation}, theory=db.theory))
        rows.append((f"{name}/{relation.arity}", len(relation), atoms, encoded))
    if rows:
        width = max(len(r[0]) for r in rows)
        width = max(width, len("relation"))
        print(f"  {'relation'.ljust(width)} {'gtuples':>8} {'atoms':>7} {'bytes':>8}")
        for label, tuples, atoms, encoded in rows:
            print(f"  {label.ljust(width)} {tuples:>8} {atoms:>7} {encoded:>8}")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    db = _load(args.database)
    formula = parse_formula(args.formula)
    if args.explain:
        from repro.core.planner import compile_formula, explain, optimize

        plan = optimize(compile_formula(formula), db)
        print(explain(plan))
        return 0
    budget = _budget_of(args)
    tracer = _tracer_of(args)
    guard = _guard_of(args, budget)
    try:
        with _cache_context(args), (
            tracer if tracer is not None else contextlib.nullcontext()
        ):
            result = evaluate(formula, db, guard=guard)
        if not result.schema:
            print("true" if not result.is_empty() else "false")
        else:
            _print_relation(result, as_intervals=not args.raw)
    finally:
        _report_observation(args, tracer, guard)
    return 0


def _cmd_datalog(args: argparse.Namespace) -> int:
    db = _load(args.database)
    with open(args.program, encoding="utf-8") as handle:
        program = parse_program(handle.read())
    budget = _budget_of(args)
    tracer = _tracer_of(args)
    guard = _guard_of(args, budget)
    try:
        with _cache_context(args), (
            tracer if tracer is not None else contextlib.nullcontext()
        ):
            result = evaluate_program(
                program,
                db,
                max_rounds=args.max_rounds,
                guard=guard,
                on_budget=args.on_budget,
            )
        if result.reached_fixpoint:
            print(f"fixpoint after {result.rounds} round(s)")
        else:
            print(f"cut off after {result.rounds} round(s): {result.cut}")
        names = [args.show] if args.show else sorted(program.idb)
        for name in names:
            print(f"-- {name}")
            _print_relation(result[name], as_intervals=not args.raw)
    finally:
        _report_observation(args, tracer, guard)
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    """Run a query or program purely for its per-phase cost tree."""
    db = _load(args.database)
    budget = _budget_of(args)
    guard = EvaluationGuard(budget)  # guard stats are part of the tree
    tracer = Tracer()
    is_program = args.query.endswith(".dl") or os.path.exists(args.query)
    summary: str
    with _cache_context(args), tracer:
        if is_program:
            with open(args.query, encoding="utf-8") as handle:
                program = parse_program(handle.read())
            if args.engine == "seminaive":
                from repro.datalog.seminaive import evaluate_seminaive as engine
            elif args.engine == "stratified":
                from repro.datalog.stratified import evaluate_stratified as engine
            else:
                engine = evaluate_program
            result = engine(
                program, db, max_rounds=args.max_rounds, guard=guard,
                on_budget=args.on_budget,
            )
            idb_tuples = sum(len(result[name]) for name in program.idb)
            if result.reached_fixpoint:
                summary = (
                    f"result: fixpoint after {result.rounds} round(s), "
                    f"{idb_tuples} IDB generalized tuple(s)"
                )
            else:
                summary = (
                    f"result: cut off after {result.rounds} round(s): {result.cut}"
                )
        else:
            formula = parse_formula(args.query)
            relation = evaluate(formula, db, guard=guard)
            if not relation.schema:
                summary = f"result: {'true' if not relation.is_empty() else 'false'}"
            else:
                summary = (
                    f"result: {len(relation)} generalized tuple(s) over "
                    f"({', '.join(relation.schema)})"
                )
    print(summary)
    print()
    print(render_profile(tracer, guard))
    if args.trace:
        write_trace(args.trace, tracer, guard)
    return 0


def _cmd_roundtrip(args: argparse.Namespace) -> int:
    db = _load(args.database)
    sys.stdout.write(encode_database(db))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="dense-order constraint database CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    info = sub.add_parser("info", help="describe a database file")
    info.add_argument("database")
    info.set_defaults(fn=_cmd_info)

    query = sub.add_parser("query", help="evaluate an FO query")
    query.add_argument("database")
    query.add_argument("formula")
    query.add_argument("--raw", action="store_true", help="print constraint tuples")
    query.add_argument(
        "--explain", action="store_true", help="print the optimized query plan"
    )
    _add_budget_flags(query)
    _add_obs_flags(query)
    _add_cache_flag(query)
    query.set_defaults(fn=_cmd_query)

    datalog = sub.add_parser("datalog", help="run a Datalog(not) program")
    datalog.add_argument("database")
    datalog.add_argument("program")
    datalog.add_argument("--show", help="print only this IDB predicate")
    datalog.add_argument(
        "--max-rounds", type=int, default=None,
        help="cap on fixpoint rounds",
    )
    datalog.add_argument(
        "--on-budget", choices=("raise", "partial"), default="raise",
        help="on budget exhaustion: fail (exit 3) or print the tagged "
        "partial result",
    )
    datalog.add_argument("--raw", action="store_true")
    _add_budget_flags(datalog)
    _add_obs_flags(datalog)
    _add_cache_flag(datalog)
    datalog.set_defaults(fn=_cmd_datalog)

    explain_cmd = sub.add_parser(
        "explain",
        help="run a query or .dl program and print the per-phase cost tree",
    )
    explain_cmd.add_argument("database")
    explain_cmd.add_argument(
        "query",
        help="an FO formula, or a path to a Datalog(not) program file",
    )
    explain_cmd.add_argument(
        "--engine", choices=("naive", "seminaive", "stratified"), default="naive",
        help="Datalog engine to profile (program inputs only)",
    )
    explain_cmd.add_argument(
        "--max-rounds", type=int, default=None, help="cap on fixpoint rounds",
    )
    explain_cmd.add_argument(
        "--on-budget", choices=("raise", "partial"), default="raise",
    )
    explain_cmd.add_argument(
        "--trace", default=None, metavar="FILE",
        help="also write the structured JSON trace",
    )
    _add_budget_flags(explain_cmd)
    _add_cache_flag(explain_cmd)
    explain_cmd.set_defaults(fn=_cmd_explain)

    roundtrip = sub.add_parser("reencode", help="normalize a database file")
    roundtrip.add_argument("database")
    roundtrip.set_defaults(fn=_cmd_roundtrip)

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except BudgetExceeded as error:
        print(f"budget exceeded: {error}", file=sys.stderr)
        diag = error.diagnostics()
        detail = ", ".join(f"{key}={diag[key]}" for key in sorted(diag))
        print(f"diagnostics: {detail}", file=sys.stderr)
        return EXIT_BUDGET
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_ERROR
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_ERROR


if __name__ == "__main__":
    raise SystemExit(main())
