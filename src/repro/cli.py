"""Command-line interface: query constraint databases from the shell.

::

    python -m repro.cli query  DB.cdb  "exists y (T(x, y) and y < 5)"
    python -m repro.cli datalog DB.cdb PROGRAM.dl --show tc
    python -m repro.cli info   DB.cdb

``DB.cdb`` files use the standard encoding of Section 3
(:mod:`repro.encoding.standard`); programs use the Datalog surface
syntax of :mod:`repro.lang`.

Evaluation is resource-governed: ``--timeout``, ``--max-tuples``,
``--max-depth`` and (for Datalog) ``--max-rounds`` bound the run.  A
tripped budget exits with code ``3`` (distinct from ``1`` for ordinary
errors) and prints the structured diagnostics; ``--on-budget=partial``
makes ``datalog`` print the sound partial result instead, tagged with
what was cut.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.database import Database
from repro.core.evaluator import evaluate
from repro.core.intervals import IntervalSet
from repro.datalog.engine import evaluate_program
from repro.encoding.standard import decode_database, encode_database, encoding_size
from repro.errors import ReproError
from repro.lang import parse_formula, parse_program
from repro.runtime.budget import Budget, BudgetExceeded
from repro.runtime.guard import EvaluationGuard

__all__ = ["main", "EXIT_ERROR", "EXIT_BUDGET"]

#: ordinary failure (parse error, schema error, missing file, ...)
EXIT_ERROR = 1
#: a resource budget tripped (deadline, tuples, rounds, depth)
EXIT_BUDGET = 3


def _load(path: str) -> Database:
    with open(path, encoding="utf-8") as handle:
        return decode_database(handle.read())


def _budget_of(args: argparse.Namespace) -> Optional[Budget]:
    """A Budget from the shared resource flags; None when all are off."""
    budget = Budget(
        deadline_seconds=getattr(args, "timeout", None),
        max_tuples=getattr(args, "max_tuples", None),
        max_rounds=getattr(args, "budget_rounds", None),
        max_depth=getattr(args, "max_depth", None),
    )
    return None if budget.is_unlimited() else budget


def _add_budget_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="wall-clock deadline for evaluation",
    )
    parser.add_argument(
        "--max-tuples", type=int, default=None, metavar="N",
        help="cap on generalized tuples materialized",
    )
    parser.add_argument(
        "--max-depth", type=int, default=None, metavar="N",
        help="cap on formula recursion depth",
    )


def _print_relation(relation, as_intervals: bool) -> None:
    if as_intervals and relation.arity == 1:
        print(IntervalSet.from_relation(relation))
    else:
        print(relation.pretty())


def _cmd_info(args: argparse.Namespace) -> int:
    db = _load(args.database)
    print(f"{args.database}: {len(db)} relation(s), {encoding_size(db)} bytes encoded")
    for name in db.names():
        relation = db[name]
        print(f"  {name}/{relation.arity}: {len(relation)} generalized tuple(s)")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    db = _load(args.database)
    formula = parse_formula(args.formula)
    if args.explain:
        from repro.core.planner import compile_formula, explain, optimize

        plan = optimize(compile_formula(formula), db)
        print(explain(plan))
        return 0
    budget = _budget_of(args)
    guard = EvaluationGuard(budget) if budget is not None else None
    result = evaluate(formula, db, guard=guard)
    if not result.schema:
        print("true" if not result.is_empty() else "false")
    else:
        _print_relation(result, as_intervals=not args.raw)
    return 0


def _cmd_datalog(args: argparse.Namespace) -> int:
    db = _load(args.database)
    with open(args.program, encoding="utf-8") as handle:
        program = parse_program(handle.read())
    result = evaluate_program(
        program,
        db,
        max_rounds=args.max_rounds,
        budget=_budget_of(args),
        on_budget=args.on_budget,
    )
    if result.reached_fixpoint:
        print(f"fixpoint after {result.rounds} round(s)")
    else:
        print(f"cut off after {result.rounds} round(s): {result.cut}")
    names = [args.show] if args.show else sorted(program.idb)
    for name in names:
        print(f"-- {name}")
        _print_relation(result[name], as_intervals=not args.raw)
    return 0


def _cmd_roundtrip(args: argparse.Namespace) -> int:
    db = _load(args.database)
    sys.stdout.write(encode_database(db))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="dense-order constraint database CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    info = sub.add_parser("info", help="describe a database file")
    info.add_argument("database")
    info.set_defaults(fn=_cmd_info)

    query = sub.add_parser("query", help="evaluate an FO query")
    query.add_argument("database")
    query.add_argument("formula")
    query.add_argument("--raw", action="store_true", help="print constraint tuples")
    query.add_argument(
        "--explain", action="store_true", help="print the optimized query plan"
    )
    _add_budget_flags(query)
    query.set_defaults(fn=_cmd_query)

    datalog = sub.add_parser("datalog", help="run a Datalog(not) program")
    datalog.add_argument("database")
    datalog.add_argument("program")
    datalog.add_argument("--show", help="print only this IDB predicate")
    datalog.add_argument(
        "--max-rounds", type=int, default=None,
        help="cap on fixpoint rounds",
    )
    datalog.add_argument(
        "--on-budget", choices=("raise", "partial"), default="raise",
        help="on budget exhaustion: fail (exit 3) or print the tagged "
        "partial result",
    )
    datalog.add_argument("--raw", action="store_true")
    _add_budget_flags(datalog)
    datalog.set_defaults(fn=_cmd_datalog)

    roundtrip = sub.add_parser("reencode", help="normalize a database file")
    roundtrip.add_argument("database")
    roundtrip.set_defaults(fn=_cmd_roundtrip)

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except BudgetExceeded as error:
        print(f"budget exceeded: {error}", file=sys.stderr)
        diag = error.diagnostics()
        detail = ", ".join(f"{key}={diag[key]}" for key in sorted(diag))
        print(f"diagnostics: {detail}", file=sys.stderr)
        return EXIT_BUDGET
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_ERROR
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_ERROR


if __name__ == "__main__":
    raise SystemExit(main())
