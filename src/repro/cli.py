"""Command-line interface: query constraint databases from the shell.

::

    python -m repro.cli query   DB.cdb  "exists y (T(x, y) and y < 5)"
    python -m repro.cli datalog DB.cdb PROGRAM.dl --show tc
    python -m repro.cli explain DB.cdb PROGRAM.dl
    python -m repro.cli info    DB.cdb

``DB.cdb`` files use the standard encoding of Section 3
(:mod:`repro.encoding.standard`); programs use the Datalog surface
syntax of :mod:`repro.lang`.

Evaluation is resource-governed: ``--timeout``, ``--max-tuples``,
``--max-depth`` and (for Datalog) ``--max-rounds`` bound the run.  A
tripped budget exits with code ``3`` (distinct from ``1`` for ordinary
errors) and prints the structured diagnostics; ``--on-budget=partial``
makes ``datalog`` print the sound partial result instead, tagged with
what was cut.

Evaluation is also *observable*: ``--trace FILE`` writes a structured
JSON trace (schema ``repro.trace/1``), ``--profile`` prints the
per-phase cost tree after the result, ``--stats`` prints the guard's
per-site counters plus the kernel cache/interning statistics,
``-v``/``-vv`` print metric summaries on stderr, the ``explain``
subcommand runs a query or program purely for its cost tree, and the
``profile`` subcommand runs one purely for its per-operator cost
ledger — the estimated-vs-actual cardinality table, exportable as a
schema-versioned ``repro.profile/1`` document with ``--out`` (and
``--fit`` to turn the run's ledger straight into a cost model).

Query planning: ``--optimize={none,heuristic,cost}`` picks the
planning mode on ``query``/``datalog``/``explain`` (default: ``cost``
when ``--parallel`` is granted, ``none`` otherwise), the ``plan``
subcommand prints the chosen plan — per-node estimated rows, modeled
cost, serial-vs-parallel verdict — without executing, and
``calibrate`` fits the planner's ``repro.cost-model/1`` coefficients
from saved ``repro.profile/1`` documents.

Telemetry exports (the :mod:`repro.obs.telemetry` pipeline):
``--log-jsonl FILE`` streams every structured log record
(``repro.log/1``) as JSON lines, ``--metrics-out FILE`` writes the
final metrics snapshot in the Prometheus text format, and
``--postmortem-dir DIR`` arms the flight recorder — an aborted run
(budget error, fault, crash inside the guard) leaves a
``repro.postmortem/1`` document there with the last telemetry events
and the partial guard counters.

Trace analysis (the :mod:`repro.obs` analysis toolkit): ``repro trace
analyze TRACE`` prints the critical path and the per-operator /
per-phase bottleneck tables of a saved ``repro.trace/1`` document;
``repro trace flame TRACE`` exports it as a speedscope JSON profile
(or ``--format collapsed`` stack lines); ``repro trace diff BEFORE
AFTER`` structurally diffs two traces of the same workload and
attributes the latency delta to named operators, optionally writing a
``repro.trace-diff/1`` document with ``-o``.

``--memory`` (on ``query``/``datalog``/``explain``/``profile``) turns
on per-span memory attribution: every traced span gains
``mem_alloc_blocks``/``mem_peak_bytes`` attrs, the cost ledger gains
per-operator memory columns, and ``--parallel`` runs capture the same
attrs inside pool workers.  The default ``rss`` backend is cheap
(gated < 5% overhead by E21); ``--memory-backend tracemalloc`` adds
exact ``mem_alloc_bytes`` at tracemalloc's documented cost.

``repro bench-watch`` compares the newest ``BENCH_HISTORY.jsonl``
record against the trailing baseline and exits ``4`` on regression;
with ``--trace-before``/``--trace-after`` a regression report also
includes the trace diff naming the operators that slowed down.

Exit codes are uniform across subcommands: ``0`` ok, ``1``
encoding/input error, ``2`` usage error, ``3`` budget exhausted,
``4`` benchmark regression, ``5`` unrecoverable shard failure (see
the README table; asserted by ``tests/obs/test_cli_exit_codes.py``).

``--no-cache`` disables the kernel memo cache and the tuple intern
pool (:mod:`repro.perf`) for the run — the escape hatch for timing
comparisons and for ruling the cache out when debugging.

``--parallel`` (with ``--workers`` and ``--shard-strategy``) grants a
worker pool for the expensive relation kernels
(:mod:`repro.parallel`); serial evaluation remains the default and
the reference, and results are set-equivalent either way.  Where the
pool is *used* is decided per operator by the cost-based planner:
``--parallel`` implies ``--optimize=cost`` unless ``--optimize`` says
otherwise, and the planner dispatches only the Join/Project/Absorb
nodes whose modeled parallel cost beats serial (so a 1-core box
simply gets serial decisions — no host-level special case).
``--optimize=none`` restores the legacy behavior: the pool is
activated globally and every eligible kernel shards.  Shard dispatch
is fault-tolerant: ``--shard-timeout``
bounds each shard, ``--shard-retries`` caps pool re-dispatches before
a failing shard is quarantined (re-executed serially in-process), and
``--on-shard-failure`` picks the terminal behavior — ``fail`` (exit
``5``, no quarantine), ``serial`` (the default: quarantine, then exit
``5``), or ``partial`` (drop the shard and print the tagged partial
result).

When an observation surface is active, ``--parallel`` runs capture
worker-side telemetry and stitch it into the parent trace (spans with
``pid``/``shard``/``attempt`` attributes, worker kernel-cache deltas,
log records), so ``--trace`` / ``--stats`` / ``explain`` see inside
the pool; ``--no-stitch`` turns the capture off for overhead-sensitive
runs (untraced runs never pay for it either way).
"""

from __future__ import annotations

import argparse
import contextlib
import os
import sys
from typing import List, Optional

from repro.core.database import Database
from repro.core.evaluator import evaluate
from repro.core.intervals import IntervalSet
from repro.core.relation import Relation
from repro.datalog.engine import evaluate_program
from repro.encoding.standard import decode_database, encode_database, encoding_size
from repro.errors import ReproError, ShardFailedError
from repro.lang import parse_formula, parse_program
from repro.obs import (
    JsonlSink,
    Tracer,
    compare_latest,
    configure_flight_recorder,
    flight_recorder,
    guard_stats_table,
    kernel_stats_table,
    load_history,
    render_cost_ledger,
    render_metrics_summary,
    render_profile,
    render_watch_report,
    write_profile,
    write_prometheus,
    write_trace,
)
from repro.perf import kernel_backend_context, kernel_cache_disabled, kernel_stats
from repro.runtime.budget import Budget, BudgetExceeded
from repro.runtime.guard import EvaluationGuard

__all__ = [
    "main",
    "EXIT_OK",
    "EXIT_ERROR",
    "EXIT_USAGE",
    "EXIT_BUDGET",
    "EXIT_REGRESSION",
    "EXIT_SHARD",
]

#: success
EXIT_OK = 0
#: ordinary failure (parse error, schema error, missing file, ...)
EXIT_ERROR = 1
#: usage error (unknown subcommand, bad flag) — argparse's convention
EXIT_USAGE = 2
#: a resource budget tripped (deadline, tuples, rounds, depth)
EXIT_BUDGET = 3
#: ``bench-watch`` found a benchmark regression beyond the threshold
EXIT_REGRESSION = 4
#: a parallel shard failed every recovery path the policy allows
#: (retries + quarantine) and --on-shard-failure forbids partial results
EXIT_SHARD = 5


def _load(path: str) -> Database:
    with open(path, encoding="utf-8") as handle:
        return decode_database(handle.read())


def _budget_of(args: argparse.Namespace) -> Optional[Budget]:
    """A Budget from the shared resource flags; None when all are off."""
    budget = Budget(
        deadline_seconds=getattr(args, "timeout", None),
        max_tuples=getattr(args, "max_tuples", None),
        max_rounds=getattr(args, "budget_rounds", None),
        max_depth=getattr(args, "max_depth", None),
    )
    return None if budget.is_unlimited() else budget


def _add_budget_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="wall-clock deadline for evaluation",
    )
    parser.add_argument(
        "--max-tuples", type=int, default=None, metavar="N",
        help="cap on generalized tuples materialized",
    )
    parser.add_argument(
        "--max-depth", type=int, default=None, metavar="N",
        help="cap on formula recursion depth",
    )


def _add_telemetry_flags(parser: argparse.ArgumentParser) -> None:
    """The export surfaces of the telemetry pipeline (all subcommands
    that evaluate anything)."""
    parser.add_argument(
        "--log-jsonl", default=None, metavar="FILE",
        help="stream structured log records (repro.log/1) as JSON lines",
    )
    parser.add_argument(
        "--metrics-out", default=None, metavar="FILE",
        help="write the final metrics snapshot in Prometheus text format",
    )
    parser.add_argument(
        "--postmortem-dir", default=None, metavar="DIR",
        help="on an aborted run, dump a repro.postmortem/1 document here",
    )


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace", default=None, metavar="FILE",
        help="write a structured JSON trace of the evaluation (repro.trace/1)",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="print the per-phase cost tree after the result",
    )
    parser.add_argument(
        "--stats", action="store_true",
        help="print the guard's per-site counter summary (stderr)",
    )
    parser.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="-v: metrics summary on stderr; -vv: also list every span",
    )
    _add_telemetry_flags(parser)


def _add_memory_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--memory", action="store_true",
        help="attribute memory per span and per operator (span attrs, "
        "cost-ledger memory fields, worker spans on --parallel runs)",
    )
    parser.add_argument(
        "--memory-backend", choices=("rss", "tracemalloc"), default="rss",
        dest="memory_backend",
        help="rss (default): near-free peak-RSS growth + allocator-block "
        "deltas; tracemalloc: exact allocated bytes at tracemalloc's "
        "documented cost (~3x on allocation-heavy runs)",
    )


def _arm_memory(args: argparse.Namespace, tracer: Tracer) -> None:
    """Hang a MemoryProfiler on the tracer when --memory was given."""
    if getattr(args, "memory", False):
        from repro.obs.memory import MemoryProfiler

        tracer.memory = MemoryProfiler(getattr(args, "memory_backend", "rss"))


def _add_cache_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the kernel memo cache and tuple interning for this run",
    )


def _cache_context(args: argparse.Namespace):
    """The kernel-cache escape hatch as a context manager."""
    if getattr(args, "no_cache", False):
        return kernel_cache_disabled()
    return contextlib.nullcontext()


def _add_kernel_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--kernel", choices=("object", "columnar"), default=None,
        help="constraint-kernel backend: per-atom object graphs or the "
        "columnar bounds-matrix kernel (default: the REPRO_KERNEL "
        "environment variable, else object)",
    )


def _kernel_context(args: argparse.Namespace):
    """The kernel-backend selection as a context manager."""
    backend = getattr(args, "kernel", None)
    if backend is not None:
        return kernel_backend_context(backend)
    return contextlib.nullcontext()


def _add_parallel_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--parallel", action="store_true",
        help="shard the expensive relation kernels across a worker pool "
        "(serial evaluation is the default and the reference)",
    )
    parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker pool size for --parallel (default: CPU count)",
    )
    parser.add_argument(
        "--shard-strategy", choices=("hash", "cell"), default="hash",
        help="tuple partitioner for --parallel: stable-hash or "
        "cell-aligned (default: hash)",
    )
    parser.add_argument(
        "--shard-timeout", type=float, default=None, metavar="SECONDS",
        help="per-shard deadline; a shard past it is retried, then "
        "quarantined (default: none)",
    )
    parser.add_argument(
        "--shard-retries", type=int, default=None, metavar="N",
        help="pool re-dispatches per shard before quarantine (default: 2)",
    )
    parser.add_argument(
        "--on-shard-failure", choices=("fail", "serial", "partial"),
        default=None, dest="on_shard_failure",
        help="after a shard exhausts its retries: fail (exit 5, no "
        "quarantine), serial (quarantine, then exit 5; the default), or "
        "partial (drop the shard, print the tagged partial result)",
    )
    parser.add_argument(
        "--no-stitch", action="store_true", dest="no_stitch",
        help="disable worker-side telemetry capture and trace stitching "
        "for --parallel runs (only relevant when an observation surface "
        "is active; untraced runs never capture)",
    )


def _resilience_of(args: argparse.Namespace):
    """A ResiliencePolicy when any resilience flag departs from the
    defaults, else None (the context falls back to DEFAULT_POLICY)."""
    timeout = getattr(args, "shard_timeout", None)
    retries = getattr(args, "shard_retries", None)
    on_failure = getattr(args, "on_shard_failure", None)
    if timeout is None and retries is None and on_failure is None:
        return None
    from repro.parallel import ResiliencePolicy

    return ResiliencePolicy(
        shard_timeout=timeout,
        max_retries=retries if retries is not None else 2,
        on_failure=on_failure if on_failure is not None else "serial",
    )


def _context_of(args: argparse.Namespace):
    """An ExecutionContext when --parallel was requested, else None.

    No host-level degrade here any more: on a 1-core machine the
    cost planner's dispatch decisions come out serial by themselves
    (``--optimize=none`` bypasses the planner, so forcing a pool there
    is on the user).  A warning is kept for the explicitly forced case.
    """
    if not getattr(args, "parallel", False):
        return None
    workers = getattr(args, "workers", None)
    if workers is not None and workers > 1 and (os.cpu_count() or 1) == 1:
        print(
            f"warning: --workers {workers} on a single-CPU machine; "
            "shards will time-slice one core",
            file=sys.stderr,
        )
    from repro.parallel import ExecutionContext

    return ExecutionContext(
        workers=workers,
        shard_strategy=getattr(args, "shard_strategy", "hash"),
        resilience=_resilience_of(args),
        capture=not getattr(args, "no_stitch", False),
        memory=(
            getattr(args, "memory_backend", "rss")
            if getattr(args, "memory", False) else None
        ),
    )


def _add_optimize_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--optimize", choices=("none", "heuristic", "cost"), default=None,
        help="query planning mode: none (direct evaluator; the default "
        "without --parallel), heuristic (rule-engine rewrites, serial "
        "execution), or cost (rewrites plus per-operator serial-vs-"
        "parallel dispatch; the default with --parallel)",
    )
    parser.add_argument(
        "--cost-model", default=None, metavar="FILE", dest="cost_model",
        help="plan with a fitted repro.cost-model/1 document (see "
        "'repro calibrate'; default: conservative built-in coefficients)",
    )


def _optimize_mode(args: argparse.Namespace) -> str:
    """The resolved --optimize mode: an explicit choice wins; otherwise
    --parallel turns planning on (the planner owns the dispatch
    decisions) and plain runs stay on the reference evaluator."""
    mode = getattr(args, "optimize", None)
    if mode is not None:
        return mode
    return "cost" if getattr(args, "parallel", False) else "none"


def _planner_of(args: argparse.Namespace, mode: str, ctx):
    """A QueryPlanner for the resolved mode (``"none"`` -> ``None``)."""
    if mode == "none":
        return None
    from repro.core.costmodel import load_cost_model
    from repro.core.physical import QueryPlanner

    model = None
    if getattr(args, "cost_model", None):
        model = load_cost_model(args.cost_model)
    return QueryPlanner(
        mode=mode,
        model=model,
        context=ctx,
        default_strategy=getattr(args, "shard_strategy", "hash"),
    )


def _tracer_of(args: argparse.Namespace) -> Optional[Tracer]:
    """A Tracer when any observation surface was requested; the JSONL
    log sink is attached here so engine emission streams live."""
    wanted = (
        getattr(args, "trace", None)
        or getattr(args, "profile", False)
        # --stats needs a tracer too: without one a --parallel run has
        # nothing to stitch worker kernel counters into, and the kernel
        # table would report parent-only (near-zero) cache activity
        or getattr(args, "stats", False)
        or getattr(args, "verbose", 0)
        or getattr(args, "log_jsonl", None)
        or getattr(args, "metrics_out", None)
        or getattr(args, "postmortem_dir", None)
        # --memory needs span attribution, which needs a tracer
        or getattr(args, "memory", False)
    )
    if not wanted:
        return None
    tracer = Tracer()
    _arm_memory(args, tracer)
    if getattr(args, "log_jsonl", None):
        tracer.add_sink(JsonlSink(args.log_jsonl))
    return tracer


def _guard_of(args: argparse.Namespace,
              budget: Optional[Budget]) -> Optional[EvaluationGuard]:
    """A guard when there is a budget to enforce, stats to report, or a
    post-mortem to arm (the dump hook lives on the guard's exit)."""
    if (
        budget is not None
        or getattr(args, "stats", False)
        or getattr(args, "postmortem_dir", None)
    ):
        return EvaluationGuard(budget)
    return None


def _report_observation(args: argparse.Namespace,
                        tracer: Optional[Tracer],
                        guard: Optional[EvaluationGuard]) -> None:
    """Emit the requested observation surfaces (also on a failed run, so
    a tripped budget still leaves a trace of where the work went)."""
    if guard is not None and args.stats:
        print(guard_stats_table(guard.stats()), file=sys.stderr)
    if args.stats:
        stats = kernel_stats()
        if getattr(args, "no_cache", False):
            # the run itself bypassed the kernel cache; report it that way
            # even though the process-wide cache is re-enabled by now
            stats["cache.enabled"] = False
            stats["intern.enabled"] = False
        merged = None
        if tracer is not None:
            run_counters = {
                name: value
                for name, value in tracer.metrics.counters.items()
                if name.startswith("kernel.")
            }
            if run_counters:
                merged = run_counters
        print(kernel_stats_table(stats, merged), file=sys.stderr)
    if args.stats and tracer is not None:
        quantile_rows = [
            (name, tracer.metrics.histograms[name])
            for name in sorted(tracer.metrics.histograms)
            if name.endswith(".seconds") and tracer.metrics.histograms[name].count
        ]
        if quantile_rows:
            print("latency quantiles:", file=sys.stderr)
            width = max(len(name) for name, _ in quantile_rows)
            for name, h in quantile_rows:
                print(
                    f"  {name.ljust(width)}  p50={h.quantile(0.5):.6f} "
                    f"p95={h.quantile(0.95):.6f} p99={h.quantile(0.99):.6f} "
                    f"(n={h.count})",
                    file=sys.stderr,
                )
    if tracer is None:
        return
    if args.verbose:
        print(render_metrics_summary(tracer.metrics), file=sys.stderr)
    if args.verbose >= 2:
        for record in tracer.spans:
            print(
                f"  span {record.name} {record.duration * 1000:.3f}ms "
                f"attrs={record.attrs}",
                file=sys.stderr,
            )
    if args.profile:
        print(render_profile(tracer, guard if args.stats else None))
    if args.trace:
        write_trace(args.trace, tracer, guard)
    if getattr(args, "metrics_out", None):
        write_prometheus(args.metrics_out, tracer.metrics)
    for sink in tracer.sinks:
        sink.close()


def _note_partial_shards(ctx) -> None:
    """Tag a run that dropped shards (--on-shard-failure=partial): the
    printed result is a sound subset, and the user must know."""
    if ctx is not None and ctx.is_partial:
        print(
            f"note: partial result — {ctx.dropped_shards} shard(s) "
            f"dropped after exhausting retries and quarantine",
            file=sys.stderr,
        )


def _print_relation(relation, as_intervals: bool) -> None:
    if as_intervals and relation.arity == 1:
        print(IntervalSet.from_relation(relation))
    else:
        print(relation.pretty())


def _cmd_info(args: argparse.Namespace) -> int:
    db = _load(args.database)
    print(f"{args.database}: {len(db)} relation(s), {encoding_size(db)} bytes encoded")
    rows = []
    for name in db.names():
        relation = db[name]
        atoms = sum(len(t.atoms) for t in relation.tuples)
        encoded = encoding_size(Database({name: relation}, theory=db.theory))
        rows.append((f"{name}/{relation.arity}", len(relation), atoms, encoded))
    if rows:
        width = max(len(r[0]) for r in rows)
        width = max(width, len("relation"))
        print(f"  {'relation'.ljust(width)} {'gtuples':>8} {'atoms':>7} {'bytes':>8}")
        for label, tuples, atoms, encoded in rows:
            print(f"  {label.ljust(width)} {tuples:>8} {atoms:>7} {encoded:>8}")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    db = _load(args.database)
    formula = parse_formula(args.formula)
    if args.explain:
        from repro.core.planner import compile_formula, explain, optimize

        plan = optimize(compile_formula(formula), db)
        print(explain(plan))
        return 0
    budget = _budget_of(args)
    tracer = _tracer_of(args)
    guard = _guard_of(args, budget)
    ctx = _context_of(args)
    mode = _optimize_mode(args)
    planner = _planner_of(args, mode, ctx)
    try:
        with _kernel_context(args), _cache_context(args), (
            tracer if tracer is not None else contextlib.nullcontext()
        ):
            if planner is not None:
                result = planner.run(formula, db, db.theory, guard=guard)
            else:
                result = evaluate(formula, db, guard=guard, context=ctx)
        _note_partial_shards(ctx)
        if not result.schema:
            print("true" if not result.is_empty() else "false")
        else:
            _print_relation(result, as_intervals=not args.raw)
    finally:
        if ctx is not None:
            ctx.close()
        _report_observation(args, tracer, guard)
    return 0


def _cmd_datalog(args: argparse.Namespace) -> int:
    db = _load(args.database)
    with open(args.program, encoding="utf-8") as handle:
        program = parse_program(handle.read())
    budget = _budget_of(args)
    tracer = _tracer_of(args)
    guard = _guard_of(args, budget)
    ctx = _context_of(args)
    mode = _optimize_mode(args)
    planner = _planner_of(args, mode, ctx)
    try:
        with _kernel_context(args), _cache_context(args), (
            tracer if tracer is not None else contextlib.nullcontext()
        ):
            result = evaluate_program(
                program,
                db,
                max_rounds=args.max_rounds,
                guard=guard,
                on_budget=args.on_budget,
                # a planner owns the context (per-operator activation);
                # --optimize=none activates it globally, as before
                context=ctx if planner is None else None,
                planner=planner,
            )
        _note_partial_shards(ctx)
        if result.reached_fixpoint:
            print(f"fixpoint after {result.rounds} round(s)")
        else:
            print(f"cut off after {result.rounds} round(s): {result.cut}")
        names = [args.show] if args.show else sorted(program.idb)
        for name in names:
            print(f"-- {name}")
            _print_relation(result[name], as_intervals=not args.raw)
    finally:
        if ctx is not None:
            ctx.close()
        _report_observation(args, tracer, guard)
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    """Run a query or program purely for its per-phase cost tree."""
    db = _load(args.database)
    budget = _budget_of(args)
    guard = EvaluationGuard(budget)  # guard stats are part of the tree
    tracer = Tracer()
    _arm_memory(args, tracer)
    if getattr(args, "log_jsonl", None):
        tracer.add_sink(JsonlSink(args.log_jsonl))
    is_program = args.query.endswith(".dl") or os.path.exists(args.query)
    ctx = _context_of(args)
    mode = _optimize_mode(args)
    planner = _planner_of(args, mode, ctx)
    summary: str
    try:
        with _kernel_context(args), _cache_context(args), tracer, (
            ctx if ctx is not None and planner is None
            else contextlib.nullcontext()
        ):
            # without a planner the context is *activated* around the
            # whole run (rather than passed to one engine) so the
            # stratified engine and any nested evaluation see it through
            # the context variable; with a planner, activation is
            # per-operator inside the planned executor
            summary = _run_explain(args, db, guard, is_program, planner)
        print(summary)
    finally:
        # a budget abort must not lose the partial telemetry: the cost
        # tree (with the guard's per-site counters accumulated so far)
        # and the requested exports are emitted either way
        print()
        print(render_profile(tracer, guard))
        if args.trace:
            write_trace(args.trace, tracer, guard)
        if getattr(args, "metrics_out", None):
            write_prometheus(args.metrics_out, tracer.metrics)
        for sink in tracer.sinks:
            sink.close()
        if ctx is not None:
            ctx.close()
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    """Run a query or program purely for its per-operator cost ledger."""
    db = _load(args.database)
    budget = _budget_of(args)
    guard = EvaluationGuard(budget)  # guard stats ride along in --out
    tracer = Tracer()
    _arm_memory(args, tracer)
    is_program = args.query.endswith(".dl") or os.path.exists(args.query)
    ctx = _context_of(args)
    try:
        with _kernel_context(args), _cache_context(args), tracer, (
            ctx if ctx is not None else contextlib.nullcontext()
        ):
            summary = _run_explain(args, db, guard, is_program)
        print(summary)
    finally:
        # a budget abort must not lose the partial ledger: the records
        # appended before the trip are rendered and exported either way
        print()
        print(render_cost_ledger(tracer.ledger))
        if args.out:
            write_profile(args.out, tracer, guard)
        if getattr(args, "fit", None):
            from repro.core.costmodel import fit_cost_model
            from repro.obs.ledger import profile_document

            model = fit_cost_model([profile_document(tracer, guard)])
            model.save(args.fit)
            print(
                f"cost model fitted from {model.records_used} ledger "
                f"record(s) -> {args.fit}"
            )
        if ctx is not None:
            ctx.close()
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    """Print the chosen plan: per-node est rows/cost + dispatch verdict."""
    from repro.core.costmodel import load_cost_model
    from repro.core.physical import render_plan
    from repro.core.planner import compile_formula, explain, optimize
    from repro.datalog.engine import body_formula

    db = _load(args.database)
    model = load_cost_model(args.cost_model) if args.cost_model else None
    workers = 1
    if getattr(args, "parallel", False):
        workers = (
            args.workers if args.workers is not None else (os.cpu_count() or 1)
        )
    strategy = getattr(args, "shard_strategy", "hash")

    def show(formula) -> None:
        plan = optimize(compile_formula(formula), db)
        print(explain(plan))
        print()
        print(
            render_plan(
                plan, db, model,
                max_workers=workers, default_strategy=strategy,
            )
        )

    if args.query.endswith(".dl") or os.path.exists(args.query):
        with open(args.query, encoding="utf-8") as handle:
            program = parse_program(handle.read())
        for index, rule in enumerate(program.rules):
            if index:
                print()
            print(f"-- rule {index + 1}: {rule}")
            show(body_formula(rule))
    else:
        show(parse_formula(args.query))
    return 0


def _cmd_calibrate(args: argparse.Namespace) -> int:
    """Fit a cost model from recorded repro.profile/1 documents."""
    from repro.core.costmodel import fit_cost_model
    from repro.obs.ledger import load_profile

    documents = [load_profile(path) for path in args.profiles]
    model = fit_cost_model(documents)
    print(
        f"fitted cost model from {model.records_used} record(s) across "
        f"{len(documents)} profile document(s)"
    )
    for op in sorted(model.coefficients):
        coefs = model.coefficients[op]
        print(
            f"  {op:<12} base={coefs['base']:.3e} "
            f"per_input={coefs['per_input']:.3e} "
            f"per_unit={coefs['per_unit']:.3e} "
            f"per_output={coefs['per_output']:.3e}"
        )
    for kind in sorted(model.ratios):
        print(f"  ratio {kind:<20} {model.ratios[kind]:.3f}")
    if args.out:
        model.save(args.out)
        print(f"written to {args.out}")
    return 0


def _run_explain(args, db, guard, is_program, planner=None) -> str:
    """One explain evaluation; returns the one-line result summary."""
    if is_program:
        with open(args.query, encoding="utf-8") as handle:
            program = parse_program(handle.read())
        kwargs = {}
        if args.engine == "seminaive":
            from repro.datalog.seminaive import evaluate_seminaive as engine
        elif args.engine == "stratified":
            from repro.datalog.stratified import evaluate_stratified as engine
        else:
            engine = evaluate_program
            kwargs["planner"] = planner
        if planner is not None and args.engine in ("seminaive", "stratified"):
            print(
                f"warning: --optimize applies to the naive engine only; "
                f"running {args.engine} unplanned",
                file=sys.stderr,
            )
        result = engine(
            program, db, max_rounds=args.max_rounds, guard=guard,
            on_budget=args.on_budget, **kwargs,
        )
        idb_tuples = sum(len(result[name]) for name in program.idb)
        if result.reached_fixpoint:
            return (
                f"result: fixpoint after {result.rounds} round(s), "
                f"{idb_tuples} IDB generalized tuple(s)"
            )
        return f"result: cut off after {result.rounds} round(s): {result.cut}"
    formula = parse_formula(args.query)
    if planner is not None:
        relation = planner.run(formula, db, db.theory, guard=guard)
    else:
        relation = evaluate(formula, db, guard=guard)
    if not relation.schema:
        return f"result: {'true' if not relation.is_empty() else 'false'}"
    return (
        f"result: {len(relation)} generalized tuple(s) over "
        f"({', '.join(relation.schema)})"
    )


def _cmd_roundtrip(args: argparse.Namespace) -> int:
    db = _load(args.database)
    sys.stdout.write(encode_database(db))
    return 0


def _cmd_trace_analyze(args: argparse.Namespace) -> int:
    """Critical path + bottleneck aggregation of one trace document."""
    from repro.obs import analyze_trace, load_trace, render_analysis

    document = load_trace(args.trace)
    print(render_analysis(analyze_trace(document), max_path=args.max_path))
    return EXIT_OK


def _cmd_trace_flame(args: argparse.Namespace) -> int:
    """Export one trace document as a flame graph."""
    from repro.obs import (
        collapsed_stacks,
        load_trace,
        speedscope_document,
        validate_speedscope,
        write_flame,
    )

    document = load_trace(args.trace)
    name = args.name or os.path.basename(args.trace)
    if args.out:
        write_flame(args.out, document, fmt=args.format, name=name)
        print(f"{args.format} flame graph -> {args.out}")
    elif args.format == "collapsed":
        print(collapsed_stacks(document))
    else:
        import json

        print(
            json.dumps(
                validate_speedscope(speedscope_document(document, name=name)),
                indent=2,
                sort_keys=True,
            )
        )
    return EXIT_OK


def _cmd_trace_diff(args: argparse.Namespace) -> int:
    """Diff two trace documents, attributing the latency delta."""
    from repro.obs import (
        diff_traces,
        load_trace,
        render_trace_diff,
        write_trace_diff,
    )

    before = load_trace(args.before)
    after = load_trace(args.after)
    document = diff_traces(
        before,
        after,
        label_before=args.label_before or os.path.basename(args.before),
        label_after=args.label_after or os.path.basename(args.after),
    )
    print(render_trace_diff(document))
    if args.out:
        write_trace_diff(args.out, document)
        print(f"trace-diff document -> {args.out}")
    return EXIT_OK


def _cmd_bench_watch(args: argparse.Namespace) -> int:
    """Compare the newest bench-history record against the trailing
    baseline; exit 4 when any metric regressed past the threshold.

    With ``--trace-before``/``--trace-after`` pointing at saved trace
    documents of the watched workload, a detected regression also
    renders the trace diff — the report names the operators that
    slowed down, not just the fact of the slowdown.
    """
    records = load_history(args.history)
    report = compare_latest(
        records, threshold=args.threshold, window=args.window
    )
    print(render_watch_report(report))
    if report["status"] != "regression":
        return EXIT_OK
    if args.trace_before and args.trace_after:
        from repro.obs import diff_traces, load_trace, render_trace_diff

        try:
            document = diff_traces(
                load_trace(args.trace_before),
                load_trace(args.trace_after),
                label_before=os.path.basename(args.trace_before),
                label_after=os.path.basename(args.trace_after),
            )
        except (ReproError, OSError) as error:
            # the watch verdict stands on the history alone; a missing
            # or malformed trace only costs the attribution report
            print(f"note: trace diff unavailable: {error}", file=sys.stderr)
        else:
            print()
            print(render_trace_diff(document))
    return EXIT_REGRESSION


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="dense-order constraint database CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    info = sub.add_parser("info", help="describe a database file")
    info.add_argument("database")
    info.set_defaults(fn=_cmd_info)

    query = sub.add_parser("query", help="evaluate an FO query")
    query.add_argument("database")
    query.add_argument("formula")
    query.add_argument("--raw", action="store_true", help="print constraint tuples")
    query.add_argument(
        "--explain", action="store_true", help="print the optimized query plan"
    )
    _add_budget_flags(query)
    _add_obs_flags(query)
    _add_cache_flag(query)
    _add_kernel_flag(query)
    _add_parallel_flags(query)
    _add_optimize_flags(query)
    _add_memory_flags(query)
    query.set_defaults(fn=_cmd_query)

    datalog = sub.add_parser("datalog", help="run a Datalog(not) program")
    datalog.add_argument("database")
    datalog.add_argument("program")
    datalog.add_argument("--show", help="print only this IDB predicate")
    datalog.add_argument(
        "--max-rounds", type=int, default=None,
        help="cap on fixpoint rounds",
    )
    datalog.add_argument(
        "--on-budget", choices=("raise", "partial"), default="raise",
        help="on budget exhaustion: fail (exit 3) or print the tagged "
        "partial result",
    )
    datalog.add_argument("--raw", action="store_true")
    _add_budget_flags(datalog)
    _add_obs_flags(datalog)
    _add_cache_flag(datalog)
    _add_kernel_flag(datalog)
    _add_parallel_flags(datalog)
    _add_optimize_flags(datalog)
    _add_memory_flags(datalog)
    datalog.set_defaults(fn=_cmd_datalog)

    explain_cmd = sub.add_parser(
        "explain",
        help="run a query or .dl program and print the per-phase cost tree",
    )
    explain_cmd.add_argument("database")
    explain_cmd.add_argument(
        "query",
        help="an FO formula, or a path to a Datalog(not) program file",
    )
    explain_cmd.add_argument(
        "--engine", choices=("naive", "seminaive", "stratified"), default="naive",
        help="Datalog engine to profile (program inputs only)",
    )
    explain_cmd.add_argument(
        "--max-rounds", type=int, default=None, help="cap on fixpoint rounds",
    )
    explain_cmd.add_argument(
        "--on-budget", choices=("raise", "partial"), default="raise",
    )
    explain_cmd.add_argument(
        "--trace", default=None, metavar="FILE",
        help="also write the structured JSON trace",
    )
    _add_budget_flags(explain_cmd)
    _add_cache_flag(explain_cmd)
    _add_kernel_flag(explain_cmd)
    _add_parallel_flags(explain_cmd)
    _add_optimize_flags(explain_cmd)
    _add_telemetry_flags(explain_cmd)
    _add_memory_flags(explain_cmd)
    explain_cmd.set_defaults(fn=_cmd_explain)

    profile_cmd = sub.add_parser(
        "profile",
        help="run a query or .dl program and print the per-operator "
        "cost ledger (estimated vs actual cardinalities)",
    )
    profile_cmd.add_argument("database")
    profile_cmd.add_argument(
        "query",
        help="an FO formula, or a path to a Datalog(not) program file",
    )
    profile_cmd.add_argument(
        "--engine", choices=("naive", "seminaive", "stratified"), default="naive",
        help="Datalog engine to profile (program inputs only)",
    )
    profile_cmd.add_argument(
        "--max-rounds", type=int, default=None, help="cap on fixpoint rounds",
    )
    profile_cmd.add_argument(
        "--on-budget", choices=("raise", "partial"), default="raise",
    )
    profile_cmd.add_argument(
        "--out", default=None, metavar="FILE",
        help="also write the ledger as a repro.profile/1 JSON document",
    )
    profile_cmd.add_argument(
        "--fit", default=None, metavar="FILE",
        help="also fit a repro.cost-model/1 document from this run's "
        "ledger and write it here (see 'repro calibrate' for fitting "
        "from saved --out documents)",
    )
    _add_budget_flags(profile_cmd)
    _add_cache_flag(profile_cmd)
    _add_kernel_flag(profile_cmd)
    _add_parallel_flags(profile_cmd)
    _add_memory_flags(profile_cmd)
    profile_cmd.set_defaults(fn=_cmd_profile)

    plan_cmd = sub.add_parser(
        "plan",
        help="print the optimized plan with per-node estimated rows, "
        "modeled cost, and the serial-vs-parallel verdict (no execution)",
    )
    plan_cmd.add_argument("database")
    plan_cmd.add_argument(
        "query",
        help="an FO formula, or a path to a Datalog(not) program file "
        "(one plan per rule body)",
    )
    plan_cmd.add_argument(
        "--cost-model", default=None, metavar="FILE", dest="cost_model",
        help="plan with a fitted repro.cost-model/1 document",
    )
    _add_parallel_flags(plan_cmd)
    plan_cmd.set_defaults(fn=_cmd_plan)

    calibrate = sub.add_parser(
        "calibrate",
        help="fit a repro.cost-model/1 document from recorded "
        "repro.profile/1 documents (see 'repro profile --out')",
    )
    calibrate.add_argument(
        "profiles", nargs="+", metavar="PROFILE",
        help="repro.profile/1 JSON documents to fit against",
    )
    calibrate.add_argument(
        "--out", default=None, metavar="FILE",
        help="write the fitted model here (printed either way)",
    )
    calibrate.set_defaults(fn=_cmd_calibrate)

    roundtrip = sub.add_parser("reencode", help="normalize a database file")
    roundtrip.add_argument("database")
    roundtrip.set_defaults(fn=_cmd_roundtrip)

    trace_cmd = sub.add_parser(
        "trace",
        help="analyze saved repro.trace/1 documents: critical paths, "
        "flame graphs, structural diffs",
    )
    trace_sub = trace_cmd.add_subparsers(dest="trace_command", required=True)

    analyze = trace_sub.add_parser(
        "analyze",
        help="critical path, per-operator hotspots, and per-phase "
        "totals of one trace",
    )
    analyze.add_argument("trace", help="a repro.trace/1 JSON document")
    analyze.add_argument(
        "--max-path", type=int, default=40, metavar="N", dest="max_path",
        help="cap on critical-path segments printed (default 40)",
    )
    analyze.set_defaults(fn=_cmd_trace_analyze)

    flame = trace_sub.add_parser(
        "flame",
        help="export a trace as a flame graph (speedscope JSON or "
        "collapsed stacks)",
    )
    flame.add_argument("trace", help="a repro.trace/1 JSON document")
    flame.add_argument(
        "-o", "--out", default=None, metavar="FILE",
        help="write here instead of stdout",
    )
    flame.add_argument(
        "--format", choices=("speedscope", "collapsed"), default="speedscope",
        help="speedscope (default): load at https://speedscope.app; "
        "collapsed: flamegraph.pl-style 'a;b;c <µs>' lines",
    )
    flame.add_argument(
        "--name", default=None,
        help="profile name embedded in the export (default: the trace "
        "file's basename)",
    )
    flame.set_defaults(fn=_cmd_trace_flame)

    tdiff = trace_sub.add_parser(
        "diff",
        help="diff two traces of the same workload, attributing the "
        "latency delta to named operators and phases",
    )
    tdiff.add_argument("before", help="baseline repro.trace/1 document")
    tdiff.add_argument("after", help="candidate repro.trace/1 document")
    tdiff.add_argument(
        "-o", "--out", default=None, metavar="FILE",
        help="also write the repro.trace-diff/1 JSON document here",
    )
    tdiff.add_argument(
        "--label-before", default=None, dest="label_before", metavar="LABEL",
        help="label for the baseline column (default: its basename)",
    )
    tdiff.add_argument(
        "--label-after", default=None, dest="label_after", metavar="LABEL",
        help="label for the candidate column (default: its basename)",
    )
    tdiff.set_defaults(fn=_cmd_trace_diff)

    watch = sub.add_parser(
        "bench-watch",
        help="compare the latest bench-history record against the "
        "trailing baseline (exit 4 on regression)",
    )
    watch.add_argument(
        "--history", default="benchmarks/BENCH_HISTORY.jsonl", metavar="FILE",
        help="the repro.bench-history/1 JSONL file to read",
    )
    watch.add_argument(
        "--threshold", type=float, default=1.5, metavar="RATIO",
        help="flag a metric slower than RATIO x its baseline (default 1.5)",
    )
    watch.add_argument(
        "--window", type=int, default=5, metavar="N",
        help="baseline = median of the previous up-to-N records (default 5)",
    )
    watch.add_argument(
        "--trace-before", default=None, dest="trace_before", metavar="FILE",
        help="baseline repro.trace/1 document of the watched workload; "
        "with --trace-after, a regression also renders the trace diff",
    )
    watch.add_argument(
        "--trace-after", default=None, dest="trace_after", metavar="FILE",
        help="candidate repro.trace/1 document (see --trace-before)",
    )
    watch.set_defaults(fn=_cmd_bench_watch)

    args = parser.parse_args(argv)
    recorder = flight_recorder()
    previous_dump_dir = recorder.dump_dir
    if getattr(args, "postmortem_dir", None):
        configure_flight_recorder(dump_dir=args.postmortem_dir)
        recorder.last_path = None
    try:
        return args.fn(args)
    except BudgetExceeded as error:
        print(f"budget exceeded: {error}", file=sys.stderr)
        diag = error.diagnostics()
        detail = ", ".join(f"{key}={diag[key]}" for key in sorted(diag))
        print(f"diagnostics: {detail}", file=sys.stderr)
        if getattr(args, "postmortem_dir", None):
            # budget errors that never crossed a guard exit (e.g. an
            # engine-local --max-rounds cut with no guard active) still
            # deserve a dump; the recorder dedupes the guarded ones
            recorder.dump(error=error, reason="cli")
        if recorder.last_path:
            print(f"post-mortem: {recorder.last_path}", file=sys.stderr)
        return EXIT_BUDGET
    except ShardFailedError as error:
        # must precede ReproError: a shard that failed retries AND
        # quarantine is an infrastructure verdict, not an input error,
        # and scripts retry exit 5 differently than they fix exit 1
        print(f"shard failure: {error}", file=sys.stderr)
        diag = error.diagnostics()
        detail = ", ".join(f"{key}={diag[key]}" for key in sorted(diag))
        print(f"diagnostics: {detail}", file=sys.stderr)
        if recorder.last_path:
            print(f"post-mortem: {recorder.last_path}", file=sys.stderr)
        return EXIT_SHARD
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_ERROR
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_ERROR
    finally:
        recorder.dump_dir = previous_dump_dir


if __name__ == "__main__":
    raise SystemExit(main())
