"""The Theorem 4.4 capture pipeline: PTIME queries via Datalog(not).

Theorem 4.4 states ``inflationary Datalog(not) = PTIME`` over
dense-order constraint databases.  The non-trivial inclusion
(every PTIME query is expressible) is proved by

1. order-encoding the instance into a finite structure over
   consecutive integers (:mod:`repro.encoding.order_encoding`),
2. running, over that ordered finite structure, the inflationary
   Datalog(not) program that exists for any PTIME query by
   [Var82, Imm86],
3. decoding the finite answer back into a generalized relation.

:func:`run_capture` is that pipeline, operational end-to-end.  The
module also ships two concrete PTIME-but-not-FO queries written as
finite Datalog(not) programs over the encoded structure -- cardinality
parity and graph connectivity -- which experiments E4/E7 run through
the pipeline.

Writing negation under *inflationary* semantics requires care: a
negated IDB literal is only sound once the negated predicate has
stopped growing.  The programs below use the standard staging devices:
zero-ary round counters (``stage2`` becomes true one round after
``stage1``) and a cell-counter clock (``tick`` advances one cell per
round, so ``clock_done`` holds only after at least ``cell-count``
rounds, by which time transitive closures over the encoded domain are
complete).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Iterable, Optional, Sequence

from repro.core.atoms import lt
from repro.core.database import Database
from repro.core.relation import Relation
from repro.datalog.ast import Program, cons, negated, pred, rule
from repro.datalog.finite import FiniteFixpointResult, evaluate_finite
from repro.encoding.order_encoding import (
    AUX_RELATIONS,
    EncodedInstance,
    encode_instance,
    row_width,
)
from repro.errors import EncodingError

__all__ = [
    "aux_edb",
    "run_capture",
    "capture_boolean",
    "cardinality_parity_program",
    "graph_connectivity_program",
]


def aux_edb() -> Dict[str, int]:
    """EDB declarations for the auxiliary order relations."""
    return {"cell": 1, "cell_lt": 2, "cell_succ": 2, "cell_point": 1}


def run_capture(
    program: Program,
    database: Database,
    output: str,
    output_arity: int,
    schema: Sequence[str],
    extra_constants: Iterable[Fraction] = (),
) -> Relation:
    """Encode, evaluate the finite program, decode the output predicate.

    ``output`` must be an IDB predicate of the program whose rows encode
    complete types of the given ``output_arity`` (width
    ``output_arity + C(output_arity, 2)``).
    """
    if output not in program.idb:
        raise EncodingError(f"output predicate {output!r} is not derived by the program")
    if program.idb[output] != row_width(output_arity):
        raise EncodingError(
            f"output predicate {output!r} has arity {program.idb[output]}, "
            f"but an arity-{output_arity} answer needs rows of width "
            f"{row_width(output_arity)}"
        )
    encoded = encode_instance(database, extra_constants)
    result = evaluate_finite(program, encoded.instance)
    if not result.reached_fixpoint:  # pragma: no cover - finite engine terminates
        raise EncodingError("finite evaluation did not reach a fixpoint")
    from repro.encoding.order_encoding import decode_rows

    return decode_rows(result[output], output_arity, encoded.decomposition, schema)


def capture_boolean(
    program: Program,
    database: Database,
    output: str,
    extra_constants: Iterable[Fraction] = (),
) -> bool:
    """Run the pipeline for a boolean (0-ary) query."""
    encoded = encode_instance(database, extra_constants)
    result = evaluate_finite(program, encoded.instance)
    return bool(result[output])


# ------------------------------------------------------- concrete programs


def cardinality_parity_program(input_name: str = "S") -> Program:
    """Is the (finite) unary relation's cardinality odd?

    A PTIME query that is *not* first-order (Theorem 4.2 context).  The
    program walks the elements of ``S`` in the encoded cell order,
    alternating ``odd``/``even``, and reports ``result_odd`` when the
    maximal element lands on ``odd``.

    Negated literals (``between``, ``smaller_in``, ``greater_in``)
    depend only on EDB, so they are complete after round 1; rules
    negating them are guarded by ``stage2`` which first holds in
    round 2.
    """
    s = input_name
    rules = [
        rule("stage1", []),
        rule("stage2", [], pred("stage1")),
        # all IDB below depend only on EDB: complete after round 1
        rule("between", ["x", "y"], pred(s, "x"), pred(s, "y"), pred(s, "z"),
             cons(lt("x", "z")), cons(lt("z", "y"))),
        rule("smaller_in", ["x"], pred(s, "x"), pred(s, "y"), cons(lt("y", "x"))),
        rule("greater_in", ["x"], pred(s, "x"), pred(s, "y"), cons(lt("x", "y"))),
        # guarded rules: safe from round 2 on
        rule("first", ["x"], pred(s, "x"), negated("smaller_in", "x"), pred("stage2")),
        rule("last", ["x"], pred(s, "x"), negated("greater_in", "x"), pred("stage2")),
        rule("next_in", ["x", "y"], pred(s, "x"), pred(s, "y"), cons(lt("x", "y")),
             negated("between", "x", "y"), pred("stage2")),
        # alternate along the chain
        rule("odd", ["x"], pred("first", "x")),
        rule("even", ["y"], pred("odd", "x"), pred("next_in", "x", "y")),
        rule("odd", ["y"], pred("even", "x"), pred("next_in", "x", "y")),
        rule("result_odd", [], pred("odd", "x"), pred("last", "x")),
    ]
    return Program(rules, edb={s: 1, **aux_edb()})


def graph_connectivity_program(edge_name: str = "E", vertex_name: str = "V") -> Program:
    """Is the finite graph (V, E) connected?

    The PTIME query of Theorem 4.2 (not FO+).  Vertices and edges are
    finite relations of the dense-order instance; over the encoding,
    ``tc`` closes the edge relation (symmetrically), and a cell-counter
    clock delays the negated ``tc`` test until the closure must be
    complete (transitive closure stabilizes within ``|cells|`` rounds).
    """
    e, v = edge_name, vertex_name
    rules = [
        # clock: one cell per round; done after the full sweep
        rule("clock_started", []),
        rule("has_smaller_cell", ["x"], pred("cell", "x"), pred("cell", "y"),
             cons(lt("y", "x"))),
        rule("has_greater_cell", ["x"], pred("cell", "x"), pred("cell", "y"),
             cons(lt("x", "y"))),
        rule("stage2", [], pred("clock_started")),
        rule("tick", ["x"], pred("cell", "x"), negated("has_smaller_cell", "x"),
             pred("stage2")),
        rule("tick", ["y"], pred("tick", "x"), pred("cell_succ", "x", "y")),
        rule("clock_done", [], pred("tick", "x"), negated("has_greater_cell", "x"),
             pred("stage2")),
        rule("clock_done2", [], pred("clock_done")),
        rule("clock_done3", [], pred("clock_done2")),
        # encoded binary rows are (cell_x, cell_y, pattern); project the cells
        rule("edge", ["x", "y"], pred(e, "x", "y", "p")),
        # symmetric reachability (doubling closes within log2(n) rounds)
        rule("tc", ["x", "y"], pred("edge", "x", "y")),
        rule("tc", ["x", "y"], pred("edge", "y", "x")),
        rule("tc", ["x", "z"], pred("tc", "x", "y"), pred("tc", "y", "z")),
        # disconnected once tc is certainly complete
        rule("disconnected", [], pred(v, "x"), pred(v, "y"), cons(lt("x", "y")),
             negated("tc", "x", "y"), pred("clock_done")),
        rule("connected", [], negated("disconnected"), pred("clock_done3")),
    ]
    return Program(rules, edb={e: row_width(2), v: 1, **aux_edb()})
