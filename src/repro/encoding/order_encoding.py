"""Order encoding: the Theorem 4.4 proof device.

The proof of ``inflationary Datalog(not) = PTIME`` encodes the rational
constants of an instance "into consecutive integers by respecting their
order" and works over the resulting *relational representation*: a
finite structure whose elements are the cells of the canonical
decomposition, carrying

* one finite relation per database relation, holding the integer-coded
  complete types contained in it,
* the linear order on cells (``cell_lt``), its successor (``cell_succ``),
  the cell universe (``cell``), and which cells are points
  (``cell_point``) -- everything a PTIME Turing machine (or by
  [Var82, Imm86] an inflationary Datalog(not) program over an ordered
  finite structure) needs.

A complete k-type is one row of ``k + C(k,2)`` integers: the k cell
indices followed by the pairwise comparison pattern shifted to
``{0, 1, 2}``.  Decoding maps rows back to generalized tuples, giving
the closed-form output the theorem demands.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.core.database import Database
from repro.core.relation import Relation
from repro.core.theory import DENSE_ORDER
from repro.datalog.finite import FiniteInstance, Row
from repro.encoding.cells import CellDecomposition, CellType
from repro.errors import EncodingError

__all__ = ["EncodedInstance", "encode_instance", "rows_of_signature", "decode_rows",
           "row_of_type", "type_of_row", "row_width"]

#: reserved names of the auxiliary order relations in the encoding
AUX_RELATIONS = ("cell", "cell_lt", "cell_succ", "cell_point")


def row_width(arity: int) -> int:
    """Width of an encoded row for a relation of the given arity."""
    return arity + arity * (arity - 1) // 2


def row_of_type(cell_type: CellType) -> Row:
    """Encode a complete type as a row of small integers."""
    pattern = tuple(Fraction(p + 1) for p in cell_type.pattern)
    return tuple(Fraction(c) for c in cell_type.cells) + pattern


def type_of_row(row: Row, arity: int) -> CellType:
    """Decode an integer row back to a complete type."""
    if len(row) != row_width(arity):
        raise EncodingError(
            f"row of width {len(row)} does not encode an arity-{arity} type"
        )
    cells = tuple(int(v) for v in row[:arity])
    pattern = tuple(int(v) - 1 for v in row[arity:])
    for p in pattern:
        if p not in (-1, 0, 1):
            raise EncodingError(f"bad pattern entry {p + 1} in row {row}")
    return CellType(cells, pattern)


def rows_of_signature(signature: Iterable[CellType]) -> Set[Row]:
    return {row_of_type(t) for t in signature}


@dataclass
class EncodedInstance:
    """A dense-order instance order-encoded as a finite structure."""

    decomposition: CellDecomposition
    instance: FiniteInstance
    arities: Dict[str, int]

    def decode(self, name: str, arity: int, schema: Sequence[str]) -> Relation:
        """Decode a finite relation of the instance back to closed form."""
        return decode_rows(self.instance[name], arity, self.decomposition, schema)


def encode_instance(
    database: Database, extra_constants: Iterable[Fraction] = ()
) -> EncodedInstance:
    """Order-encode a dense-order database.

    ``extra_constants`` lets the caller refine the decomposition with
    the constants of the query (the paper's encoding covers the query
    constants too: "rational constants occurring in the relational
    representation of the input or in the query itself").
    """
    if database.theory is not DENSE_ORDER:
        raise EncodingError("order encoding is defined for dense-order databases")
    for reserved in AUX_RELATIONS:
        if reserved in database:
            raise EncodingError(f"relation name {reserved!r} is reserved")
    decomposition = CellDecomposition(set(database.constants()) | set(extra_constants))
    instance = FiniteInstance()
    arities: Dict[str, int] = {}
    for name in database.names():
        relation = database[name]
        signature = decomposition.signature(relation)
        instance.add_relation(
            name, rows_of_signature(signature), arity=row_width(relation.arity)
        )
        arities[name] = relation.arity
    n = decomposition.cell_count
    instance.add_relation("cell", [(i,) for i in range(n)], arity=1)
    instance.add_relation(
        "cell_lt", [(i, j) for i in range(n) for j in range(i + 1, n)], arity=2
    )
    instance.add_relation("cell_succ", [(i, i + 1) for i in range(n - 1)], arity=2)
    instance.add_relation(
        "cell_point", [(i,) for i in range(n) if decomposition.is_point_cell(i)], arity=1
    )
    return EncodedInstance(decomposition, instance, arities)


def decode_rows(
    rows: Iterable[Row],
    arity: int,
    decomposition: CellDecomposition,
    schema: Sequence[str],
) -> Relation:
    """Decode integer rows (encoded complete types) to a relation."""
    types = [type_of_row(row, arity) for row in rows]
    return decomposition.relation_of_signature(types, schema)
