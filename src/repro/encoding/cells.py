"""Canonical cell decompositions of Q^k over a finite constant set.

Dense-order formulas cannot distinguish points with the same *order
type* relative to a constant set ``c1 < ... < cm``.  The induced
partition of Q is the sequence of 1-D *cells*::

    (-inf, c1), [c1], (c1, c2), [c2], ..., [cm], (cm, +inf)

indexed ``0 .. 2m`` (odd indices are the constants).  A *complete
k-type* assigns each coordinate a 1-D cell and fixes the order pattern
among coordinates sharing an open cell; the complete types partition
``Q^k`` into finitely many classes, each entirely inside or outside any
relation over those constants.

This machinery serves three masters:

* **canonical signatures** -- a relation's set of satisfied complete
  types is a finite canonical form (equivalence becomes set equality);
* **the relational representation** of Theorem 4.4 -- complete types
  are encoded as integer rows (:mod:`repro.encoding.order_encoding`);
* **active domains** for C-CALC (Section 5): set variables range over
  unions of cells (:mod:`repro.cobjects.active_domain`).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.core.atoms import Atom, eq, lt
from repro.core.gtuple import GTuple
from repro.core.intervals import Interval
from repro.core.relation import Relation
from repro.core.terms import Var
from repro.errors import EncodingError
from repro.obs.trace import active_tracer

__all__ = ["CellDecomposition", "CellType", "relations_equivalent", "weak_orderings"]


def weak_orderings(items: Sequence) -> Iterator[Tuple[Tuple[object, ...], ...]]:
    """All weak orderings (ordered set partitions) of ``items``.

    Yields tuples of blocks; blocks earlier in the tuple are strictly
    smaller.  The count is the Fubini number of ``len(items)``.
    """
    items = list(items)
    if not items:
        yield ()
        return
    first, rest = items[0], items[1:]
    for sub in weak_orderings(rest):
        # insert `first` as its own block at any position
        for i in range(len(sub) + 1):
            yield sub[:i] + ((first,),) + sub[i:]
        # or merge `first` into an existing block
        for i, block in enumerate(sub):
            yield sub[:i] + (block + (first,),) + sub[i + 1 :]


@dataclass(frozen=True)
class CellType:
    """A complete k-type: per-coordinate 1-D cells plus order pattern.

    ``pattern[p]`` compares coordinate ``i`` against ``j`` for the
    p-th pair ``(i, j)`` in lexicographic order (``i < j``):
    ``-1`` means ``coord_i < coord_j``, ``0`` equality, ``1`` greater.
    The pattern stores *all* pairs (redundantly for coordinates in
    different cells) so equal types are structurally equal.
    """

    cells: Tuple[int, ...]
    pattern: Tuple[int, ...]

    @property
    def arity(self) -> int:
        return len(self.cells)

    def compare(self, i: int, j: int) -> int:
        """The stored comparison of coordinate i vs j (i != j)."""
        if i == j:
            return 0
        if i > j:
            return -self.compare(j, i)
        index = 0
        k = self.arity
        for a in range(k):
            for b in range(a + 1, k):
                if (a, b) == (i, j):
                    return self.pattern[index]
                index += 1
        raise EncodingError(f"pair ({i}, {j}) out of range")  # pragma: no cover


def _pair_index(k: int) -> List[Tuple[int, int]]:
    return [(i, j) for i in range(k) for j in range(i + 1, k)]


class CellDecomposition:
    """The cell decomposition of Q (and of Q^k) by a constant set."""

    def __init__(self, constants: Iterable[Fraction]) -> None:
        self.constants: Tuple[Fraction, ...] = tuple(sorted(set(constants)))

    # ------------------------------------------------------------- 1-D cells

    @property
    def cell_count(self) -> int:
        return 2 * len(self.constants) + 1

    def cell_interval(self, index: int) -> Interval:
        """The pointset of the 1-D cell with the given index."""
        m = len(self.constants)
        if not 0 <= index < self.cell_count:
            raise EncodingError(f"cell index {index} out of range (m={m})")
        if index % 2 == 1:
            return Interval.point(self.constants[index // 2])
        lo = self.constants[index // 2 - 1] if index > 0 else None
        hi = self.constants[index // 2] if index < 2 * m else None
        return Interval.make(lo, hi, True, True)

    def is_point_cell(self, index: int) -> bool:
        return index % 2 == 1

    def cell_of_value(self, value: Fraction) -> int:
        """The index of the cell containing ``value``."""
        for i, c in enumerate(self.constants):
            if value < c:
                return 2 * i
            if value == c:
                return 2 * i + 1
        return 2 * len(self.constants)

    def cell_sample(self, index: int, rank: int = 0, width: int = 1) -> Fraction:
        """The ``rank``-th of ``width`` increasing sample values in a cell.

        Point cells admit only rank 0.  Used to realize complete types
        as concrete points.
        """
        interval = self.cell_interval(index)
        if interval.is_point():
            if rank != 0:
                raise EncodingError("point cells hold a single value")
            return interval.lo
        if interval.lo is None and interval.hi is None:
            return Fraction(rank)
        if interval.lo is None:
            return interval.hi - (width - rank)
        if interval.hi is None:
            return interval.lo + rank + 1
        step = (interval.hi - interval.lo) / (width + 1)
        return interval.lo + step * (rank + 1)

    # --------------------------------------------------------- complete types

    def complete_types(self, arity: int) -> Iterator[CellType]:
        """Enumerate all consistent complete types of the given arity."""
        pairs = _pair_index(arity)
        for cells in itertools.product(range(self.cell_count), repeat=arity):
            groups: Dict[int, List[int]] = {}
            for coord, cell in enumerate(cells):
                if not self.is_point_cell(cell):
                    groups.setdefault(cell, []).append(coord)
            open_groups = [g for g in groups.values() if len(g) > 1]
            for ranking in self._group_rankings(open_groups):
                pattern = []
                for i, j in pairs:
                    if cells[i] != cells[j]:
                        pattern.append(-1 if cells[i] < cells[j] else 1)
                    elif self.is_point_cell(cells[i]):
                        pattern.append(0)
                    else:
                        ri, rj = ranking[i], ranking[j]
                        pattern.append(-1 if ri < rj else (0 if ri == rj else 1))
                yield CellType(tuple(cells), tuple(pattern))

    def _group_rankings(
        self, open_groups: List[List[int]]
    ) -> Iterator[Dict[int, int]]:
        """All rank assignments: per shared open cell, a weak ordering."""
        if not open_groups:
            yield {}
            return
        head, tail = open_groups[0], open_groups[1:]
        for rest in self._group_rankings(tail):
            for ordering in weak_orderings(head):
                ranks = dict(rest)
                for level, block in enumerate(ordering):
                    for coord in block:
                        ranks[coord] = level
                yield ranks

    def type_count(self, arity: int) -> int:
        """Number of complete types (grows fast; use small arities)."""
        return sum(1 for _ in self.complete_types(arity))

    # ----------------------------------------------------- types <-> geometry

    def type_atoms(self, cell_type: CellType, schema: Sequence[str]) -> List[Atom]:
        """Dense-order constraints pinning a tuple to the type's cell."""
        if len(schema) != cell_type.arity:
            raise EncodingError("schema arity does not match type arity")
        atoms: List[Atom] = []
        for column, cell in zip(schema, cell_type.cells):
            atoms.extend(self.cell_interval(cell).to_atoms(column))
        for (i, j), relation in zip(_pair_index(cell_type.arity), cell_type.pattern):
            if cell_type.cells[i] != cell_type.cells[j]:
                continue  # already implied by the cell constraints
            if self.is_point_cell(cell_type.cells[i]):
                continue
            a, b = schema[i], schema[j]
            if relation == 0:
                made = eq(a, b)
            elif relation < 0:
                made = lt(a, b)
            else:
                made = lt(b, a)
            if not isinstance(made, bool):
                atoms.append(made)
        return atoms

    def type_tuple(self, cell_type: CellType, schema: Sequence[str]) -> GTuple:
        """The generalized tuple denoting exactly the type's cell."""
        from repro.core.theory import DENSE_ORDER

        made = GTuple.make(DENSE_ORDER, schema, self.type_atoms(cell_type, schema))
        if made is None:  # pragma: no cover - enumerated types are consistent
            raise EncodingError(f"inconsistent complete type {cell_type}")
        return made

    def type_sample(self, cell_type: CellType) -> Tuple[Fraction, ...]:
        """A concrete point realizing the complete type."""
        arity = cell_type.arity
        # ranks within each shared open cell
        values: List[Optional[Fraction]] = [None] * arity
        by_cell: Dict[int, List[int]] = {}
        for coord, cell in enumerate(cell_type.cells):
            by_cell.setdefault(cell, []).append(coord)
        for cell, coords in by_cell.items():
            if self.is_point_cell(cell):
                for coord in coords:
                    values[coord] = self.cell_sample(cell)
                continue
            # order coords of this open cell by the stored pattern
            levels: List[List[int]] = []
            for coord in sorted(coords):
                placed = False
                for level in levels:
                    relation = cell_type.compare(coord, level[0])
                    if relation == 0:
                        level.append(coord)
                        placed = True
                        break
                if not placed:
                    levels.append([coord])
            snapshot = list(levels)
            levels = sorted(
                snapshot,
                key=lambda level: sum(
                    1 for other in snapshot if cell_type.compare(level[0], other[0]) > 0
                ),
            )
            width = len(levels)
            for rank, level in enumerate(levels):
                for coord in level:
                    values[coord] = self.cell_sample(cell, rank, width)
        if any(v is None for v in values):  # pragma: no cover
            raise EncodingError("incomplete sample assignment")
        return tuple(values)

    def type_of_point(self, point: Sequence[Fraction]) -> CellType:
        """The complete type realized by a concrete point."""
        cells = tuple(self.cell_of_value(v) for v in point)
        pattern = []
        for i, j in _pair_index(len(point)):
            if point[i] < point[j]:
                pattern.append(-1)
            elif point[i] == point[j]:
                pattern.append(0)
            else:
                pattern.append(1)
        return CellType(cells, tuple(pattern))

    # ------------------------------------------------------------- signatures

    def signature(self, relation: Relation) -> FrozenSet[CellType]:
        """The set of complete types contained in the relation.

        Exact canonical form: two relations over constants included in
        this decomposition are equivalent iff their signatures are
        equal.  Requires ``relation.constants()`` to be a subset of the
        decomposition constants.
        """
        missing = relation.constants() - set(self.constants)
        if missing:
            raise EncodingError(
                f"relation constants {sorted(missing)} not in the decomposition"
            )
        out = set()
        checked = 0
        for cell_type in self.complete_types(relation.arity):
            checked += 1
            if relation.contains_point(self.type_sample(cell_type)):
                out.add(cell_type)
        tracer = active_tracer()
        if tracer is not None:
            tracer.metrics.count("cells.signatures")
            tracer.metrics.observe("cells.types_checked", checked)
        return frozenset(out)

    def relation_of_signature(
        self, signature: Iterable[CellType], schema: Sequence[str]
    ) -> Relation:
        """The relation that is the union of the given cells."""
        from repro.core.theory import DENSE_ORDER

        tuples = [self.type_tuple(t, schema) for t in signature]
        return Relation(DENSE_ORDER, schema, tuples)

    def __repr__(self) -> str:
        return f"<CellDecomposition m={len(self.constants)} cells={self.cell_count}>"


def relations_equivalent(a: Relation, b: Relation) -> bool:
    """Pointset equality with a cell-signature fast path.

    For low-arity dense-order relations the canonical signature over the
    union of constants decides equivalence in polynomial time; higher
    arities (or huge constant sets, or other theories) fall back to the
    generic containment test (exponential in representation tuples).
    """
    from repro.core.theory import DENSE_ORDER

    if a.schema != b.schema or a.theory is not b.theory:
        return False
    constants = set(a.constants()) | set(b.constants())
    if a.theory is DENSE_ORDER and a.arity <= 2 and len(constants) <= 24:
        decomposition = CellDecomposition(constants)
        return decomposition.signature(a) == decomposition.signature(b)
    return a.equivalent(b)
