"""The standard encoding of a database (paper Section 3).

Data complexity is defined "based on computational devices and standard
encodings of the input and output": a dense-order database is encoded
by encoding the quantifier-free formula representing it.  This module
provides that encoding as a deterministic string (so its *length* is
the input-size measure used by the complexity experiments) and the
corresponding decoder.

Grammar (one relation per line group)::

    relation <name> (<col>, ...)
    tuple
    atom <term> <op> <term>
    ...

Terms are ``var:<name>`` or ``const:<p>/<q>``; rationals are written in
lowest terms, mirroring the paper's remark that inputs over integers
avoid rational encodings (integer-only instances contain no ``/q``
parts with ``q != 1``).
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, Tuple

from repro.core.atoms import Op, atom
from repro.core.database import Database
from repro.core.gtuple import GTuple
from repro.core.relation import Relation
from repro.core.terms import Const, Term, Var
from repro.core.theory import DENSE_ORDER
from repro.errors import EncodingError

__all__ = ["encode_database", "decode_database", "encoding_size", "is_integer_instance"]


def _encode_term(term: Term) -> str:
    if isinstance(term, Var):
        return f"var:{term.name}"
    return f"const:{term.value.numerator}/{term.value.denominator}"


def _decode_term(text: str) -> Term:
    kind, _, payload = text.partition(":")
    if kind == "var":
        return Var(payload)
    if kind == "const":
        num, _, den = payload.partition("/")
        try:
            return Const(Fraction(int(num), int(den)))
        except (ValueError, ZeroDivisionError) as error:
            raise EncodingError(f"bad constant encoding {text!r}: {error}") from None
    raise EncodingError(f"bad term encoding {text!r}")


def encode_database(database: Database) -> str:
    """Serialize a dense-order database to its standard encoding."""
    if database.theory is not DENSE_ORDER:
        raise EncodingError("standard encoding is defined for dense-order databases")
    lines: List[str] = []
    for name in sorted(database.names()):
        relation = database[name]
        lines.append(f"relation {name} ({', '.join(relation.schema)})")
        for t in sorted(relation.tuples, key=lambda t: sorted(map(str, t.atoms))):
            lines.append("tuple")
            for a in sorted(t.atoms, key=str):
                lines.append(
                    f"atom {_encode_term(a.left)} {a.op.value} {_encode_term(a.right)}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


def decode_database(text: str) -> Database:
    """Parse a standard encoding back into a database."""
    database = Database()
    name = None
    schema: Tuple[str, ...] = ()
    tuples: List[GTuple] = []
    atoms: List = []
    in_tuple = False

    def flush_tuple() -> None:
        nonlocal atoms, in_tuple
        if in_tuple:
            made = GTuple.make(DENSE_ORDER, schema, atoms)
            if made is not None:
                tuples.append(made)
        atoms = []

    def flush_relation() -> None:
        nonlocal tuples
        if name is not None:
            database[name] = Relation(DENSE_ORDER, schema, tuples)
        tuples = []

    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("relation "):
            flush_tuple()
            flush_relation()
            in_tuple = False
            header = line[len("relation ") :]
            name, _, columns = header.partition(" ")
            columns = columns.strip()
            if not (columns.startswith("(") and columns.endswith(")")):
                raise EncodingError(f"bad relation header {line!r}")
            inner = columns[1:-1].strip()
            schema = tuple(c.strip() for c in inner.split(",")) if inner else ()
        elif line == "tuple":
            flush_tuple()
            in_tuple = True
        elif line.startswith("atom "):
            if not in_tuple:
                raise EncodingError("atom outside a tuple")
            parts = line.split()
            if len(parts) != 4:
                raise EncodingError(f"bad atom line {line!r}")
            try:
                op = Op(parts[2])
            except ValueError:
                raise EncodingError(
                    f"bad comparison operator {parts[2]!r} in {line!r}"
                ) from None
            made = atom(_decode_term(parts[1]), op, _decode_term(parts[3]))
            atoms.append(made)
        else:
            raise EncodingError(f"unrecognized line {line!r}")
    flush_tuple()
    flush_relation()
    return database


def encoding_size(database: Database) -> int:
    """Length of the standard encoding -- the data-complexity input size."""
    return len(encode_database(database))


def is_integer_instance(database: Database) -> bool:
    """Does the instance use only integer constants?  (Theorem 4.1's
    hypothesis; harmless by the homeomorphism remark in Section 4.)"""
    return all(c.denominator == 1 for c in database.constants())
