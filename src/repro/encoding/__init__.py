"""Encodings of dense-order databases (paper Sections 3-4).

* :mod:`repro.encoding.cells` -- canonical cell decompositions and
  complete types (the combinatorial heart of the paper's proofs);
* :mod:`repro.encoding.standard` -- the standard string encoding used
  to define data complexity;
* :mod:`repro.encoding.order_encoding` -- constants as consecutive
  integers; the relational representation of Theorem 4.4;
* :mod:`repro.encoding.ptime` -- the PTIME capture pipeline
  (encode -> finite inflationary Datalog(not) -> decode).
"""

from repro.encoding.cells import (
    CellDecomposition,
    CellType,
    relations_equivalent,
    weak_orderings,
)
from repro.encoding.order_encoding import (
    AUX_RELATIONS,
    EncodedInstance,
    decode_rows,
    encode_instance,
    row_of_type,
    row_width,
    rows_of_signature,
    type_of_row,
)
from repro.encoding.ptime import (
    aux_edb,
    capture_boolean,
    cardinality_parity_program,
    graph_connectivity_program,
    run_capture,
)
from repro.encoding.standard import (
    decode_database,
    encode_database,
    encoding_size,
    is_integer_instance,
)

__all__ = [
    "CellDecomposition",
    "CellType",
    "relations_equivalent",
    "weak_orderings",
    "AUX_RELATIONS",
    "EncodedInstance",
    "decode_rows",
    "encode_instance",
    "row_of_type",
    "row_width",
    "rows_of_signature",
    "type_of_row",
    "aux_edb",
    "capture_boolean",
    "cardinality_parity_program",
    "graph_connectivity_program",
    "run_capture",
    "decode_database",
    "encode_database",
    "encoding_size",
    "is_integer_instance",
]
