"""Allen's thirteen interval relations as FO queries.

Temporal databases are the paper's other canonical motivation (dense
*time* instead of dense space).  When intervals are stored as a binary
point relation ``I(lo, hi)`` with ``lo < hi``, each of Allen's thirteen
basic relations between two intervals is a quantifier-free dense-order
formula -- so *interval calculus is FO over dense order*, a concrete
instance of the paper's expressiveness story.

Every builder returns a formula with free variables
``a_lo, a_hi, b_lo, b_hi`` (the two intervals' endpoints); evaluate
with the endpoint columns bound via relation atoms, e.g.::

    pairs = exists(
        [],  # no extra vars
        rel("I", "a_lo", "a_hi") & rel("I", "b_lo", "b_hi") & allen.before()
    )

The thirteen relations partition all configurations of two proper
intervals (property-tested in ``tests/queries/test_allen.py``).
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.core.atoms import eq, lt
from repro.core.formula import Formula, conj, constraint

__all__ = [
    "before",
    "after",
    "meets",
    "met_by",
    "overlaps",
    "overlapped_by",
    "starts",
    "started_by",
    "during",
    "contains",
    "finishes",
    "finished_by",
    "equals",
    "ALLEN_RELATIONS",
]

#: default endpoint variable names
A_LO, A_HI, B_LO, B_HI = "a_lo", "a_hi", "b_lo", "b_hi"


def _f(*atoms) -> Formula:
    return conj(*(constraint(a) for a in atoms))


def before(a_lo=A_LO, a_hi=A_HI, b_lo=B_LO, b_hi=B_HI) -> Formula:
    """A ends strictly before B starts."""
    return _f(lt(a_hi, b_lo))


def after(a_lo=A_LO, a_hi=A_HI, b_lo=B_LO, b_hi=B_HI) -> Formula:
    """A starts strictly after B ends."""
    return _f(lt(b_hi, a_lo))


def meets(a_lo=A_LO, a_hi=A_HI, b_lo=B_LO, b_hi=B_HI) -> Formula:
    """A's end is exactly B's start."""
    return _f(eq(a_hi, b_lo))


def met_by(a_lo=A_LO, a_hi=A_HI, b_lo=B_LO, b_hi=B_HI) -> Formula:
    return _f(eq(b_hi, a_lo))


def overlaps(a_lo=A_LO, a_hi=A_HI, b_lo=B_LO, b_hi=B_HI) -> Formula:
    """A starts first, they overlap, B ends last."""
    return _f(lt(a_lo, b_lo), lt(b_lo, a_hi), lt(a_hi, b_hi))


def overlapped_by(a_lo=A_LO, a_hi=A_HI, b_lo=B_LO, b_hi=B_HI) -> Formula:
    return overlaps(b_lo, b_hi, a_lo, a_hi)


def starts(a_lo=A_LO, a_hi=A_HI, b_lo=B_LO, b_hi=B_HI) -> Formula:
    """Same start; A ends first."""
    return _f(eq(a_lo, b_lo), lt(a_hi, b_hi))


def started_by(a_lo=A_LO, a_hi=A_HI, b_lo=B_LO, b_hi=B_HI) -> Formula:
    return starts(b_lo, b_hi, a_lo, a_hi)


def during(a_lo=A_LO, a_hi=A_HI, b_lo=B_LO, b_hi=B_HI) -> Formula:
    """A strictly inside B."""
    return _f(lt(b_lo, a_lo), lt(a_hi, b_hi))


def contains(a_lo=A_LO, a_hi=A_HI, b_lo=B_LO, b_hi=B_HI) -> Formula:
    return during(b_lo, b_hi, a_lo, a_hi)


def finishes(a_lo=A_LO, a_hi=A_HI, b_lo=B_LO, b_hi=B_HI) -> Formula:
    """Same end; A starts last."""
    return _f(eq(a_hi, b_hi), lt(b_lo, a_lo))


def finished_by(a_lo=A_LO, a_hi=A_HI, b_lo=B_LO, b_hi=B_HI) -> Formula:
    return finishes(b_lo, b_hi, a_lo, a_hi)


def equals(a_lo=A_LO, a_hi=A_HI, b_lo=B_LO, b_hi=B_HI) -> Formula:
    return _f(eq(a_lo, b_lo), eq(a_hi, b_hi))


#: name -> builder, in Allen's canonical order
ALLEN_RELATIONS: Dict[str, Callable[..., Formula]] = {
    "before": before,
    "meets": meets,
    "overlaps": overlaps,
    "starts": starts,
    "during": during,
    "finishes": finishes,
    "equals": equals,
    "finished_by": finished_by,
    "contains": contains,
    "started_by": started_by,
    "overlapped_by": overlapped_by,
    "met_by": met_by,
    "after": after,
}
