"""FO-definable topological operators on constraint relations.

Section 3 of the paper relates queries (Definition 3.1) to the order
topology on Q; a striking contrast powering experiments E2 and E5 is
that *local* topological notions -- interior, closure, boundary,
isolated points -- are plain FO queries over dense order, while the
*global* notion of connectivity is not even FO+ (Theorem 4.3).

All operators here are implemented as FO formula builders (arbitrary
arity, using the product order topology on ``Q^k``) evaluated in closed
form, plus convenience wrappers returning relations.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.atoms import eq, lt
from repro.core.database import Database
from repro.core.evaluator import evaluate
from repro.core.formula import Formula, Not, conj, constraint, exists, forall, rel
from repro.core.relation import Relation

__all__ = [
    "interior_formula",
    "closure_formula",
    "boundary_formula",
    "isolated_points_formula",
    "limit_points_formula",
    "interior",
    "closure",
    "boundary",
    "isolated_points",
    "limit_points",
]


def _box_around(
    name: str, columns: Sequence[str], lows: Sequence[str], highs: Sequence[str],
    inner: Sequence[str],
) -> Formula:
    """``forall inner (lows < inner < highs -> R(inner))``."""
    bounds = conj(
        *(
            constraint(lt(lo, y)) & constraint(lt(y, hi))
            for lo, y, hi in zip(lows, inner, highs)
        )
    )
    return forall(list(inner), bounds.implies(rel(name, *inner)))


def interior_formula(name: str, arity: int) -> Formula:
    """``x`` is interior to ``R``: some open box around it lies in R.

    Free variables: ``x0 .. x{arity-1}``.
    """
    xs = [f"x{i}" for i in range(arity)]
    lows = [f"lo{i}" for i in range(arity)]
    highs = [f"hi{i}" for i in range(arity)]
    ys = [f"y{i}" for i in range(arity)]
    around = conj(
        *(
            constraint(lt(lo, x)) & constraint(lt(x, hi))
            for lo, x, hi in zip(lows, xs, highs)
        )
    )
    return exists(lows + highs, around & _box_around(name, xs, lows, highs, ys))


def closure_formula(name: str, arity: int) -> Formula:
    """``x`` is in the closure: every open box around it meets ``R``."""
    xs = [f"x{i}" for i in range(arity)]
    lows = [f"lo{i}" for i in range(arity)]
    highs = [f"hi{i}" for i in range(arity)]
    ys = [f"y{i}" for i in range(arity)]
    around = conj(
        *(
            constraint(lt(lo, x)) & constraint(lt(x, hi))
            for lo, x, hi in zip(lows, xs, highs)
        )
    )
    meets = exists(
        ys,
        conj(
            *(
                constraint(lt(lo, y)) & constraint(lt(y, hi))
                for lo, y, hi in zip(lows, ys, highs)
            )
        )
        & rel(name, *ys),
    )
    return forall(lows + highs, around.implies(meets))


def boundary_formula(name: str, arity: int) -> Formula:
    """Closure minus interior."""
    return closure_formula(name, arity) & Not(interior_formula(name, arity))


def isolated_points_formula(name: str, arity: int) -> Formula:
    """Members with a punctured neighbourhood disjoint from ``R``."""
    xs = [f"x{i}" for i in range(arity)]
    lows = [f"lo{i}" for i in range(arity)]
    highs = [f"hi{i}" for i in range(arity)]
    ys = [f"y{i}" for i in range(arity)]
    around = conj(
        *(
            constraint(lt(lo, x)) & constraint(lt(x, hi))
            for lo, x, hi in zip(lows, xs, highs)
        )
    )
    same_point = conj(*(constraint(eq(x, y)) for x, y in zip(xs, ys)))
    other_member = exists(
        ys,
        conj(
            *(
                constraint(lt(lo, y)) & constraint(lt(y, hi))
                for lo, y, hi in zip(lows, ys, highs)
            )
        )
        & rel(name, *ys)
        & Not(same_point),
    )
    return rel(name, *xs) & exists(lows + highs, around & Not(other_member))


def limit_points_formula(name: str, arity: int) -> Formula:
    """Points every punctured neighbourhood of which meets ``R``."""
    xs = [f"x{i}" for i in range(arity)]
    return closure_formula(name, arity) & Not(isolated_points_formula(name, arity))


def _run(formula: Formula, database: Database, arity: int) -> Relation:
    out = evaluate(formula, database)
    ordered_schema = tuple(f"x{i}" for i in range(arity))
    return Relation(
        out.theory, ordered_schema, [t.reorder(ordered_schema) for t in out.tuples]
    )


def interior(database: Database, name: str) -> Relation:
    """The interior of relation ``name`` (closed form)."""
    arity = database.arity(name)
    return _run(interior_formula(name, arity), database, arity)


def closure(database: Database, name: str) -> Relation:
    """The topological closure of relation ``name``."""
    arity = database.arity(name)
    return _run(closure_formula(name, arity), database, arity)


def boundary(database: Database, name: str) -> Relation:
    """The boundary of relation ``name``."""
    arity = database.arity(name)
    return _run(boundary_formula(name, arity), database, arity)


def isolated_points(database: Database, name: str) -> Relation:
    """The isolated points of relation ``name``."""
    arity = database.arity(name)
    return _run(isolated_points_formula(name, arity), database, arity)


def limit_points(database: Database, name: str) -> Relation:
    """The limit points (within the closure) of relation ``name``."""
    arity = database.arity(name)
    return _run(limit_points_formula(name, arity), database, arity)
